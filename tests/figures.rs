//! Reproductions of the paper's five figures as executable checks
//! (experiments F1–F5 of EXPERIMENTS.md).

use fatrobots::core::compute::{ComputeState, LocalAlgorithm};
use fatrobots::core::functions::{find_points, move_to_point};
use fatrobots::core::AlgorithmParams;
use fatrobots::prelude::*;
use fatrobots_geometry::hull::ConvexHull;
use fatrobots_model::LocalView;
use fatrobots_scheduler::Event;

/// F1 — Figure 1: the Wait → Look → Compute → Move cycle, with Done leading
/// to Terminate and Arrive/Stop/Collide leading back to Wait.
#[test]
fn fig1_robot_state_machine_cycle() {
    // Phase-level transition structure.
    assert_eq!(Phase::Wait.successors(), &[Phase::Look]);
    assert_eq!(Phase::Look.successors(), &[Phase::Compute]);
    assert_eq!(
        Phase::Compute.successors(),
        &[Phase::Move, Phase::Terminate]
    );
    assert_eq!(Phase::Move.successors(), &[Phase::Wait]);
    assert!(Phase::Terminate.successors().is_empty());

    // The engine realises exactly that cycle: run two separated robots and
    // replay the recorded events of robot 0.
    let mut sim = Simulator::new(
        vec![Point::new(0.0, 0.0), Point::new(12.0, 0.0)],
        Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(2))),
        Box::new(RoundRobin::new()),
        SimConfig {
            record_trace: true,
            ..SimConfig::default()
        },
    );
    let outcome = sim.run();
    assert!(outcome.gathered);
    let mut phase = Phase::Wait;
    for event in sim.trace().events() {
        if !event.robots().contains(&RobotId(0)) {
            continue;
        }
        let next = match event {
            Event::Look(_) => Phase::Look,
            Event::Compute(_) => Phase::Compute,
            Event::Move(_) => Phase::Move,
            Event::Done(_) => Phase::Terminate,
            // A Collide event also names the robot that was hit; only the
            // mover (listed first) changes phase.
            Event::Collide(rs) if rs[0] != RobotId(0) => continue,
            Event::Arrive(_) | Event::Stop(_) | Event::Collide(_) => Phase::Wait,
        };
        assert!(
            phase.can_transition_to(next) || (phase == Phase::Move && next == Phase::Wait),
            "illegal transition {phase} -> {next} observed in the trace"
        );
        phase = next;
    }
    assert_eq!(phase, Phase::Terminate);
}

/// F2 — Figure 2: the Move-to-Point construction. The moving robot ends up
/// tangent to the target robot at the point µ, which is nudged towards the
/// inside of the hull so the mover stays visible.
#[test]
fn fig2_move_to_point_construction() {
    let c1 = Point::new(-6.0, 0.0);
    let c2 = Point::new(0.0, 0.0);
    let interior = Point::new(0.0, 5.0);
    let m = 5usize;
    let offset = 1.0 / (2.0 * m as f64) - 0.01;
    let r = move_to_point(c1, c2, offset, interior);
    // µ lies on the unit circle around c2 …
    assert!((r.mu.distance(c2) - 1.0).abs() < 1e-9);
    // … the final center is tangent to c2's disc at µ …
    assert!((r.target.distance(c2) - 2.0).abs() < 1e-9);
    assert!(r.mu.approx_eq(r.target.midpoint(c2)));
    // … and the inward nudge biases everything towards the hull interior.
    assert!(r.offset_point.y > 0.0 && r.mu.y > 0.0 && r.target.y > 0.0);
}

/// F3 — Figure 3: Find-Points rejects a candidate whose placement would push
/// hull robots off the hull, and accepts candidates on edges with room.
#[test]
fn fig3_find_points_accepts_and_rejects() {
    // Flat-corner hull: the bottom edge is long enough but its candidate is
    // invalid (placing a disc there would push (0,0) off the hull).
    let flat = vec![
        Point::new(-5.0, 0.3),
        Point::new(0.0, 0.0),
        Point::new(2.05, 0.0),
        Point::new(7.0, 0.3),
        Point::new(1.0, 5.0),
    ];
    let rejected = Point::new(1.025, -0.1);
    let candidates = find_points(&flat, 10);
    assert!(!candidates.iter().any(|c| c.approx_eq(rejected)));

    // Generous square hull: every edge admits a candidate and placing a disc
    // at any of them keeps all current hull robots on the hull (Lemma 1).
    let square = vec![
        Point::new(0.0, 0.0),
        Point::new(12.0, 0.0),
        Point::new(12.0, 12.0),
        Point::new(0.0, 12.0),
    ];
    let candidates = find_points(&square, 6);
    assert_eq!(candidates.len(), 4);
    for c in candidates {
        let mut extended = square.clone();
        extended.push(c);
        let hull = ConvexHull::from_points(&extended);
        for q in &square {
            assert!(hull.point_on_boundary(*q));
        }
    }
}

/// F4 — Figure 4: the seventeen Compute states and their transition
/// structure; every observed Compute trace is a path of that graph, and all
/// output states are exercised by some view.
#[test]
fn fig4_compute_state_graph() {
    assert_eq!(ComputeState::ALL.len(), 17);
    for s in ComputeState::ALL {
        assert_eq!(s.is_output_state(), s.successors().is_empty());
    }

    let views: Vec<(usize, LocalView)> = vec![
        // Connected triangle → Connected.
        (
            3,
            LocalView::new(
                Point::new(0.0, 0.0),
                vec![Point::new(2.0, 0.0), Point::new(1.0, 3.0_f64.sqrt())],
                3,
            ),
        ),
        // Separated triangle → NotConnected.
        (
            3,
            LocalView::new(
                Point::new(0.0, 0.0),
                vec![Point::new(20.0, 0.0), Point::new(10.0, 17.0)],
                3,
            ),
        ),
        // Interior robot, roomy hull → NotChange.
        (
            5,
            LocalView::new(
                Point::new(10.0, 10.0),
                vec![
                    Point::new(0.0, 0.0),
                    Point::new(20.0, 0.0),
                    Point::new(20.0, 20.0),
                    Point::new(0.0, 20.0),
                ],
                5,
            ),
        ),
        // Interior robot (touching nobody) inside a 12-gon whose sides are
        // all shorter than a robot diameter → ToChange.
        (
            13,
            LocalView::new(
                Point::new(0.0, 0.0),
                (0..12)
                    .map(|i| {
                        let a = 2.0 * std::f64::consts::PI * i as f64 / 12.0;
                        Point::new(3.7 * a.cos(), 3.7 * a.sin())
                    })
                    .collect(),
                13,
            ),
        ),
        // Hull robot that cannot see everyone → SpaceForMore.
        (
            6,
            LocalView::new(
                Point::new(0.0, 0.0),
                vec![Point::new(10.0, 0.0), Point::new(5.0, 8.0)],
                6,
            ),
        ),
        // Middle robot of a nearly collinear hull triple → SeeTwoRobot.
        (
            6,
            LocalView::new(
                Point::new(5.0, -0.05),
                vec![
                    Point::new(0.0, 0.0),
                    Point::new(10.0, 0.0),
                    Point::new(10.0, 10.0),
                    Point::new(0.0, 10.0),
                    Point::new(6.0, 5.0),
                ],
                6,
            ),
        ),
        // End robot of the same triple → SeeOneRobot (full view variant).
        (
            6,
            LocalView::new(
                Point::new(0.0, 0.0),
                vec![
                    Point::new(5.0, -0.05),
                    Point::new(10.0, 0.0),
                    Point::new(10.0, 10.0),
                    Point::new(0.0, 10.0),
                    Point::new(6.0, 5.0),
                ],
                6,
            ),
        ),
        // Tight triangle hull robot with an interior robot → NoSpaceForMore.
        (
            4,
            LocalView::new(
                Point::new(0.0, 0.0),
                vec![
                    Point::new(1.8, 0.0),
                    Point::new(0.9, 1.6),
                    Point::new(0.9, 0.55),
                ],
                4,
            ),
        ),
        // Interior robot touching another interior robot → IsTouching.
        (
            6,
            LocalView::new(
                Point::new(10.0, 5.0),
                vec![
                    Point::new(10.0, 7.0),
                    Point::new(0.0, 0.0),
                    Point::new(20.0, 0.0),
                    Point::new(20.0, 20.0),
                    Point::new(0.0, 20.0),
                ],
                6,
            ),
        ),
    ];

    let mut reached = std::collections::HashSet::new();
    for (n, view) in views {
        let out = LocalAlgorithm::new(AlgorithmParams::for_n(n)).run_traced(&view);
        assert_eq!(out.trace[0], ComputeState::Start);
        for w in out.trace.windows(2) {
            assert!(
                w[0].successors().contains(&w[1]),
                "{} -> {} is not an edge of Figure 4",
                w[0],
                w[1]
            );
        }
        let last = *out.trace.last().unwrap();
        assert!(last.is_output_state());
        reached.extend(out.trace);
    }
    for wanted in [
        ComputeState::Connected,
        ComputeState::NotConnected,
        ComputeState::NotChange,
        ComputeState::ToChange,
        ComputeState::SpaceForMore,
        ComputeState::NoSpaceForMore,
        ComputeState::SeeOneRobot,
        ComputeState::SeeTwoRobot,
        ComputeState::IsTouching,
    ] {
        assert!(reached.contains(&wanted), "{wanted} was never exercised");
    }
}

/// F5 — Figure 5: the 1/n collinearity band. A hull robot inside the band of
/// its neighbours' chord is treated as "on a straight line"; outside the
/// band it is not.
#[test]
fn fig5_collinearity_band() {
    let n = 4;
    let band = AlgorithmParams::for_n(n).band();
    let inside_band = Point::new(5.0, -(band * 0.5));
    let outside_band = Point::new(5.0, -(band * 3.0));
    let others = vec![
        Point::new(0.0, 0.0),
        Point::new(10.0, 0.0),
        Point::new(5.0, 10.0),
    ];

    let run_state = |me: Point| {
        let view = LocalView::new(me, others.clone(), n + 1); // one robot unseen → phase 1
        LocalAlgorithm::new(AlgorithmParams::for_n(n + 1)).run_traced(&view)
    };
    // Note: with n+1 robots the band is 1/(n+1); scale the probes to it.
    let band5 = AlgorithmParams::for_n(n + 1).band();
    let inside = run_state(Point::new(5.0, -(band5 * 0.5)));
    assert!(inside.trace.contains(&ComputeState::OnStraightLine));
    let outside = run_state(Point::new(5.0, -(band5 * 3.0)));
    assert!(outside.trace.contains(&ComputeState::NotOnStraightLine));

    // The probes above also document the raw geometry of Figure 5.
    assert!(inside_band.y.abs() < band && outside_band.y.abs() > band);
}
