//! Predicate hygiene lint: all ε-comparisons must funnel through
//! `fatrobots_geometry::predicates` (or the kernel module that wraps it).
//!
//! The shadow oracle can only certify a run (ε kernel vs exact arithmetic)
//! for the comparisons it sees. An ad-hoc `x.abs() <= 1e-9` scattered in an
//! algorithm file is invisible to the oracle and silently reintroduces the
//! class of bug the kernel abstraction exists to catch. This test walks
//! every crate source file and rejects raw tolerance comparisons outside
//! the predicate/kernel layer.
//!
//! The lint is textual and deliberately blunt: comments and `#[cfg(test)]`
//! modules are stripped (tests may assert with ad-hoc tolerances; those are
//! checks *about* values, not decisions *made from* them), then three
//! spellings of a raw epsilon comparison are denied:
//!
//! * `< 1e-`  — raw literal-tolerance strict compare,
//! * `<= 1e-` — raw literal-tolerance closed compare,
//! * `.abs() <=` — hand-rolled `approx_eq` (use the predicate instead).
//!
//! New geometry predicates belong in `crates/geometry/src/predicates.rs` or
//! the kernel module — the only files allowed to spell these out.

use std::path::{Path, PathBuf};

/// Files allowed to contain raw epsilon comparisons: the predicate funnel
/// itself and the kernel layer that dual-evaluates it.
fn is_allowlisted(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    p.ends_with("crates/geometry/src/predicates.rs")
        || p.ends_with("crates/geometry/src/kernel.rs")
        || p.contains("crates/geometry/src/kernel/")
}

/// Collects every `.rs` file under each crate's `src/` tree (production
/// code only — integration tests, benches and examples assert with ad-hoc
/// tolerances by design).
fn rust_sources(crates_dir: &Path, out: &mut Vec<PathBuf>) {
    let entries =
        std::fs::read_dir(crates_dir).unwrap_or_else(|e| panic!("read_dir {crates_dir:?}: {e}"));
    for entry in entries {
        let src = entry.expect("dir entry").path().join("src");
        if src.is_dir() {
            rust_sources_rec(&src, out);
        }
    }
}

fn rust_sources_rec(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = std::fs::read_dir(dir).unwrap_or_else(|e| panic!("read_dir {dir:?}: {e}"));
    for entry in entries {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_sources_rec(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Strips `//` line comments (including doc comments). String literals are
/// not parsed; a `//` inside a string would over-strip, which can only hide
/// a violation inside a *string*, where it is not a comparison anyway.
fn strip_line_comments(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Removes every `#[cfg(test)] mod … { … }` block by brace matching.
/// Assertion tolerances inside test modules are measurement checks, not
/// algorithm decisions, so the lint leaves them alone.
fn strip_test_modules(source: &str) -> String {
    let lines: Vec<&str> = source.lines().collect();
    let mut kept = String::with_capacity(source.len());
    let mut i = 0;
    while i < lines.len() {
        let trimmed = lines[i].trim();
        if trimmed == "#[cfg(test)]" || trimmed.starts_with("#[cfg(test)]") {
            // Skip attribute lines, then the mod item, by brace matching
            // from the first `{` that follows.
            let mut depth: i64 = 0;
            let mut opened = false;
            while i < lines.len() {
                for ch in strip_line_comments(lines[i]).chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                i += 1;
                if opened && depth <= 0 {
                    break;
                }
            }
        } else {
            kept.push_str(lines[i]);
            kept.push('\n');
            i += 1;
        }
    }
    kept
}

#[test]
fn no_raw_epsilon_comparisons_outside_the_predicate_layer() {
    const DENY: [&str; 3] = ["< 1e-", "<= 1e-", ".abs() <="];

    let crates = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates");
    let mut sources = Vec::new();
    rust_sources(&crates, &mut sources);
    assert!(
        sources.len() > 10,
        "source walk found only {} files under {crates:?} — lint misconfigured",
        sources.len()
    );

    let mut violations = Vec::new();
    for path in &sources {
        if is_allowlisted(path) {
            continue;
        }
        let source = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
        let stripped = strip_test_modules(&source);
        for (lineno, line) in stripped.lines().enumerate() {
            let code = strip_line_comments(line);
            for pattern in DENY {
                if code.contains(pattern) {
                    violations.push(format!(
                        "{}:{}: `{}` — route this comparison through \
                         fatrobots_geometry::predicates (approx_eq / approx_eq_tol / EPS) \
                         or a kernel predicate\n    {}",
                        path.display(),
                        lineno + 1,
                        pattern,
                        code.trim()
                    ));
                }
            }
        }
    }

    assert!(
        violations.is_empty(),
        "raw epsilon comparisons outside the predicate layer:\n{}",
        violations.join("\n")
    );
}
