//! The stall census as an executable table (see ROADMAP.md, "Convergence
//! stalls"): random starts under the random-async schedule, judged at a
//! 100k-event budget.
//!
//! The census corrects the old claim that n ≥ 16 never gathers: at n = 16
//! stalling is *seed-dependent* (seeds 1, 4, 5 gather; seeds 2, 3 stall),
//! and from n = 24 up every probed seed stalls. The quick test pins the
//! seed-dependent n = 16 row — the scenario fuzzer's pilot corpus and the
//! committed livelock fixtures build directly on it. The large-n rows are
//! `#[ignore]`d (five stalled 100k-event runs each); run them with:
//!
//! ```sh
//! cargo test --release --test stall_census -- --ignored
//! ```
//!
//! If a row flips, the algorithm's convergence behaviour changed: rerun
//! `report fuzz` and refresh ROADMAP.md's census alongside the fix.

use fatrobots::sim::experiment::{run, AdversaryKind, RunSpec, StrategyKind};
use fatrobots::sim::init::Shape;

/// The census budget: the stall determination threshold of ROADMAP.md.
const CENSUS_CAP: usize = 100_000;

fn census_row(n: usize, seed: u64) -> (bool, usize) {
    let summary = run(&RunSpec {
        shape: Shape::Random,
        adversary: AdversaryKind::RandomAsync,
        strategy: StrategyKind::Paper,
        max_events: CENSUS_CAP,
        ..RunSpec::new(n, seed)
    });
    (summary.gathered, summary.events)
}

#[test]
fn stall_census_n16_is_seed_dependent() {
    // (seed, gathers within the census budget)
    let expected = [(1, true), (2, false), (3, false), (4, true), (5, true)];
    for (seed, should_gather) in expected {
        let (gathered, events) = census_row(16, seed);
        assert_eq!(
            gathered, should_gather,
            "census row n=16 seed={seed} flipped (ran {events} events): \
             expected gathered={should_gather}"
        );
    }
}

#[test]
#[ignore = "five 100k-event stalled runs per n; run with --ignored (see module docs)"]
fn stall_census_from_n24_up_every_probed_seed_stalls() {
    for n in [24, 32, 48] {
        for seed in 1..=5 {
            let (gathered, events) = census_row(n, seed);
            assert!(
                !gathered,
                "census row n={n} seed={seed} flipped: gathered after \
                 {events} events — large-n stalling is no longer universal"
            );
        }
    }
}
