//! Allocation-regression guard for the steady-state event loop.
//!
//! A counting global allocator wraps the system allocator; the test runs a
//! seeded simulation to a warm steady state (every cache and scratch buffer
//! at capacity) and then measures heap allocations over a window of further
//! events. The scratch arenas, the reused views, the decision memo, the
//! single-mover hull repair and the kernel's per-thread buffers make the
//! steady-state loop allocation-free, so the window must measure **exactly
//! zero** heap allocations.
//!
//! Three cold paths can still allocate, all rare, all amortized, and none
//! firing in this seeded collision-free window:
//!
//! * `Event::Collide` carries a `Vec<RobotId>` (collisions are occasional);
//! * a visibility-pair recompute may register itself in a grid cell whose
//!   registration list needs to grow (amortized by doubling);
//! * a robot crossing into a grid cell it never visited before allocates
//!   that cell's site list once.
//!
//! If a future seed/window change makes one of those fire, widen the
//! warm-up or pick a window without them — don't reintroduce a slack
//! budget, it hid a whole class of per-event regressions.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use fatrobots::core::{AlgorithmParams, LocalAlgorithm};
use fatrobots::scheduler::RoundRobin;
use fatrobots::sim::engine::{SimConfig, Simulator};
use fatrobots::sim::init::Shape;

/// A pass-through allocator that counts every allocation (and realloc —
/// each is a fresh heap request the steady state must not need). The
/// counter is thread-local (const-initialized, so reading it never
/// allocates): each test measures only its own thread, immune to harness
/// threads allocating concurrently.
struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|n| n.set(n.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|n| n.set(n.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTING: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

#[test]
fn steady_state_event_loop_stays_within_the_allocation_budget() {
    // n = 16 random starts never reach the gathering postcondition (see
    // ROADMAP), so the window below is a genuine steady-state loop through
    // the expansion/interior procedures — the regime large-n runs live in.
    let n = 16;
    let centers = Shape::Random.generate(n, 3);
    let mut sim = Simulator::new(
        centers,
        Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(n))),
        Box::new(RoundRobin::new()),
        SimConfig {
            max_events: usize::MAX,
            // The samplers and the trace are diagnostic paths; the budget
            // pins the bare event loop.
            sample_every: 0,
            record_trace: false,
            ..SimConfig::default()
        },
    );

    // Warm-up: fill the visibility cache, the grid, the scratch arena and
    // every per-robot view buffer.
    let warmup = 6_000;
    for _ in 0..warmup {
        assert!(
            sim.step().is_some(),
            "the run must not terminate during warmup"
        );
    }

    let window = 4_000u64;
    let before = allocations();
    for _ in 0..window {
        assert!(
            sim.step().is_some(),
            "the run must not terminate mid-window"
        );
    }
    let after = allocations();

    eprintln!(
        "steady-state allocations per event: {:.4}",
        (after - before) as f64 / window as f64
    );
    // The whole loop — Look snapshots, the visibility kernel, decisions
    // (memoized or computed), view-version bumps, single-mover hull
    // repair, min-gap maintenance, motion — runs on reused storage. This
    // seeded window is collision-free, so the cold paths documented above
    // never fire and the measurement is exact: 0 allocations total.
    assert_eq!(
        after - before,
        0,
        "the steady-state event loop must not touch the heap \
         (a scratch buffer or cache has rotted)"
    );
    let (hits, misses) = sim.decision_cache_stats();
    eprintln!("decision cache over warmup+window: {hits} hits / {misses} misses");
    assert!(
        hits > 0,
        "a warm steady-state window must replay at least some decisions"
    );
}

#[test]
fn repeated_decides_on_one_scratch_do_not_allocate() {
    // The Compute kernel in isolation: after one warm-up decision, further
    // decisions on the same arena must perform zero allocations.
    use fatrobots::geometry::Point;
    use fatrobots::model::LocalView;

    let n = 24;
    let others: Vec<Point> = (1..n)
        .map(|i| {
            let a = 2.0 * std::f64::consts::PI * i as f64 / n as f64 + 0.1;
            Point::new(n as f64 * a.cos(), n as f64 * a.sin())
        })
        .collect();
    let view = LocalView::new(Point::new(0.4, 0.2), others, n);
    let algo = LocalAlgorithm::new(AlgorithmParams::for_n(n));
    let mut scratch = fatrobots::core::ComputeScratch::default();
    let warm = algo.run_with(&view, &mut scratch);

    let before = allocations();
    for _ in 0..100 {
        assert_eq!(algo.run_with(&view, &mut scratch), warm);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "a warm ComputeScratch decision must not touch the heap"
    );
}
