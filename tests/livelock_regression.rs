//! Regression witness for the known livelock (see ROADMAP.md).
//!
//! `Shape::Random` with `n = 7`, `seed = 7` under the friendly `RoundRobin`
//! schedule never gathers: the run is still going at 400k events where
//! every other small seed finishes in ~2–6k. The exact-arithmetic shadow
//! oracle has since settled the cause (see
//! `livelock_window_has_no_eps_vs_exact_divergence` below and ROADMAP.md):
//! the stalled configuration is a genuine fixed point of the algorithm
//! under the simulation model, not an ε-tolerance artifact.
//!
//! The test is `#[ignore]`d because it *currently fails* — it exists so the
//! eventual fix has a ready-made witness. Run it explicitly with:
//!
//! ```sh
//! cargo test --test livelock_regression -- --ignored
//! ```
//!
//! When it passes, remove the `#[ignore]` and close the ROADMAP item.

use std::path::Path;

use fatrobots::prelude::*;
use fatrobots::sim::experiment::{run, AdversaryKind, RunSpec, StrategyKind};
use fatrobots::sim::fuzz::{self, Fixture};
use fatrobots::sim::init::Shape;

/// Shadow-oracle verdict on the livelock, pinned (see ROADMAP.md): over a
/// 30k-event window of the n=7/seed=7 stall, replaying every Compute
/// decision under the exact-arithmetic kernel produces **zero** decision
/// divergences and **zero** predicate flips. The stalled configuration is a
/// genuine fixed point of the algorithm under the simulation model — not a
/// floating-point artifact of the ε-tolerant predicates. If this test ever
/// fails with a nonzero count, a tolerance change has made ε and exact
/// geometry disagree inside the stall window: the dumped counters and the
/// first-divergence record say exactly where.
#[test]
fn livelock_window_has_no_eps_vs_exact_divergence() {
    let summary = run(&RunSpec {
        shape: Shape::Random,
        adversary: AdversaryKind::RoundRobin,
        strategy: StrategyKind::Paper,
        max_events: 30_000,
        shadow: true,
        ..RunSpec::new(7, 7)
    });
    assert!(!summary.terminated, "the known livelock is gone?!");
    let stats = summary.shadow.expect("shadow oracle ran");
    eprintln!(
        "livelock shadow oracle: {} computes replayed, {} divergences, \
         {} predicate flips, first divergence: {:?}",
        stats.computes,
        stats.divergent,
        stats.predicate_flips(),
        stats.first_divergence,
    );
    assert!(stats.computes > 0, "the oracle must replay the window");
    assert_eq!(
        stats.divergent, 0,
        "exact arithmetic newly disagrees with an ε decision inside the \
         livelock window: first divergence {:?}",
        stats.first_divergence,
    );
    assert_eq!(
        stats.predicate_flips(),
        0,
        "a predicate site newly flips between ε and exact verdicts inside \
         the livelock window (absorbed by control flow, but still a \
         tolerance-boundary crossing)"
    );
}

#[test]
#[ignore = "known livelock (ROADMAP): random n=7 seed=7 under round-robin never gathers; un-ignore with the fix"]
fn random_n7_seed7_round_robin_gathers_within_400k_events() {
    // `experiment::run` uses the default engine configuration, so this
    // witness exercises the livelock with the decision cache **enabled** —
    // if the cache ever masked (or cured) the stall, the cached-vs-fresh
    // stream pin below would catch the divergence first.
    let summary = run(&RunSpec {
        shape: Shape::Random,
        adversary: AdversaryKind::RoundRobin,
        strategy: StrategyKind::Paper,
        max_events: 400_000,
        ..RunSpec::new(7, 7)
    });
    eprintln!(
        "livelock witness telemetry: decision cache {} hits / {} misses, \
         visibility cache {} hits / {} misses, hull {} repairs / {} rebuilds",
        summary.decision_cache_hits,
        summary.decision_cache_misses,
        summary.visibility_cache_hits,
        summary.visibility_cache_misses,
        summary.hull_repairs,
        summary.hull_rebuilds,
    );
    assert!(
        summary.terminated,
        "livelock: still running after {} events (expected termination in ~2-6k)",
        summary.events
    );
    assert!(summary.gathered, "terminated without gathering");
}

/// The livelock must be *replayed*, never masked or altered, by the
/// decision cache: a bounded window of the stalled run with memoization
/// enabled is event-for-event identical to the always-recompute run, and
/// the cache-hit telemetry of the stalled regime is dumped for the future
/// diagnosis PR (a livelocked system re-decides the same views over and
/// over — exactly what the hit rate quantifies).
#[test]
fn livelock_window_is_identical_with_and_without_the_decision_cache() {
    let window = 30_000;
    let run_once = |decision_cache: bool| {
        let centers = Shape::Random.generate(7, 7);
        let mut sim = Simulator::new(
            centers,
            StrategyKind::Paper.build(7),
            AdversaryKind::RoundRobin.build(7, 7),
            SimConfig {
                max_events: window,
                record_trace: true,
                decision_cache,
                ..SimConfig::default()
            },
        );
        let outcome = sim.run();
        let stats = sim.decision_cache_stats();
        (
            outcome,
            sim.centers().to_vec(),
            sim.trace().events().to_vec(),
            stats,
        )
    };
    let (cached_outcome, cached_centers, cached_events, (hits, misses)) = run_once(true);
    let (fresh_outcome, fresh_centers, fresh_events, _) = run_once(false);
    assert_eq!(
        cached_events, fresh_events,
        "the decision cache altered the livelocked event stream"
    );
    assert_eq!(cached_centers, fresh_centers);
    assert_eq!(cached_outcome, fresh_outcome);
    assert!(
        !cached_outcome.terminated,
        "the known livelock is gone?! un-ignore the witness above and close the ROADMAP item"
    );
    eprintln!(
        "livelocked window ({window} events): decision cache {hits} hits / {misses} misses \
         ({:.1}% of Compute events replayed)",
        100.0 * hits as f64 / (hits + misses).max(1) as f64
    );
}

/// The livelock window is the parallel executor's stress test: a stalled
/// run re-decides stable views over and over, which is exactly the regime
/// where speculative Computes fire and commutation batches form. The
/// `threads = 4` replay must be event-for-event identical to serial —
/// same stream, same centers, same outcome — and must actually engage the
/// speculation machinery while doing so.
#[test]
fn livelock_window_replays_identically_under_the_parallel_executor() {
    let window = 30_000;
    let run_once = |threads: usize| {
        let centers = Shape::Random.generate(7, 7);
        let mut sim = Simulator::new(
            centers,
            StrategyKind::Paper.build(7),
            AdversaryKind::RoundRobin.build(7, 7),
            SimConfig {
                max_events: window,
                record_trace: true,
                threads,
                ..SimConfig::default()
            },
        );
        let outcome = sim.run();
        let stats = sim.parallel_stats();
        (
            outcome,
            sim.centers().to_vec(),
            sim.trace().events().to_vec(),
            stats,
        )
    };
    let (par_outcome, par_centers, par_events, (batches, batched, spec_hits, spec_aborts)) =
        run_once(4);
    let (ser_outcome, ser_centers, ser_events, _) = run_once(1);
    assert_eq!(
        par_events, ser_events,
        "the parallel executor altered the livelocked event stream"
    );
    assert_eq!(par_centers, ser_centers);
    assert_eq!(par_outcome, ser_outcome);
    eprintln!(
        "livelocked window ({window} events) at threads=4: {batches} batches, \
         {batched} batched events, {spec_hits} speculation hits, {spec_aborts} aborts"
    );
    assert!(
        batched > 0,
        "the livelock window must commit multi-event batches"
    );
    assert!(
        spec_hits > 0,
        "the livelock window must consume speculative decisions"
    );
}

/// Every fixture the scenario fuzzer has filed under
/// `tests/fixtures/livelock/` replays to its recorded census — gathered /
/// terminated flags, event count and the *bit pattern* of the travelled
/// distance. The fuzzer (`report fuzz`) auto-files new stalls here; this
/// test picks them up without code changes, so a stall found once stays
/// found. A failure means either a genuine behavioural change in the
/// engine (diagnose before touching the fixture!) or an intentional
/// algorithm fix — in which case regenerate via
/// `report fuzz --out tests/fixtures/livelock`.
#[test]
fn fuzz_fixtures_replay_to_their_recorded_census() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/livelock");
    let fixtures = fuzz::load_fixtures(&dir).expect("fixtures parse");
    assert!(
        !fixtures.is_empty(),
        "the committed fixture set must not be empty (did {} move?)",
        dir.display()
    );
    for (path, fixture) in fixtures {
        let census = fuzz::replay(&fixture.spec);
        assert_eq!(
            census,
            fixture.expected,
            "{} no longer replays to its recorded census (spec: {:?})",
            path.display(),
            fixture.spec
        );
        assert!(
            !census.gathered,
            "{}: a livelock fixture gathered — the underlying stall is \
             fixed; fold it into the census tables and retire the fixture",
            path.display()
        );
        // The on-disk bytes are exactly the canonical serialization, so
        // the CI fuzz-smoke job can compare regenerated fixtures with a
        // plain byte diff.
        let on_disk = std::fs::read_to_string(&path).expect("fixture readable");
        let canonical = Fixture {
            spec: fixture.spec,
            expected: fixture.expected,
            origin: fixture.origin.clone(),
            shrink_steps: fixture.shrink_steps,
        }
        .to_json();
        assert_eq!(
            on_disk,
            canonical,
            "{} is not in canonical serialization",
            path.display()
        );
    }
}

/// The sibling seeds gather quickly — pinning that down keeps this witness
/// honest: when the ignored test above starts passing, the fix must not
/// have slowed the healthy seeds into the same budget.
#[test]
fn sibling_seeds_gather_quickly_under_round_robin() {
    for seed in [1, 2, 3] {
        let summary = run(&RunSpec {
            shape: Shape::Random,
            adversary: AdversaryKind::RoundRobin,
            strategy: StrategyKind::Paper,
            max_events: 60_000,
            ..RunSpec::new(7, seed)
        });
        assert!(
            summary.gathered,
            "seed {seed} must gather within 60k events"
        );
    }
}
