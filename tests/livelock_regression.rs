//! Regression witness for the known livelock (see ROADMAP.md).
//!
//! `Shape::Random` with `n = 7`, `seed = 7` under the friendly `RoundRobin`
//! schedule never gathers: the run is still going at 400k events where
//! every other small seed finishes in ~2–6k. The suspicion is a
//! hull/interior cycle that an ε-tolerance fails to break.
//!
//! The test is `#[ignore]`d because it *currently fails* — it exists so the
//! eventual fix has a ready-made witness. Run it explicitly with:
//!
//! ```sh
//! cargo test --test livelock_regression -- --ignored
//! ```
//!
//! When it passes, remove the `#[ignore]` and close the ROADMAP item.

use fatrobots::sim::experiment::{run, AdversaryKind, RunSpec, StrategyKind};
use fatrobots::sim::init::Shape;

#[test]
#[ignore = "known livelock (ROADMAP): random n=7 seed=7 under round-robin never gathers; un-ignore with the fix"]
fn random_n7_seed7_round_robin_gathers_within_400k_events() {
    let summary = run(&RunSpec {
        shape: Shape::Random,
        adversary: AdversaryKind::RoundRobin,
        strategy: StrategyKind::Paper,
        max_events: 400_000,
        ..RunSpec::new(7, 7)
    });
    assert!(
        summary.terminated,
        "livelock: still running after {} events (expected termination in ~2-6k)",
        summary.events
    );
    assert!(summary.gathered, "terminated without gathering");
}

/// The sibling seeds gather quickly — pinning that down keeps this witness
/// honest: when the ignored test above starts passing, the fix must not
/// have slowed the healthy seeds into the same budget.
#[test]
fn sibling_seeds_gather_quickly_under_round_robin() {
    for seed in [1, 2, 3] {
        let summary = run(&RunSpec {
            shape: Shape::Random,
            adversary: AdversaryKind::RoundRobin,
            strategy: StrategyKind::Paper,
            max_events: 60_000,
            ..RunSpec::new(7, seed)
        });
        assert!(
            summary.gathered,
            "seed {seed} must gather within 60k events"
        );
    }
}
