//! The equivalence pin for the incremental world state: a `World`-backed
//! run must replay **event-for-event identical** to a from-scratch
//! reference recomputation, across every `Shape` × `AdversaryKind`
//! combination of the experiment matrix.
//!
//! The incremental engine ([`WorldMode::Incremental`], the default) answers
//! Look snapshots, validity, connectivity and the gathering predicate from
//! caches with grid-indexed dirty-pair invalidation; the reference engine
//! ([`WorldMode::Scratch`]) recomputes everything per query exactly like
//! the seed engine did. Identical event streams, final centers, outcomes
//! and metrics prove the caches never change observable behaviour.

use fatrobots::prelude::*;
use fatrobots::sim::experiment::{AdversaryKind, StrategyKind};
use fatrobots::sim::world::WorldMode;
use fatrobots::sim::RunOutcome;

#[allow(clippy::type_complexity)]
fn run_with_threads(
    n: usize,
    seed: u64,
    shape: Shape,
    adversary: AdversaryKind,
    mode: WorldMode,
    decision_cache: bool,
    threads: usize,
) -> (
    RunOutcome,
    Vec<Point>,
    Vec<fatrobots::scheduler::Event>,
    (u64, u64, u64, u64),
) {
    let centers = shape.generate(n, seed);
    let mut sim = Simulator::new(
        centers,
        StrategyKind::Paper.build(n),
        adversary.build(seed, n),
        SimConfig {
            max_events: 12_000,
            record_trace: true,
            world_mode: mode,
            decision_cache,
            threads,
            ..SimConfig::default()
        },
    );
    let outcome = sim.run();
    let stats = sim.parallel_stats();
    (
        outcome,
        sim.centers().to_vec(),
        sim.trace().events().to_vec(),
        stats,
    )
}

fn run_with_config(
    n: usize,
    seed: u64,
    shape: Shape,
    adversary: AdversaryKind,
    mode: WorldMode,
    decision_cache: bool,
) -> (RunOutcome, Vec<Point>, Vec<fatrobots::scheduler::Event>) {
    let (outcome, centers, events, _) =
        run_with_threads(n, seed, shape, adversary, mode, decision_cache, 1);
    (outcome, centers, events)
}

fn run_with_mode(
    n: usize,
    seed: u64,
    shape: Shape,
    adversary: AdversaryKind,
    mode: WorldMode,
) -> (RunOutcome, Vec<Point>, Vec<fatrobots::scheduler::Event>) {
    run_with_config(n, seed, shape, adversary, mode, true)
}

#[test]
fn world_backed_runs_replay_identically_across_the_matrix() {
    for shape in Shape::ALL {
        for adversary in AdversaryKind::ALL {
            let (cached_outcome, cached_centers, cached_events) =
                run_with_mode(5, 2, shape, adversary, WorldMode::Incremental);
            let (scratch_outcome, scratch_centers, scratch_events) =
                run_with_mode(5, 2, shape, adversary, WorldMode::Scratch);
            let label = format!("shape={} adversary={}", shape.name(), adversary.name());
            assert_eq!(
                cached_events, scratch_events,
                "event stream diverged for {label}"
            );
            assert_eq!(
                cached_centers, scratch_centers,
                "final centers diverged for {label}"
            );
            assert_eq!(
                cached_outcome, scratch_outcome,
                "run outcome (incl. metrics and samples) diverged for {label}"
            );
            assert!(
                !cached_events.is_empty(),
                "the {label} run must actually execute events"
            );
        }
    }
}

/// The sparse-world pin: [`WorldMode::Sparse`] (adjacency lists plus a
/// hash-map pair store, built for n = 10⁴) must replay event-for-event
/// identical to both the dense incremental world and the from-scratch
/// reference, across the same Shape × AdversaryKind matrix. All three
/// modes answer through the same geometric kernels; this test pins that
/// the sparse bookkeeping (per-level corridor registrations, pending-row
/// queues, lazy row initialization) never changes observable behaviour.
#[test]
fn sparse_world_runs_replay_identically_across_the_matrix() {
    for shape in Shape::ALL {
        for adversary in AdversaryKind::ALL {
            let (sparse_outcome, sparse_centers, sparse_events) =
                run_with_mode(5, 2, shape, adversary, WorldMode::Sparse);
            let (dense_outcome, dense_centers, dense_events) =
                run_with_mode(5, 2, shape, adversary, WorldMode::Incremental);
            let label = format!("shape={} adversary={}", shape.name(), adversary.name());
            assert_eq!(
                sparse_events, dense_events,
                "sparse event stream diverged from dense for {label}"
            );
            assert_eq!(
                sparse_centers, dense_centers,
                "sparse final centers diverged from dense for {label}"
            );
            assert_eq!(
                sparse_outcome, dense_outcome,
                "sparse run outcome diverged from dense for {label}"
            );
            // And against the reference recomputation, so a bug shared by
            // both cached modes cannot pass as agreement.
            let (scratch_outcome, scratch_centers, scratch_events) =
                run_with_mode(5, 2, shape, adversary, WorldMode::Scratch);
            assert_eq!(
                sparse_events, scratch_events,
                "sparse event stream diverged from scratch for {label}"
            );
            assert_eq!(sparse_centers, scratch_centers);
            assert_eq!(sparse_outcome, scratch_outcome);
        }
    }
}

/// The decision-memoization pin: with the cache on (the default), every
/// Compute event whose robot's view version is unchanged replays the
/// memoized decision instead of running `Strategy::decide_with`. The
/// algorithm is a deterministic function of the view and an unchanged
/// version guarantees an unchanged view, so the two engines must produce
/// event-for-event identical streams, final centers and outcomes across
/// the whole experiment matrix — any divergence means the view-version
/// bookkeeping let a stale decision through.
#[test]
fn memoized_decisions_replay_identically_across_the_matrix() {
    for shape in Shape::ALL {
        for adversary in AdversaryKind::ALL {
            let (cached_outcome, cached_centers, cached_events) =
                run_with_config(5, 2, shape, adversary, WorldMode::Incremental, true);
            let (fresh_outcome, fresh_centers, fresh_events) =
                run_with_config(5, 2, shape, adversary, WorldMode::Incremental, false);
            let label = format!("shape={} adversary={}", shape.name(), adversary.name());
            assert_eq!(
                cached_events, fresh_events,
                "event stream diverged with the decision cache for {label}"
            );
            assert_eq!(
                cached_centers, fresh_centers,
                "final centers diverged with the decision cache for {label}"
            );
            assert_eq!(
                cached_outcome, fresh_outcome,
                "run outcome diverged with the decision cache for {label}"
            );
        }
    }
}

/// The parallel-executor pin: `SimConfig::threads = 4` routes runs through
/// the commutation-batching + speculative-Compute executor, which must
/// replay **event-for-event identical** to the serial loop — same event
/// stream, same final centers, same outcome (metrics and samples included)
/// — across the whole Shape × AdversaryKind matrix, in both the dense and
/// the sparse world. Any divergence means a batched event did not actually
/// commute or a speculation replayed a stale decision.
#[test]
fn parallel_executor_replays_identically_across_the_matrix() {
    let mut batched_events = 0;
    let mut spec_hits = 0;
    for mode in [WorldMode::Incremental, WorldMode::Sparse] {
        for shape in Shape::ALL {
            for adversary in AdversaryKind::ALL {
                let (par_outcome, par_centers, par_events, stats) =
                    run_with_threads(5, 2, shape, adversary, mode, true, 4);
                let (ser_outcome, ser_centers, ser_events, _) =
                    run_with_threads(5, 2, shape, adversary, mode, true, 1);
                let label = format!(
                    "mode={mode:?} shape={} adversary={}",
                    shape.name(),
                    adversary.name()
                );
                assert_eq!(
                    par_events, ser_events,
                    "parallel event stream diverged from serial for {label}"
                );
                assert_eq!(
                    par_centers, ser_centers,
                    "parallel final centers diverged from serial for {label}"
                );
                assert_eq!(
                    par_outcome, ser_outcome,
                    "parallel run outcome diverged from serial for {label}"
                );
                batched_events += stats.1;
                spec_hits += stats.2;
            }
        }
    }
    // The pin is only meaningful if the parallel paths actually engage.
    assert!(
        batched_events > 0,
        "no run of the matrix ever committed a multi-event batch"
    );
    assert!(
        spec_hits > 0,
        "no run of the matrix ever consumed a speculative decision"
    );
}

/// Same pin with the decision cache disabled: speculation is off (it rides
/// on the memoization contract), so this isolates pure commutation
/// batching against the uncached serial reference.
#[test]
fn parallel_executor_matches_serial_without_the_decision_cache() {
    for shape in Shape::ALL {
        for adversary in AdversaryKind::ALL {
            let (par_outcome, par_centers, par_events, stats) =
                run_with_threads(5, 2, shape, adversary, WorldMode::Incremental, false, 4);
            let (ser_outcome, ser_centers, ser_events, _) =
                run_with_threads(5, 2, shape, adversary, WorldMode::Incremental, false, 1);
            let label = format!("shape={} adversary={}", shape.name(), adversary.name());
            assert_eq!(par_events, ser_events, "event stream diverged for {label}");
            assert_eq!(par_centers, ser_centers);
            assert_eq!(par_outcome, ser_outcome);
            assert_eq!(stats.2, 0, "speculation must stay off without the cache");
            assert_eq!(stats.3, 0);
        }
    }
}

#[test]
fn larger_asynchronous_run_replays_identically() {
    // One deeper spot-check past the matrix: more robots, the seeded
    // random-async schedule, and enough events to cycle the cache through
    // many generations.
    let (cached_outcome, cached_centers, cached_events) = run_with_mode(
        9,
        7,
        Shape::Random,
        AdversaryKind::RandomAsync,
        WorldMode::Incremental,
    );
    let (scratch_outcome, scratch_centers, scratch_events) = run_with_mode(
        9,
        7,
        Shape::Random,
        AdversaryKind::RandomAsync,
        WorldMode::Scratch,
    );
    assert_eq!(cached_events, scratch_events);
    assert_eq!(cached_centers, scratch_centers);
    assert_eq!(cached_outcome, scratch_outcome);
    // And the same workload with the decision memo disabled: the seeded
    // async schedule interleaves Looks and Computes of different robots
    // arbitrarily, so stale-replay bugs that a round-robin schedule could
    // mask show up here.
    let (fresh_outcome, fresh_centers, fresh_events) = run_with_config(
        9,
        7,
        Shape::Random,
        AdversaryKind::RandomAsync,
        WorldMode::Incremental,
        false,
    );
    assert_eq!(cached_events, fresh_events);
    assert_eq!(cached_centers, fresh_centers);
    assert_eq!(cached_outcome, fresh_outcome);
}
