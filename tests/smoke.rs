//! Fast deterministic smoke test: the paper's algorithm gathers small
//! systems under the friendly round-robin schedule within a bounded event
//! budget. Everything is seeded, so a failure here is always reproducible
//! and almost always means a real regression in the core algorithm or the
//! engine, not flakiness.

use fatrobots::prelude::*;
use fatrobots::sim::experiment::{run, AdversaryKind, RunSpec, StrategyKind};
use fatrobots::sim::init;
use fatrobots_model::GeometricConfig;

/// One bounded, seeded gathering run from a circle of radius `spread`.
/// Wired by hand (rather than through `experiment::run`) because these
/// tests also inspect the final centers, which the run summary does not
/// expose.
fn gather_bounded(n: usize, spread: f64, max_events: usize) -> (RunOutcome, Vec<Point>) {
    let centers = init::circle(n, spread);
    let mut sim = Simulator::new(
        centers,
        Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(n))),
        Box::new(RoundRobin::new()),
        SimConfig {
            max_events,
            ..SimConfig::default()
        },
    );
    let outcome = sim.run();
    (outcome, sim.centers().to_vec())
}

#[test]
fn smoke_gathering_n_3_5_7_round_robin() {
    // Budgets are generous versus observed costs (hundreds to a few
    // thousand events) but tight enough that livelock fails fast.
    for (n, max_events) in [(3usize, 20_000usize), (5, 40_000), (7, 80_000)] {
        let (outcome, finals) = gather_bounded(n, 4.0 * n as f64, max_events);
        assert!(
            outcome.gathered,
            "{n} robots under RoundRobin must gather within {max_events} events"
        );
        let g = GeometricConfig::new(finals);
        assert!(g.is_valid(), "n={n}: final discs must not overlap");
        assert!(g.is_connected(), "n={n}: final discs must be connected");
    }
}

#[test]
fn smoke_runs_are_deterministic() {
    // Same inputs, same schedule, same outcome and same final positions:
    // the whole pipeline is free of hidden nondeterminism.
    for n in [3usize, 5, 7] {
        let (a, finals_a) = gather_bounded(n, 4.0 * n as f64, 80_000);
        let (b, finals_b) = gather_bounded(n, 4.0 * n as f64, 80_000);
        assert_eq!(a.gathered, b.gathered);
        assert_eq!(finals_a.len(), finals_b.len());
        for (pa, pb) in finals_a.iter().zip(&finals_b) {
            assert!(pa.approx_eq(*pb), "n={n}: runs diverged: {pa} vs {pb}");
        }
    }
}

#[test]
fn smoke_seeded_random_starts_gather() {
    // Same path the experiment harness and benches use, so this smoke test
    // also exercises RunSpec plumbing; the seeded generator feeds the same
    // configuration to every run, keeping it deterministic end to end.
    // (Seed 7 at n=7 is a known livelock — see ROADMAP open items.)
    for (n, seed) in [(3usize, 1u64), (5, 1), (7, 1)] {
        let summary = run(&RunSpec {
            shape: Shape::Random,
            adversary: AdversaryKind::RoundRobin,
            strategy: StrategyKind::Paper,
            max_events: 120_000,
            ..RunSpec::new(n, seed)
        });
        assert!(
            summary.gathered,
            "{n} robots from seeded random start {seed} must gather"
        );
    }
}
