//! Integration tests: the full pipeline (initial configuration → adversary →
//! local algorithm → engine) gathers and terminates, across system sizes,
//! initial shapes and adversaries.
//!
//! These tests run in debug mode under `cargo test`, so they use moderate
//! system sizes; the larger sweeps live in the benchmark/report harness.

use fatrobots::prelude::*;
use fatrobots::sim::experiment::{run, AdversaryKind, RunSpec, StrategyKind};
use fatrobots_model::GeometricConfig;

fn gather(n: usize, seed: u64, shape: Shape, adversary: AdversaryKind) -> (bool, Vec<Point>) {
    let spec = RunSpec {
        shape,
        adversary,
        strategy: StrategyKind::Paper,
        ..RunSpec::new(n, seed)
    };
    let centers = shape.generate(n, seed);
    let mut sim = Simulator::new(
        centers,
        Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(n))),
        adversary.build(seed, n),
        SimConfig {
            max_events: spec.max_events,
            ..SimConfig::default()
        },
    );
    let outcome = sim.run();
    (outcome.gathered, sim.centers().to_vec())
}

#[test]
fn small_systems_gather_from_circle_starts() {
    for n in [2usize, 3, 4, 5, 6] {
        let (gathered, finals) = gather(n, 11, Shape::Circle, AdversaryKind::RoundRobin);
        assert!(gathered, "{n} robots on a circle must gather");
        let g = GeometricConfig::new(finals);
        assert!(g.is_valid(), "final configuration must not overlap");
        assert!(g.is_connected(), "final configuration must be connected");
    }
}

#[test]
fn random_starts_gather_under_the_friendly_schedule() {
    for seed in [1u64, 2, 3, 4] {
        let (gathered, finals) = gather(6, seed, Shape::Random, AdversaryKind::RoundRobin);
        assert!(gathered, "seed {seed} must gather");
        assert!(GeometricConfig::new(finals).is_connected());
    }
}

#[test]
fn random_starts_gather_under_the_random_async_schedule() {
    for seed in [1u64, 2] {
        let (gathered, _) = gather(5, seed, Shape::Random, AdversaryKind::RandomAsync);
        assert!(
            gathered,
            "seed {seed} must gather under random-async scheduling"
        );
    }
}

#[test]
fn clustered_starts_gather() {
    let (gathered, finals) = gather(6, 5, Shape::Clusters, AdversaryKind::RoundRobin);
    assert!(gathered);
    assert!(GeometricConfig::new(finals).is_connected());
}

#[test]
fn collinear_starts_gather() {
    // A line of robots is the canonical hard case for visibility: everyone
    // except the two ends starts occluded.
    let (gathered, _) = gather(5, 1, Shape::Line, AdversaryKind::RoundRobin);
    assert!(gathered, "a line of 5 robots must gather");
}

#[test]
fn hostile_adversaries_do_not_break_safety() {
    // Under the hostile schedules the run may need more events than the
    // default budget, but safety (no overlap) must hold at the end whether
    // or not the run finished, and the engine must not panic.
    for adversary in [
        AdversaryKind::StopHappy,
        AdversaryKind::SlowRobot,
        AdversaryKind::CollisionSeeker,
    ] {
        let (_, finals) = gather(5, 3, Shape::Circle, adversary);
        assert!(
            GeometricConfig::new(finals).is_valid(),
            "{} must preserve physical validity",
            adversary.name()
        );
    }
}

#[test]
fn already_connected_systems_terminate_without_moving_much() {
    let centers = vec![
        Point::new(0.0, 0.0),
        Point::new(2.0, 0.0),
        Point::new(1.0, 3.0_f64.sqrt()),
    ];
    let mut sim = Simulator::new(
        centers.clone(),
        Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(3))),
        Box::new(RoundRobin::new()),
        SimConfig::default(),
    );
    let outcome = sim.run();
    assert!(outcome.gathered);
    assert!(outcome.metrics.distance_travelled < 1e-9);
    for (before, after) in centers.iter().zip(sim.centers()) {
        assert!(before.approx_eq(*after));
    }
}

#[test]
fn baselines_fail_where_the_paper_algorithm_succeeds() {
    let seeds = [1u64, 2];
    for seed in seeds {
        let paper = run(&RunSpec {
            shape: Shape::Circle,
            adversary: AdversaryKind::RoundRobin,
            strategy: StrategyKind::Paper,
            ..RunSpec::new(6, seed)
        });
        assert!(paper.gathered, "the paper algorithm gathers 6 robots");

        for strategy in [StrategyKind::SmallN, StrategyKind::Centroid] {
            let baseline = run(&RunSpec {
                shape: Shape::Circle,
                adversary: AdversaryKind::RoundRobin,
                strategy,
                max_events: 20_000,
                ..RunSpec::new(6, seed)
            });
            assert!(
                !baseline.gathered,
                "{} should not gather 6 fat robots",
                strategy.name()
            );
        }
    }
}

#[test]
fn run_summaries_report_consistent_metrics() {
    let s = run(&RunSpec {
        shape: Shape::Circle,
        adversary: AdversaryKind::RoundRobin,
        ..RunSpec::new(5, 9)
    });
    assert!(s.terminated && s.gathered);
    assert!(s.events > 0);
    assert!(s.cycles_per_robot >= 1.0);
    assert!(s.distance >= 0.0);
    assert!(s.first_connected.is_some());
    assert!(s.first_fully_visible.is_some());
}
