//! Cross-crate property tests for the safety properties the paper's lemmas
//! promise: decisions never cause overlap, the engine preserves validity,
//! and the Section-3 functions keep their guarantees on random inputs.

use fatrobots::core::functions::{connected_components, find_points};
use fatrobots::core::{AlgorithmParams, LocalAlgorithm};
use fatrobots::scheduler::{RandomAsync, RoundRobin};
use fatrobots::sim::engine::{SimConfig, Simulator};
use fatrobots::sim::init::Shape;
use fatrobots_geometry::hull::ConvexHull;
use fatrobots_geometry::Point;
use fatrobots_model::{GeometricConfig, LocalView};
use proptest::prelude::*;

/// Random valid configurations: distinct grid cells scaled so discs never
/// overlap, jittered a little so nothing is exactly collinear.
fn valid_centers(max_n: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::btree_set((0u32..8, 0u32..8), 2..=max_n).prop_flat_map(|cells| {
        let cells: Vec<(u32, u32)> = cells.into_iter().collect();
        let n = cells.len();
        prop::collection::vec((-0.3f64..0.3, -0.3f64..0.3), n).prop_map(move |jitter| {
            cells
                .iter()
                .zip(jitter)
                .map(|(&(i, j), (dx, dy))| Point::new(i as f64 * 3.2 + dx, j as f64 * 3.2 + dy))
                .collect()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 6 / general safety: whatever a robot decides, moving it all the
    /// way to its target (stopping at the first contact, as the engine does)
    /// never produces an overlapping configuration.
    #[test]
    fn decisions_never_cause_overlap(centers in valid_centers(10)) {
        let n = centers.len();
        let g = GeometricConfig::new(centers.clone());
        prop_assume!(g.is_valid());
        let algo = LocalAlgorithm::new(AlgorithmParams::for_n(n));
        for i in 0..n {
            let view = LocalView::full_snapshot(&g, i);
            if let Some(target) = algo.run(&view).target() {
                // Clamp the motion at the first contact, exactly like the
                // engine's integrator.
                let start = centers[i];
                let dir = target - start;
                if dir.is_zero() {
                    continue;
                }
                let dir = dir.normalized();
                let mut travel = start.distance(target);
                for (j, &c) in centers.iter().enumerate() {
                    if j == i { continue; }
                    let w = c - start;
                    let proj = w.dot(dir);
                    if w.norm() <= 2.0 + 1e-6 {
                        if proj > 1e-6 { travel = 0.0; }
                        continue;
                    }
                    if proj <= 0.0 { continue; }
                    let closest_sq = w.norm_sq() - proj * proj;
                    if closest_sq >= 4.0 { continue; }
                    let t = proj - (4.0 - closest_sq).sqrt();
                    travel = travel.min(t.max(0.0));
                }
                let mut moved = centers.clone();
                moved[i] = start + dir * travel;
                prop_assert!(
                    GeometricConfig::new(moved).is_valid(),
                    "robot {i} caused an overlap from {centers:?}"
                );
            }
        }
    }

    /// Lemma 1: placing a disc at any Find-Points candidate keeps every hull
    /// robot on the hull.
    #[test]
    fn find_points_candidates_respect_lemma_1(centers in valid_centers(10)) {
        let n = centers.len();
        let hull = ConvexHull::from_points(&centers);
        let boundary = hull.boundary();
        for candidate in find_points(&boundary, n) {
            let mut extended = centers.clone();
            extended.push(candidate);
            let hull2 = ConvexHull::from_points(&extended);
            for q in &boundary {
                prop_assert!(
                    hull2.point_on_boundary(*q),
                    "candidate {candidate} pushed {q} off the hull"
                );
            }
        }
    }

    /// The component partition of Section 3.4 covers every hull robot
    /// exactly once, regardless of the threshold.
    #[test]
    fn component_partition_is_a_partition(centers in valid_centers(10), threshold in 0.01f64..2.0) {
        let hull = ConvexHull::from_points(&centers);
        let boundary = hull.boundary();
        let partition = connected_components(&boundary, threshold);
        let total: usize = partition.sizes().iter().sum();
        prop_assert_eq!(total, boundary.len());
        for q in &boundary {
            prop_assert!(partition.component_of(*q).is_some());
        }
    }

    /// The engine preserves physical validity through an entire (possibly
    /// truncated) run under the random-async adversary.
    #[test]
    fn engine_preserves_validity(seed in 0u64..200) {
        let n = 5;
        let centers = Shape::Random.generate(n, seed);
        let mut sim = Simulator::new(
            centers,
            Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(n))),
            Box::new(RandomAsync::new(seed)),
            SimConfig { max_events: 3_000, ..SimConfig::default() },
        );
        let _ = sim.run();
        prop_assert!(GeometricConfig::new(sim.centers().to_vec()).is_valid());
    }

    /// A terminated robot never moves again: once the engine reports all
    /// robots terminated, the configuration is final and gathered.
    #[test]
    fn termination_implies_gathered(seed in 0u64..30) {
        let n = 4;
        let centers = Shape::Circle.generate(n, seed);
        let mut sim = Simulator::new(
            centers,
            Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(n))),
            Box::new(RoundRobin::new()),
            SimConfig::default(),
        );
        let outcome = sim.run();
        if outcome.terminated {
            prop_assert!(outcome.gathered);
        }
    }
}
