//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements exactly the `rand` 0.8 API surface the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over integer and float ranges. The generator is a
//! SplitMix64 — statistically fine for simulations and benchmarks, not
//! cryptographic. Swap the `rand` entry in the workspace `Cargo.toml` back to
//! the registry version when networked builds are available; no call sites
//! need to change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of uniformly random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits: they map exactly onto the f64 mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniform value from `range`. Panics on an empty range, like
    /// the real `rand`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`, like
    /// the real `rand`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "p={p} is outside range [0.0, 1.0]"
        );
        self.next_f64() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A generator that can be constructed from a seed, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                // Modulo bias is ≪ 2^-32 for the spans this workspace uses.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let x = self.start + rng.next_f64() * (self.end - self.start);
        // Rounding can land exactly on the excluded upper bound when the
        // scale of `end` dwarfs the span; keep the half-open contract.
        if x < self.end {
            x
        } else {
            self.end.next_down()
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + rng.next_f64() * (end - start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: a SplitMix64.
    ///
    /// Not the ChaCha12 of the real `rand::rngs::StdRng` — deterministic and
    /// well distributed, which is all the simulator and benches need.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // Burn one output so that small seeds (0, 1, 2, …) do not yield
            // visibly correlated first samples.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let x = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&x));
            let y = rng.gen_range(0.0..=1.5);
            assert!((0.0..=1.5).contains(&y));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0..100u32) == b.gen_range(0..100u32))
            .count();
        assert!(same < 32, "streams from different seeds look identical");
    }
}
