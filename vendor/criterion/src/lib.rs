//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate implements
//! the API subset the workspace benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros — with plain
//! wall-clock timing and a mean/min/max report instead of criterion's
//! statistical machinery. Benches compile and run unchanged; swap the
//! `criterion` entry in the workspace `Cargo.toml` back to the registry
//! version for real statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a benchmark body away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level benchmark context handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("", f);
        group.finish();
        self
    }
}

/// A named benchmark within a group, with an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Names a benchmark `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Names a benchmark by its parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        match (self.function.is_empty(), self.parameter.is_empty()) {
            (false, false) => format!("{}/{}", self.function, self.parameter),
            (false, true) => self.function.clone(),
            _ => self.parameter.clone(),
        }
    }
}

/// A group of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f`, passing it `input` by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut bencher, input);
            if bencher.iters > 0 {
                samples.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
            }
        }
        report(&label, &samples);
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id.into_benchmark_id(), &(), |b, ()| f(b))
    }

    /// Ends the group. (The stand-in reports per benchmark, so this is a
    /// no-op kept for API compatibility.)
    pub fn finish(self) {}
}

/// Conversion into a [`BenchmarkId`], so `bench_function` accepts both ids
/// and plain strings, as in real criterion.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

fn report(label: &str, per_iter_secs: &[f64]) {
    if per_iter_secs.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let mean = per_iter_secs.iter().sum::<f64>() / per_iter_secs.len() as f64;
    let min = per_iter_secs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter_secs
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{label:<48} mean {:>12} (min {}, max {}, {} samples)",
        humanize(mean),
        humanize(min),
        humanize(max),
        per_iter_secs.len()
    );
}

fn humanize(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Times one benchmark body; handed to the closure of every `bench_*` call.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Calls `f` repeatedly, timing the batch. Fast bodies are batched so a
    /// sample spans at least ~200 µs; otherwise timer overhead (tens of ns
    /// per `Instant::now`) would dominate nanosecond-scale kernels.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        const TARGET: Duration = Duration::from_micros(200);
        let start = Instant::now();
        black_box(f());
        let first = start.elapsed();
        let extra = if first >= TARGET {
            0
        } else {
            (TARGET.as_nanos() / first.as_nanos().max(1)).min(100_000) as u64
        };
        let start = Instant::now();
        for _ in 0..extra {
            black_box(f());
        }
        self.elapsed += first + start.elapsed();
        self.iters += 1 + extra;
    }
}

/// Bundles benchmark functions into a group runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("count", 1), &5u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        // 3 samples, each batching the fast body at least once.
        assert!(calls >= 3, "expected at least one call per sample");
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").label(), "p");
    }
}
