//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the API subset the workspace's property tests use: the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map`, range and tuple
//! strategies, [`collection::vec`], `ProptestConfig::with_cases`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros. Cases are
//! sampled from a deterministic seeded generator; failing inputs are
//! reported in the panic message but **not shrunk**. Swap the `proptest`
//! entry in the workspace `Cargo.toml` back to the registry version for real
//! shrinking when networked builds are available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// A strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`] with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.min, self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy producing `BTreeSet`s of values drawn from an element
    /// strategy. Duplicate draws are retried a bounded number of times, so a
    /// set may come out smaller than the requested minimum if the element
    /// domain is too small — matching real proptest's rejection behaviour
    /// closely enough for the workspace's tests.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`BTreeSetStrategy`] with sizes drawn from `size`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.usize_in(self.size.min, self.size.max);
            let mut set = std::collections::BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < 16 * target + 64 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// The items a test file gets from `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// The `prop` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with its inputs reported) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            ::core::stringify!($left),
            ::core::stringify!($right),
            left,
            right
        );
    }};
}

/// Discards the current case (without counting it as run) when its inputs do
/// not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::core::stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, …) { … }` becomes
/// a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            // Strategies are built once per test (as in real proptest), bound
            // to the argument names; the per-case values shadow them inside
            // the loop body's scope.
            $(let $arg = ($strategy);)*
            let mut rng = $crate::test_runner::TestRng::for_test(::core::stringify!($name));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                // Snapshot the RNG so failing inputs can be re-sampled and
                // rendered without Debug-formatting every passing case (the
                // body may consume the values, so they cannot be kept).
                let snapshot = rng.clone();
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> = {
                    $(let $arg = $crate::strategy::Strategy::sample(&$arg, &mut rng);)*
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })()
                };
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        ::std::assert!(
                            rejected < config.cases.saturating_mul(64).max(1024),
                            "prop_assume rejected too many cases ({rejected}) in {}",
                            ::core::stringify!($name),
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(message)) => {
                        let mut replay = snapshot;
                        let mut inputs = ::std::string::String::new();
                        $(inputs.push_str(&::std::format!(
                            "\n    {} = {:?}",
                            ::core::stringify!($arg),
                            $crate::strategy::Strategy::sample(&$arg, &mut replay)
                        ));)*
                        ::std::panic!(
                            "proptest case {} of `{}` failed: {}\n  inputs:{}",
                            accepted,
                            ::core::stringify!($name),
                            message,
                            inputs,
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples_sample_in_bounds(x in -5.0f64..5.0, pair in (0i32..10, 0i32..10)) {
            let (a, b) = pair;
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((0..10).contains(&a) && (0..10).contains(&b));
        }

        #[test]
        fn vec_respects_size_and_map(v in prop::collection::vec((0i32..4).prop_map(|k| k * 2), 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            for k in v {
                prop_assert_eq!(k % 2, 0);
            }
        }

        #[test]
        fn assume_discards_without_failing(n in 0i32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        #[should_panic(expected = "inputs:\n    n = ")]
        fn failing_case_replays_and_reports_inputs(n in 0i32..10) {
            prop_assert!(n > 100, "n is never above 100");
        }
    }
}
