//! The pieces behind the `proptest!` macro: the per-test RNG, the case
//! configuration and the case-level error type.

/// Deterministic SplitMix64 generator seeding each property test from a hash
/// of its name, so runs are reproducible without any environment setup.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the generator for the named test. The same test name always
    /// yields the same case sequence.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name keeps distinct tests on distinct streams.
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `usize` in `[min, max]`.
    pub fn usize_in(&mut self, min: usize, max: usize) -> usize {
        debug_assert!(min <= max);
        let span = (max - min) as u64 + 1;
        min + (self.next_u64() % span) as usize
    }
}

/// How many cases each property test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// The number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single sampled case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's inputs failed a `prop_assume!` precondition; the case is
    /// discarded and re-sampled.
    Reject(String),
    /// A `prop_assert!` failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds the rejection variant.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}
