//! The [`Strategy`] trait and the built-in strategies: numeric ranges,
//! tuples, and [`Map`] (the result of `prop_map`).

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// The strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        let x = self.start + rng.unit_f64() * (self.end - self.start);
        // Rounding can land exactly on the excluded upper bound when the
        // scale of `end` dwarfs the span; keep the half-open contract.
        if x < self.end {
            x
        } else {
            self.end.next_down()
        }
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, i64, i32);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);
