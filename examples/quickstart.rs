//! Quickstart: gather five fat robots starting on a circle and print what
//! happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fatrobots::prelude::*;

fn main() {
    let n = 5;
    let centers = fatrobots::sim::init::circle(n, 12.0);
    println!("initial configuration ({n} robots):");
    for (i, c) in centers.iter().enumerate() {
        println!("  r{i}: ({:7.3}, {:7.3})", c.x, c.y);
    }

    let mut sim = Simulator::new(
        centers,
        Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(n))),
        Box::new(RoundRobin::new()),
        SimConfig::default(),
    );
    let outcome = sim.run();

    println!();
    println!("gathered:   {}", outcome.gathered);
    println!("events:     {}", outcome.events);
    println!(
        "LCM cycles: {:.1} per robot",
        outcome.metrics.looks as f64 / n as f64
    );
    println!(
        "distance:   {:.2} robot radii travelled in total",
        outcome.metrics.distance_travelled
    );
    println!();
    println!("final configuration:");
    for (i, c) in sim.centers().iter().enumerate() {
        println!(
            "  r{i}: ({:7.3}, {:7.3})  phase={}",
            c.x,
            c.y,
            sim.phases()[i]
        );
    }
    println!();
    println!("{}", fatrobots::sim::render::ascii(sim.centers(), 60));
}
