//! Run the gathering algorithm under every adversary strategy and compare
//! how much the schedule costs.
//!
//! ```sh
//! cargo run --release --example adversarial_gathering [n] [seed]
//! ```

use fatrobots::prelude::*;
use fatrobots::sim::experiment::{run, AdversaryKind, RunSpec, StrategyKind};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(7);

    println!("gathering {n} robots (seed {seed}) under each adversary:");
    println!(
        "{:<18} {:>9} {:>11} {:>14} {:>12}",
        "adversary", "gathered", "events", "cycles/robot", "distance"
    );
    for adversary in AdversaryKind::ALL {
        let spec = RunSpec {
            adversary,
            shape: Shape::Circle,
            strategy: StrategyKind::Paper,
            ..RunSpec::new(n, seed)
        };
        let s = run(&spec);
        println!(
            "{:<18} {:>9} {:>11} {:>14.1} {:>12.1}",
            adversary.name(),
            s.gathered,
            s.events,
            s.cycles_per_robot,
            s.distance
        );
    }
}
