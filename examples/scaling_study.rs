//! A small scaling study: gathering cost as the number of robots grows.
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```

use fatrobots::sim::experiment::{scaling_table, AggregateRow};

fn main() {
    let ns = [3usize, 5, 6, 8, 10];
    let seeds = [1u64, 2, 3];
    println!(
        "E1 — gathering cost versus the number of robots (random starts, random-async adversary)"
    );
    println!("{}", AggregateRow::header());
    for row in scaling_table(&ns, &seeds) {
        println!("{row}");
    }
}
