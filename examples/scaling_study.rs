//! A small scaling study: gathering cost as the number of robots grows.
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```

use fatrobots::sim::experiment::scaling_table;
use fatrobots::sim::sweep;

fn main() {
    let ns = [3usize, 5, 6, 8, 10];
    let seeds = [1u64, 2, 3];
    // Sweeps fan out over the available cores; the output is byte-identical
    // to a serial run regardless of the worker count.
    let table = scaling_table(&ns, &seeds, sweep::default_jobs());
    println!("{}", table.title);
    println!("{}", fatrobots::sim::experiment::AggregateRow::header());
    for row in table.rows() {
        println!("{row}");
    }
}
