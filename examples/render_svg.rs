//! Render the initial and final configurations of a gathering run as SVG
//! files (written to the current directory), plus the Figure-2 Move-to-Point
//! construction.
//!
//! ```sh
//! cargo run --release --example render_svg [n] [seed]
//! ```

use std::fs;

use fatrobots::core::functions::move_to_point;
use fatrobots::prelude::*;
use fatrobots::sim::render::svg;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);

    let centers = Shape::Random.generate(n, seed);
    fs::write("initial.svg", svg(&centers)).expect("write initial.svg");

    let mut sim = Simulator::new(
        centers,
        Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(n))),
        Box::new(RandomAsync::new(seed)),
        SimConfig::default(),
    );
    let outcome = sim.run();
    fs::write("final.svg", svg(sim.centers())).expect("write final.svg");

    // Figure 2: the Move-to-Point construction for two robots.
    let c1 = Point::new(-6.0, 0.0);
    let c2 = Point::new(0.0, 0.0);
    let construction = move_to_point(c1, c2, 0.1, Point::new(0.0, 5.0));
    fs::write("figure2.svg", svg(&[c1, c2, construction.target])).expect("write figure2.svg");

    println!(
        "wrote initial.svg, final.svg (gathered: {}) and figure2.svg",
        outcome.gathered
    );
}
