//! Watch the two phases of the algorithm through the hull-area series: the
//! hull first expands (until every robot is on it and fully visible) and
//! then shrinks while the robots converge into a connected formation.
//!
//! ```sh
//! cargo run --release --example hull_expansion [n] [seed]
//! ```

use fatrobots::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);

    let centers = Shape::Clusters.generate(n, seed);
    let mut sim = Simulator::new(
        centers,
        Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(n))),
        Box::new(RandomAsync::new(seed)),
        SimConfig {
            sample_every: 25,
            ..SimConfig::default()
        },
    );
    let outcome = sim.run();

    println!(
        "gathered: {} after {} events",
        outcome.gathered, outcome.events
    );
    if let Some(fv) = outcome.metrics.first_fully_visible {
        println!("full visibility first reached after {fv} events");
    }
    if let Some(c) = outcome.metrics.first_connected {
        println!("connectivity first reached after {c} events");
    }
    println!();
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>10}",
        "event", "hull area", "all-on-hull", "visible", "connected"
    );
    for s in &outcome.metrics.samples {
        println!(
            "{:>10} {:>12.2} {:>12} {:>10} {:>10}",
            s.event, s.hull_area, s.all_on_hull, s.fully_visible, s.connected
        );
    }
    println!();
    println!(
        "hull monotonicity: expansion {:?}, convergence {:?}",
        outcome.metrics.expansion_monotonicity(),
        outcome.metrics.convergence_monotonicity()
    );
}
