//! # fatrobots
//!
//! A reproduction of *A Distributed Algorithm for Gathering Many Fat Mobile
//! Robots in the Plane* (Agathangelou, Georgiou & Mavronicolas, PODC 2013)
//! as a Rust workspace: the gathering algorithm itself, the geometric and
//! robot-model substrates it needs, an asynchronous adversary-driven
//! simulator, baseline strategies and an experiment harness.
//!
//! This meta-crate re-exports the public API of every workspace crate so
//! that applications can depend on a single crate:
//!
//! * [`geometry`] — points, segments, circles, convex hulls, visibility
//!   among unit-disc obstacles;
//! * [`model`] — robots, Look–Compute–Move phases, configurations, local
//!   views;
//! * [`core`] — the Section-3 geometric functions and the 17-state local
//!   Compute algorithm;
//! * [`scheduler`] — the asynchronous event model and adversary strategies;
//! * [`sim`] — the simulation engine, workload generators, metrics and the
//!   experiment harness;
//! * [`baselines`] — comparison strategies (centroid pursuit, greedy
//!   nearest-neighbour, the small-`n` stand-in).
//!
//! ## Quickstart
//!
//! ```
//! use fatrobots::prelude::*;
//!
//! let n = 5;
//! let centers = fatrobots::sim::init::circle(n, 12.0);
//! let mut sim = Simulator::new(
//!     centers,
//!     Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(n))),
//!     Box::new(RoundRobin::new()),
//!     SimConfig::default(),
//! );
//! let outcome = sim.run();
//! assert!(outcome.gathered);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fatrobots_baselines as baselines;
pub use fatrobots_core as core;
pub use fatrobots_geometry as geometry;
pub use fatrobots_model as model;
pub use fatrobots_scheduler as scheduler;
pub use fatrobots_sim as sim;

/// The most common imports, bundled for convenience.
pub mod prelude {
    pub use fatrobots_core::{AlgorithmParams, Decision, LocalAlgorithm, Strategy};
    pub use fatrobots_geometry::{Point, Vec2};
    pub use fatrobots_model::{GeometricConfig, LocalView, Phase, Robot, RobotId};
    pub use fatrobots_scheduler::{Adversary, Liveness, RandomAsync, RoundRobin};
    pub use fatrobots_sim::engine::{RunOutcome, SimConfig, Simulator};
    pub use fatrobots_sim::init::Shape;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_an_end_to_end_run() {
        let centers = crate::sim::init::circle(3, 8.0);
        let mut sim = Simulator::new(
            centers,
            Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(3))),
            Box::new(RoundRobin::new()),
            SimConfig::default(),
        );
        assert!(sim.run().gathered);
    }
}
