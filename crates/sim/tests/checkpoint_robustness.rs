//! Torn-write fuzz for the checkpoint journal decoder.
//!
//! The decoder's contract is recover-or-clean-error, never panic: whatever
//! prefix of a journal a killed process (or a flaky disk) left behind, the
//! decoder returns every record before the first damage and reports the
//! rest as dropped. These tests truncate a valid journal at **every** byte
//! position and flip seeded random bytes, and assert that contract holds
//! exactly.

use fatrobots_sim::checkpoint::{decode_journal, encode_journal, Record};
use fatrobots_sim::experiment::{run, AdversaryKind, RunSpec};
use fatrobots_sim::init::Shape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A journal with a realistic mix: progress records and a completed record
/// carrying a genuine summary from a short run.
fn sample_records() -> Vec<Record> {
    let spec = RunSpec {
        shape: Shape::Circle,
        adversary: AdversaryKind::RoundRobin,
        max_events: 20_000,
        ..RunSpec::new(3, 1)
    };
    let summary = run(&spec);
    vec![
        Record::Progress {
            ordinal: 0,
            spec,
            events: 4_096,
            fingerprint: 0x0123_4567_89ab_cdef,
        },
        Record::Completed {
            ordinal: 0,
            summary: Box::new(summary),
        },
        Record::Progress {
            ordinal: 1,
            spec,
            events: 8_192,
            fingerprint: 0xfedc_ba98_7654_3210,
        },
        Record::Progress {
            ordinal: 2,
            spec,
            events: 12_288,
            fingerprint: 0x1111_2222_3333_4444,
        },
    ]
}

/// Byte offsets where each record's frame ends (the first is the header
/// boundary at offset 8).
fn frame_boundaries(records: &[Record]) -> Vec<usize> {
    let mut boundaries = vec![8usize];
    for i in 1..=records.len() {
        boundaries.push(encode_journal(&records[..i]).len());
    }
    boundaries
}

#[test]
fn truncation_at_every_byte_recovers_the_valid_prefix() {
    let records = sample_records();
    let bytes = encode_journal(&records);
    let boundaries = frame_boundaries(&records);
    for cut in 0..=bytes.len() {
        let (decoded, recovery) = decode_journal(&bytes[..cut]);
        // How many full records fit strictly within the cut.
        let expected = boundaries[1..].iter().filter(|&&end| end <= cut).count();
        assert_eq!(
            decoded.len(),
            expected,
            "cut at byte {cut}: expected {expected} surviving records"
        );
        assert_eq!(decoded, records[..expected], "cut at byte {cut}");
        let on_boundary = cut >= 8 && boundaries.contains(&cut);
        assert_eq!(
            recovery.clean, on_boundary,
            "cut at byte {cut}: clean must mean exactly-at-a-record-boundary"
        );
        if cut >= 8 {
            let last_boundary = boundaries.iter().filter(|&&b| b <= cut).max().copied();
            assert_eq!(
                recovery.dropped_bytes,
                cut - last_boundary.unwrap_or(8),
                "cut at byte {cut}"
            );
        }
    }
}

#[test]
fn seeded_byte_flips_recover_records_before_the_damage() {
    let records = sample_records();
    let bytes = encode_journal(&records);
    let boundaries = frame_boundaries(&records);
    let mut rng = StdRng::seed_from_u64(0xC0FF_EE00);
    for trial in 0..500 {
        let mut mutated = bytes.clone();
        let flips = rng.gen_range(1..=4usize);
        let mut first_damage = usize::MAX;
        for _ in 0..flips {
            let pos = rng.gen_range(0..mutated.len());
            let mask = rng.gen_range(1..=255u32) as u8;
            mutated[pos] ^= mask;
            first_damage = first_damage.min(pos);
        }
        // Must never panic, whatever the damage.
        let (decoded, recovery) = decode_journal(&mutated);
        // Every record whose frame ends at or before the first flipped
        // byte must decode exactly as written (the CRC only guards its own
        // frame). Later records may or may not survive; the decoder stops
        // at the first frame it cannot trust.
        let intact = boundaries[1..]
            .iter()
            .filter(|&&end| end <= first_damage)
            .count();
        assert!(
            decoded.len() >= intact,
            "trial {trial}: lost records before the damage at byte {first_damage}"
        );
        assert_eq!(
            decoded[..intact],
            records[..intact],
            "trial {trial}: records before the damage must decode unchanged"
        );
        assert!(
            decoded.len() <= records.len(),
            "trial {trial}: decoder invented records"
        );
        let _ = recovery;
    }
}

#[test]
fn corrupt_middle_record_recovers_to_the_last_valid_record() {
    let records = sample_records();
    let boundaries = frame_boundaries(&records);
    let mut bytes = encode_journal(&records);
    // Flip one payload byte inside the third record (index 2).
    let target = boundaries[2] + 12;
    bytes[target] ^= 0x5a;
    let (decoded, recovery) = decode_journal(&bytes);
    assert_eq!(
        decoded,
        records[..2],
        "recovers exactly the first two records"
    );
    assert!(!recovery.clean);
    assert_eq!(recovery.records, 2);
    assert!(recovery.dropped_bytes > 0);
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..500 {
        let len = rng.gen_range(0..512usize);
        let garbage: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
        let (decoded, _recovery) = decode_journal(&garbage);
        // Random bytes essentially never checksum into a valid record.
        assert!(decoded.len() <= 1);
    }
    // Garbage that *starts* with a valid header exercises the frame
    // scanner rather than the header check.
    for _ in 0..500 {
        let len = rng.gen_range(0..512usize);
        let mut bytes = encode_journal(&[]);
        bytes.extend((0..len).map(|_| rng.gen_range(0..=255u32) as u8));
        let (decoded, _recovery) = decode_journal(&bytes);
        assert!(decoded.len() <= 1);
    }
}
