//! Property tests pinning the incremental world state to the from-scratch
//! reference: after an arbitrary sequence of randomized single-robot moves,
//! every cached answer must equal the answer recomputed from zero on the
//! current centers.

use fatrobots_geometry::visibility::{min_pairwise_gap, visible_set, VisibilityConfig};
use fatrobots_geometry::Point;
use fatrobots_model::GeometricConfig;
use fatrobots_sim::world::{World, WorldMode};
use proptest::prelude::*;

/// Base configurations: robots on distinct coarse grid cells with jitter —
/// dense enough for occlusions, and moves can legally pile robots close
/// together (the visibility matrix is defined regardless of validity).
fn base_centers(max_n: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::btree_set((0u32..6, 0u32..6), 3..=max_n).prop_flat_map(|cells| {
        let cells: Vec<(u32, u32)> = cells.into_iter().collect();
        let n = cells.len();
        prop::collection::vec((-0.4f64..0.4, -0.4f64..0.4), n).prop_map(move |jitter| {
            cells
                .iter()
                .zip(jitter)
                .map(|(&(i, j), (dx, dy))| Point::new(i as f64 * 3.0 + dx, j as f64 * 3.0 + dy))
                .collect()
        })
    })
}

/// A move script: which robot moves next, and where it lands (absolute
/// coordinates spanning same-cell nudges, corridor crossings, and long
/// jumps across the whole arena).
fn moves(len: usize) -> impl Strategy<Value = Vec<(usize, f64, f64)>> {
    prop::collection::vec((0usize..64, -2.0f64..20.0, -2.0f64..20.0), 1..=len)
}

/// Every incremental answer equals its from-scratch counterpart.
fn assert_world_matches_scratch(
    world: &mut World,
    centers: &[Point],
) -> Result<(), proptest::test_runner::TestCaseError> {
    let vis = VisibilityConfig::default();
    for i in 0..centers.len() {
        prop_assert_eq!(world.visible_of(i), visible_set(i, centers, &vis));
    }
    prop_assert_eq!(world.is_valid(), GeometricConfig::is_valid_on(centers));
    prop_assert_eq!(
        world.is_connected(),
        GeometricConfig::is_connected_on(centers)
    );
    prop_assert_eq!(
        world.all_on_hull(),
        GeometricConfig::all_on_hull_on(centers)
    );
    prop_assert_eq!(world.min_pairwise_gap(), min_pairwise_gap(centers));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: the incremental visibility matrix (and every
    /// other cached predicate) stays equal to a from-scratch recomputation
    /// after arbitrary randomized single-robot moves.
    #[test]
    fn incremental_world_matches_scratch_after_moves(
        centers in base_centers(9),
        script in moves(14),
    ) {
        let mut world = World::new(centers.clone(), VisibilityConfig::default(), WorldMode::Incremental);
        let mut centers = centers;
        // Warm part of the cache so moves invalidate *existing* entries,
        // not just fill cold ones.
        let _ = world.visible_of(0);
        for (pick, x, y) in script {
            let i = pick % centers.len();
            let p = Point::new(x, y);
            world.move_robot(i, p);
            centers[i] = p;
            assert_world_matches_scratch(&mut world, &centers)?;
        }
    }

    /// Interleaving queries between moves (so entries are computed at many
    /// different configuration versions) never desynchronises the cache.
    #[test]
    fn interleaved_queries_stay_consistent(
        centers in base_centers(7),
        script in moves(10),
    ) {
        let mut world = World::new(centers.clone(), VisibilityConfig::default(), WorldMode::Incremental);
        let mut centers = centers;
        for (step, (pick, x, y)) in script.into_iter().enumerate() {
            let i = pick % centers.len();
            // Query a rotating robot *before* the move so the cache holds a
            // mix of generations.
            let probe = step % centers.len();
            let _ = world.visible_of(probe);
            let p = Point::new(x, y);
            world.move_robot(i, p);
            centers[i] = p;
        }
        assert_world_matches_scratch(&mut world, &centers)?;
    }
}
