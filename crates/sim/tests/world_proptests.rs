//! Property tests pinning the incremental world state to the from-scratch
//! reference: after an arbitrary sequence of randomized single-robot moves,
//! every cached answer must equal the answer recomputed from zero on the
//! current centers.

use fatrobots_core::{AlgorithmParams, ComputeScratch, Decision, LocalAlgorithm};
use fatrobots_geometry::visibility::{min_pairwise_gap, visible_set, VisibilityConfig};
use fatrobots_geometry::Point;
use fatrobots_model::{GeometricConfig, LocalView};
use fatrobots_sim::parallel::compute_pair_answers;
use fatrobots_sim::world::{PairAnswers, World, WorldMode};
use proptest::prelude::*;

/// Base configurations: robots on distinct coarse grid cells with jitter —
/// dense enough for occlusions, and moves can legally pile robots close
/// together (the visibility matrix is defined regardless of validity).
fn base_centers(max_n: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::btree_set((0u32..6, 0u32..6), 3..=max_n).prop_flat_map(|cells| {
        let cells: Vec<(u32, u32)> = cells.into_iter().collect();
        let n = cells.len();
        prop::collection::vec((-0.4f64..0.4, -0.4f64..0.4), n).prop_map(move |jitter| {
            cells
                .iter()
                .zip(jitter)
                .map(|(&(i, j), (dx, dy))| Point::new(i as f64 * 3.0 + dx, j as f64 * 3.0 + dy))
                .collect()
        })
    })
}

/// A move script: which robot moves next, and where it lands (absolute
/// coordinates spanning same-cell nudges, corridor crossings, and long
/// jumps across the whole arena).
fn moves(len: usize) -> impl Strategy<Value = Vec<(usize, f64, f64)>> {
    prop::collection::vec((0usize..64, -2.0f64..20.0, -2.0f64..20.0), 1..=len)
}

/// Every incremental answer equals its from-scratch counterpart.
fn assert_world_matches_scratch(
    world: &mut World,
    centers: &[Point],
) -> Result<(), proptest::test_runner::TestCaseError> {
    let vis = VisibilityConfig::default();
    for i in 0..centers.len() {
        prop_assert_eq!(world.visible_of(i), visible_set(i, centers, &vis));
    }
    prop_assert_eq!(world.is_valid(), GeometricConfig::is_valid_on(centers));
    prop_assert_eq!(
        world.is_connected(),
        GeometricConfig::is_connected_on(centers)
    );
    prop_assert_eq!(
        world.all_on_hull(),
        GeometricConfig::all_on_hull_on(centers)
    );
    prop_assert_eq!(world.min_pairwise_gap(), min_pairwise_gap(centers));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: the incremental visibility matrix (and every
    /// other cached predicate) stays equal to a from-scratch recomputation
    /// after arbitrary randomized single-robot moves.
    #[test]
    fn incremental_world_matches_scratch_after_moves(
        centers in base_centers(9),
        script in moves(14),
    ) {
        let mut world = World::new(centers.clone(), VisibilityConfig::default(), WorldMode::Incremental);
        let mut centers = centers;
        // Warm part of the cache so moves invalidate *existing* entries,
        // not just fill cold ones.
        let _ = world.visible_of(0);
        for (pick, x, y) in script {
            let i = pick % centers.len();
            let p = Point::new(x, y);
            world.move_robot(i, p);
            centers[i] = p;
            assert_world_matches_scratch(&mut world, &centers)?;
        }
    }

    /// The decision-memoization invariant, against arbitrary randomized
    /// single-robot moves: whenever a robot's **view version** is unchanged
    /// between two post-Look states, its Look snapshot is bit-identical —
    /// and therefore (the algorithm being a deterministic function of the
    /// view) a decision cached at the earlier state equals one freshly
    /// computed at the later state. This is exactly the soundness condition
    /// of the engine's decision cache; the flip side — versions that *do*
    /// bump — needs no pin, a spurious bump only costs a recompute.
    #[test]
    fn unchanged_view_version_implies_identical_view_and_decision(
        centers in base_centers(9),
        script in moves(14),
    ) {
        let n = centers.len();
        let algo = LocalAlgorithm::new(AlgorithmParams::for_n(n));
        let mut arena = ComputeScratch::default();
        let mut world = World::new(centers.clone(), VisibilityConfig::default(), WorldMode::Incremental);
        let mut centers = centers;
        // One post-Look sample per robot: (version, view, decision). The
        // decision is computed only on valid (non-overlapping)
        // configurations — the algorithm's domain; the view equality is
        // pinned on every configuration regardless.
        let snapshot = |world: &mut World, centers: &[Point], i: usize,
                        algo: &LocalAlgorithm, arena: &mut ComputeScratch|
                        -> (u64, LocalView, Option<Decision>) {
            let visible = world.visible_of(i);
            let view = LocalView::from_visible(centers, i, &visible);
            let decision = GeometricConfig::is_valid_on(centers)
                .then(|| algo.run_with(&view, arena));
            (world.view_version(i), view, decision)
        };
        let mut cached: Vec<(u64, LocalView, Option<Decision>)> = (0..n)
            .map(|i| snapshot(&mut world, &centers, i, &algo, &mut arena))
            .collect();
        for (pick, x, y) in script {
            let mover = pick % n;
            let p = Point::new(x, y);
            world.move_robot(mover, p);
            centers[mover] = p;
            for (i, slot) in cached.iter_mut().enumerate() {
                let fresh = snapshot(&mut world, &centers, i, &algo, &mut arena);
                if fresh.0 == slot.0 {
                    // An unchanged version with a changed view (or, with
                    // the determinism of the algorithm, a changed decision
                    // for robot `i`) is exactly a stale-cache-hit bug.
                    prop_assert_eq!(&fresh.1, &slot.1);
                    if let (Some(a), Some(b)) = (fresh.2, slot.2) {
                        prop_assert_eq!(a, b);
                    }
                }
                *slot = fresh;
            }
        }
    }

    /// The sparse-world invariant: [`WorldMode::Sparse`] (hash-map pair
    /// store, per-level corridor registrations, pending-row queues) answers
    /// exactly like the from-scratch reference after arbitrary randomized
    /// moves — and its view-version stream matches the dense world's
    /// bump-for-bump, so the engine's decision cache keys identically
    /// under either mode.
    #[test]
    fn sparse_world_matches_scratch_and_dense_after_moves(
        centers in base_centers(9),
        script in moves(14),
    ) {
        let mut sparse = World::new(centers.clone(), VisibilityConfig::default(), WorldMode::Sparse);
        let mut dense = World::new(centers.clone(), VisibilityConfig::default(), WorldMode::Incremental);
        let mut centers = centers;
        let _ = sparse.visible_of(0);
        let _ = dense.visible_of(0);
        for (pick, x, y) in script {
            let i = pick % centers.len();
            let p = Point::new(x, y);
            sparse.move_robot(i, p);
            dense.move_robot(i, p);
            centers[i] = p;
            assert_world_matches_scratch(&mut sparse, &centers)?;
            for j in 0..centers.len() {
                let _ = dense.visible_of(j);
                prop_assert!(
                    sparse.view_version(j) == dense.view_version(j),
                    "view-version stream of robot {} diverged between modes",
                    j
                );
            }
        }
    }

    /// The commutation criterion of the parallel executor, against
    /// arbitrary move scripts in both cached world modes: admitting Looks
    /// greedily under the batcher's conflict predicate (reject a robot
    /// whose plan touches any robot already batched) yields plans whose
    /// pair sets are **pairwise disjoint** — so the batched kernel
    /// evaluations write disjoint entries and commute. The predicate is
    /// deliberately stronger than raw pair-disjointness; this pins that
    /// the implication actually holds on real [`World::look_plan`] output,
    /// whatever the dirty-pair state.
    #[test]
    fn batcher_admitted_looks_have_disjoint_pair_sets(
        centers in base_centers(9),
        script in moves(14),
        mode in (0usize..2).prop_map(|m| if m == 0 { WorldMode::Incremental } else { WorldMode::Sparse }),
    ) {
        let mut world = World::new(centers.clone(), VisibilityConfig::default(), mode);
        let mut centers = centers;
        let n = centers.len();
        let _ = world.visible_of(0);
        for (pick, x, y) in script {
            let i = pick % n;
            let p = Point::new(x, y);
            world.move_robot(i, p);
            centers[i] = p;
            // Greedy admission, exactly like the engine's planner.
            let mut in_batch = vec![false; n];
            let mut plans: Vec<(usize, Vec<(usize, usize)>)> = Vec::new();
            let mut plan = Vec::new();
            for r in 0..n {
                plan.clear();
                world.look_plan(r, &mut plan);
                if plan.iter().any(|&(a, b)| in_batch[a] || in_batch[b]) {
                    continue;
                }
                in_batch[r] = true;
                plans.push((r, plan.clone()));
            }
            // Every admitted plan only contains the robot's own pairs …
            for (r, plan) in &plans {
                for &(a, b) in plan {
                    prop_assert!(a == *r || b == *r,
                        "plan of robot {} contains foreign pair ({}, {})", r, a, b);
                    prop_assert!(a < b);
                }
            }
            // … and no pair appears in two admitted plans.
            let mut seen = std::collections::BTreeSet::new();
            for (r, plan) in &plans {
                for &pair in plan {
                    prop_assert!(
                        seen.insert(pair),
                        "pair {:?} shared between admitted plans (robot {})", pair, r
                    );
                }
            }
        }
    }

    /// Injection invariance, the safety net under the executor's fan-out:
    /// a Look answered from precomputed [`compute_pair_answer`] results
    /// (fanned over worker threads) is indistinguishable from the plain
    /// serial Look — same visible set, same view versions, and the same
    /// cache counters, on a twin world driven by the identical script.
    #[test]
    fn injected_pair_answers_match_the_serial_look(
        centers in base_centers(9),
        script in moves(14),
        mode in (0usize..2).prop_map(|m| if m == 0 { WorldMode::Incremental } else { WorldMode::Sparse }),
    ) {
        let mut injected = World::new(centers.clone(), VisibilityConfig::default(), mode);
        let mut serial = World::new(centers.clone(), VisibilityConfig::default(), mode);
        let n = centers.len();
        let mut plan = Vec::new();
        let mut answers = PairAnswers::default();
        let mut got = Vec::new();
        let mut want = Vec::new();
        for (step, (pick, x, y)) in script.into_iter().enumerate() {
            let i = pick % n;
            let p = Point::new(x, y);
            injected.move_robot(i, p);
            serial.move_robot(i, p);
            let looker = step % n;
            plan.clear();
            injected.look_plan(looker, &mut plan);
            compute_pair_answers(&injected, &plan, 2, &mut answers);
            injected.visible_of_into_with(looker, &mut got, Some(&answers));
            serial.visible_of_into(looker, &mut want);
            prop_assert!(got == want, "visible set diverged for robot {}", looker);
            for j in 0..n {
                prop_assert_eq!(injected.view_version(j), serial.view_version(j));
            }
            prop_assert_eq!(injected.cache_stats(), serial.cache_stats());
            prop_assert_eq!(injected.pair_store_stats(), serial.pair_store_stats());
        }
    }

    /// Interleaving queries between moves (so entries are computed at many
    /// different configuration versions) never desynchronises the cache.
    #[test]
    fn interleaved_queries_stay_consistent(
        centers in base_centers(7),
        script in moves(10),
    ) {
        let mut world = World::new(centers.clone(), VisibilityConfig::default(), WorldMode::Incremental);
        let mut centers = centers;
        for (step, (pick, x, y)) in script.into_iter().enumerate() {
            let i = pick % centers.len();
            // Query a rotating robot *before* the move so the cache holds a
            // mix of generations.
            let probe = step % centers.len();
            let _ = world.visible_of(probe);
            let p = Point::new(x, y);
            world.move_robot(i, p);
            centers[i] = p;
        }
        assert_world_matches_scratch(&mut world, &centers)?;
    }
}
