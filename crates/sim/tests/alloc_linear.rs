//! Linear-memory assertion for the sparse world: quadrupling n must not
//! come close to quadrupling-squared the heap. The dense incremental mode
//! materializes the Θ(n²) pair triangle eagerly, so it would fail this
//! test's ratio gate by an order of magnitude; the sparse store must stay
//! linear in n plus the pairs actually computed.
//!
//! This integration test owns its binary, so it can install a counting
//! global allocator without affecting any other suite.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use fatrobots_geometry::visibility::VisibilityConfig;
use fatrobots_geometry::Point;
use fatrobots_sim::world::{World, WorldMode};

struct CountingAllocator;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn on_alloc(bytes: u64) {
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let ptr = System.realloc(ptr, layout, new_size);
        if !ptr.is_null() {
            let (old, new) = (layout.size() as u64, new_size as u64);
            if new >= old {
                on_alloc(new - old);
            } else {
                LIVE.fetch_sub(old - new, Ordering::Relaxed);
            }
        }
        ptr
    }
}

#[global_allocator]
static COUNTING: CountingAllocator = CountingAllocator;

/// Deterministic jitter source (no RNG dependency).
fn lcg_unit(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 11) as f64) / ((1u64 << 53) as f64)
}

/// Jittered hex packing of `side²` robots — the blocked-heavy regime the
/// sparse world targets (same construction as the scale smoke).
fn hex_field(side: usize) -> Vec<Point> {
    let spacing = 2.1;
    let row_h = spacing * 3f64.sqrt() / 2.0;
    let mut rng = 0x5ca1ab1e_u64;
    (0..side * side)
        .map(|i| {
            let (row, col) = (i / side, i % side);
            let stagger = if row % 2 == 1 { spacing / 2.0 } else { 0.0 };
            let jx = (lcg_unit(&mut rng) - 0.5) * 0.02;
            let jy = (lcg_unit(&mut rng) - 0.5) * 0.02;
            Point::new(col as f64 * spacing + stagger + jx, row as f64 * row_h + jy)
        })
        .collect()
}

/// Peak heap growth of a fixed sparse-world workload (build, two Look
/// rows, a few oscillating moves) as a function of n.
fn sparse_workload_peak(side: usize) -> u64 {
    let centers = hex_field(side);
    let n = centers.len();
    let before = LIVE.load(Ordering::Relaxed);
    PEAK.store(before, Ordering::Relaxed);
    let mut world = World::new(centers, VisibilityConfig::default(), WorldMode::Sparse);
    let mut visible = Vec::new();
    let movers = [n / 2 + side / 2, n / 4];
    for &m in &movers {
        world.visible_of_into(m, &mut visible);
        assert!(!visible.is_empty(), "hex robot {m} must see its ring");
    }
    let homes: Vec<Point> = movers.iter().map(|&m| world.center(m)).collect();
    for round in 0..4 {
        let d = if round % 2 == 0 { 0.02 } else { -0.02 };
        for (&m, home) in movers.iter().zip(&homes) {
            world.move_robot(m, Point::new(home.x + d, home.y));
            world.visible_of_into(m, &mut visible);
        }
    }
    PEAK.load(Ordering::Relaxed).saturating_sub(before)
}

#[test]
fn sparse_world_memory_is_linear_in_n() {
    // side 32 → n=1024, side 64 → n=4096: n quadruples. A linear world
    // roughly quadruples its peak; the dense triangle would grow 16×. The
    // gate at 8× sits in the dead zone between the two, far from both.
    let small = sparse_workload_peak(32);
    let large = sparse_workload_peak(64);
    assert!(
        large < small.saturating_mul(8),
        "sparse peak grew superlinearly: {small} bytes at n=1024 vs {large} bytes at n=4096"
    );
    // Absolute sanity bound: the workload at n=4096 must stay in the tens
    // of MB (the n² triangle alone would be ~0.8 GB of entries).
    assert!(
        large < 64 * 1024 * 1024,
        "sparse workload peak at n=4096 is implausibly large: {large} bytes"
    );
}
