//! Deterministic intra-run parallelism: commutation batching and
//! speculative Compute.
//!
//! The paper's schedule is event-serial, and the engine's equivalence
//! suite pins the event stream bit-for-bit — so a parallel executor may
//! only change *where* work runs, never what is computed. Two mechanisms
//! obey that contract:
//!
//! * **Commutation batching.** The planner pulls directives ahead of time
//!   (against a predicted phase/target snapshot, so the adversary sees
//!   exactly the states it would see serially) and groups consecutive
//!   events that provably commute: Looks whose recompute plans
//!   ([`World::look_plan`]) share no pair — since a robot's plan only ever
//!   contains its own pairs, two batched Looks can conflict only through
//!   the single pair joining them — plus Compute events whose decision is
//!   already known at plan time (a decision-cache hit, or a completed
//!   speculation), dispatches, and terminated-robot no-ops. No robot moves
//!   inside a batch, so the batched Looks' pair kernels run read-only on a
//!   shared [`World`] across worker threads ([`compute_pair_answers`]);
//!   the commit then replays every event **in the original order**,
//!   injecting the precomputed answers ([`World::visible_of_into_with`])
//!   so all bookkeeping — generations, registrations, view versions,
//!   telemetry — lands exactly as a serial run would have left it.
//! * **Speculative Compute.** When a Look stamps a view version the
//!   decision cache does not cover, the snapshot is cloned to a persistent
//!   worker pool ([`SpecPool`]) which pre-runs `Strategy::decide_with`.
//!   The robot's next Compute validates the result against the snapshot's
//!   version stamp (the PR 5 contract: version-stable ⇒ bit-identical
//!   view) and replays it as a decision-cache miss — same decision, same
//!   counters, same cache write as the serial pipeline; a mismatch is
//!   discarded and the decision recomputed inline. Speculation is only
//!   fired for strategies that declare [`Strategy::memoizable`] — a pure
//!   function of the view, so the worker's answer is the answer.
//!
//! Batches end at the first event that does not commute — a Move (it
//! mutates geometry), a Compute whose decision is unknown, a conflicting
//! Look — and that *carry* directive is applied serially right after the
//! batch commits. With `SimConfig::threads <= 1` none of this machinery is
//! engaged and the engine runs its unchanged serial path.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

use fatrobots_core::{ComputeScratch, Decision, Strategy};
use fatrobots_geometry::Point;
use fatrobots_model::{LocalView, Phase};

use crate::world::{PairAnswers, PairProbe, World};

/// Below this many planned pair recomputes a batch's kernels run inline on
/// the calling thread: spawning scoped workers costs more than the work.
const PAR_FANOUT_MIN: usize = 16;

/// Upper bound on events per batch, so the planner's per-batch buffers stay
/// bounded even on schedules where thousands of events commute.
pub(crate) const MAX_BATCH_EVENTS: usize = 1024;

/// Computes the answers for `pairs` against a frozen `world`, fanning the
/// kernels out over up to `threads` threads (calling thread included) and
/// leaving the results in `out`. The per-pair computation is
/// [`World::compute_pair_answer`] — read-only and thread-independent — so
/// the result set is identical for every thread count; tiny task lists run
/// inline. Used by the engine's batch commit and by the `scale_smoke`
/// example's batched Look loop.
pub fn compute_pair_answers(
    world: &World,
    pairs: &[(usize, usize)],
    threads: usize,
    out: &mut PairAnswers,
) {
    out.clear();
    if pairs.is_empty() {
        return;
    }
    let workers = threads.clamp(1, pairs.len());
    if workers == 1 || pairs.len() < PAR_FANOUT_MIN {
        let mut probe = PairProbe::default();
        for &(a, b) in pairs {
            out.insert(world.compute_pair_answer(a, b, &mut probe));
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<crate::world::PairAnswer>> =
        pairs.iter().map(|_| OnceLock::new()).collect();
    let worker = || {
        let mut probe = PairProbe::default();
        loop {
            let k = next.fetch_add(1, Ordering::Relaxed);
            if k >= pairs.len() {
                break;
            }
            let (a, b) = pairs[k];
            let _ = slots[k].set(world.compute_pair_answer(a, b, &mut probe));
        }
    };
    std::thread::scope(|scope| {
        let worker = &worker;
        for _ in 1..workers {
            scope.spawn(worker);
        }
        worker();
    });
    for slot in slots {
        out.insert(
            slot.into_inner()
                .expect("every claimed task stores its answer"),
        );
    }
}

/// One speculation job: pre-decide `view` (a clone of the robot's Look
/// snapshot) under the shared strategy.
struct SpecJob {
    robot: usize,
    /// The snapshot's version stamp at fire time; the consume validates
    /// against the stamp the Compute event reads.
    version: u64,
    view: LocalView,
    strategy: Arc<dyn Strategy>,
}

/// A finished speculation: robot, fire-time version, and the decision (or
/// the worker's panic payload, re-raised on the main thread at consume).
type SpecOutcome = (usize, u64, std::thread::Result<Decision>);

/// Persistent worker pool for speculative Compute (same channel fan-out as
/// `sweep::SweepPool`): jobs are owned (`'static`), so speculations launched
/// at one event can complete while the engine commits many others.
struct SpecPool {
    /// `Some` while accepting jobs; dropped first so workers drain and exit.
    task_tx: Option<Sender<SpecJob>>,
    result_rx: Receiver<SpecOutcome>,
    workers: Vec<JoinHandle<()>>,
}

impl SpecPool {
    /// Spawns `workers` decision workers, each with its own scratch arena.
    fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (task_tx, task_rx) = mpsc::channel::<SpecJob>();
        let (result_tx, result_rx) = mpsc::channel::<SpecOutcome>();
        let task_rx = Arc::new(Mutex::new(task_rx));
        let workers = (0..workers)
            .map(|_| {
                let task_rx = Arc::clone(&task_rx);
                let result_tx = result_tx.clone();
                std::thread::spawn(move || {
                    let mut scratch = ComputeScratch::default();
                    loop {
                        let job = {
                            let rx = task_rx.lock().expect("spec task lock");
                            rx.recv()
                        };
                        let Ok(job) = job else { break };
                        let decision = catch_unwind(AssertUnwindSafe(|| {
                            job.strategy.decide_with(&job.view, &mut scratch)
                        }));
                        if result_tx.send((job.robot, job.version, decision)).is_err() {
                            break;
                        }
                    }
                })
            })
            .collect();
        SpecPool {
            task_tx: Some(task_tx),
            result_rx,
            workers,
        }
    }
}

impl Drop for SpecPool {
    fn drop(&mut self) {
        self.task_tx = None; // close the channel: workers drain and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Where a batched Compute event's decision came from at plan time. The
/// commit replays the same counter and cache bookkeeping the serial arm
/// would have performed for that source.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ComputeSource {
    /// Decision-cache hit (memoized decision at the current version).
    CacheHit(Decision),
    /// Completed speculation validated against this version stamp; the
    /// commit stores it into the decision cache exactly like a serial miss.
    Spec(u64, Decision),
}

/// One event admitted into the current batch, committed in pull order.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Planned {
    /// A Look; its recompute plan's pairs are part of the batch's pooled
    /// `plan_pairs`, and the commit looks answers up by pair key.
    Look { robot: usize },
    /// A Compute whose decision was already known when planned.
    Compute { robot: usize, source: ComputeSource },
    /// A dispatch (Compute-phase event): deterministic from the pending
    /// decision, no geometry touched.
    Dispatch { robot: usize },
    /// A directive for a terminated robot: the serial no-op `Stop`.
    Idle { robot: usize },
}

/// The parallel executor's state, owned by the simulator: planner buffers
/// (reused across batches), the speculation pool and slots, and telemetry.
/// A simulator running serially (`threads <= 1`) never engages any of it.
#[derive(Default)]
pub(crate) struct ParState {
    /// Worker-thread budget (calling thread included); `0` until the
    /// parallel run initializes it.
    pub(crate) threads: usize,
    /// Speculation pool, spawned lazily on the first parallel run of a
    /// memoizable strategy.
    pool: Option<SpecPool>,
    /// Version stamp of the speculation in flight per robot (at most one:
    /// a robot Looks again only after consuming its Compute).
    inflight: Vec<Option<u64>>,
    /// Arrived speculations awaiting their robot's Compute.
    ready: Vec<Option<(u64, std::thread::Result<Decision>)>>,
    /// The current batch, in pull order.
    pub(crate) batch: Vec<Planned>,
    /// Flat storage for the batched Looks' recompute plans.
    pub(crate) plan_pairs: Vec<(usize, usize)>,
    /// Predicted phases/targets the adversary is shown during planning:
    /// refreshed from the real arrays at each batch start, updated as
    /// events are admitted, so every directive pull sees exactly the
    /// serial-time snapshot.
    pub(crate) planned_phases: Vec<Phase>,
    pub(crate) planned_targets: Vec<Option<Point>>,
    /// Per-robot batch membership (one event per robot per batch).
    pub(crate) in_batch: Vec<bool>,
    /// Robots whose *Look* is batched — the conflict test's other side.
    pub(crate) look_in_batch: Vec<bool>,
    /// Reused answer set for the batch commits.
    pub(crate) answers: PairAnswers,
    /// Telemetry: committed batches, events committed in multi-event
    /// batches, and speculation consume outcomes.
    pub(crate) batches: u64,
    pub(crate) batched_events: u64,
    pub(crate) spec_hits: u64,
    pub(crate) spec_aborts: u64,
}

impl ParState {
    /// Sizes the per-robot slots and spawns the speculation pool when the
    /// run can use it (`threads > 1` and a memoizable strategy).
    pub(crate) fn prepare(&mut self, n: usize, threads: usize, memoize: bool) {
        self.threads = threads.max(1);
        self.in_batch.resize(n, false);
        self.look_in_batch.resize(n, false);
        self.inflight.resize_with(n, || None);
        self.ready.resize_with(n, || None);
        if memoize && self.threads > 1 && self.pool.is_none() {
            self.pool = Some(SpecPool::new(self.threads - 1));
        }
    }

    /// `true` when speculation is live (pool spawned).
    pub(crate) fn speculating(&self) -> bool {
        self.pool.is_some()
    }

    /// Fires a speculation for `robot` (snapshot `view`, stamped `version`)
    /// unless one is already in flight. No-op without a pool.
    pub(crate) fn fire_spec(
        &mut self,
        robot: usize,
        version: u64,
        view: &LocalView,
        strategy: &Arc<dyn Strategy>,
    ) {
        let Some(pool) = &self.pool else { return };
        debug_assert!(
            self.inflight[robot].is_none(),
            "a robot Looks again only after its Compute consumed the previous speculation"
        );
        if self.inflight[robot].is_some() {
            return;
        }
        let job = SpecJob {
            robot,
            version,
            view: view.clone(),
            strategy: Arc::clone(strategy),
        };
        let tx = pool
            .task_tx
            .as_ref()
            .expect("pool accepts jobs while alive");
        if tx.send(job).is_ok() {
            self.inflight[robot] = Some(version);
        }
    }

    /// Moves every already-arrived speculation result into its ready slot
    /// without blocking.
    pub(crate) fn poll_specs(&mut self) {
        let Some(pool) = &self.pool else { return };
        while let Ok((robot, version, decision)) = pool.result_rx.try_recv() {
            self.inflight[robot] = None;
            self.ready[robot] = Some((version, decision));
        }
    }

    /// Takes `robot`'s speculation if its fire-time stamp matches
    /// `version`, waiting for an in-flight one to arrive. Returns `None`
    /// (counting an abort if a result existed) on a stale stamp, or when
    /// nothing was ever fired. A worker panic resurfaces here.
    pub(crate) fn take_spec(&mut self, robot: usize, version: u64) -> Option<Decision> {
        self.pool.as_ref()?;
        self.poll_specs();
        while self.inflight[robot].is_some() {
            let pool = self.pool.as_ref().expect("pool checked above");
            let (r, v, decision) = pool
                .result_rx
                .recv()
                .expect("speculation workers outlive the run");
            self.inflight[r] = None;
            self.ready[r] = Some((v, decision));
        }
        self.consume_ready(robot, version)
    }

    /// [`Self::take_spec`] without blocking: `None` also when the
    /// speculation has not arrived yet (the caller falls back to the
    /// serial path, which will wait).
    pub(crate) fn try_take_spec(&mut self, robot: usize, version: u64) -> Option<Decision> {
        self.pool.as_ref()?;
        self.poll_specs();
        if self.inflight[robot].is_some() {
            return None;
        }
        self.consume_ready(robot, version)
    }

    /// Validates and consumes the ready slot (one-shot).
    fn consume_ready(&mut self, robot: usize, version: u64) -> Option<Decision> {
        let (v, decision) = self.ready[robot].take()?;
        let decision = match decision {
            Ok(decision) => decision,
            Err(payload) => resume_unwind(payload),
        };
        if v == version {
            self.spec_hits += 1;
            Some(decision)
        } else {
            // Defensive: with the engine's Look→Compute phase machine a
            // stamp can never change between fire and consume, but a stale
            // result must be discarded, not replayed.
            self.spec_aborts += 1;
            None
        }
    }
}
