//! Tiny renderers for configurations: SVG (for reports and examples) and
//! ASCII (for terminal output). No external dependencies.

use std::fmt::Write as _;

use fatrobots_geometry::{Point, UNIT_RADIUS};

/// Renders the robot discs as an SVG document string.
///
/// The view box is fitted to the configuration with one diameter of margin;
/// robots are drawn as circles with their index at the center.
pub fn svg(centers: &[Point]) -> String {
    if centers.is_empty() {
        return String::from("<svg xmlns=\"http://www.w3.org/2000/svg\"/>");
    }
    let min_x = centers.iter().map(|p| p.x).fold(f64::INFINITY, f64::min) - 2.0 * UNIT_RADIUS;
    let max_x = centers
        .iter()
        .map(|p| p.x)
        .fold(f64::NEG_INFINITY, f64::max)
        + 2.0 * UNIT_RADIUS;
    let min_y = centers.iter().map(|p| p.y).fold(f64::INFINITY, f64::min) - 2.0 * UNIT_RADIUS;
    let max_y = centers
        .iter()
        .map(|p| p.y)
        .fold(f64::NEG_INFINITY, f64::max)
        + 2.0 * UNIT_RADIUS;
    let (w, h) = (max_x - min_x, max_y - min_y);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"{min_x:.2} {min_y:.2} {w:.2} {h:.2}\" width=\"600\" height=\"{:.0}\">",
        600.0 * h / w.max(1e-9)
    );
    for (i, c) in centers.iter().enumerate() {
        let _ = writeln!(
            out,
            "  <circle cx=\"{:.3}\" cy=\"{:.3}\" r=\"{UNIT_RADIUS}\" fill=\"#7aa6d8\" fill-opacity=\"0.6\" stroke=\"#1f3a5f\" stroke-width=\"0.05\"/>",
            c.x, c.y
        );
        let _ = writeln!(
            out,
            "  <text x=\"{:.3}\" y=\"{:.3}\" font-size=\"0.8\" text-anchor=\"middle\" dominant-baseline=\"central\">{i}</text>",
            c.x, c.y
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Renders the configuration as a coarse ASCII grid of the given width in
/// characters (`#` marks cells covered by a robot, `.` empty cells).
pub fn ascii(centers: &[Point], width: usize) -> String {
    if centers.is_empty() || width == 0 {
        return String::new();
    }
    let min_x = centers.iter().map(|p| p.x).fold(f64::INFINITY, f64::min) - UNIT_RADIUS;
    let max_x = centers
        .iter()
        .map(|p| p.x)
        .fold(f64::NEG_INFINITY, f64::max)
        + UNIT_RADIUS;
    let min_y = centers.iter().map(|p| p.y).fold(f64::INFINITY, f64::min) - UNIT_RADIUS;
    let max_y = centers
        .iter()
        .map(|p| p.y)
        .fold(f64::NEG_INFINITY, f64::max)
        + UNIT_RADIUS;
    let span_x = (max_x - min_x).max(1e-9);
    let span_y = (max_y - min_y).max(1e-9);
    // Terminal cells are roughly twice as tall as wide.
    let height = ((span_y / span_x) * width as f64 / 2.0).ceil().max(1.0) as usize;
    let mut out = String::with_capacity((width + 1) * height);
    for row in 0..height {
        let y = max_y - (row as f64 + 0.5) / height as f64 * span_y;
        for col in 0..width {
            let x = min_x + (col as f64 + 0.5) / width as f64 * span_x;
            let covered = centers
                .iter()
                .any(|c| c.distance(Point::new(x, y)) <= UNIT_RADIUS);
            out.push(if covered { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svg_contains_one_circle_per_robot() {
        let s = svg(&[Point::new(0.0, 0.0), Point::new(4.0, 0.0)]);
        assert_eq!(s.matches("<circle").count(), 2);
        assert!(s.starts_with("<svg"));
        assert!(s.trim_end().ends_with("</svg>"));
        assert!(svg(&[]).contains("<svg"));
    }

    #[test]
    fn ascii_marks_covered_cells() {
        let s = ascii(&[Point::new(0.0, 0.0)], 20);
        assert!(s.contains('#'));
        assert!(s.contains('.'));
        assert!(ascii(&[], 20).is_empty());
        assert!(ascii(&[Point::new(0.0, 0.0)], 0).is_empty());
    }
}
