//! The shrinking scenario fuzzer: hunts non-gathering runs, then shrinks
//! each find into a minimal deterministic regression fixture.
//!
//! The paper's Theorem 26 promises gathering under any schedule satisfying
//! the two liveness conditions; the simulator's stall census (ROADMAP.md)
//! shows the interesting failures sit right at the edge of that promise —
//! and the fault adversaries ([`AdversaryKind::CrashStop`] & co.) step
//! deliberately over it. This module automates the hunt:
//!
//! 1. **Sweep** — replay a deterministic pilot corpus (the known census
//!    corners) followed by seeded random scenarios (shape × adversary ×
//!    fault-k × n × seed) under a total event budget, flagging every run
//!    that fails to gather within its per-scenario event cap. A flagged
//!    run only becomes a finding after a replay at the much larger
//!    [`confirm_cap`] still fails to gather — slow is not stalled.
//! 2. **Shrink** — exploit deterministic replay to minimize each find,
//!    proptest-style: smallest `n` first, then the fault parameter `k`
//!    (both re-confirmed at [`confirm_cap`], so shrinking cannot trade a
//!    livelock for a merely-slow small system), then the event-budget
//!    prefix (with a floor of [`SHRINK_EVENT_FLOOR`] events per robot, so
//!    a shrunk stall still demonstrably stalls rather than trivially
//!    running out of budget).
//! 3. **File** — emit one machine-readable fixture per find (spec JSON +
//!    expected census, byte-stable) that `tests/livelock_regression.rs`
//!    auto-loads and replays. A stall found once stays found.
//!
//! Everything is deterministic in (`fuzz seed`, `budget`): the CI
//! `fuzz-smoke` job re-runs the fuzzer with pinned inputs and requires the
//! emitted fixtures to be byte-identical to the committed ones.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::experiment::{self, AdversaryKind, RunSpec};
use crate::init::Shape;

/// Per-robot event floor kept by the budget-prefix shrink: a shrunk
/// non-gathering fixture must still grant every robot a few hundred
/// activations, otherwise "did not gather" degenerates into "was not given
/// a chance to".
pub const SHRINK_EVENT_FLOOR: usize = 400;

/// A fuzz scenario: the subset of a [`RunSpec`] the fuzzer explores. The
/// strategy is always the paper's algorithm, δ and the world mode stay at
/// their defaults, so a scenario is replayed bit-identically from these
/// five fields alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSpec {
    /// Number of robots.
    pub n: usize,
    /// Seed for the initial configuration and the adversary.
    pub seed: u64,
    /// Initial configuration shape.
    pub shape: Shape,
    /// Asynchronous schedule (possibly a fault injector).
    pub adversary: AdversaryKind,
    /// Event budget the scenario is judged under.
    pub max_events: usize,
}

impl ScenarioSpec {
    /// The full [`RunSpec`] this scenario replays as.
    pub fn to_run_spec(&self) -> RunSpec {
        RunSpec {
            shape: self.shape,
            adversary: self.adversary,
            max_events: self.max_events,
            ..RunSpec::new(self.n, self.seed)
        }
    }
}

/// The replay-stable outcome of one scenario: what the regression fixtures
/// pin. `distance_bits` stores the total travelled distance as its exact
/// IEEE-754 bit pattern, so fixture comparisons are byte-exact instead of
/// epsilon-fuzzy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Census {
    /// `true` when the run gathered (live robots, under fault injection).
    pub gathered: bool,
    /// `true` when the run (effectively) terminated.
    pub terminated: bool,
    /// Events applied.
    pub events: usize,
    /// Total travelled distance, as `f64::to_bits`.
    pub distance_bits: u64,
}

/// Replays a scenario and returns its census.
pub fn replay(spec: &ScenarioSpec) -> Census {
    let summary = experiment::run(&spec.to_run_spec());
    Census {
        gathered: summary.gathered,
        terminated: summary.terminated,
        events: summary.events,
        distance_bits: summary.distance.to_bits(),
    }
}

/// Configuration of one fuzz campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuzzConfig {
    /// Total event budget for the discovery sweep (shrink replays are not
    /// charged against it — an unlucky find must not truncate its own
    /// minimization).
    pub budget: u64,
    /// Seed of the random scenario generator.
    pub seed: u64,
    /// Stop after this many findings (each costs a full shrink).
    pub max_finds: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            budget: 400_000,
            seed: 7,
            max_finds: 6,
        }
    }
}

/// One non-gathering find, fully shrunk.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The minimized scenario.
    pub spec: ScenarioSpec,
    /// Its census (the fixture's expected values).
    pub census: Census,
    /// Accepted shrink moves (smaller `n`, smaller `k`, halved budget).
    pub shrink_steps: u32,
    /// `"pilot"` for pilot-corpus scenarios, `"random"` for swept ones,
    /// `"mutation"` for [`perturb`]ed neighbors of a mutation corpus.
    pub origin: &'static str,
}

/// The outcome of a fuzz campaign.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FuzzReport {
    /// Scenarios executed in the discovery sweep.
    pub scenarios: u64,
    /// Events spent by the discovery sweep (gated by the budget).
    pub events_spent: u64,
    /// Stall-confirmation replays at [`confirm_cap`] (not charged to the
    /// budget): one per flagged run, one per `n`/`k` shrink candidate.
    pub confirm_replays: u64,
    /// Budget-prefix replays performed while shrinking (not charged to the
    /// budget).
    pub shrink_replays: u64,
    /// The shrunk findings, in discovery order.
    pub findings: Vec<Finding>,
    /// Every scenario the discovery sweep actually replayed, with its draw
    /// origin (`"pilot"`, `"random"`, or `"mutation"`), in sweep order —
    /// the exploration log the mutation-operator tests assert against.
    pub explored: Vec<(ScenarioSpec, &'static str)>,
}

/// The deterministic pilot corpus: the ROADMAP stall census corners plus a
/// fault-injection corner on the new adversarial shapes. Seeding the sweep
/// with the known livelocks guarantees the CI smoke gate rediscovers them
/// regardless of the random tail.
fn pilot_corpus() -> Vec<ScenarioSpec> {
    vec![
        // The canonical stall: n = 16, seed 2, random starts, random-async
        // schedule — not gathered after 100k events (seeds 1, 4, 5 gather).
        ScenarioSpec {
            n: 16,
            seed: 2,
            shape: Shape::Random,
            adversary: AdversaryKind::RandomAsync,
            max_events: 100_000,
        },
        ScenarioSpec {
            n: 16,
            seed: 3,
            shape: Shape::Random,
            adversary: AdversaryKind::RandomAsync,
            max_events: 100_000,
        },
        // Fault corners: a crashed coalition on the bridge corridor and a
        // δ-crawling coalition on the near-collinear chain.
        ScenarioSpec {
            n: 12,
            seed: 1,
            shape: Shape::Bridge,
            adversary: AdversaryKind::CrashStop { k: 3 },
            max_events: 24_000,
        },
        ScenarioSpec {
            n: 10,
            seed: 1,
            shape: Shape::NearCollinear,
            adversary: AdversaryKind::SlowCoalition { k: 3 },
            max_events: 24_000,
        },
    ]
}

/// The per-scenario event cap of the random sweep: generous against the
/// committed baseline's gather times (n = 8 gathers in ~5k events), so a
/// flagged run is stalling, not merely unlucky.
fn sweep_cap(n: usize) -> usize {
    1_200 * n
}

/// The stall-confirmation event cap: a flagged run only becomes a finding
/// (and a shrink candidate is only accepted) if it *still* has not
/// gathered at this budget — roughly 40× the slowest observed gather time
/// per robot, so "livelock" does not quietly degrade into "slow" as the
/// shrinker walks `n` and `k` down.
pub fn confirm_cap(n: usize) -> usize {
    24_000 * n
}

/// `true` when the scenario still stalls at the confirmation budget
/// (ignoring its own `max_events`). Every call is one replay, tallied in
/// `confirm_replays`.
fn stalls_confirmed(spec: &ScenarioSpec, report: &mut FuzzReport) -> bool {
    report.confirm_replays += 1;
    let confirm = ScenarioSpec {
        max_events: confirm_cap(spec.n),
        ..*spec
    };
    !replay(&confirm).gathered
}

/// One random scenario drawn from the fuzz pool.
fn random_scenario(rng: &mut StdRng) -> ScenarioSpec {
    let n = rng.gen_range(4usize..=16);
    let seed = rng.gen_range(0u64..=9);
    let shape = Shape::ALL[rng.gen_range(0..Shape::ALL.len())];
    let adversary = AdversaryKind::ALL[rng.gen_range(0..AdversaryKind::ALL.len())];
    let k = rng.gen_range(1usize..=3);
    let adversary = match adversary {
        AdversaryKind::CrashStop { .. } => AdversaryKind::CrashStop { k },
        AdversaryKind::PersistentSleep { .. } => AdversaryKind::PersistentSleep { k },
        AdversaryKind::SlowCoalition { .. } => AdversaryKind::SlowCoalition { k },
        other => other,
    };
    ScenarioSpec {
        n,
        seed,
        shape,
        adversary,
        max_events: sweep_cap(n),
    }
}

/// The mutation operator: perturbs a known scenario (typically a committed
/// regression fixture) into a near neighbor. Exactly one dimension moves
/// per call — the seed is redrawn from the fuzz pool (skipping the current
/// value), the shape steps to an adjacent entry of [`Shape::ALL`], or `n`
/// is nudged by one — and the event budget is re-derived from
/// [`sweep_cap`], so a mutated draw is judged under the same cap as a
/// fresh random one. Deterministic in the rng state, like every other
/// draw.
pub fn perturb(spec: &ScenarioSpec, rng: &mut StdRng) -> ScenarioSpec {
    let mut out = *spec;
    match rng.gen_range(0usize..3) {
        0 => {
            // A different seed from the 0..=9 fuzz pool: draw from the
            // 9-element pool without the current seed, then shift past it.
            let draw = rng.gen_range(0u64..=8);
            out.seed = if draw >= out.seed { draw + 1 } else { draw };
        }
        1 => {
            let at = Shape::ALL.iter().position(|s| *s == out.shape).unwrap_or(0);
            let step = if rng.gen_bool(0.5) {
                1
            } else {
                Shape::ALL.len() - 1
            };
            out.shape = Shape::ALL[(at + step) % Shape::ALL.len()];
        }
        _ => {
            out.n = if out.n >= 16 || (out.n > 4 && rng.gen_bool(0.5)) {
                out.n - 1
            } else {
                out.n + 1
            };
        }
    }
    out.max_events = sweep_cap(out.n);
    out
}

/// Replaces the fault parameter of a fault adversary (no-op otherwise).
fn with_fault_k(adversary: AdversaryKind, k: usize) -> AdversaryKind {
    match adversary {
        AdversaryKind::CrashStop { .. } => AdversaryKind::CrashStop { k },
        AdversaryKind::PersistentSleep { .. } => AdversaryKind::PersistentSleep { k },
        AdversaryKind::SlowCoalition { .. } => AdversaryKind::SlowCoalition { k },
        other => other,
    }
}

/// Shrinks one confirmed find, proptest-style: minimal `n` first, then the
/// fault parameter `k` — both judged at the [`confirm_cap`] of the
/// candidate, so a shrunk fixture is still a confirmed stall and not a
/// merely-slow small system — then the event-budget prefix (halved down to
/// [`SHRINK_EVENT_FLOOR`] events per robot; the fails-to-gather-within
/// property is monotone under budget cuts, but every cut is verified by
/// replay anyway). Returns the minimized spec, its census, and the number
/// of accepted shrink moves.
fn shrink(found: ScenarioSpec, report: &mut FuzzReport) -> (ScenarioSpec, Census, u32) {
    let mut spec = found;
    let mut steps = 0u32;
    // Smallest n that still stalls, scanned from the bottom: the first hit
    // is the global minimum, so no further descent is needed.
    for n in 2..spec.n {
        let candidate = ScenarioSpec { n, ..spec };
        if stalls_confirmed(&candidate, report) {
            spec = candidate;
            steps += 1;
            break;
        }
    }
    // Smallest fault parameter that still stalls.
    if spec.adversary.fault_k() > 1 {
        for k in 1..spec.adversary.fault_k() {
            let candidate = ScenarioSpec {
                adversary: with_fault_k(spec.adversary, k),
                ..spec
            };
            if stalls_confirmed(&candidate, report) {
                spec = candidate;
                steps += 1;
                break;
            }
        }
    }
    // Shortest event-budget prefix that still fails to gather.
    let floor = SHRINK_EVENT_FLOOR * spec.n;
    while spec.max_events / 2 >= floor {
        let candidate = ScenarioSpec {
            max_events: spec.max_events / 2,
            ..spec
        };
        report.shrink_replays += 1;
        if replay(&candidate).gathered {
            break;
        }
        spec = candidate;
        steps += 1;
    }
    report.shrink_replays += 1;
    (spec, replay(&spec), steps)
}

/// Runs one fuzz campaign: pilot corpus first, then seeded random
/// scenarios until the event budget or the finding cap is exhausted. One
/// finding is kept per (shape, adversary) family — the first, fully
/// shrunk; later scenarios of an already-found family are skipped so a
/// single pathological family cannot monopolize the fixture set.
pub fn fuzz(config: &FuzzConfig) -> FuzzReport {
    fuzz_with_corpus(config, &[])
}

/// Runs a corpus-guided fuzz campaign: alternates [`perturb`]ed neighbors
/// of the corpus entries (round-robin over the corpus, origin
/// `"mutation"`) with fresh random scenarios, under the same budget and
/// family dedup as [`fuzz`]. A non-empty corpus **replaces** the pilot
/// phase — the corpus entries are committed fixtures whose census is
/// already pinned, so the campaign spends its budget on their unexplored
/// neighborhoods instead. With an empty corpus this is exactly [`fuzz`],
/// bit for bit, which is what keeps the CI `fuzz-smoke` fixtures stable:
/// mutation is strictly opt-in.
pub fn fuzz_with_corpus(config: &FuzzConfig, corpus: &[ScenarioSpec]) -> FuzzReport {
    let mut report = FuzzReport::default();
    let mut found_families: Vec<(&'static str, &'static str)> = Vec::new();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut pilots = if corpus.is_empty() {
        pilot_corpus()
    } else {
        Vec::new()
    }
    .into_iter();
    let mut draws = 0usize;
    while report.events_spent < config.budget && report.findings.len() < config.max_finds {
        let (spec, origin) = match pilots.next() {
            Some(spec) => (spec, "pilot"),
            None => {
                let draw = if !corpus.is_empty() && draws % 2 == 0 {
                    (
                        perturb(&corpus[(draws / 2) % corpus.len()], &mut rng),
                        "mutation",
                    )
                } else {
                    (random_scenario(&mut rng), "random")
                };
                draws += 1;
                draw
            }
        };
        let family = (spec.shape.name(), spec.adversary.name());
        if found_families.contains(&family) {
            continue;
        }
        let census = replay(&spec);
        report.scenarios += 1;
        report.events_spent += census.events as u64;
        report.explored.push((spec, origin));
        if census.gathered {
            continue;
        }
        // A flagged run must still stall at the confirmation budget before
        // it counts: the sweep caps are tight enough that an unlucky slow
        // gatherer can trip them.
        if !stalls_confirmed(&spec, &mut report) {
            continue;
        }
        let (shrunk, shrunk_census, shrink_steps) = shrink(spec, &mut report);
        found_families.push(family);
        report.findings.push(Finding {
            spec: shrunk,
            census: shrunk_census,
            shrink_steps,
            origin,
        });
    }
    report
}

/// A committed regression fixture: the shrunk scenario plus its expected
/// census and provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Fixture {
    /// The minimized scenario.
    pub spec: ScenarioSpec,
    /// The census the replay must reproduce exactly.
    pub expected: Census,
    /// `"pilot"` or `"random"`.
    pub origin: String,
    /// Accepted shrink moves behind this fixture.
    pub shrink_steps: u32,
}

impl Fixture {
    /// The fixture's canonical file name, derived from the scenario.
    pub fn file_name(&self) -> String {
        let mut name = format!("{}_{}", self.spec.shape.name(), self.spec.adversary.name());
        if self.spec.adversary.fault_k() > 0 {
            let _ = write!(name, "_k{}", self.spec.adversary.fault_k());
        }
        let _ = write!(name, "_n{}_seed{}.json", self.spec.n, self.spec.seed);
        name
    }

    /// Serializes the fixture (byte-stable: fixed field order, fixed
    /// indentation, `\n` line ends).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"fixture_schema\": 1,\n  \"n\": {},\n  \"seed\": {},\n  \"shape\": \"{}\",\n  \"adversary\": \"{}\",\n  \"fault_k\": {},\n  \"max_events\": {},\n  \"origin\": \"{}\",\n  \"shrink_steps\": {},\n  \"census\": {{\n    \"gathered\": {},\n    \"terminated\": {},\n    \"events\": {},\n    \"distance_bits\": {}\n  }}\n}}\n",
            self.spec.n,
            self.spec.seed,
            self.spec.shape.name(),
            self.spec.adversary.name(),
            self.spec.adversary.fault_k(),
            self.spec.max_events,
            self.origin,
            self.shrink_steps,
            self.expected.gathered,
            self.expected.terminated,
            self.expected.events,
            self.expected.distance_bits,
        )
    }

    /// Parses a fixture serialized by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<Fixture, String> {
        let doc = mini_json::parse(text)?;
        let census = doc.obj("census")?;
        let shape_name = doc.str("shape")?;
        let shape =
            Shape::from_name(&shape_name).ok_or_else(|| format!("unknown shape '{shape_name}'"))?;
        let adversary_name = doc.str("adversary")?;
        let fault_k = doc.u64("fault_k")? as usize;
        let adversary = AdversaryKind::from_name(&adversary_name, fault_k)
            .ok_or_else(|| format!("unknown adversary '{adversary_name}'"))?;
        Ok(Fixture {
            spec: ScenarioSpec {
                n: doc.u64("n")? as usize,
                seed: doc.u64("seed")?,
                shape,
                adversary,
                max_events: doc.u64("max_events")? as usize,
            },
            expected: Census {
                gathered: census.bool("gathered")?,
                terminated: census.bool("terminated")?,
                events: census.u64("events")? as usize,
                distance_bits: census.u64("distance_bits")?,
            },
            origin: doc.str("origin")?,
            shrink_steps: doc.u64("shrink_steps")? as u32,
        })
    }
}

/// Writes one fixture file per finding into `dir` (created if missing).
/// Returns the written paths, in finding order.
pub fn write_fixtures(report: &FuzzReport, dir: &Path) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(report.findings.len());
    for finding in &report.findings {
        let fixture = Fixture {
            spec: finding.spec,
            expected: finding.census,
            origin: finding.origin.to_string(),
            shrink_steps: finding.shrink_steps,
        };
        let path = dir.join(fixture.file_name());
        // Atomic (temp + rename): a killed fuzz run never leaves a torn
        // fixture for the regression loader to choke on.
        crate::checkpoint::write_atomic(&path, fixture.to_json().as_bytes())?;
        paths.push(path);
    }
    Ok(paths)
}

/// Loads every `*.json` fixture in `dir`, sorted by file name. A missing
/// directory is an empty set, not an error (fresh checkouts before the
/// first fuzz run).
pub fn load_fixtures(dir: &Path) -> io::Result<Vec<(PathBuf, Fixture)>> {
    let mut entries: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(iter) => iter
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect(),
        Err(err) if err.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(err) => return Err(err),
    };
    entries.sort();
    entries
        .into_iter()
        .map(|path| {
            let text = std::fs::read_to_string(&path)?;
            let fixture = Fixture::from_json(&text)
                .map_err(|e| io::Error::other(format!("{}: {e}", path.display())))?;
            Ok((path, fixture))
        })
        .collect()
}

/// A minimal JSON reader for the fixture files — the sim crate cannot use
/// `fatrobots_bench::json` (bench depends on sim), and the fixtures are a
/// closed format this module itself emits: objects, strings without
/// escapes, unsigned integers, booleans.
mod mini_json {
    /// A parsed JSON value (the subset the fixtures use).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// An object, in document order.
        Obj(Vec<(String, Value)>),
        /// A string (no escape sequences).
        Str(String),
        /// An unsigned integer (`distance_bits` exceeds `i64`).
        U64(u64),
        /// A boolean.
        Bool(bool),
    }

    impl Value {
        fn get(&self, key: &str) -> Result<&Value, String> {
            match self {
                Value::Obj(fields) => fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .ok_or_else(|| format!("missing key '{key}'")),
                _ => Err(format!("'{key}' looked up on a non-object")),
            }
        }

        pub fn obj(&self, key: &str) -> Result<&Value, String> {
            let v = self.get(key)?;
            match v {
                Value::Obj(_) => Ok(v),
                _ => Err(format!("'{key}' is not an object")),
            }
        }

        pub fn str(&self, key: &str) -> Result<String, String> {
            match self.get(key)? {
                Value::Str(s) => Ok(s.clone()),
                _ => Err(format!("'{key}' is not a string")),
            }
        }

        pub fn u64(&self, key: &str) -> Result<u64, String> {
            match self.get(key)? {
                Value::U64(v) => Ok(*v),
                _ => Err(format!("'{key}' is not an unsigned integer")),
            }
        }

        pub fn bool(&self, key: &str) -> Result<bool, String> {
            match self.get(key)? {
                Value::Bool(v) => Ok(*v),
                _ => Err(format!("'{key}' is not a boolean")),
            }
        }
    }

    /// Parses one JSON document (object at the root).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.at));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        at: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.at)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.at += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.at).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.at += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", b as char, self.at))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b'0'..=b'9') => self.number(),
                Some(b't') | Some(b'f') => self.boolean(),
                other => Err(format!("unexpected {other:?} at byte {}", self.at)),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.at += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                fields.push((key, self.value()?));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.at += 1,
                    Some(b'}') => {
                        self.at += 1;
                        return Ok(Value::Obj(fields));
                    }
                    other => return Err(format!("unexpected {other:?} in object")),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let start = self.at;
            while let Some(b) = self.peek() {
                if b == b'"' {
                    let s = std::str::from_utf8(&self.bytes[start..self.at])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?
                        .to_string();
                    self.at += 1;
                    return Ok(s);
                }
                if b == b'\\' {
                    return Err("escape sequences are not part of the fixture format".into());
                }
                self.at += 1;
            }
            Err("unterminated string".into())
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.at;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.at += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.at])
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .map(Value::U64)
                .ok_or_else(|| format!("invalid integer at byte {start}"))
        }

        fn boolean(&mut self) -> Result<Value, String> {
            for (literal, value) in [("true", true), ("false", false)] {
                if self.bytes[self.at..].starts_with(literal.as_bytes()) {
                    self.at += literal.len();
                    return Ok(Value::Bool(value));
                }
            }
            Err(format!("invalid literal at byte {}", self.at))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stall_fixture() -> Fixture {
        Fixture {
            spec: ScenarioSpec {
                n: 16,
                seed: 2,
                shape: Shape::Random,
                adversary: AdversaryKind::CrashStop { k: 2 },
                max_events: 12_500,
            },
            expected: Census {
                gathered: false,
                terminated: false,
                events: 12_500,
                distance_bits: 0x4637_6615_1613_3713,
            },
            origin: "pilot".into(),
            shrink_steps: 3,
        }
    }

    #[test]
    fn fixture_json_round_trips_byte_exactly() {
        let fixture = stall_fixture();
        let text = fixture.to_json();
        let parsed = Fixture::from_json(&text).expect("fixture parses");
        assert_eq!(parsed, fixture);
        assert_eq!(parsed.to_json(), text, "serialization is byte-stable");
        assert_eq!(fixture.file_name(), "random_crash-stop_k2_n16_seed2.json");
    }

    #[test]
    fn fixture_parser_rejects_malformed_input() {
        assert!(Fixture::from_json("").is_err());
        assert!(Fixture::from_json("{}").is_err());
        assert!(Fixture::from_json("{\"n\": 3").is_err());
        let good = stall_fixture().to_json();
        assert!(Fixture::from_json(&good.replace("random", "no-such-shape")).is_err());
        assert!(Fixture::from_json(&(good + "x")).is_err());
    }

    #[test]
    fn replay_is_deterministic() {
        let spec = ScenarioSpec {
            n: 5,
            seed: 3,
            shape: Shape::Circle,
            adversary: AdversaryKind::RoundRobin,
            max_events: 120_000,
        };
        let a = replay(&spec);
        assert_eq!(a, replay(&spec));
        assert!(a.gathered, "5 robots on a circle gather");
    }

    #[test]
    fn shrink_minimizes_and_preserves_the_failure() {
        // Stop-happy never gathers a line in a short window: shrinking must
        // walk n down to the smallest still-failing system and cut the
        // budget to the floor, with the property verified on every move.
        let found = ScenarioSpec {
            n: 8,
            seed: 1,
            shape: Shape::Line,
            adversary: AdversaryKind::StopHappy,
            max_events: 9_600,
        };
        assert!(!replay(&found).gathered, "the seed find must fail");
        let mut report = FuzzReport::default();
        let (shrunk, census, steps) = shrink(found, &mut report);
        assert!(!census.gathered, "shrinking must preserve the failure");
        assert!(shrunk.n <= found.n);
        assert!(shrunk.max_events >= SHRINK_EVENT_FLOOR * shrunk.n);
        assert!(report.shrink_replays > 0);
        assert!(steps > 0, "this find is actually shrinkable");
        // Minimality in n: every smaller system gathers even at the
        // confirmation budget — the shrink missed no smaller witness.
        for n in 2..shrunk.n {
            let smaller = ScenarioSpec {
                n,
                max_events: confirm_cap(n),
                ..shrunk
            };
            assert!(
                replay(&smaller).gathered,
                "n = {n} stalls too — the shrink missed a smaller witness"
            );
        }
    }

    #[test]
    fn fuzz_campaign_is_deterministic_and_finds_the_pilot_stall() {
        // A budget that only covers the first pilot: the campaign must
        // still rediscover and shrink the canonical n = 16 stall.
        let config = FuzzConfig {
            budget: 1,
            seed: 7,
            max_finds: 1,
        };
        let report = fuzz(&config);
        assert_eq!(report.scenarios, 1);
        assert_eq!(report.findings.len(), 1);
        let finding = &report.findings[0];
        assert_eq!(finding.origin, "pilot");
        assert_eq!(finding.spec.shape, Shape::Random);
        assert_eq!(finding.spec.adversary, AdversaryKind::RandomAsync);
        assert!(!finding.census.gathered);
        assert_eq!(&fuzz(&config), &report, "campaigns replay bit-identically");
    }

    #[test]
    fn perturb_moves_exactly_one_dimension() {
        let base = ScenarioSpec {
            n: 5,
            seed: 1,
            shape: Shape::Bridge,
            adversary: AdversaryKind::CrashStop { k: 1 },
            max_events: sweep_cap(5),
        };
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let mutant = perturb(&base, &mut rng);
            assert_eq!(
                mutant.adversary, base.adversary,
                "the adversary never moves"
            );
            let moved = [
                mutant.seed != base.seed,
                mutant.shape != base.shape,
                mutant.n != base.n,
            ]
            .iter()
            .filter(|&&m| m)
            .count();
            assert_eq!(moved, 1, "exactly one dimension moves: {mutant:?}");
            assert!(mutant.seed <= 9, "seed stays in the fuzz pool");
            assert!((4..=16).contains(&mutant.n), "n stays in the fuzz pool");
            assert_eq!(
                mutant.max_events,
                sweep_cap(mutant.n),
                "the budget is re-derived from the sweep cap"
            );
        }
        assert_eq!(
            perturb(&base, &mut StdRng::seed_from_u64(3)),
            perturb(&base, &mut StdRng::seed_from_u64(3)),
            "the operator is deterministic in the rng state"
        );
    }

    #[test]
    fn mutation_corpus_explores_a_perturbed_neighbor_of_a_committed_fixture() {
        // Seed the corpus with a committed regression fixture, so the test
        // tracks whatever is actually pinned under tests/fixtures/livelock.
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/livelock");
        let fixtures = load_fixtures(&dir).expect("fixtures load");
        let base = fixtures
            .first()
            .expect("at least one committed livelock fixture")
            .1
            .spec;
        let config = FuzzConfig {
            budget: 40_000,
            seed: 5,
            max_finds: 1,
        };
        let report = fuzz_with_corpus(&config, &[base]);
        let mutants: Vec<ScenarioSpec> = report
            .explored
            .iter()
            .filter(|(_, origin)| *origin == "mutation")
            .map(|(spec, _)| *spec)
            .collect();
        assert!(
            !mutants.is_empty(),
            "a small budget must reach at least one mutated draw"
        );
        for mutant in &mutants {
            assert_eq!(
                mutant.adversary, base.adversary,
                "mutation keeps the adversary"
            );
            let moved = [
                mutant.seed != base.seed,
                mutant.shape != base.shape,
                mutant.n != base.n,
            ]
            .iter()
            .filter(|&&m| m)
            .count();
            assert_eq!(
                moved, 1,
                "every explored mutant is a one-step neighbor of the fixture: {mutant:?}"
            );
        }
        assert_eq!(
            &fuzz_with_corpus(&config, &[base]),
            &report,
            "corpus campaigns replay bit-identically"
        );
        assert_eq!(
            &fuzz(&config),
            &fuzz_with_corpus(&config, &[]),
            "an empty corpus is exactly the default campaign"
        );
    }

    #[test]
    fn fixtures_write_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("fatrobots-fuzz-{}", std::process::id()));
        let report = FuzzReport {
            scenarios: 1,
            events_spent: 100,
            confirm_replays: 3,
            shrink_replays: 2,
            findings: vec![Finding {
                spec: stall_fixture().spec,
                census: stall_fixture().expected,
                shrink_steps: 3,
                origin: "pilot",
            }],
            explored: Vec::new(),
        };
        let paths = write_fixtures(&report, &dir).expect("fixtures written");
        assert_eq!(paths.len(), 1);
        let loaded = load_fixtures(&dir).expect("fixtures load");
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].1.spec, stall_fixture().spec);
        assert_eq!(loaded[0].1.expected, stall_fixture().expected);
        std::fs::remove_dir_all(&dir).ok();
        assert!(
            load_fixtures(&dir)
                .expect("missing dir is empty")
                .is_empty(),
            "a missing fixtures directory is an empty set"
        );
    }
}
