//! Incremental world state.
//!
//! The paper's model is event-serial by construction — exactly one robot
//! acts per event — so between two consecutive Look snapshots at most one
//! center has changed. [`World`] exploits this: it owns the ground-truth
//! centers plus derived state that is **incrementally maintained** instead
//! of being recomputed from scratch on every event:
//!
//! * a symmetric pairwise **visibility matrix**, invalidated pair-by-pair
//!   when a move can actually have changed the pair's answer;
//! * the **convex hull** (and the all-on-hull flag), the **connectivity**
//!   predicate, the **validity** (no-overlap) predicate and the minimum
//!   pairwise gap, each tagged with a configuration version and recomputed
//!   lazily on first use after a move.
//!
//! ## The invalidation rule
//!
//! A cached visibility entry for the pair `(j, k)` is computed from the two
//! endpoint centers plus the obstacles near their sight corridor (the
//! capsule of radius [`VISIBILITY_PRUNE_RADIUS`] around the chord
//! `c_j`–`c_k` — see `disc_sees_disc_among`). The entry must therefore be
//! invalidated exactly when either endpoint moves, or some robot moves
//! *into* or *out of* that corridor. Scanning all pairs per move would
//! reintroduce the quadratic cost, so the corridor membership is indexed
//! through the spatial grid:
//!
//! * when a pair is (re)computed, it registers itself in every grid cell of
//!   the conservative cover of its corridor (the grid's capsule walk);
//! * when robot `i` moves, only the registrations of the cell it left and
//!   the cell it entered are drained, and exactly those pairs are marked
//!   dirty.
//!
//! The cover is a superset of the cells that can hold a relevant obstacle
//! (and always contains the endpoints' own cells), so a stale hit is
//! impossible: any robot whose move can change the pair's answer — either
//! endpoint, a robot leaving the corridor, a robot entering it — stamps a
//! registered cell. Cache hits are O(1); a move dirties only the pairs
//! registered on the two touched cells; the witness-segment search runs
//! only for pairs that are actually dirty, against a grid-pruned obstacle
//! slice.
//!
//! ## Bit-identical results
//!
//! The cached path answers every query through the *same* geometric kernels
//! as the from-scratch path (`disc_sees_disc_among` with a conservatively
//! pre-filtered obstacle slice is exactly `disc_sees_disc` over all
//! centers; the hull, connectivity and sample predicates are evaluated by
//! the same functions on the same inputs). A `World` in
//! [`WorldMode::Scratch`] recomputes everything per query, which is how the
//! determinism suite pins the equivalence event-for-event.

use std::collections::HashMap;

use fatrobots_geometry::grid::{CellCoord, CellHashBuilder, CellMap, UniformGrid, GRID_LEVELS};
use fatrobots_geometry::hull::{ConvexHull, HullScratch};
use fatrobots_geometry::visibility::{
    corridor_filter_soa, disc_sees_disc_among, min_pairwise_gap, no_three_collinear,
    strip_cover_blocked, strip_cover_blocked_with_slack, visible_set, VisibilityConfig,
    COVER_STABILITY_RADIUS, VISIBILITY_PRUNE_RADIUS,
};
use fatrobots_geometry::{Point, Segment, Vec2, UNIT_RADIUS};
use fatrobots_model::config::{gap_touches, TOUCH_TOL};
use fatrobots_model::GeometricConfig;

use crate::metrics::SamplePredicates;

/// Edge length of the spatial-grid cells: two robot diameters, so corridor
/// and contact queries touch a handful of cells while clusters of touching
/// robots still share cells.
const GRID_CELL: f64 = 4.0 * UNIT_RADIUS;

/// Safety margin added to the swept-capsule query of the contact scan, far
/// larger than the engine's contact tolerances (`1e-6`/`1e-9`) and far
/// smaller than a cell.
const CONTACT_QUERY_MARGIN: f64 = 1e-3;

/// Minimum length before a cell registration list is ever compacted (dead
/// entries dropped). Beyond it, compaction triggers when a list doubles
/// past its size after the previous compaction, so the work is amortized
/// O(1) per push while garbage from frequently recomputed pairs stays
/// bounded.
const REGISTRATION_COMPACT_LEN: usize = 64;

/// How a [`World`] answers queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorldMode {
    /// Cached dense pair matrix with grid-indexed dirty-pair invalidation
    /// (the default, and the pinned reference for the sparse mode). Memory
    /// is Θ(n²) in the pair matrix alone — fine at the bench tables' n,
    /// fatal at n = 10⁴.
    Incremental,
    /// Sparse visibility state: per-robot adjacency lists, a hash-map pair
    /// store that only materializes computed pairs, and corridor
    /// registrations placed at a chord-length-matched grid level so each
    /// pair holds O(1) cells. Answers are event-for-event identical to
    /// [`WorldMode::Incremental`] (same kernels, same invalidation rule);
    /// memory is linear in n + computed pairs.
    Sparse,
    /// Every query recomputes from scratch, exactly like the seed engine.
    /// Used by the determinism suite as the reference behaviour.
    Scratch,
}

/// One cached visibility entry (for the unordered pair it is indexed by).
#[derive(Debug, Clone, Copy)]
struct PairEntry {
    seen: bool,
    /// Bumped on every recompute; cell registrations carrying an older
    /// generation are dead.
    gen: u32,
    dirty: bool,
    /// Sparse store only: the last recompute certified "blocked" through
    /// [`strip_cover_blocked_with_slack`], so the answer provably stays
    /// `false` while **every** robot — both endpoints and every corridor
    /// obstacle — remains within [`CERT_DRIFT_RADIUS`] of its anchor.
    /// Lets the drain *skip* a certified registration for any in-drift
    /// move with a single branch (the flag is copied into the
    /// registration record, so no pair-store lookup is needed): the
    /// mechanism that makes both a mover's own far-pair row and the
    /// thousands of third-party corridors crossing its cell survive
    /// oscillation with zero per-move work.
    certified: bool,
}

/// Maximum distance a robot may drift from its anchor before the anchor
/// resets (the resetting move itself fails every skip check, so it drains
/// and dirties every certified registration it covers first). Certificates
/// are issued when the endpoints are within this radius of their anchors
/// and honored while every robot involved stays within it, so any robot's
/// position differs from its certification-time one by at most
/// `2·CERT_DRIFT_RADIUS = COVER_STABILITY_RADIUS` — exactly the per-robot
/// drift [`strip_cover_blocked_with_slack`] guarantees against, for
/// obstacles as well as endpoints.
const CERT_DRIFT_RADIUS: f64 = COVER_STABILITY_RADIUS / 2.0;

/// One corridor registration: "pair `{a, b}` (entry `idx`, at generation
/// `gen`) depends on this cell". The endpoints ride along so a drain can
/// test the mover against the pair's chord without decoding `idx`.
#[derive(Debug, Clone, Copy)]
struct PairRef {
    idx: u32,
    gen: u32,
    a: u32,
    b: u32,
}

/// A cell's corridor registrations plus its amortized-compaction watermark:
/// the list is swept for dead entries only when it doubles past its size
/// after the previous sweep.
#[derive(Debug, Default)]
struct CellRegs {
    refs: Vec<PairRef>,
    compact_at: usize,
}

/// Chord lengths up to this many cell edges register at a grid level; a
/// longer chord moves up one level. Keeps every pair's corridor
/// registration at O(1) cells regardless of chord length (the memory term
/// that would otherwise scale with the configuration diameter).
const SPARSE_REG_SPAN_CELLS: f64 = 8.0;

/// Packed key of the unordered pair `{a, b}` (`a < b`) in the sparse pair
/// store.
fn pair_key(a: usize, b: usize) -> u64 {
    debug_assert!(a < b);
    ((a as u64) << 32) | b as u64
}

/// One corridor registration of the sparse store: pair `{a, b}` at
/// generation `gen` depends on the registered cell.
#[derive(Debug, Clone, Copy)]
struct SparseRef {
    a: u32,
    b: u32,
    gen: u32,
    /// Copy of [`PairEntry::certified`] at registration time, so the drain
    /// fast path can skip certified registrations without touching the
    /// pair store. A stale copy is harmless: if the pair has since been
    /// recomputed, this ref is dead (generation mismatch) and skipping it
    /// merely retains garbage — the *live* registration written by that
    /// recompute carries the current flag and is the one that matters.
    /// Stale refs are reaped by the drain's slow path and the amortized
    /// compaction sweeps.
    certified: bool,
}

/// A cell's sparse-store registrations plus the amortized-compaction
/// watermark (same scheme as [`CellRegs`]).
#[derive(Debug, Default)]
struct SparseCellRegs {
    refs: Vec<SparseRef>,
    compact_at: usize,
}

/// A robot's queue of pairs to recompute at its next row refresh. May hold
/// stale entries (pairs already recomputed through the partner's row); the
/// drain skips anything no longer dirty. `compact_at` bounds the queue of
/// rows that rarely refresh (amortized-compaction watermark).
#[derive(Debug, Default)]
struct PendingRow {
    js: Vec<u32>,
    compact_at: usize,
}

/// The sparse visibility state of [`WorldMode::Sparse`]: everything is
/// sized by what has actually been computed, never by n².
#[derive(Debug, Default)]
struct SparseVis {
    /// Pair entries for every pair computed so far, keyed by [`pair_key`].
    /// Absent means "never computed" — equivalent to the dense store's
    /// initial dirty entry.
    pairs: HashMap<u64, PairEntry, CellHashBuilder>,
    /// Sorted adjacency: `adj[i]` holds exactly the robots whose pair with
    /// `i` is stored with `seen == true` (possibly dirty — a row refresh
    /// recomputes the dirty pairs before the list is read).
    adj: Vec<Vec<u32>>,
    /// Per-robot recompute queues, fed by the cell drains.
    pending: Vec<PendingRow>,
    /// Whether row `i` has ever been fully computed. A row's first refresh
    /// computes all of its pairs; afterwards only dirtied pairs recompute.
    row_init: Vec<bool>,
    /// Corridor registrations per grid level (index = level).
    regs: Vec<CellMap<SparseCellRegs>>,
}

/// Queues `j` on a pending row, keeping the queue bounded by the number of
/// distinct partners: past the watermark the queue is sorted and
/// deduplicated (stale entries are cheap to carry — the drain skips
/// anything no longer dirty — but duplicates must not accumulate without
/// bound on rows that rarely refresh).
fn push_pending(row: &mut PendingRow, j: u32) {
    row.js.push(j);
    if row.js.len() >= row.compact_at.max(REGISTRATION_COMPACT_LEN) {
        row.js.sort_unstable();
        row.js.dedup();
        row.compact_at = row.js.len() * 2;
    }
}

/// Inserts `v` into a sorted adjacency list (no-op when present).
fn adj_insert(list: &mut Vec<u32>, v: u32) {
    if let Err(pos) = list.binary_search(&v) {
        list.insert(pos, v);
    }
}

/// Removes `v` from a sorted adjacency list (no-op when absent).
fn adj_remove(list: &mut Vec<u32>, v: u32) {
    if let Ok(pos) = list.binary_search(&v) {
        list.remove(pos);
    }
}

/// One pair visibility answer computed **read-only** by
/// [`World::compute_pair_answer`], ready to be injected into a commit
/// ([`World::visible_of_into_with`]). Carrying the answer instead of
/// recomputing it at commit time is what lets worker threads run the pair
/// kernels on a shared `&World` while the serial commit replays every piece
/// of bookkeeping (generation bumps, registrations, view versions,
/// telemetry) in the original event order.
#[derive(Debug, Clone, Copy)]
pub struct PairAnswer {
    /// Lower endpoint of the unordered pair.
    pub a: usize,
    /// Upper endpoint of the unordered pair (`a < b`).
    pub b: usize,
    /// The kernel's visibility verdict for the pair.
    pub seen: bool,
    /// Sparse store only: the answer was certified "blocked" by the slack
    /// strip cover (see [`PairEntry::certified`]'s doc on the `World`
    /// internals).
    certified: bool,
    /// The answer came from a strip cover (slack or exact) instead of the
    /// witness kernel — replayed into the `cover_answers` telemetry at
    /// commit.
    cover_answered: bool,
}

/// Per-thread scratch buffers for [`World::compute_pair_answer`] — the
/// read-only twin of the `World`'s own reusable query buffers, owned by the
/// caller so concurrent probes never share storage.
#[derive(Debug, Default)]
pub struct PairProbe {
    cand: Vec<usize>,
    sx: Vec<f64>,
    sy: Vec<f64>,
    keep: Vec<u32>,
    obs: Vec<Point>,
}

/// Precomputed pair answers keyed by unordered pair, injected into
/// [`World::visible_of_into_with`]. An absent pair is not an error — the
/// commit simply recomputes it serially, so injection can only change
/// *where* a kernel runs, never its result.
#[derive(Debug, Default)]
pub struct PairAnswers {
    map: HashMap<u64, PairAnswer, CellHashBuilder>,
}

impl PairAnswers {
    /// Drops every stored answer (keeps the allocation).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Stores one computed answer (last write wins).
    pub fn insert(&mut self, answer: PairAnswer) {
        self.map.insert(pair_key(answer.a, answer.b), answer);
    }

    /// The stored answer for the unordered pair `{a, b}`, if any.
    fn get(&self, a: usize, b: usize) -> Option<&PairAnswer> {
        self.map.get(&pair_key(a, b))
    }
}

/// A computed minimum pairwise gap: the gap value plus the (ascending)
/// pair achieving it, or `None` for fewer than two robots. The achieving
/// pair is what lets a single move maintain the cache in O(n): only a
/// mover that holds the minimum can raise it.
type MinGapEntry = Option<(f64, (usize, usize))>;

/// Which robots moved since the hull cache was last brought up to date.
/// Exactly one mover (possibly moved several times) is the repairable case;
/// two distinct movers degrade to a full rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HullStaleness {
    /// No move since the last hull refresh.
    Clean,
    /// Only this robot moved (any number of times).
    One(usize),
    /// Two or more distinct robots moved.
    Many,
}

impl HullStaleness {
    fn record_move(&mut self, i: usize) {
        *self = match *self {
            HullStaleness::Clean => HullStaleness::One(i),
            HullStaleness::One(j) if j == i => HullStaleness::One(i),
            _ => HullStaleness::Many,
        };
    }
}

/// The simulator's ground-truth configuration plus incrementally maintained
/// derived state. See the module docs for the design.
#[derive(Debug)]
pub struct World {
    mode: WorldMode,
    vis: VisibilityConfig,
    centers: Vec<Point>,
    grid: UniformGrid,
    /// Configuration version: incremented once per applied move.
    version: u64,
    /// Triangular pair matrix, indexed by `pair_index`. Allocated only in
    /// [`WorldMode::Incremental`] (empty otherwise — this Θ(n²) block is
    /// exactly what [`WorldMode::Sparse`] exists to avoid).
    pairs: Vec<PairEntry>,
    /// Corridor registrations per grid cell: the pairs to dirty when the
    /// cell is touched by a move.
    cell_pairs: CellMap<CellRegs>,
    /// Sparse visibility state ([`WorldMode::Sparse`] only; empty
    /// otherwise).
    sparse: SparseVis,
    /// Per-robot certificate anchors ([`WorldMode::Sparse`] only; empty
    /// otherwise). Invariant outside `move_robot`: every robot is within
    /// [`CERT_DRIFT_RADIUS`] of its anchor — a move that would break this
    /// first fails every skip check (dirtying the row as usual) and then
    /// resets the anchor to the new position.
    anchors: Vec<Point>,
    /// Structure-of-arrays mirror of `centers`, kept in sync by
    /// [`Self::move_robot`]: the batched corridor filter reads coordinates
    /// from flat lanes instead of an array-of-structs.
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Lazily recomputed global state, each tagged with the version it was
    /// computed at. The hull is rebuilt **in place** (its buffers and the
    /// construction scratch are reused across version bumps): `hull_version`
    /// is `None` until the first build.
    hull: ConvexHull,
    hull_scratch: HullScratch,
    hull_version: Option<u64>,
    hull_all_on: bool,
    /// Movers since the last hull refresh: drives the single-mover in-place
    /// hull repair.
    hull_staleness: HullStaleness,
    connected_cache: Option<(u64, bool)>,
    valid_cache: Option<(u64, bool)>,
    /// Minimum pairwise gap with its achieving pair, maintained across
    /// single moves while warm (see [`Self::min_pairwise_gap`]).
    min_gap_cache: Option<(u64, MinGapEntry)>,
    /// Per-robot view versions: bumped exactly when the robot's Look
    /// snapshot may differ from the previous one — the robot itself moved,
    /// a pair involving it was dirtied (its visible set, or the position of
    /// a robot it sees, may have changed). Monotone; starts at 1 so the
    /// model layer's 0 can mean "never stamped".
    view_versions: Vec<u64>,
    /// Visibility-cache telemetry: pair lookups answered from the cache vs
    /// recomputed.
    hits: u64,
    misses: u64,
    /// Hull-cache telemetry: refreshes served by the single-mover in-place
    /// repair vs full rebuilds.
    hull_repairs: u64,
    hull_rebuilds: u64,
    /// Blocked-certificate telemetry: recomputes whose answer came from a
    /// strip cover (slack or exact) instead of the witness kernel, and
    /// drain visits that skipped dirtying a certified pair.
    cover_answers: u64,
    cert_skips: u64,
    /// Reusable query buffers.
    cand_buf: Vec<usize>,
    obs_buf: Vec<Point>,
    /// Reusable SoA buffers of the batched corridor filter: candidate
    /// coordinates gathered into flat lanes, and the surviving lane
    /// indices.
    soa_xs: Vec<f64>,
    soa_ys: Vec<f64>,
    keep_buf: Vec<u32>,
}

impl World {
    /// Creates the world for the given centers.
    pub fn new(centers: Vec<Point>, vis: VisibilityConfig, mode: WorldMode) -> Self {
        let n = centers.len();
        let grid = UniformGrid::new(GRID_CELL, &centers);
        let pairs = if mode == WorldMode::Incremental {
            vec![
                PairEntry {
                    seen: false,
                    gen: 0,
                    dirty: true,
                    certified: false,
                };
                n * n.saturating_sub(1) / 2
            ]
        } else {
            Vec::new()
        };
        let sparse = if mode == WorldMode::Sparse {
            SparseVis {
                pairs: HashMap::default(),
                adj: vec![Vec::new(); n],
                pending: (0..n).map(|_| PendingRow::default()).collect(),
                row_init: vec![false; n],
                regs: (0..GRID_LEVELS).map(|_| CellMap::default()).collect(),
            }
        } else {
            SparseVis::default()
        };
        let xs = centers.iter().map(|c| c.x).collect();
        let ys = centers.iter().map(|c| c.y).collect();
        let anchors = if mode == WorldMode::Sparse {
            centers.clone()
        } else {
            Vec::new()
        };
        World {
            mode,
            vis,
            centers,
            grid,
            version: 0,
            pairs,
            cell_pairs: CellMap::default(),
            sparse,
            anchors,
            xs,
            ys,
            hull: ConvexHull::default(),
            hull_scratch: HullScratch::default(),
            hull_version: None,
            hull_all_on: false,
            hull_staleness: HullStaleness::Clean,
            connected_cache: None,
            valid_cache: None,
            min_gap_cache: None,
            view_versions: vec![1; n],
            hits: 0,
            misses: 0,
            hull_repairs: 0,
            hull_rebuilds: 0,
            cover_answers: 0,
            cert_skips: 0,
            cand_buf: Vec::new(),
            obs_buf: Vec::new(),
            soa_xs: Vec::new(),
            soa_ys: Vec::new(),
            keep_buf: Vec::new(),
        }
    }

    /// Number of robots.
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// `true` when the world holds no robots.
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// The query mode.
    pub fn mode(&self) -> WorldMode {
        self.mode
    }

    /// The ground-truth centers.
    pub fn centers(&self) -> &[Point] {
        &self.centers
    }

    /// Center of robot `i`.
    pub fn center(&self, i: usize) -> Point {
        self.centers[i]
    }

    /// Cache telemetry: `(hits, misses)` of the pairwise visibility cache.
    /// Both are 0 in [`WorldMode::Scratch`].
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hull-cache telemetry: `(repairs, rebuilds)` — refreshes served by the
    /// single-mover in-place repair vs full rebuilds. Both are 0 in
    /// [`WorldMode::Scratch`] (every query recomputes, nothing is counted).
    pub fn hull_repair_stats(&self) -> (u64, u64) {
        (self.hull_repairs, self.hull_rebuilds)
    }

    /// Pair-store telemetry: `(entries, registrations)` — materialized pair
    /// entries and live corridor registrations. In
    /// [`WorldMode::Incremental`] the entry count is the full Θ(n²)
    /// triangle; in [`WorldMode::Sparse`] it is only the pairs actually
    /// computed, which is what the scale gate's linear-memory assertion
    /// watches. Both are 0 in [`WorldMode::Scratch`].
    pub fn pair_store_stats(&self) -> (u64, u64) {
        match self.mode {
            WorldMode::Scratch => (0, 0),
            WorldMode::Incremental => (
                self.pairs.len() as u64,
                self.cell_pairs.values().map(|r| r.refs.len() as u64).sum(),
            ),
            WorldMode::Sparse => (
                self.sparse.pairs.len() as u64,
                self.sparse
                    .regs
                    .iter()
                    .flat_map(CellMap::values)
                    .map(|r| r.refs.len() as u64)
                    .sum(),
            ),
        }
    }

    /// Blocked-certificate telemetry: `(cover_answers, cert_skips)` —
    /// recomputes answered by a strip cover instead of the witness kernel,
    /// and drain visits that kept a certified pair clean through an
    /// endpoint move. Both are 0 outside [`WorldMode::Sparse`].
    pub fn cert_stats(&self) -> (u64, u64) {
        (self.cover_answers, self.cert_skips)
    }

    /// The view version of robot `i`. The contract the engine's decision
    /// memoization rests on: read the version right after taking robot
    /// `i`'s Look snapshot ([`Self::visible_of_into`], which recomputes
    /// every dirty pair of row `i`); if two such reads return the same
    /// value, the two snapshots are **guaranteed** bit-identical. (The
    /// converse is conservative — a bump does not prove the view changed.)
    /// Bumps come from three places: the mover itself on every effective
    /// move, both endpoints of a *seen* pair when it is dirtied, and both
    /// endpoints of a pair whose answer flips at a recompute. In
    /// [`WorldMode::Scratch`] every effective move bumps every robot, which
    /// keeps the guarantee trivially.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn view_version(&self, i: usize) -> u64 {
        self.view_versions[i]
    }

    /// Moves robot `i` to `p`: bumps the configuration version, dirties
    /// every pair registered on the cell the robot leaves and the cell it
    /// enters, and rehashes the robot in the grid. Moving a robot to its
    /// current position is a no-op (nothing can have changed).
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn move_robot(&mut self, i: usize, p: Point) {
        let old = self.centers[i];
        if old == p {
            return;
        }
        self.version += 1;
        self.hull_staleness.record_move(i);
        match self.mode {
            WorldMode::Incremental => {
                // The mover's own view always changes (its center is part of
                // it). Every *other* affected view is bumped either by
                // `dirty_cell` (clean seen pairs being dirtied — the robots
                // that can watch this move happen) or by the flip check in
                // `sees` when a dirty pair is recomputed. No O(n) scan
                // anywhere: moving a robot nobody sees bumps only the mover.
                self.view_versions[i] += 1;
                let from = self.grid.cell_of(old);
                let to = self.grid.cell_of(p);
                self.dirty_cell(from, i, old, p);
                if to != from {
                    self.dirty_cell(to, i, old, p);
                }
            }
            WorldMode::Sparse => {
                // Same invalidation rule, but registrations live at every
                // grid level (each pair picks the level matching its chord
                // length), so the move drains its from/to cell at each
                // level. Coarser cells hold more incidental registrations;
                // the drain's exact chord-distance test filters them, so
                // coarseness costs drain time, never correctness.
                self.view_versions[i] += 1;
                for level in 0..GRID_LEVELS {
                    let from = self.grid.cell_of_at(old, level);
                    let to = self.grid.cell_of_at(p, level);
                    self.sparse_dirty_cell(level, from, i, old, p);
                    if to != from {
                        self.sparse_dirty_cell(level, to, i, old, p);
                    }
                }
                // Anchor maintenance, after the drains: a move beyond the
                // drift radius has just failed every skip check (dirtying
                // the mover's certified pairs), so re-anchoring here cannot
                // strand a certificate issued against the old anchor.
                if p.distance_sq(self.anchors[i]) > CERT_DRIFT_RADIUS * CERT_DRIFT_RADIUS {
                    self.anchors[i] = p;
                }
            }
            WorldMode::Scratch => {
                // Scratch mode keeps no dirty-pair machinery; conservatively
                // treat every view as changed by any effective move.
                for v in &mut self.view_versions {
                    *v += 1;
                }
            }
        }
        self.grid.move_point(i, p);
        self.centers[i] = p;
        self.xs[i] = p.x;
        self.ys[i] = p.y;
        if self.mode != WorldMode::Scratch {
            self.update_min_gap_after_move(i);
        }
    }

    /// Maintains the min-gap cache across the move of robot `i` when it was
    /// warm (computed at the version just before this move); otherwise it
    /// simply stays stale and the next query rescans.
    ///
    /// Only pairs involving the mover changed, so: if the cached minimum is
    /// achieved by a pair *not* involving the mover, that pair is unchanged
    /// and still realises the minimum over all non-mover pairs — the new
    /// global minimum is its fold with the mover's O(n) row (exactly the
    /// value the full O(n²) rescan would produce, since `min` over the same
    /// multiset is order-independent). If the mover held the minimum, its
    /// gap may have *grown*, and nothing short of a rescan is sound — the
    /// cache is dropped instead.
    fn update_min_gap_after_move(&mut self, i: usize) {
        let Some((v, entry)) = self.min_gap_cache else {
            return;
        };
        if v + 1 != self.version {
            return; // already stale before this move
        }
        match entry {
            None => {
                // Fewer than two robots: nothing to maintain.
                self.min_gap_cache = Some((self.version, None));
            }
            Some((_, (a, b))) if a == i || b == i => {
                self.min_gap_cache = None; // the mover held the minimum
            }
            Some((gap, pair)) => {
                let (mut best, mut best_pair) = (gap, pair);
                for j in 0..self.len() {
                    if j == i {
                        continue;
                    }
                    let g = self.centers[i].distance(self.centers[j]) - 2.0 * UNIT_RADIUS;
                    if g < best {
                        best = g;
                        best_pair = (i.min(j), i.max(j));
                    }
                }
                self.min_gap_cache = Some((self.version, Some((best, best_pair))));
            }
        }
    }

    /// Processes a cell's corridor registrations for a move of robot
    /// `mover` from `old` to `new`: pairs whose answer can actually depend
    /// on that move — the mover is an endpoint, or its old or new position
    /// lies within the pruning radius of the pair's chord — are marked
    /// dirty and dropped; unaffected live registrations are kept (the cell
    /// cover is conservative, so most drains touch corridors the mover
    /// never entered). Dead registrations (older generation, or pairs
    /// already dirty) are dropped — a dirty pair re-registers when it is
    /// next recomputed.
    fn dirty_cell(
        &mut self,
        cell: fatrobots_geometry::grid::CellCoord,
        mover: usize,
        old: Point,
        new: Point,
    ) {
        use std::collections::hash_map::Entry;
        let Entry::Occupied(mut slot) = self.cell_pairs.entry(cell) else {
            return;
        };
        let regs = slot.get_mut();
        let pairs = &mut self.pairs;
        let centers = &self.centers;
        let view_versions = &mut self.view_versions;
        regs.refs.retain(|r| {
            let entry = &mut pairs[r.idx as usize];
            if entry.gen != r.gen || entry.dirty {
                return false; // dead registration
            }
            let (a, b) = (r.a as usize, r.b as usize);
            // Squared-distance form of `distance_to(..) <= PRUNE_RADIUS`:
            // exactly equivalent (the radius squares exactly), one sqrt
            // cheaper per drained registration.
            let prune_sq = VISIBILITY_PRUNE_RADIUS * VISIBILITY_PRUNE_RADIUS;
            let affected = a == mover || b == mover || {
                let chord = Segment::new(centers[a], centers[b]);
                chord.distance_sq_to(old) <= prune_sq || chord.distance_sq_to(new) <= prune_sq
            };
            if affected {
                entry.dirty = true;
                // View-version maintenance. A robot's Look snapshot changes
                // only when a robot it *sees* moved or its visible set
                // flips. Dirtying a **seen** pair therefore bumps both
                // endpoints right here: a clean pair is registered on both
                // endpoints' current cells, so a seen pair whose endpoint
                // moves is always drained at that move, and while the pair
                // stays dirty no further endpoint move can slip through
                // unbumped. **Unseen** pairs stay silent — their endpoints'
                // views can only change if the answer flips, which
                // `sees` detects (and bumps) at the recompute, always
                // before any robot stamps a view version off that state.
                // This is what keeps one move's invalidation at O(deg):
                // moving a robot nobody sees bumps nobody else.
                if entry.seen {
                    view_versions[a] += 1;
                    view_versions[b] += 1;
                }
            }
            !affected
        });
        if regs.refs.is_empty() {
            slot.remove();
        } else {
            // The drain doubles as a sweep: reset the compaction watermark.
            regs.compact_at = regs.refs.len() * 2;
        }
    }

    /// [`Self::dirty_cell`] for the sparse store: drains one cell of one
    /// grid level. The affectedness test is identical (endpoint, or old/new
    /// position within the pruning radius of the chord); additionally every
    /// dirtied pair is queued on both endpoints' pending rows so the next
    /// row refresh recomputes exactly the dirtied pairs instead of probing
    /// all n.
    fn sparse_dirty_cell(
        &mut self,
        level: usize,
        cell: CellCoord,
        mover: usize,
        old: Point,
        new: Point,
    ) {
        use std::collections::hash_map::Entry;
        let SparseVis {
            pairs,
            pending,
            regs,
            ..
        } = &mut self.sparse;
        let Entry::Occupied(mut slot) = regs[level].entry(cell) else {
            return;
        };
        let regs = slot.get_mut();
        let centers = &self.centers;
        let view_versions = &mut self.view_versions;
        let cert_skips = &mut self.cert_skips;
        let prune_sq = VISIBILITY_PRUNE_RADIUS * VISIBILITY_PRUNE_RADIUS;
        let drift_sq = CERT_DRIFT_RADIUS * CERT_DRIFT_RADIUS;
        // Hoisted skip predicate: this move keeps the mover within the
        // drift radius of its anchor. While that holds, every certified
        // registration — the mover's own pairs *and* third-party corridors
        // crossing this cell — provably keeps its "blocked" answer (see
        // [`CERT_DRIFT_RADIUS`]), so the fast path below retains it with
        // one branch and no pair-store lookup. A move beyond the radius
        // makes this `false` for the whole drain, which dirties every
        // certified pair the mover could affect *before* `move_robot`
        // resets the anchor.
        let mover_within_drift = new.distance_sq(self.anchors[mover]) <= drift_sq;
        regs.refs.retain(|r| {
            if r.certified && mover_within_drift {
                *cert_skips += 1;
                return true;
            }
            let (a, b) = (r.a as usize, r.b as usize);
            let Some(entry) = pairs.get_mut(&pair_key(a, b)) else {
                return false;
            };
            if entry.gen != r.gen || entry.dirty {
                return false; // dead registration
            }
            let affected = a == mover || b == mover || {
                let chord = Segment::new(centers[a], centers[b]);
                chord.distance_sq_to(old) <= prune_sq || chord.distance_sq_to(new) <= prune_sq
            };
            if affected {
                entry.dirty = true;
                // Same view-version rule as the dense drain: a dirtied
                // *seen* pair bumps both endpoints; unseen pairs wait for
                // the flip check at the recompute.
                if entry.seen {
                    view_versions[a] += 1;
                    view_versions[b] += 1;
                }
                push_pending(&mut pending[a], b as u32);
                push_pending(&mut pending[b], a as u32);
            }
            !affected
        });
        if regs.refs.is_empty() {
            slot.remove();
        } else {
            regs.compact_at = regs.refs.len() * 2;
        }
    }

    /// Index of the unordered pair `{a, b}` in the triangular matrix.
    fn pair_index(&self, a: usize, b: usize) -> usize {
        debug_assert!(a < b && b < self.len());
        let n = self.len();
        a * (2 * n - a - 1) / 2 + (b - a - 1)
    }

    /// Whether robots `i` and `j` see each other, answered from the cache
    /// when the entry is clean and recomputed (through the grid-pruned pair
    /// kernel) otherwise.
    ///
    /// # Panics
    /// Panics if `i == j` or either index is out of bounds.
    pub fn sees(&mut self, i: usize, j: usize) -> bool {
        assert!(i != j, "a robot trivially sees itself");
        if self.mode == WorldMode::Scratch {
            return fatrobots_geometry::visibility::disc_sees_disc(i, j, &self.centers, &self.vis);
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        if self.mode == WorldMode::Sparse {
            if let Some(e) = self.sparse.pairs.get(&pair_key(a, b)) {
                if !e.dirty {
                    self.hits += 1;
                    return e.seen;
                }
            }
            self.misses += 1;
            return self.sparse_recompute_pair(a, b);
        }
        let idx = self.pair_index(a, b);
        if !self.pairs[idx].dirty {
            self.hits += 1;
            return self.pairs[idx].seen;
        }
        self.misses += 1;
        {
            let entry = &mut self.pairs[idx];
            entry.gen = entry.gen.wrapping_add(1);
            entry.dirty = false;
        }
        let seen = self.recompute_and_register_pair(a, b, idx);
        if self.pairs[idx].seen != seen {
            // The visible-set membership flipped: both Look snapshots
            // change. (Dirtying an unseen pair deliberately does not bump —
            // this recompute is where a false→true transition is caught,
            // and it always runs before a view version is stamped off the
            // new state.)
            self.view_versions[a] += 1;
            self.view_versions[b] += 1;
        }
        self.pairs[idx].seen = seen;
        seen
    }

    /// Recomputes one pair and re-registers it, in a single walk over the
    /// corridor's conservative cell cover: each visited cell receives the
    /// pair's registration and contributes its sites to the obstacle
    /// slice. The exact post-filter trims the cover's slop — the kernel's
    /// answer only depends on centers within [`VISIBILITY_PRUNE_RADIUS`] of
    /// the chord, which `disc_sees_disc_among` documents as sufficient for
    /// an answer identical to the exhaustive test (and makes the slice
    /// order irrelevant: the kernel returns a boolean, not a witness).
    fn recompute_and_register_pair(&mut self, a: usize, b: usize, idx: usize) -> bool {
        let (ca, cb) = (self.centers[a], self.centers[b]);
        let gen = self.pairs[idx].gen;
        let pair_ref = PairRef {
            idx: idx as u32,
            gen,
            a: a as u32,
            b: b as u32,
        };
        let chord = Segment::new(ca, cb);
        let mut obs = std::mem::take(&mut self.obs_buf);
        obs.clear();
        {
            let pairs = &self.pairs;
            let cell_pairs = &mut self.cell_pairs;
            let grid = &self.grid;
            let centers = &self.centers;
            grid.for_each_cell_near_segment(ca, cb, VISIBILITY_PRUNE_RADIUS, |cell| {
                let regs = cell_pairs.entry(cell).or_default();
                if regs.refs.len() >= regs.compact_at.max(REGISTRATION_COMPACT_LEN) {
                    regs.refs.retain(|r| {
                        let e = &pairs[r.idx as usize];
                        e.gen == r.gen && !e.dirty
                    });
                    regs.compact_at = regs.refs.len() * 2;
                }
                regs.refs.push(pair_ref);
                if let Some(sites) = grid.sites_in(cell) {
                    // Squared-distance form of the `<= PRUNE_RADIUS` trim:
                    // exactly equivalent, and this filter runs per site of
                    // every cover cell of every recompute.
                    let prune_sq = VISIBILITY_PRUNE_RADIUS * VISIBILITY_PRUNE_RADIUS;
                    obs.extend(
                        sites
                            .iter()
                            .filter(|&&k| k != a && k != b)
                            .map(|&k| centers[k])
                            .filter(|&c| chord.distance_sq_to(c) <= prune_sq),
                    );
                }
                true
            });
        }
        let seen = disc_sees_disc_among(ca, cb, &obs, &self.vis);
        self.obs_buf = obs;
        seen
    }

    /// The registration half of [`Self::recompute_and_register_pair`]: the
    /// identical cell walk (including the amortized compaction sweeps) with
    /// the obstacle gathering skipped — used when the pair's answer was
    /// already computed read-only and is being committed by injection.
    fn register_pair_dense(&mut self, a: usize, b: usize, idx: usize) {
        let (ca, cb) = (self.centers[a], self.centers[b]);
        let gen = self.pairs[idx].gen;
        let pair_ref = PairRef {
            idx: idx as u32,
            gen,
            a: a as u32,
            b: b as u32,
        };
        let pairs = &self.pairs;
        let cell_pairs = &mut self.cell_pairs;
        self.grid
            .for_each_cell_near_segment(ca, cb, VISIBILITY_PRUNE_RADIUS, |cell| {
                let regs = cell_pairs.entry(cell).or_default();
                if regs.refs.len() >= regs.compact_at.max(REGISTRATION_COMPACT_LEN) {
                    regs.refs.retain(|r| {
                        let e = &pairs[r.idx as usize];
                        e.gen == r.gen && !e.dirty
                    });
                    regs.compact_at = regs.refs.len() * 2;
                }
                regs.refs.push(pair_ref);
                true
            });
    }

    /// The grid level a pair registers its corridor at: the finest level
    /// whose cells are large enough that the chord's cover holds O(1) of
    /// them ([`SPARSE_REG_SPAN_CELLS`]). Long chords land on the coarsest
    /// level, whose cover is a handful of cells even across the whole
    /// configuration.
    fn sparse_reg_level(&self, ca: Point, cb: Point) -> usize {
        let chord = ca.distance(cb);
        for level in 0..GRID_LEVELS {
            if chord <= self.grid.cell_size_at(level) * SPARSE_REG_SPAN_CELLS {
                return level;
            }
        }
        GRID_LEVELS - 1
    }

    /// Computes one pair's visibility answer **without mutating anything**:
    /// the same candidate walk, SoA corridor filter, strip covers and
    /// witness kernel as the committing recompute, on caller-owned scratch.
    /// Safe to call from worker threads on a shared `&World` — the commit
    /// that later injects the result replays all bookkeeping serially and
    /// lands in exactly the state a serial recompute would have produced
    /// (no robot moves between the probe and its commit, so the inputs are
    /// frozen).
    ///
    /// # Panics
    /// Panics if `a >= b`, either index is out of bounds, or the world is
    /// in [`WorldMode::Scratch`] (which has no pair store to commit into).
    pub fn compute_pair_answer(&self, a: usize, b: usize, probe: &mut PairProbe) -> PairAnswer {
        assert!(a < b && b < self.len(), "invalid pair");
        assert!(
            self.mode != WorldMode::Scratch,
            "scratch mode has no pair store"
        );
        let (ca, cb) = (self.centers[a], self.centers[b]);
        if self.mode == WorldMode::Incremental {
            // Same cells, same sites, same order and same trim as the
            // gathering half of `recompute_and_register_pair`.
            let chord = Segment::new(ca, cb);
            let prune_sq = VISIBILITY_PRUNE_RADIUS * VISIBILITY_PRUNE_RADIUS;
            probe.obs.clear();
            let grid = &self.grid;
            let centers = &self.centers;
            let obs = &mut probe.obs;
            grid.for_each_cell_near_segment(ca, cb, VISIBILITY_PRUNE_RADIUS, |cell| {
                if let Some(sites) = grid.sites_in(cell) {
                    obs.extend(
                        sites
                            .iter()
                            .filter(|&&k| k != a && k != b)
                            .map(|&k| centers[k])
                            .filter(|&c| chord.distance_sq_to(c) <= prune_sq),
                    );
                }
                true
            });
            let seen = disc_sees_disc_among(ca, cb, &probe.obs, &self.vis);
            return PairAnswer {
                a,
                b,
                seen,
                certified: false,
                cover_answered: false,
            };
        }
        // Sparse: the gathering half of `sparse_recompute_pair`, verbatim.
        probe.cand.clear();
        {
            let grid = &self.grid;
            let cand = &mut probe.cand;
            grid.for_each_occupied_cell_near_segment(ca, cb, VISIBILITY_PRUNE_RADIUS, |cell| {
                if let Some(sites) = grid.sites_in(cell) {
                    cand.extend(sites.iter().copied().filter(|&k| k != a && k != b));
                }
                true
            });
        }
        probe.sx.clear();
        probe.sy.clear();
        for &k in &probe.cand {
            probe.sx.push(self.xs[k]);
            probe.sy.push(self.ys[k]);
        }
        probe.keep.clear();
        corridor_filter_soa(
            ca,
            cb,
            VISIBILITY_PRUNE_RADIUS,
            &probe.sx,
            &probe.sy,
            &mut probe.keep,
        );
        probe.obs.clear();
        let (sx, sy) = (&probe.sx, &probe.sy);
        probe.obs.extend(
            probe
                .keep
                .iter()
                .map(|&l| Point::new(sx[l as usize], sy[l as usize])),
        );
        let obs = &probe.obs;
        let mut certified = false;
        let mut cover_answered = false;
        let seen = if strip_cover_blocked_with_slack(ca, cb, obs) {
            certified = true;
            cover_answered = true;
            false
        } else if strip_cover_blocked(ca, cb, obs) {
            cover_answered = true;
            false
        } else {
            disc_sees_disc_among(ca, cb, obs, &self.vis)
        };
        PairAnswer {
            a,
            b,
            seen,
            certified,
            cover_answered,
        }
    }

    /// Recomputes one pair of the sparse store and re-registers its
    /// corridor. Same contract as [`Self::recompute_and_register_pair`]
    /// (and the same kernel, so the answer is bit-identical); the obstacle
    /// slice is gathered through the occupancy-pruned hierarchical walk and
    /// trimmed by the batched SoA corridor filter instead of a per-site
    /// scalar filter. Both filters accept a superset of the centers within
    /// [`VISIBILITY_PRUNE_RADIUS`] of the chord, which is all
    /// `disc_sees_disc_among` needs for the exhaustive answer.
    fn sparse_recompute_pair(&mut self, a: usize, b: usize) -> bool {
        self.sparse_recompute_pair_with(a, b, None)
    }

    /// [`Self::sparse_recompute_pair`], optionally short-circuiting the
    /// gather-and-kernel half with a precomputed [`PairAnswer`]. Every
    /// side effect — generation bump, dirty clear, cover telemetry, view
    /// versions, adjacency, registration — runs here either way, so an
    /// injected answer leaves the world in exactly the state a serial
    /// recompute would.
    fn sparse_recompute_pair_with(
        &mut self,
        a: usize,
        b: usize,
        answer: Option<&PairAnswer>,
    ) -> bool {
        let (ca, cb) = (self.centers[a], self.centers[b]);
        let level = self.sparse_reg_level(ca, cb);
        let entry = self
            .sparse
            .pairs
            .entry(pair_key(a, b))
            .or_insert(PairEntry {
                seen: false,
                gen: 0,
                dirty: true,
                certified: false,
            });
        entry.gen = entry.gen.wrapping_add(1);
        entry.dirty = false;
        let old_seen = entry.seen;
        let gen = entry.gen;
        let (seen, certified) = if let Some(ans) = answer {
            debug_assert!(ans.a == a && ans.b == b, "answer injected for wrong pair");
            if ans.cover_answered {
                self.cover_answers += 1;
            }
            (ans.seen, ans.certified)
        } else {
            // Candidate obstacles: sites of the occupied base cells of the
            // corridor cover (the pruned walk surfaces exactly the sites the
            // flat walk would).
            let mut cand = std::mem::take(&mut self.cand_buf);
            cand.clear();
            {
                let grid = &self.grid;
                grid.for_each_occupied_cell_near_segment(ca, cb, VISIBILITY_PRUNE_RADIUS, |cell| {
                    if let Some(sites) = grid.sites_in(cell) {
                        cand.extend(sites.iter().copied().filter(|&k| k != a && k != b));
                    }
                    true
                });
            }
            let mut sx = std::mem::take(&mut self.soa_xs);
            let mut sy = std::mem::take(&mut self.soa_ys);
            sx.clear();
            sy.clear();
            for &k in &cand {
                sx.push(self.xs[k]);
                sy.push(self.ys[k]);
            }
            let mut keep = std::mem::take(&mut self.keep_buf);
            keep.clear();
            corridor_filter_soa(ca, cb, VISIBILITY_PRUNE_RADIUS, &sx, &sy, &mut keep);
            let mut obs = std::mem::take(&mut self.obs_buf);
            obs.clear();
            obs.extend(
                keep.iter()
                    .map(|&l| Point::new(sx[l as usize], sy[l as usize])),
            );
            // Two-tier blocked fast path before the O(k²) witness kernel.
            // The slack cover additionally certifies the answer against
            // endpoint drift (see [`PairEntry::certified`]); the exact
            // cover only answers this recompute. Both are one-sided —
            // `false` falls through to the kernel — so the answer is
            // always the kernel's.
            let mut certified = false;
            let seen = if strip_cover_blocked_with_slack(ca, cb, &obs) {
                certified = true;
                self.cover_answers += 1;
                false
            } else if strip_cover_blocked(ca, cb, &obs) {
                self.cover_answers += 1;
                false
            } else {
                disc_sees_disc_among(ca, cb, &obs, &self.vis)
            };
            self.cand_buf = cand;
            self.soa_xs = sx;
            self.soa_ys = sy;
            self.keep_buf = keep;
            self.obs_buf = obs;
            (seen, certified)
        };
        if old_seen != seen {
            // Flip: both Look snapshots change (identical rule to the dense
            // path — a fresh entry starts unseen, so a first computation
            // that lands on `true` bumps, exactly like the dense matrix's
            // initial dirty entries).
            self.view_versions[a] += 1;
            self.view_versions[b] += 1;
            if seen {
                adj_insert(&mut self.sparse.adj[a], b as u32);
                adj_insert(&mut self.sparse.adj[b], a as u32);
            } else {
                adj_remove(&mut self.sparse.adj[a], b as u32);
                adj_remove(&mut self.sparse.adj[b], a as u32);
            }
        }
        let entry = self
            .sparse
            .pairs
            .get_mut(&pair_key(a, b))
            .expect("entry was just inserted");
        entry.seen = seen;
        entry.certified = certified;
        // Register on the chosen level's conservative cover, carrying the
        // just-computed certified flag so drains can honor it without a
        // pair-store lookup. The *registration* walk must not skip empty
        // cells: a future mover can enter one.
        let sref = SparseRef {
            a: a as u32,
            b: b as u32,
            gen,
            certified,
        };
        {
            let SparseVis { pairs, regs, .. } = &mut self.sparse;
            let pairs = &*pairs;
            let level_regs = &mut regs[level];
            self.grid.for_each_cell_near_segment_at(
                level,
                ca,
                cb,
                VISIBILITY_PRUNE_RADIUS,
                |cell| {
                    let slot = level_regs.entry(cell).or_default();
                    if slot.refs.len() >= slot.compact_at.max(REGISTRATION_COMPACT_LEN) {
                        slot.refs.retain(|r| {
                            pairs
                                .get(&pair_key(r.a as usize, r.b as usize))
                                .is_some_and(|e| e.gen == r.gen && !e.dirty)
                        });
                        slot.compact_at = slot.refs.len() * 2;
                    }
                    slot.refs.push(sref);
                    true
                },
            );
        }
        seen
    }

    /// Brings every pair of row `i` up to date in the sparse store, so that
    /// `adj[i]` *is* the visible set. A row's first refresh computes all of
    /// its pairs (the unavoidable O(n) the dense matrix pays eagerly at
    /// construction); afterwards only the pairs queued dirty by the cell
    /// drains recompute — the output-sensitive steady state.
    ///
    /// Each recompute is answered from the injected [`PairAnswers`] when
    /// present (serially recomputed otherwise). The drain order, the
    /// hit/miss telemetry and every state transition are identical either
    /// way.
    fn sparse_refresh_row_with(&mut self, i: usize, answers: Option<&PairAnswers>) {
        if !self.sparse.row_init[i] {
            for j in 0..self.len() {
                if j == i {
                    continue;
                }
                let (a, b) = if i < j { (i, j) } else { (j, i) };
                match self.sparse.pairs.get(&pair_key(a, b)) {
                    Some(e) if !e.dirty => self.hits += 1,
                    _ => {
                        self.misses += 1;
                        let ans = answers.and_then(|s| s.get(a, b));
                        self.sparse_recompute_pair_with(a, b, ans);
                    }
                }
            }
            self.sparse.row_init[i] = true;
            self.sparse.pending[i] = PendingRow::default();
            return;
        }
        let mut js = std::mem::take(&mut self.sparse.pending[i].js);
        js.sort_unstable();
        js.dedup();
        for &j in &js {
            let j = j as usize;
            let (a, b) = if i < j { (i, j) } else { (j, i) };
            // Stale queue entries (already recomputed through the partner's
            // row or a direct `sees` probe) are skipped by the dirty check.
            if self
                .sparse
                .pairs
                .get(&pair_key(a, b))
                .is_some_and(|e| e.dirty)
            {
                self.misses += 1;
                let ans = answers.and_then(|s| s.get(a, b));
                self.sparse_recompute_pair_with(a, b, ans);
            }
        }
        js.clear();
        self.sparse.pending[i].js = js;
        self.sparse.pending[i].compact_at = 0;
    }

    /// The pairs the next [`Self::visible_of_into`] for robot `i` would
    /// recompute, **right now** (read-only; appended to `out` as sorted
    /// `(a, b)` endpoint pairs, deduplicated). This is the commutation
    /// interface of the parallel executor: two Looks whose plans share no
    /// pair recompute disjoint pair sets, so their kernel work can run
    /// concurrently and commit in either order with identical results —
    /// and since a robot's plan only ever contains its own pairs, two
    /// plans can only share the one pair joining the two robots.
    ///
    /// Valid until the next mutating call (a move dirties pairs and queues
    /// pending work; a refresh consumes it).
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn look_plan(&self, i: usize, out: &mut Vec<(usize, usize)>) {
        assert!(i < self.len(), "robot index out of bounds");
        match self.mode {
            WorldMode::Scratch => {}
            WorldMode::Incremental => {
                for j in 0..self.len() {
                    if j == i {
                        continue;
                    }
                    let (a, b) = if i < j { (i, j) } else { (j, i) };
                    if self.pairs[self.pair_index(a, b)].dirty {
                        out.push((a, b));
                    }
                }
            }
            WorldMode::Sparse => {
                if !self.sparse.row_init[i] {
                    for j in 0..self.len() {
                        if j == i {
                            continue;
                        }
                        let (a, b) = if i < j { (i, j) } else { (j, i) };
                        match self.sparse.pairs.get(&pair_key(a, b)) {
                            Some(e) if !e.dirty => {}
                            _ => out.push((a, b)),
                        }
                    }
                } else {
                    // Mirror the refresh's drain: sorted, deduplicated,
                    // dirty-only.
                    let mut js: Vec<u32> = self.sparse.pending[i].js.clone();
                    js.sort_unstable();
                    js.dedup();
                    for &j in &js {
                        let j = j as usize;
                        let (a, b) = if i < j { (i, j) } else { (j, i) };
                        if self
                            .sparse
                            .pairs
                            .get(&pair_key(a, b))
                            .is_some_and(|e| e.dirty)
                        {
                            out.push((a, b));
                        }
                    }
                }
            }
        }
    }

    /// Indices of the robots visible to robot `i`, ascending — the cached
    /// equivalent of `visible_set`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn visible_of(&mut self, i: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.visible_of_into(i, &mut out);
        out
    }

    /// Fills `out` with the (ascending) indices of the robots visible to
    /// robot `i` — [`Self::visible_of`] writing into caller-owned storage,
    /// so the engine's per-Look cost is free of allocation.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn visible_of_into(&mut self, i: usize, out: &mut Vec<usize>) {
        self.visible_of_into_with(i, out, None);
    }

    /// [`Self::visible_of_into`] with precomputed pair answers: every
    /// recompute the refresh hits is answered from `answers` when present
    /// (committing all bookkeeping here, serially) and recomputed in place
    /// otherwise. With `None` — or an empty set — this **is** the serial
    /// path: injection only moves kernel evaluations onto other threads,
    /// never changes what is computed, in which order it is committed, or
    /// what the telemetry counts.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn visible_of_into_with(
        &mut self,
        i: usize,
        out: &mut Vec<usize>,
        answers: Option<&PairAnswers>,
    ) {
        assert!(i < self.len(), "robot index out of bounds");
        out.clear();
        if self.mode == WorldMode::Scratch {
            out.extend(visible_set(i, &self.centers, &self.vis));
            return;
        }
        if self.mode == WorldMode::Sparse {
            // Refresh recomputes exactly the dirty pairs of row `i`; the
            // sorted adjacency list then *is* the ascending visible set.
            self.sparse_refresh_row_with(i, answers);
            out.extend(self.sparse.adj[i].iter().map(|&j| j as usize));
            return;
        }
        for j in 0..self.len() {
            if j == i {
                continue;
            }
            // Inlined `sees(i, j)` with the recompute optionally answered
            // by injection: same counters, same generation bump, same flip
            // rule, same registration walk.
            let (a, b) = if i < j { (i, j) } else { (j, i) };
            let idx = self.pair_index(a, b);
            let seen = if !self.pairs[idx].dirty {
                self.hits += 1;
                self.pairs[idx].seen
            } else {
                self.misses += 1;
                {
                    let entry = &mut self.pairs[idx];
                    entry.gen = entry.gen.wrapping_add(1);
                    entry.dirty = false;
                }
                let seen = match answers.and_then(|s| s.get(a, b)) {
                    Some(ans) => {
                        debug_assert!(ans.a == a && ans.b == b);
                        self.register_pair_dense(a, b, idx);
                        ans.seen
                    }
                    None => self.recompute_and_register_pair(a, b, idx),
                };
                if self.pairs[idx].seen != seen {
                    self.view_versions[a] += 1;
                    self.view_versions[b] += 1;
                }
                self.pairs[idx].seen = seen;
                seen
            };
            if seen {
                out.push(j);
            }
        }
    }

    /// Brings the hull cache up to date when stale and returns the
    /// all-on-hull flag. When exactly one robot moved since the last
    /// refresh (tracked by [`HullStaleness`], the common case on the
    /// event-serial schedule) the hull is **repaired in place** —
    /// [`ConvexHull::repair_point_move`] patches the sorted chain input and,
    /// when the corner polygon is unchanged, the boundary tags, skipping
    /// the O(n log n) rebuild. The repair is exact by construction, so the
    /// result is identical to a rebuild; multi-mover staleness or a repair
    /// refusal falls back to `rebuild_with`.
    fn refresh_hull(&mut self) -> bool {
        let stale = match (self.mode, self.hull_version) {
            (WorldMode::Scratch, _) => true,
            (_, Some(v)) => v != self.version,
            (_, None) => true,
        };
        if stale {
            let repaired = self.mode != WorldMode::Scratch
                && self.hull_version.is_some()
                && match self.hull_staleness {
                    HullStaleness::One(i) => {
                        self.hull
                            .repair_point_move(i, self.centers[i], &mut self.hull_scratch)
                    }
                    _ => false,
                };
            if repaired {
                self.hull_repairs += 1;
            } else {
                self.hull
                    .rebuild_with(&self.centers, &mut self.hull_scratch);
                if self.mode != WorldMode::Scratch {
                    self.hull_rebuilds += 1;
                }
            }
            self.hull_all_on = self.len() <= 2 || self.hull.all_on_hull();
            self.hull_version = Some(self.version);
        }
        self.hull_staleness = HullStaleness::Clean;
        self.hull_all_on
    }

    /// Convex hull of the centers (cached).
    pub fn hull(&mut self) -> &ConvexHull {
        self.refresh_hull();
        &self.hull
    }

    /// `true` when every center lies on the hull boundary (cached).
    pub fn all_on_hull(&mut self) -> bool {
        self.refresh_hull()
    }

    /// `true` when no two discs overlap beyond the touch tolerance.
    /// Grid-local in incremental mode (overlap is a contact-radius
    /// relation), identical in outcome to the global minimum-gap test.
    pub fn is_valid(&mut self) -> bool {
        if self.mode == WorldMode::Scratch {
            return GeometricConfig::is_valid_on(&self.centers);
        }
        if let Some((v, ok)) = self.valid_cache {
            if v == self.version {
                return ok;
            }
        }
        let mut cand = std::mem::take(&mut self.cand_buf);
        let mut ok = true;
        'outer: for i in 0..self.len() {
            self.grid
                .candidates_near_point(self.centers[i], 2.0 * UNIT_RADIUS, &mut cand);
            for &j in cand.iter().filter(|&&j| j > i) {
                // The same float expression as the reference (`gap >=
                // -TOUCH_TOL` in `GeometricConfig::is_valid_on`): the
                // algebraically equal `d < 2R - TOUCH_TOL` rounds
                // differently at the boundary.
                let gap = self.centers[i].distance(self.centers[j]) - 2.0 * UNIT_RADIUS;
                if gap < -TOUCH_TOL {
                    ok = false;
                    break 'outer;
                }
            }
        }
        self.cand_buf = cand;
        self.valid_cache = Some((self.version, ok));
        ok
    }

    /// `true` when the union of the discs is connected (cached; the
    /// tangency graph is built from grid neighbourhoods instead of all
    /// pairs).
    pub fn is_connected(&mut self) -> bool {
        if self.mode == WorldMode::Scratch {
            return GeometricConfig::is_connected_on(&self.centers);
        }
        if let Some((v, ok)) = self.connected_cache {
            if v == self.version {
                return ok;
            }
        }
        let n = self.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        let mut cand = std::mem::take(&mut self.cand_buf);
        for i in 0..n {
            self.grid.candidates_near_point(
                self.centers[i],
                2.0 * UNIT_RADIUS + TOUCH_TOL,
                &mut cand,
            );
            for &j in cand.iter().filter(|&&j| j > i) {
                let gap = self.centers[i].distance(self.centers[j]) - 2.0 * UNIT_RADIUS;
                if gap_touches(gap) {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        self.cand_buf = cand;
        let root = if n == 0 { 0 } else { find(&mut parent, 0) };
        let ok = n <= 1 || (0..n).all(|i| find(&mut parent, i) == root);
        self.connected_cache = Some((self.version, ok));
        ok
    }

    /// Minimum boundary-to-boundary gap over all pairs (`None` for fewer
    /// than two robots). The cache tracks the achieving pair so that a
    /// single move maintains it in O(n) (`update_min_gap_after_move`):
    /// only pairs involving the mover can lower the running minimum, and
    /// only a mover that *held* it can raise it (that case drops back to
    /// this full rescan). The cached value is always exactly what
    /// `min_pairwise_gap(centers)` returns — `min` over the same pair
    /// multiset is order-independent.
    pub fn min_pairwise_gap(&mut self) -> Option<f64> {
        if self.mode == WorldMode::Scratch {
            return min_pairwise_gap(&self.centers);
        }
        if let Some((v, entry)) = self.min_gap_cache {
            if v == self.version {
                return entry.map(|(gap, _)| gap);
            }
        }
        let n = self.len();
        let mut entry = None;
        for i in 0..n {
            for j in (i + 1)..n {
                let gap = self.centers[i].distance(self.centers[j]) - 2.0 * UNIT_RADIUS;
                if entry.map_or(true, |(best, _)| gap < best) {
                    entry = Some((gap, (i, j)));
                }
            }
        }
        self.min_gap_cache = Some((self.version, entry));
        debug_assert_eq!(
            entry.map(|(gap, _)| gap),
            min_pairwise_gap(&self.centers),
            "the argmin-tracking rescan must reproduce the reference fold"
        );
        entry.map(|(gap, _)| gap)
    }

    /// The gathering predicate (Definition 1): connected and fully visible.
    /// Exactly [`GeometricConfig::is_gathered_on`], with the sampled
    /// full-visibility fallback answered from the pair cache when the
    /// world's visibility parameters are the default ones that predicate
    /// uses.
    pub fn is_gathered(&mut self, collinearity_tol: f64) -> bool {
        if self.mode == WorldMode::Scratch {
            return GeometricConfig::is_gathered_on(&self.centers, collinearity_tol);
        }
        if !self.is_connected() {
            return false;
        }
        if self.all_on_hull() && no_three_collinear(&self.centers, collinearity_tol) {
            return true;
        }
        if self.vis == VisibilityConfig::default() {
            let n = self.len();
            for i in 0..n {
                for j in (i + 1)..n {
                    if !self.sees(i, j) {
                        return false;
                    }
                }
            }
            true
        } else {
            GeometricConfig::is_fully_visible_sampled_on(
                &self.centers,
                &VisibilityConfig::default(),
            )
        }
    }

    /// The configuration-level predicates behind one metrics sample, from
    /// the cached hull and connectivity.
    pub fn sample_predicates(&mut self, collinearity_tol: f64) -> SamplePredicates {
        if self.mode == WorldMode::Scratch {
            return SamplePredicates::from_centers(&self.centers, collinearity_tol);
        }
        let connected = self.is_connected();
        let all_on = self.refresh_hull();
        SamplePredicates::from_hull(&self.hull, all_on, connected, collinearity_tol)
    }

    /// Fills `out` with the (ascending) indices of every robot that could
    /// stop robot `i` within `allowed` travel from `start` along the unit
    /// direction `dir`: a superset of the discs within contact range of the
    /// swept capsule. In scratch mode this is simply every other robot.
    pub fn contact_candidates(
        &mut self,
        i: usize,
        start: Point,
        dir: Vec2,
        allowed: f64,
        out: &mut Vec<usize>,
    ) {
        if self.mode == WorldMode::Scratch {
            out.clear();
            out.extend((0..self.len()).filter(|&j| j != i));
            return;
        }
        let end = start + dir * (allowed + CONTACT_QUERY_MARGIN);
        self.grid.candidates_near_segment(
            start,
            end,
            2.0 * UNIT_RADIUS + CONTACT_QUERY_MARGIN,
            out,
        );
        out.retain(|&j| j != i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn world(centers: Vec<Point>, mode: WorldMode) -> World {
        World::new(centers, VisibilityConfig::default(), mode)
    }

    /// Every derived answer of an incremental world must equal the
    /// from-scratch answer on the same centers.
    fn assert_matches_scratch(w: &mut World) {
        let centers = w.centers().to_vec();
        let vis = VisibilityConfig::default();
        for i in 0..centers.len() {
            assert_eq!(
                w.visible_of(i),
                visible_set(i, &centers, &vis),
                "visible set of robot {i} diverged"
            );
        }
        assert_eq!(w.is_valid(), GeometricConfig::is_valid_on(&centers));
        assert_eq!(w.is_connected(), GeometricConfig::is_connected_on(&centers));
        assert_eq!(w.all_on_hull(), GeometricConfig::all_on_hull_on(&centers));
        assert_eq!(
            w.is_gathered(1e-9),
            GeometricConfig::is_gathered_on(&centers, 1e-9)
        );
        assert_eq!(w.min_pairwise_gap(), min_pairwise_gap(&centers));
    }

    #[test]
    fn fresh_world_matches_scratch_everywhere() {
        let mut w = world(
            vec![
                p(0.0, 0.0),
                p(3.0, 0.5),
                p(6.0, -0.5),
                p(2.0, 4.0),
                p(5.0, 3.0),
            ],
            WorldMode::Incremental,
        );
        assert_matches_scratch(&mut w);
    }

    #[test]
    fn moves_invalidate_exactly_what_they_must() {
        let mut w = world(
            vec![p(0.0, 0.0), p(10.0, 0.0), p(20.0, 0.0), p(10.0, 12.0)],
            WorldMode::Incremental,
        );
        assert_matches_scratch(&mut w);
        // Slide the middle robot off the 0–2 corridor: 0 and 2 regain sight.
        w.move_robot(1, p(10.0, 5.0));
        assert_matches_scratch(&mut w);
        assert!(w.sees(0, 2));
        // And back on: they lose it again.
        w.move_robot(1, p(10.0, 0.0));
        assert_matches_scratch(&mut w);
        assert!(!w.sees(0, 2));
    }

    #[test]
    fn unrelated_pairs_hit_the_cache_after_a_move() {
        let mut w = world(
            vec![p(0.0, 0.0), p(6.0, 0.0), p(100.0, 100.0), p(106.0, 100.0)],
            WorldMode::Incremental,
        );
        // Warm every pair.
        for i in 0..4 {
            let _ = w.visible_of(i);
        }
        let (_, misses_before) = w.cache_stats();
        // A far-away move cannot touch the 0–1 corridor.
        w.move_robot(2, p(101.0, 100.0));
        assert!(w.sees(0, 1));
        let (hits, misses) = w.cache_stats();
        assert_eq!(
            misses, misses_before,
            "the 0-1 pair must be answered from the cache"
        );
        assert!(hits > 0);
        // But pairs involving the mover are recomputed.
        assert!(w.sees(2, 3));
        let (_, misses_after) = w.cache_stats();
        assert_eq!(misses_after, misses_before + 1);
    }

    #[test]
    fn scratch_mode_reports_no_cache_traffic() {
        let mut w = world(vec![p(0.0, 0.0), p(5.0, 0.0)], WorldMode::Scratch);
        assert!(w.sees(0, 1));
        let _ = w.visible_of(0);
        let _ = w.hull();
        assert_eq!(w.cache_stats(), (0, 0));
        assert_eq!(w.hull_repair_stats(), (0, 0));
    }

    #[test]
    fn view_versions_bump_only_for_affected_robots() {
        // A line of robots: each sees only its neighbours (the middle
        // discs occlude the far ones).
        let mut w = world(
            vec![p(0.0, 0.0), p(10.0, 0.0), p(20.0, 0.0), p(30.0, 0.0)],
            WorldMode::Incremental,
        );
        // Clean every pair (the state right after everybody Looked).
        for i in 0..4 {
            assert_eq!(w.visible_of(i).len(), if i == 0 || i == 3 { 1 } else { 2 });
        }
        let before: Vec<u64> = (0..4).map(|i| w.view_version(i)).collect();
        // Robot 3 slides along the line, staying hidden from 0 and 1: only
        // the mover and its one watcher (robot 2) may be bumped, so 0's and
        // 1's cached decisions stay replayable.
        w.move_robot(3, p(31.0, 0.0));
        for i in 0..4 {
            let _ = w.visible_of(i); // re-Look: flips (none here) would bump
        }
        assert_eq!(w.view_version(0), before[0], "robot 0 cannot see the move");
        assert_eq!(w.view_version(1), before[1], "robot 1 cannot see the move");
        assert!(w.view_version(2) > before[2], "robot 2 watches the mover");
        assert!(
            w.view_version(3) > before[3],
            "the mover's own view changed"
        );
        // With every row clean and stable, further queries bump nothing.
        let snapshot: Vec<u64> = (0..4).map(|i| w.view_version(i)).collect();
        for i in 0..4 {
            let _ = w.visible_of(i);
        }
        let _ = w.hull();
        let _ = w.is_gathered(1e-9);
        assert_eq!(
            snapshot,
            (0..4).map(|i| w.view_version(i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn visibility_flips_bump_versions_at_the_recompute() {
        // Robot 1 occludes the 0–2 sight line; moving it away flips the
        // (0, 2) pair. The flip is detected when the dirty pair is next
        // recomputed — robot 0's version must differ between the two
        // post-Look states even though robot 0 never moved and never saw
        // the mover... (it does see robot 1 here, so the seen-pair rule
        // already bumps it; the flip rule is what carries configurations
        // where the occluder is itself invisible — pinned by the proptests
        // against arbitrary scripts.)
        let mut w = world(
            vec![p(0.0, 0.0), p(10.0, 0.0), p(20.0, 0.0)],
            WorldMode::Incremental,
        );
        let vis0 = w.visible_of(0);
        assert_eq!(vis0, vec![1]);
        let v0 = w.view_version(0);
        w.move_robot(1, p(10.0, 8.0));
        let vis0_after = w.visible_of(0);
        assert_eq!(vis0_after, vec![1, 2], "0 regains sight of 2");
        assert!(
            w.view_version(0) > v0,
            "a flipped pair must invalidate the affected views"
        );
    }

    #[test]
    fn unchanged_view_version_guarantees_identical_visible_set() {
        let mut w = world(
            vec![p(0.0, 0.0), p(10.0, 0.0), p(20.0, 0.0), p(10.0, 12.0)],
            WorldMode::Incremental,
        );
        let mut seen: Vec<(u64, Vec<usize>)> = (0..4)
            .map(|i| {
                let vis = w.visible_of(i);
                (w.view_version(i), vis)
            })
            .collect();
        for (step, &(m, to)) in [
            (1, p(10.0, 5.0)),
            (3, p(10.0, 0.5)),
            (1, p(10.0, 0.0)),
            (0, p(0.0, 1.0)),
        ]
        .iter()
        .enumerate()
        {
            w.move_robot(m, to);
            for (i, slot) in seen.iter_mut().enumerate() {
                let vis = w.visible_of(i);
                let v = w.view_version(i);
                if v == slot.0 {
                    assert_eq!(
                        vis, slot.1,
                        "step {step}: version of robot {i} held but its visible set changed"
                    );
                }
                *slot = (v, vis);
            }
        }
    }

    #[test]
    fn hull_refresh_repairs_single_movers_and_rebuilds_otherwise() {
        let mut w = world(
            vec![
                p(0.0, 0.0),
                p(20.0, 0.0),
                p(20.0, 20.0),
                p(0.0, 20.0),
                p(10.0, 10.0),
            ],
            WorldMode::Incremental,
        );
        let _ = w.hull(); // cold: full build
        assert_eq!(w.hull_repair_stats(), (0, 1));
        // One mover (even over several moves) is repaired in place.
        w.move_robot(4, p(11.0, 11.0));
        w.move_robot(4, p(12.0, 9.0));
        assert!(!w.all_on_hull());
        assert_eq!(w.hull_repair_stats(), (1, 1));
        // The repaired structure answers like a from-scratch world.
        assert_matches_scratch(&mut w);
        // Two distinct movers force a rebuild.
        w.move_robot(0, p(-1.0, 0.0));
        w.move_robot(4, p(10.0, 10.0));
        let _ = w.hull();
        let (repairs, rebuilds) = w.hull_repair_stats();
        assert_eq!(repairs, 1);
        assert!(rebuilds >= 2);
        // An interior mover crossing onto the hull boundary repairs too.
        w.move_robot(4, p(25.0, 10.0));
        assert!(w.hull().index_on_hull(4));
        assert_matches_scratch(&mut w);
    }

    #[test]
    fn move_to_same_position_is_a_noop() {
        let mut w = world(vec![p(0.0, 0.0), p(5.0, 0.0)], WorldMode::Incremental);
        let _ = w.visible_of(0);
        let (_, misses) = w.cache_stats();
        w.move_robot(0, p(0.0, 0.0));
        let _ = w.visible_of(0);
        let (hits, misses_after) = w.cache_stats();
        assert_eq!(misses_after, misses, "a no-op move must not invalidate");
        assert!(hits >= 1);
    }

    #[test]
    fn single_robot_world_is_trivially_fine() {
        let mut w = world(vec![p(1.0, 1.0)], WorldMode::Incremental);
        assert!(w.visible_of(0).is_empty());
        assert!(w.is_valid());
        assert!(w.is_connected());
        assert_eq!(w.min_pairwise_gap(), None);
    }

    #[test]
    fn overlap_is_detected_incrementally() {
        let mut w = world(vec![p(0.0, 0.0), p(5.0, 0.0)], WorldMode::Incremental);
        assert!(w.is_valid());
        w.move_robot(1, p(1.0, 0.0));
        assert!(!w.is_valid());
        assert!(w.min_pairwise_gap().unwrap() < 0.0);
    }

    #[test]
    fn long_jumps_across_many_cells_invalidate_both_endpoints() {
        // Robot 2 jumps from far away straight onto the 0–1 corridor: the
        // pair (0, 1) was computed with an empty corridor, and the only
        // cells that see the move are the jump's endpoints.
        let mut w = world(
            vec![p(0.0, 0.0), p(10.0, 0.0), p(5.0, 50.0)],
            WorldMode::Incremental,
        );
        assert!(w.sees(0, 1));
        w.move_robot(2, p(5.0, 0.0));
        assert!(!w.sees(0, 1), "the newcomer must block the sight line");
        assert_matches_scratch(&mut w);
        // And jumping away again restores it.
        w.move_robot(2, p(5.0, 50.0));
        assert!(w.sees(0, 1));
        assert_matches_scratch(&mut w);
    }

    #[test]
    fn repeated_recomputation_does_not_leak_registrations() {
        // Oscillate one robot through a corridor many times; the far cells
        // of the corridor accumulate registrations that the compaction
        // bound must keep finite.
        let mut w = world(
            vec![p(0.0, 0.0), p(40.0, 0.0), p(20.0, 3.0)],
            WorldMode::Incremental,
        );
        for k in 0..500 {
            let y = if k % 2 == 0 { 0.0 } else { 3.0 };
            w.move_robot(2, p(20.0, y));
            let _ = w.visible_of(0);
        }
        let worst = w
            .cell_pairs
            .values()
            .map(|r| r.refs.len())
            .max()
            .unwrap_or(0);
        assert!(
            worst <= 2 * REGISTRATION_COMPACT_LEN,
            "registration lists must stay bounded (worst {worst})"
        );
        assert_matches_scratch(&mut w);
    }

    #[test]
    fn sparse_world_matches_scratch_through_moves() {
        let mut w = world(
            vec![p(0.0, 0.0), p(10.0, 0.0), p(20.0, 0.0), p(10.0, 12.0)],
            WorldMode::Sparse,
        );
        assert_matches_scratch(&mut w);
        w.move_robot(1, p(10.0, 5.0));
        assert_matches_scratch(&mut w);
        assert!(w.sees(0, 2));
        w.move_robot(1, p(10.0, 0.0));
        assert_matches_scratch(&mut w);
        assert!(!w.sees(0, 2));
        w.move_robot(3, p(9.0, 11.0));
        w.move_robot(0, p(1.0, 0.5));
        assert_matches_scratch(&mut w);
    }

    #[test]
    fn sparse_and_dense_agree_event_for_event() {
        let centers = vec![
            p(0.0, 0.0),
            p(10.0, 0.0),
            p(20.0, 0.0),
            p(10.0, 12.0),
            p(5.0, 30.0),
        ];
        let mut s = world(centers.clone(), WorldMode::Sparse);
        let mut d = world(centers, WorldMode::Incremental);
        let script = [
            (1, p(10.0, 5.0)),
            (4, p(5.0, 1.0)),
            (3, p(10.0, 0.5)),
            (1, p(10.0, 0.0)),
            (0, p(0.0, 1.0)),
            (4, p(5.0, 30.0)),
        ];
        for &(m, to) in &script {
            s.move_robot(m, to);
            d.move_robot(m, to);
            for i in 0..s.len() {
                assert_eq!(
                    s.visible_of(i),
                    d.visible_of(i),
                    "sparse and dense visible sets of robot {i} diverged"
                );
                // The two modes share the exact invalidation rule (the
                // dirtied-pair set is identical), so the view-version
                // streams — the engine's decision-cache keys — must match
                // bump-for-bump, not just in their guarantee.
                assert_eq!(
                    s.view_version(i),
                    d.view_version(i),
                    "view-version stream of robot {i} diverged"
                );
            }
            assert_eq!(s.is_valid(), d.is_valid());
            assert_eq!(s.is_connected(), d.is_connected());
            assert_eq!(s.all_on_hull(), d.all_on_hull());
            assert_eq!(s.is_gathered(1e-9), d.is_gathered(1e-9));
            assert_eq!(s.min_pairwise_gap(), d.min_pairwise_gap());
        }
    }

    #[test]
    fn sparse_pair_store_only_materializes_queried_rows() {
        let n = 40;
        let centers: Vec<Point> = (0..n)
            .map(|i| p((i % 8) as f64 * 5.0, (i / 8) as f64 * 5.0))
            .collect();
        let mut w = world(centers, WorldMode::Sparse);
        let _ = w.visible_of(0);
        let (entries, _) = w.pair_store_stats();
        assert_eq!(
            entries,
            (n - 1) as u64,
            "one row refresh must materialize exactly its own pairs"
        );
    }

    #[test]
    fn sparse_long_chords_register_coarsely_and_still_invalidate() {
        // The 0–1 chord is far longer than SPARSE_REG_SPAN_CELLS base
        // cells, so its corridor registers at a coarse level; a robot
        // jumping into the corridor must still dirty it through the
        // coarse-cell drain.
        let mut w = world(
            vec![p(0.0, 0.0), p(200.0, 0.0), p(100.0, 50.0)],
            WorldMode::Sparse,
        );
        assert!(w.sees(0, 1));
        w.move_robot(2, p(100.0, 0.0));
        assert!(!w.sees(0, 1), "the newcomer must block the long sight line");
        assert_matches_scratch(&mut w);
        w.move_robot(2, p(100.0, 50.0));
        assert!(w.sees(0, 1));
        assert_matches_scratch(&mut w);
    }

    #[test]
    fn sparse_registrations_and_pending_queues_stay_bounded() {
        let mut w = world(
            vec![p(0.0, 0.0), p(40.0, 0.0), p(20.0, 3.0)],
            WorldMode::Sparse,
        );
        for k in 0..500 {
            let y = if k % 2 == 0 { 0.0 } else { 3.0 };
            w.move_robot(2, p(20.0, y));
            let _ = w.visible_of(0);
        }
        let worst = w
            .sparse
            .regs
            .iter()
            .flat_map(CellMap::values)
            .map(|r| r.refs.len())
            .max()
            .unwrap_or(0);
        assert!(
            worst <= 2 * REGISTRATION_COMPACT_LEN,
            "sparse registration lists must stay bounded (worst {worst})"
        );
        let worst_pending = w.sparse.pending.iter().map(|q| q.js.len()).max().unwrap();
        assert!(
            worst_pending <= 2 * REGISTRATION_COMPACT_LEN.max(w.len()),
            "pending queues must stay bounded (worst {worst_pending})"
        );
        assert_matches_scratch(&mut w);
    }

    #[test]
    fn contact_candidates_cover_the_swept_path() {
        let mut w = world(
            vec![p(0.0, 0.0), p(10.0, 0.0), p(5.0, 30.0)],
            WorldMode::Incremental,
        );
        let mut out = Vec::new();
        w.contact_candidates(0, p(0.0, 0.0), Vec2::new(1.0, 0.0), 9.0, &mut out);
        assert!(out.contains(&1), "the disc ahead must be a candidate");
        assert!(!out.contains(&0), "the mover itself is excluded");
        let mut scratch = world(
            vec![p(0.0, 0.0), p(10.0, 0.0), p(5.0, 30.0)],
            WorldMode::Scratch,
        );
        scratch.contact_candidates(0, p(0.0, 0.0), Vec2::new(1.0, 0.0), 9.0, &mut out);
        assert_eq!(out, vec![1, 2], "scratch mode scans everyone");
    }
}
