//! The discrete-event execution engine.
//!
//! The engine owns the ground-truth robot configuration and applies one
//! event per [`Simulator::step`]: the adversary chooses which robot acts and
//! how far it may travel; the engine realises the corresponding event of the
//! paper's model (`Look`, `Compute`, `Done`, `Move`, `Stop`, `Collide`,
//! `Arrive`), enforcing
//!
//! * the Look–Compute–Move cycle of Figure 1 (phase transitions are checked
//!   by the model layer),
//! * the liveness conditions (minimum δ-progress per move),
//! * physical validity (motion stops at first contact; discs never overlap).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fatrobots_core::{ComputeScratch, Decision, Strategy};
use fatrobots_geometry::visibility::VisibilityConfig;
use fatrobots_geometry::{Point, UNIT_RADIUS};
use fatrobots_model::{LocalView, Phase, RobotConfig, RobotId};
use fatrobots_scheduler::{Adversary, Directive, Event, Liveness, MotionControl, SystemSnapshot};

use crate::metrics::Metrics;
use crate::parallel::{self, ComputeSource, ParState, Planned};
use crate::trace::ExecutionTrace;
use crate::world::{World, WorldMode};

/// Tolerance for "the robot reached its target" and for contact detection.
const ARRIVAL_TOL: f64 = 1e-9;

/// A cooperative cancellation flag for [`Simulator::run`] /
/// [`Simulator::run_observed`].
///
/// The default (disarmed) flag can never fire and costs one branch per
/// event. An armed flag ([`CancelFlag::armed`]) is a shared atomic a
/// supervisor — the sweep pool's watchdog, say — can raise from another
/// thread; the event loop polls it between events and stops gracefully at
/// the next event boundary, returning a [`RunOutcome`] with
/// [`cancelled`](RunOutcome::cancelled) set. Cancellation never tears an
/// event in half: the world state stays valid, exactly as if the event
/// budget had run out.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Option<Arc<AtomicBool>>);

impl CancelFlag {
    /// A flag that can actually be raised (the default is inert).
    pub fn armed() -> Self {
        CancelFlag(Some(Arc::new(AtomicBool::new(false))))
    }

    /// Raises the flag. No-op on a disarmed flag.
    pub fn cancel(&self) {
        if let Some(flag) = &self.0 {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the flag has been raised. Always `false` when disarmed.
    pub fn is_cancelled(&self) -> bool {
        match &self.0 {
            Some(flag) => flag.load(Ordering::Relaxed),
            None => false,
        }
    }
}

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Event budget: the run stops (unsuccessfully) after this many events.
    pub max_events: usize,
    /// The liveness parameters (δ).
    pub liveness: Liveness,
    /// Parameters of the sampling-based visibility oracle used for the Look
    /// snapshots.
    pub visibility: VisibilityConfig,
    /// Collinearity tolerance used by the gathered-predicate checks.
    pub collinearity_tol: f64,
    /// Record the full event trace (memory proportional to the run length).
    pub record_trace: bool,
    /// Record a configuration-level sample every this many events
    /// (0 disables sampling).
    pub sample_every: usize,
    /// How the engine maintains the derived world state: incrementally (the
    /// default — cached visibility matrix, lazily recomputed hull and
    /// predicates) or from scratch on every query. Both modes produce the
    /// identical event stream; scratch mode exists as the reference
    /// behaviour for the determinism suite.
    pub world_mode: WorldMode,
    /// Memoize decisions per robot, keyed on the world's view version (the
    /// default): a Compute event whose robot provably has the same view as
    /// at its previous decision replays that decision in O(1) instead of
    /// running `Strategy::decide_with`. Semantics-preserving for any
    /// [`Strategy`] that reports [`memoizable`](Strategy::memoizable) (the
    /// strategy is a deterministic function of the view; the equivalence
    /// suite pins the event streams). `false` forces every Compute through
    /// the full pipeline — the reference behaviour for those pins.
    pub decision_cache: bool,
    /// Thread budget for [`Simulator::run`]/[`Simulator::run_observed`]
    /// (calling thread included). With the default `1` the engine runs its
    /// plain serial event loop; with more, runs go through the
    /// [deterministic parallel executor](crate::parallel) — commutation
    /// batching plus speculative Compute — which is pinned event-for-event
    /// identical to serial, so only throughput changes. Single-stepping via
    /// [`Simulator::step`] is always serial.
    pub threads: usize,
    /// Cooperative cancellation flag polled between events by
    /// [`Simulator::run`] / [`Simulator::run_observed`]. The default
    /// disarmed flag never fires; the supervised sweep pool arms one per
    /// run so its watchdog can stop a hung run at a clean event boundary.
    pub cancel: CancelFlag,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_events: 200_000,
            liveness: Liveness::default(),
            visibility: VisibilityConfig::default(),
            collinearity_tol: 1e-9,
            record_trace: false,
            sample_every: 50,
            world_mode: WorldMode::Incremental,
            decision_cache: true,
            threads: 1,
            cancel: CancelFlag::default(),
        }
    }
}

/// Result of a completed (or aborted) run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// `true` when every robot terminated — or, under fault injection, when
    /// every robot either terminated or was permanently crashed by the
    /// adversary ([`Simulator::effectively_terminated`]).
    pub terminated: bool,
    /// `true` when the run terminated *and* the final configuration is
    /// connected and fully visible — the postcondition of Theorem 26. Under
    /// fault injection the criterion is restricted to the live robots
    /// ([`Simulator::is_gathered_live`]).
    pub gathered: bool,
    /// Number of events applied.
    pub events: usize,
    /// `true` when the run was stopped early by its [`CancelFlag`] (the
    /// sweep watchdog, for instance) rather than by termination or the
    /// event budget. A cancelled run is never `terminated` or `gathered`.
    pub cancelled: bool,
    /// The collected metrics.
    pub metrics: Metrics,
}

/// The simulator: ground-truth state plus the pluggable strategy and
/// adversary.
pub struct Simulator {
    /// Shared so speculative-Compute workers can decide on clones of the
    /// Look snapshots; strategies are stateless (`Send + Sync` supertrait).
    strategy: Arc<dyn Strategy>,
    adversary: Box<dyn Adversary>,
    config: SimConfig,
    world: World,
    phases: Vec<Phase>,
    /// One snapshot per robot, refilled in place on every Look event (the
    /// contents are only meaningful between a robot's Look and Compute).
    views: Vec<LocalView>,
    decisions: Vec<Option<Decision>>,
    targets: Vec<Option<Point>>,
    metrics: Metrics,
    trace: ExecutionTrace,
    /// Reusable buffer for the motion integrator's contact candidates.
    contact_buf: Vec<usize>,
    /// Reusable buffer for the Look snapshots' visible-index sets.
    visible_buf: Vec<usize>,
    /// The Compute arena, reused across every decision of the run.
    scratch: ComputeScratch,
    /// `true` when decisions are memoized: the config asked for it and the
    /// strategy declared itself a pure function of the view.
    memoize: bool,
    /// Per-robot memoized decision: the view version it was decided at,
    /// and the decision itself. Replayed on Compute while the robot's view
    /// version is unchanged.
    decision_cache: Vec<Option<(u64, Decision)>>,
    /// Decision-cache telemetry: Compute events answered by replaying the
    /// memoized decision vs. running the Compute pipeline.
    decision_hits: u64,
    decision_misses: u64,
    /// The parallel executor's planner buffers, speculation pool, and
    /// telemetry; inert while the engine runs serially.
    par: ParState,
}

impl Simulator {
    /// Creates a simulator for the given initial centers.
    ///
    /// # Panics
    /// Panics if the initial configuration is invalid (two discs overlap) or
    /// empty.
    pub fn new(
        centers: Vec<Point>,
        strategy: Box<dyn Strategy>,
        adversary: Box<dyn Adversary>,
        config: SimConfig,
    ) -> Self {
        assert!(!centers.is_empty(), "a simulation needs at least one robot");
        let n = centers.len();
        let mut world = World::new(centers, config.visibility, config.world_mode);
        assert!(
            world.is_valid(),
            "the initial configuration must not contain overlapping robots"
        );
        let views = (0..n)
            .map(|i| LocalView::new(world.center(i), Vec::new(), n))
            .collect();
        let memoize = config.decision_cache && strategy.memoizable();
        let mut sim = Simulator {
            strategy: Arc::from(strategy),
            adversary,
            config,
            world,
            phases: vec![Phase::Wait; n],
            views,
            decisions: vec![None; n],
            targets: vec![None; n],
            metrics: Metrics::default(),
            trace: ExecutionTrace::default(),
            contact_buf: Vec::new(),
            visible_buf: Vec::new(),
            scratch: ComputeScratch::default(),
            memoize,
            decision_cache: vec![None; n],
            decision_hits: 0,
            decision_misses: 0,
            par: ParState::default(),
        };
        if sim.config.sample_every > 0 {
            let predicates = sim.world.sample_predicates(sim.config.collinearity_tol);
            sim.metrics.record_sample_predicates(predicates);
        }
        sim
    }

    /// Number of robots.
    pub fn len(&self) -> usize {
        self.world.len()
    }

    /// `true` when the simulation has no robots (never constructed so).
    pub fn is_empty(&self) -> bool {
        self.world.is_empty()
    }

    /// Current robot centers.
    pub fn centers(&self) -> &[Point] {
        self.world.centers()
    }

    /// The incremental world state (centers plus cached derived state).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Visibility-cache telemetry: `(hits, misses)` of the world's pairwise
    /// visibility cache over the run so far.
    pub fn visibility_cache_stats(&self) -> (u64, u64) {
        self.world.cache_stats()
    }

    /// Decision-cache telemetry: `(hits, misses)` — Compute events answered
    /// by replaying the memoized decision vs. running the Compute pipeline.
    /// Both are 0 with the cache disabled.
    pub fn decision_cache_stats(&self) -> (u64, u64) {
        (self.decision_hits, self.decision_misses)
    }

    /// Hull-cache telemetry: `(repairs, rebuilds)` of the world's lazily
    /// maintained hull — refreshes served by the single-mover in-place
    /// repair vs. full rebuilds.
    pub fn hull_repair_stats(&self) -> (u64, u64) {
        self.world.hull_repair_stats()
    }

    /// Pair-store telemetry: `(entries, registrations)` of the world's
    /// visibility pair store — materialized pair entries and live corridor
    /// registrations (see [`World::pair_store_stats`]).
    pub fn pair_store_stats(&self) -> (u64, u64) {
        self.world.pair_store_stats()
    }

    /// Current robot phases.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Robot `i`'s most recent Look snapshot. Meaningful from the robot's
    /// Look event until its next Look (the buffer is refilled in place);
    /// in particular it is exactly the view its pending decision was
    /// computed from while that decision is still pending.
    pub fn view_of(&self, i: usize) -> &LocalView {
        &self.views[i]
    }

    /// Robot `i`'s pending decision: `Some` between its Compute event and
    /// the dispatch of the resulting Move/Done. The shadow oracle replays
    /// the paired [`Self::view_of`] snapshot under other kernels and
    /// compares against this value.
    pub fn pending_decision(&self, i: usize) -> Option<Decision> {
        self.decisions[i]
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The execution trace (non-empty only when trace recording is enabled).
    pub fn trace(&self) -> &ExecutionTrace {
        &self.trace
    }

    /// The current robot configuration (phases plus geometry).
    pub fn robot_config(&self) -> RobotConfig {
        RobotConfig::new(self.phases.clone(), self.world.centers().to_vec())
    }

    /// `true` when every robot has terminated.
    pub fn all_terminated(&self) -> bool {
        self.phases.iter().all(|p| p.is_terminal())
    }

    /// `true` when every robot has either terminated or been permanently
    /// crashed by a fault adversary ([`Adversary::permanently_stopped`]).
    /// This is the graceful-degradation termination criterion: a crashed
    /// victim never activates again, so waiting for its Terminate would
    /// spin forever. Without fault injection this is exactly
    /// [`Self::all_terminated`].
    pub fn effectively_terminated(&self) -> bool {
        self.phases
            .iter()
            .enumerate()
            .all(|(i, p)| p.is_terminal() || self.adversary.permanently_stopped(i))
    }

    /// `true` when the current geometric configuration is connected and
    /// fully visible.
    pub fn is_gathered(&mut self) -> bool {
        self.world.is_gathered(self.config.collinearity_tol)
    }

    /// The gathering predicate restricted to the *live* robots: victims a
    /// fault adversary crashed permanently are excluded — they froze where
    /// the fault caught them and cannot be gathered, so under graceful
    /// degradation the survivors' configuration is what counts. Identical
    /// to [`Self::is_gathered`] when no robot crashed.
    pub fn is_gathered_live(&mut self) -> bool {
        let crashed: Vec<usize> = (0..self.len())
            .filter(|&i| self.adversary.permanently_stopped(i))
            .collect();
        if crashed.is_empty() {
            return self.is_gathered();
        }
        let live: Vec<Point> = self
            .world
            .centers()
            .iter()
            .enumerate()
            .filter(|(i, _)| crashed.binary_search(i).is_err())
            .map(|(_, &c)| c)
            .collect();
        fatrobots_model::GeometricConfig::is_gathered_on(&live, self.config.collinearity_tol)
    }

    /// The fault-injection counters of the run's adversary (all zero for
    /// fault-free adversaries).
    pub fn fault_stats(&self) -> fatrobots_scheduler::FaultStats {
        self.adversary.fault_stats()
    }

    /// Applies one adversary-chosen event. Returns `None` when every robot
    /// has terminated (no event can be applied).
    pub fn step(&mut self) -> Option<Event> {
        let directive = {
            let snapshot = SystemSnapshot {
                phases: &self.phases,
                centers: self.world.centers(),
                targets: &self.targets,
                delta: self.config.liveness.delta(),
            };
            self.adversary.next(&snapshot)?
        };
        let event = self.apply(directive);
        self.post_event(&event);
        Some(event)
    }

    /// The per-event epilogue shared by the serial and parallel loops:
    /// metrics, trace, sampling, and the validity check.
    fn post_event(&mut self, event: &Event) {
        self.metrics.record_event(event);
        if self.config.record_trace {
            self.trace.push_event(event.clone());
        }
        if self.config.sample_every > 0 && self.metrics.events % self.config.sample_every == 0 {
            let predicates = self.world.sample_predicates(self.config.collinearity_tol);
            self.metrics.record_sample_predicates(predicates);
            if self.config.record_trace {
                self.trace
                    .push_snapshot(self.metrics.events, self.world.centers().to_vec());
            }
        }
        debug_assert!(
            self.world.is_valid(),
            "the engine must never produce overlapping robots"
        );
    }

    /// Runs until every robot terminates or the event budget is exhausted.
    pub fn run(&mut self) -> RunOutcome {
        self.run_observed(|_, _| {})
    }

    /// [`Self::run`] with a per-event observer: after each applied event the
    /// observer sees the simulator (immutably) and the event. The event
    /// stream is identical to [`Self::run`] — the observer only watches.
    /// This is the hook the shadow oracle uses to re-decide every Compute
    /// event under other kernels while the engine stays on the default path.
    pub fn run_observed(&mut self, mut observer: impl FnMut(&Simulator, &Event)) -> RunOutcome {
        let mut cancelled = false;
        if self.config.threads > 1 {
            cancelled = self.run_parallel(&mut observer);
        } else {
            while self.metrics.events < self.config.max_events {
                if self.config.cancel.is_cancelled() {
                    cancelled = true;
                    break;
                }
                match self.step() {
                    Some(event) => observer(self, &event),
                    None => break,
                }
            }
        }
        // Record one final sample so the series always covers the end state.
        if self.config.sample_every > 0 {
            let predicates = self.world.sample_predicates(self.config.collinearity_tol);
            self.metrics.record_sample_predicates(predicates);
        }
        // Graceful degradation under fault injection: robots a fault
        // adversary crashed permanently count as (unsuccessfully)
        // terminated, and the gathering criterion is restricted to the
        // live robots. Without faults both reduce to the plain criteria.
        let terminated = !cancelled && self.effectively_terminated();
        RunOutcome {
            terminated,
            gathered: terminated && self.is_gathered_live(),
            events: self.metrics.events,
            cancelled,
            metrics: self.metrics.clone(),
        }
    }

    /// Order-sensitive FNV-1a fingerprint of the engine's observable state:
    /// the applied-event count followed by every center's exact bit
    /// pattern. Determinism makes this a complete progress witness — two
    /// runs of the same [`RunSpec`](crate::experiment::RunSpec) agree on
    /// the fingerprint at every event index — which is what the
    /// [checkpoint](crate::checkpoint) records store to cross-check a
    /// resumed replay.
    pub fn fingerprint(&self) -> u64 {
        let fnv = |h: u64, v: u64| (h ^ v).wrapping_mul(0x100_0000_01b3);
        let mut h = fnv(0xcbf2_9ce4_8422_2325_u64, self.metrics.events as u64);
        for c in self.world.centers() {
            h = fnv(h, c.x.to_bits());
            h = fnv(h, c.y.to_bits());
        }
        h
    }

    fn apply(&mut self, directive: Directive) -> Event {
        let RobotId(i) = directive.robot;
        assert!(i < self.len(), "adversary scheduled an unknown robot");
        match self.phases[i] {
            Phase::Terminate => {
                // A well-behaved adversary never schedules a terminated
                // robot; treat it as a harmless no-op Look-less event.
                Event::Stop(RobotId(i))
            }
            Phase::Wait => {
                let mut visible = std::mem::take(&mut self.visible_buf);
                self.world.visible_of_into(i, &mut visible);
                self.views[i].refill_from_visible(self.world.centers(), i, &visible);
                // Stamp *after* the snapshot: `visible_of_into` recomputes
                // every dirty pair of row `i`, and a recompute that flips a
                // pair bumps the version — the stamp must include those
                // bumps for the version⇒identical-view guarantee to hold.
                self.views[i].stamp_version(self.world.view_version(i));
                self.visible_buf = visible;
                self.phases[i] = Phase::Look;
                self.maybe_fire_spec(i);
                Event::Look(RobotId(i))
            }
            Phase::Look => {
                // The decision is a pure function of the view (Section
                // 4.1), and an unchanged view version guarantees an
                // unchanged view: replay the memoized decision when the
                // robot's world provably did not change since it last
                // decided, skipping the Compute pipeline entirely.
                let version = self.views[i].version();
                let decision = match self.decision_cache[i] {
                    Some((v, d)) if self.memoize && v == version => {
                        self.decision_hits += 1;
                        d
                    }
                    _ => {
                        // A parallel run may have speculated this decision
                        // when the Look stamped the version; consuming it
                        // (waiting for an in-flight worker if need be) is
                        // bit-identical to deciding inline — the worker ran
                        // `decide_with` on a clone of the same snapshot.
                        let d = match self.par.take_spec(i, version) {
                            Some(d) => d,
                            None => self.strategy.decide_with(&self.views[i], &mut self.scratch),
                        };
                        if self.memoize {
                            self.decision_misses += 1;
                            self.decision_cache[i] = Some((version, d));
                        }
                        d
                    }
                };
                self.decisions[i] = Some(decision);
                self.phases[i] = Phase::Compute;
                Event::Compute(RobotId(i))
            }
            Phase::Compute => {
                match self.decisions[i].take() {
                    Some(Decision::Terminate) => {
                        self.phases[i] = Phase::Terminate;
                        Event::Done(RobotId(i))
                    }
                    Some(Decision::MoveTo(target)) => {
                        self.targets[i] = Some(target);
                        self.phases[i] = Phase::Move;
                        Event::Move(RobotId(i))
                    }
                    None => {
                        // Defensive: a robot in Compute always has a pending
                        // decision; fall back to an idle move.
                        self.targets[i] = Some(self.world.center(i));
                        self.phases[i] = Phase::Move;
                        Event::Move(RobotId(i))
                    }
                }
            }
            Phase::Move => self.advance_motion(i, directive.motion),
        }
    }

    /// Moves robot `i` along its straight trajectory according to the
    /// adversary's allowance, stopping at the first contact with another
    /// robot, and emits the corresponding motion-ending or `Stop` event.
    fn advance_motion(&mut self, i: usize, motion: MotionControl) -> Event {
        let target = self.targets[i].expect("a robot in Move always has a target");
        let start = self.world.center(i);
        let remaining = start.distance(target);
        if remaining <= ARRIVAL_TOL {
            self.finish_motion(i);
            return Event::Arrive(RobotId(i));
        }
        let requested = match motion {
            MotionControl::Full => remaining,
            MotionControl::Distance(d) => d,
            MotionControl::StopAfterDelta => self.config.liveness.delta(),
        };
        let allowed = self.config.liveness.clamp_travel(requested, remaining);
        let dir = (target - start).normalized();

        // First contact with any other robot along the trajectory. The
        // candidate list is a grid superset of the discs near the swept
        // capsule, in ascending index order — the same scan (and the same
        // lowest-index tie-break) as an all-robots sweep.
        let mut candidates = std::mem::take(&mut self.contact_buf);
        self.world
            .contact_candidates(i, start, dir, allowed, &mut candidates);
        let mut contact: Option<(f64, usize)> = None;
        for &j in &candidates {
            if let Some(t) = first_contact_distance(start, dir, self.world.center(j)) {
                if t <= allowed + ARRIVAL_TOL && contact.map_or(true, |(bt, _)| t < bt) {
                    contact = Some((t, j));
                }
            }
        }
        self.contact_buf = candidates;

        match contact {
            Some((t, j)) => {
                let travel = t.max(0.0);
                self.world.move_robot(i, start + dir * travel);
                self.metrics.record_travel(travel);
                self.finish_motion(i);
                Event::Collide(vec![RobotId(i), RobotId(j)])
            }
            None => {
                self.metrics.record_travel(allowed);
                if allowed >= remaining - ARRIVAL_TOL {
                    self.world.move_robot(i, target);
                    self.finish_motion(i);
                    Event::Arrive(RobotId(i))
                } else {
                    self.world.move_robot(i, start + dir * allowed);
                    self.finish_motion(i);
                    Event::Stop(RobotId(i))
                }
            }
        }
    }

    fn finish_motion(&mut self, i: usize) {
        self.targets[i] = None;
        self.phases[i] = Phase::Wait;
    }

    /// Parallel-executor telemetry: `(batches, batched_events,
    /// speculation_hits, speculation_aborts)` — committed batches, events
    /// committed inside multi-event batches, and speculative decisions
    /// consumed vs. discarded. All 0 for serial runs.
    pub fn parallel_stats(&self) -> (u64, u64, u64, u64) {
        (
            self.par.batches,
            self.par.batched_events,
            self.par.spec_hits,
            self.par.spec_aborts,
        )
    }

    /// Hands robot `i`'s freshly stamped Look snapshot to the speculation
    /// pool unless the decision cache already covers the stamped version
    /// (its Compute will replay, so there is nothing to pre-decide). No-op
    /// outside a parallel run of a memoizable strategy.
    fn maybe_fire_spec(&mut self, i: usize) {
        if !self.par.speculating() {
            return;
        }
        let version = self.views[i].version();
        if matches!(self.decision_cache[i], Some((v, _)) if v == version) {
            return;
        }
        self.par
            .fire_spec(i, version, &self.views[i], &self.strategy);
    }

    /// The parallel run loop: plan a batch of commuting events against a
    /// predicted snapshot, fan its Look kernels out, commit in pull order,
    /// then serially apply the directive that ended the batch. Event
    /// stream, metrics, and world state are bit-identical to the serial
    /// loop — see the [`crate::parallel`] module docs for the argument.
    /// Returns `true` when the loop stopped because the [`CancelFlag`] was
    /// raised (polled at batch boundaries, the parallel analogue of the
    /// serial loop's per-event poll).
    fn run_parallel(&mut self, observer: &mut impl FnMut(&Simulator, &Event)) -> bool {
        let n = self.len();
        let threads = self.config.threads.max(1);
        let memoize = self.memoize;
        self.par.prepare(n, threads, memoize);
        loop {
            if self.metrics.events >= self.config.max_events {
                break;
            }
            if self.config.cancel.is_cancelled() {
                return true;
            }
            let (carry, done) = self.plan_batch();
            if self.par.batch.is_empty() && carry.is_none() {
                debug_assert!(done, "an empty plan means the adversary is finished");
                break;
            }
            self.commit_batch(observer);
            if let Some(directive) = carry {
                let event = self.apply(directive);
                self.post_event(&event);
                observer(self, &event);
            }
            if done {
                break;
            }
        }
        false
    }

    /// Pulls directives against the predicted phase/target snapshot and
    /// admits them into `par.batch` while they provably commute; stops at
    /// the first that does not and returns it as the carry (to be applied
    /// serially right after the batch commits), plus whether the adversary
    /// returned `None` (the run is over once the batch lands).
    ///
    /// Every pull happens strictly under the event budget, so an admitted
    /// event and the carry always have room to commit.
    fn plan_batch(&mut self) -> (Option<Directive>, bool) {
        self.par.batch.clear();
        self.par.plan_pairs.clear();
        self.par.planned_phases.clear();
        self.par.planned_phases.extend_from_slice(&self.phases);
        self.par.planned_targets.clear();
        self.par.planned_targets.extend_from_slice(&self.targets);
        self.par.in_batch.iter_mut().for_each(|f| *f = false);
        self.par.look_in_batch.iter_mut().for_each(|f| *f = false);
        let mut carry = None;
        let mut done = false;
        loop {
            // A pull is only allowed while the pulled directive — batched
            // or carried — still fits the event budget, mirroring the
            // serial loop's `events < max_events` guard.
            if self.metrics.events + self.par.batch.len() >= self.config.max_events
                || self.par.batch.len() >= parallel::MAX_BATCH_EVENTS
            {
                break;
            }
            let directive = {
                let snapshot = SystemSnapshot {
                    phases: &self.par.planned_phases,
                    centers: self.world.centers(),
                    targets: &self.par.planned_targets,
                    delta: self.config.liveness.delta(),
                };
                self.adversary.next(&snapshot)
            };
            let Some(directive) = directive else {
                done = true;
                break;
            };
            let RobotId(i) = directive.robot;
            assert!(i < self.len(), "adversary scheduled an unknown robot");
            if self.par.in_batch[i] {
                // One event per robot per batch: a robot's second event
                // reads state its first one writes.
                carry = Some(directive);
                break;
            }
            match self.par.planned_phases[i] {
                Phase::Wait => {
                    // A Look commutes when its recompute plan shares no
                    // pair with an already-batched Look. A robot's plan
                    // only contains its own pairs, so it suffices to test
                    // each planned pair's endpoints for batched Looks.
                    let start = self.par.plan_pairs.len();
                    self.world.look_plan(i, &mut self.par.plan_pairs);
                    let conflict = self.par.plan_pairs[start..]
                        .iter()
                        .any(|&(a, b)| self.par.look_in_batch[a] || self.par.look_in_batch[b]);
                    if conflict {
                        self.par.plan_pairs.truncate(start);
                        carry = Some(directive);
                        break;
                    }
                    self.par.batch.push(Planned::Look { robot: i });
                    self.par.in_batch[i] = true;
                    self.par.look_in_batch[i] = true;
                    self.par.planned_phases[i] = Phase::Look;
                }
                Phase::Look => {
                    // A Compute commutes only when its decision is already
                    // known here at plan time: the adversary must see the
                    // decided targets/phases before the next pull. The
                    // robot's real view stamp and cache entry are frozen
                    // for the batch (its Look is not in it — `in_batch`
                    // would have carried), so the plan-time cache check is
                    // exactly the commit-time one.
                    let version = self.views[i].version();
                    let source = if self.memoize
                        && matches!(self.decision_cache[i], Some((v, _)) if v == version)
                    {
                        let (_, d) = self.decision_cache[i].expect("matched just above");
                        Some(ComputeSource::CacheHit(d))
                    } else {
                        self.par
                            .try_take_spec(i, version)
                            .map(|d| ComputeSource::Spec(version, d))
                    };
                    let Some(source) = source else {
                        carry = Some(directive);
                        break;
                    };
                    self.par.batch.push(Planned::Compute { robot: i, source });
                    self.par.in_batch[i] = true;
                    self.par.planned_phases[i] = Phase::Compute;
                }
                Phase::Compute => {
                    // Dispatch is a pure function of the pending decision,
                    // which was committed in an earlier batch; predict its
                    // phase/target updates for the subsequent pulls.
                    match self.decisions[i] {
                        Some(Decision::Terminate) => {
                            self.par.planned_phases[i] = Phase::Terminate;
                        }
                        Some(Decision::MoveTo(target)) => {
                            self.par.planned_targets[i] = Some(target);
                            self.par.planned_phases[i] = Phase::Move;
                        }
                        None => {
                            self.par.planned_targets[i] = Some(self.world.center(i));
                            self.par.planned_phases[i] = Phase::Move;
                        }
                    }
                    self.par.batch.push(Planned::Dispatch { robot: i });
                    self.par.in_batch[i] = true;
                }
                Phase::Move => {
                    // Moves mutate geometry — never batched.
                    carry = Some(directive);
                    break;
                }
                Phase::Terminate => {
                    self.par.batch.push(Planned::Idle { robot: i });
                    self.par.in_batch[i] = true;
                }
            }
        }
        (carry, done)
    }

    /// Commits the planned batch in pull order: fans the batched Looks'
    /// pair kernels out over the thread budget, then replays every event
    /// with the serial arms' exact bookkeeping, injecting the precomputed
    /// answers into the Look refreshes.
    fn commit_batch(&mut self, observer: &mut impl FnMut(&Simulator, &Event)) {
        if self.par.batch.is_empty() {
            return;
        }
        let pairs = std::mem::take(&mut self.par.plan_pairs);
        let mut answers = std::mem::take(&mut self.par.answers);
        parallel::compute_pair_answers(&self.world, &pairs, self.par.threads, &mut answers);
        self.par.batches += 1;
        if self.par.batch.len() > 1 {
            self.par.batched_events += self.par.batch.len() as u64;
        }
        let mut batch = std::mem::take(&mut self.par.batch);
        for planned in &batch {
            let event = match *planned {
                Planned::Look { robot: i, .. } => {
                    // The serial Wait arm, with the batch's precomputed
                    // pair answers injected; any pair the plan missed is
                    // recomputed inline by the world (identical result).
                    let mut visible = std::mem::take(&mut self.visible_buf);
                    self.world
                        .visible_of_into_with(i, &mut visible, Some(&answers));
                    self.views[i].refill_from_visible(self.world.centers(), i, &visible);
                    self.views[i].stamp_version(self.world.view_version(i));
                    self.visible_buf = visible;
                    self.phases[i] = Phase::Look;
                    self.maybe_fire_spec(i);
                    Event::Look(RobotId(i))
                }
                Planned::Compute { robot: i, source } => {
                    let decision = match source {
                        ComputeSource::CacheHit(d) => {
                            self.decision_hits += 1;
                            d
                        }
                        ComputeSource::Spec(version, d) => {
                            // Replayed as the serial miss it would have
                            // been: counter plus cache store.
                            self.decision_misses += 1;
                            self.decision_cache[i] = Some((version, d));
                            d
                        }
                    };
                    self.decisions[i] = Some(decision);
                    self.phases[i] = Phase::Compute;
                    Event::Compute(RobotId(i))
                }
                Planned::Dispatch { robot: i } => match self.decisions[i].take() {
                    Some(Decision::Terminate) => {
                        self.phases[i] = Phase::Terminate;
                        Event::Done(RobotId(i))
                    }
                    Some(Decision::MoveTo(target)) => {
                        self.targets[i] = Some(target);
                        self.phases[i] = Phase::Move;
                        Event::Move(RobotId(i))
                    }
                    None => {
                        self.targets[i] = Some(self.world.center(i));
                        self.phases[i] = Phase::Move;
                        Event::Move(RobotId(i))
                    }
                },
                Planned::Idle { robot: i } => Event::Stop(RobotId(i)),
            };
            self.post_event(&event);
            observer(self, &event);
        }
        batch.clear();
        self.par.batch = batch;
        self.par.plan_pairs = pairs;
        self.par.answers = answers;
    }
}

/// Tolerance within which two discs are treated as already in contact by the
/// motion integrator (matches the model layer's touch tolerance).
const CONTACT_TOL: f64 = 1e-6;

/// Small gap left between discs when a move is stopped by a contact, so that
/// accumulated floating-point error can never make two discs interpenetrate
/// and freeze each other in place.
const CONTACT_BACKOFF: f64 = 1e-9;

/// Distance along the unit direction `dir` from `start` at which a unit disc
/// travelling that way first becomes tangent to the unit disc at `obstacle`,
/// if it does so while moving forward.
///
/// Discs that already touch (within [`CONTACT_TOL`]) behave like a physical
/// contact: motion with a positive component towards the obstacle is stopped
/// immediately, while tangential or separating motion is free — this is what
/// lets a robot slide around a neighbour it is resting against.
fn first_contact_distance(
    start: Point,
    dir: fatrobots_geometry::Vec2,
    obstacle: Point,
) -> Option<f64> {
    let contact_dist = 2.0 * UNIT_RADIUS;
    let w = obstacle - start;
    let proj = w.dot(dir);
    if w.norm() <= contact_dist + CONTACT_TOL {
        // Already in contact: block only motion that presses into the
        // obstacle.
        return if proj > CONTACT_TOL { Some(0.0) } else { None };
    }
    if proj <= 0.0 {
        return None; // moving away or alongside
    }
    let closest_sq = w.norm_sq() - proj * proj;
    let reach_sq = contact_dist * contact_dist - closest_sq;
    if reach_sq < 0.0 {
        return None; // the trajectory never comes within contact range
    }
    let t = proj - reach_sq.sqrt() - CONTACT_BACKOFF;
    Some(t.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatrobots_core::{AlgorithmParams, LocalAlgorithm};
    use fatrobots_geometry::Vec2;
    use fatrobots_scheduler::RoundRobin;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn paper_sim(centers: Vec<Point>, max_events: usize) -> Simulator {
        let n = centers.len();
        Simulator::new(
            centers,
            Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(n))),
            Box::new(RoundRobin::new()),
            SimConfig {
                max_events,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn first_contact_distance_geometry() {
        let dir = Vec2::new(1.0, 0.0);
        // Head-on: contact when the centers are 2 apart (minus the tiny
        // anti-interpenetration backoff).
        assert!(
            (first_contact_distance(p(0.0, 0.0), dir, p(10.0, 0.0)).unwrap() - 8.0).abs() < 1e-6
        );
        // Offset by 2 vertically: contact is never reached (grazing counts as contact at the tangent).
        assert!(first_contact_distance(p(0.0, 0.0), dir, p(10.0, 2.1)).is_none());
        // Moving away: no contact.
        assert!(first_contact_distance(p(0.0, 0.0), dir, p(-5.0, 0.0)).is_none());
    }

    #[test]
    fn look_compute_move_cycle_is_respected() {
        let mut sim = paper_sim(vec![p(0.0, 0.0), p(10.0, 0.0), p(5.0, 9.0)], 50);
        // The first three events of robot 0 must be Look, then (after the
        // other robots acted) Compute, then Move/Done.
        let e0 = sim.step().unwrap();
        assert_eq!(e0, Event::Look(RobotId(0)));
        assert_eq!(sim.phases()[0], Phase::Look);
        // Other robots take their Look steps.
        let _ = sim.step().unwrap();
        let _ = sim.step().unwrap();
        let e3 = sim.step().unwrap();
        assert_eq!(e3, Event::Compute(RobotId(0)));
        assert_eq!(sim.phases()[0], Phase::Compute);
    }

    #[test]
    fn already_gathered_configuration_terminates_quickly() {
        let centers = vec![p(0.0, 0.0), p(2.0, 0.0), p(1.0, 3.0_f64.sqrt())];
        let mut sim = paper_sim(centers, 100);
        let outcome = sim.run();
        assert!(outcome.terminated);
        assert!(outcome.gathered);
        // Each robot needs exactly Look, Compute, Done.
        assert_eq!(outcome.metrics.dones, 3);
        assert!(outcome.events <= 9);
    }

    #[test]
    fn motion_stops_on_contact_and_preserves_validity() {
        // Two robots approaching head-on must stop tangent, not overlap.
        let mut sim = paper_sim(vec![p(0.0, 0.0), p(10.0, 0.0)], 200);
        let outcome = sim.run();
        assert!(outcome.terminated, "two robots must gather");
        assert!(outcome.gathered);
        let d = sim.centers()[0].distance(sim.centers()[1]);
        assert!(d >= 2.0 - 1e-6, "discs must not overlap (distance {d})");
        assert!(d <= 2.0 + 1e-3, "discs must end up touching (distance {d})");
    }

    #[test]
    fn event_budget_is_respected() {
        let mut sim = paper_sim(vec![p(0.0, 0.0), p(40.0, 0.0), p(20.0, 35.0)], 10);
        let outcome = sim.run();
        assert!(!outcome.terminated);
        assert!(outcome.events <= 10);
    }

    #[test]
    #[should_panic]
    fn overlapping_initial_configuration_is_rejected() {
        let _ = paper_sim(vec![p(0.0, 0.0), p(1.0, 0.0)], 10);
    }

    #[test]
    fn decision_cache_accounts_for_every_compute_event() {
        let centers = vec![p(0.0, 0.0), p(40.0, 0.0), p(20.0, 35.0)];
        let mut sim = paper_sim(centers.clone(), 5_000);
        let outcome = sim.run();
        let (hits, misses) = sim.decision_cache_stats();
        assert_eq!(
            hits + misses,
            outcome.metrics.computes as u64,
            "every Compute event is either a replay or a fresh decision"
        );
        assert!(misses > 0, "the first decision of a robot cannot be a hit");

        // With the cache disabled the counters stay silent and the run is
        // byte-identical (the equivalence the determinism suite pins
        // across the whole experiment matrix).
        let n = centers.len();
        let mut uncached = Simulator::new(
            centers,
            Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(n))),
            Box::new(RoundRobin::new()),
            SimConfig {
                max_events: 5_000,
                decision_cache: false,
                ..SimConfig::default()
            },
        );
        let outcome_uncached = uncached.run();
        assert_eq!(uncached.decision_cache_stats(), (0, 0));
        assert_eq!(outcome, outcome_uncached);
        assert_eq!(sim.centers(), uncached.centers());
    }

    #[test]
    fn small_convex_systems_gather_end_to_end() {
        // Three and four robots spread out in convex position.
        for centers in [
            vec![p(0.0, 0.0), p(14.0, 0.0), p(7.0, 12.0)],
            vec![p(0.0, 0.0), p(16.0, 0.0), p(16.0, 16.0), p(0.0, 16.0)],
        ] {
            let mut sim = paper_sim(centers, 100_000);
            let outcome = sim.run();
            assert!(outcome.terminated, "run exhausted its budget");
            assert!(outcome.gathered, "robots terminated without gathering");
        }
    }
}
