//! Seeded initial-configuration generators.
//!
//! Every generator returns a *valid* configuration (pairwise center
//! distances strictly greater than 2, so no two discs overlap) and is
//! deterministic given its arguments, so experiments are reproducible.

use fatrobots_geometry::Point;
use fatrobots_model::GeometricConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Minimum clearance added on top of the contact distance when generating
/// configurations, so initial configurations never start in contact.
const CLEARANCE: f64 = 0.25;

/// `n` robots spread uniformly at random over a square of the given side,
/// rejection-sampled so that no two discs overlap.
///
/// # Panics
/// Panics if `n == 0` or the square is too small to hold `n` unit discs.
pub fn random_spread(n: usize, seed: u64, side: f64) -> Vec<Point> {
    assert!(n > 0, "at least one robot is required");
    assert!(
        side * side >= (n as f64) * 9.0,
        "the square of side {side} cannot comfortably hold {n} unit discs"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centers: Vec<Point> = Vec::with_capacity(n);
    let mut attempts = 0usize;
    while centers.len() < n {
        attempts += 1;
        assert!(
            attempts < 1_000_000,
            "rejection sampling failed; increase the square side"
        );
        let candidate = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
        if centers
            .iter()
            .all(|c| c.distance(candidate) > 2.0 + CLEARANCE)
        {
            centers.push(candidate);
        }
    }
    debug_assert!(GeometricConfig::new(centers.clone()).is_valid());
    centers
}

/// `n` robots on a horizontal line with the given boundary gap between
/// consecutive discs (a worst case for visibility: every robot except the
/// two ends is hidden from most others).
pub fn line(n: usize, gap: f64) -> Vec<Point> {
    assert!(n > 0, "at least one robot is required");
    assert!(gap >= 0.0, "the gap cannot be negative");
    (0..n)
        .map(|i| Point::new(i as f64 * (2.0 + gap + CLEARANCE.min(gap + 0.01)), 0.0))
        .collect()
}

/// `n` robots on a square grid with the given boundary gap between
/// neighbouring discs.
pub fn grid(n: usize, gap: f64) -> Vec<Point> {
    assert!(n > 0, "at least one robot is required");
    assert!(gap > 0.0, "the grid gap must be positive");
    let cols = (n as f64).sqrt().ceil() as usize;
    let pitch = 2.0 + gap;
    (0..n)
        .map(|i| {
            let (r, c) = (i / cols, i % cols);
            Point::new(c as f64 * pitch, r as f64 * pitch)
        })
        .collect()
}

/// `n` robots equally spaced on a circle of the given radius.
///
/// # Panics
/// Panics if the circle is too small for `n` non-overlapping unit discs.
pub fn circle(n: usize, radius: f64) -> Vec<Point> {
    assert!(n > 0, "at least one robot is required");
    if n > 1 {
        let chord = 2.0 * radius * (std::f64::consts::PI / n as f64).sin();
        assert!(
            chord > 2.0,
            "a circle of radius {radius} cannot hold {n} non-overlapping unit discs"
        );
    }
    (0..n)
        .map(|i| {
            let a = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            Point::new(radius * a.cos(), radius * a.sin())
        })
        .collect()
}

/// `n` robots in `clusters` tight groups whose cluster centers are spread
/// far apart — the configuration the convergence phase has to merge.
pub fn clusters(n: usize, clusters: usize, seed: u64) -> Vec<Point> {
    assert!(n > 0, "at least one robot is required");
    assert!(
        clusters > 0 && clusters <= n,
        "1 ≤ clusters ≤ n is required"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let spread = 20.0 * clusters as f64;
    let cluster_centers: Vec<Point> = (0..clusters)
        .map(|i| {
            let a = 2.0 * std::f64::consts::PI * i as f64 / clusters as f64;
            Point::new(
                spread * a.cos() + rng.gen_range(-2.0..2.0),
                spread * a.sin() + rng.gen_range(-2.0..2.0),
            )
        })
        .collect();
    let mut centers: Vec<Point> = Vec::with_capacity(n);
    for i in 0..n {
        let base = cluster_centers[i % clusters];
        // Place members of a cluster on a small local spiral to avoid
        // overlap deterministically.
        let k = (i / clusters) as f64;
        let r = 2.4 * (1.0 + k * 0.5);
        let a = k * 2.4 + (i % clusters) as f64;
        centers.push(Point::new(base.x + r * a.cos(), base.y + r * a.sin()));
    }
    // The deterministic spiral can still produce rare near-misses between
    // clusters; nudge any offending robot outward until valid.
    let mut attempts = 0;
    while !GeometricConfig::new(centers.clone()).is_valid() {
        attempts += 1;
        assert!(
            attempts < 1000,
            "cluster generation failed to separate discs"
        );
        for i in 0..centers.len() {
            for j in (i + 1)..centers.len() {
                if centers[i].distance(centers[j]) <= 2.0 + 1e-6 {
                    let dir = (centers[j] - centers[i]).normalized();
                    centers[j] += dir * 0.5;
                }
            }
        }
    }
    centers
}

/// `n` robots on a jittered hexagonal packing with the given center
/// spacing — the dense-but-valid layout the n = 10⁴ scale workloads use
/// (each disc has up to six neighbours just out of contact, so visibility
/// is strictly local). The jitter is a deterministic per-index hash kept
/// small enough that validity is preserved by construction.
///
/// # Panics
/// Panics if `n == 0` or the spacing leaves less than the generator
/// clearance between neighbouring discs after jitter.
pub fn hex(n: usize, spacing: f64) -> Vec<Point> {
    assert!(n > 0, "at least one robot is required");
    // Adjacent centers sit `spacing` apart (same row) or `spacing` along
    // the staggered diagonal; the jitter moves each center by at most
    // `jitter * √2`, so two neighbours lose at most twice that.
    let jitter = 0.015 * spacing;
    assert!(
        spacing - 2.0 * jitter * std::f64::consts::SQRT_2 > 2.0,
        "a hex packing with spacing {spacing} cannot hold jittered unit discs"
    );
    let side = (n as f64).sqrt().ceil() as usize;
    let row_height = spacing * 3.0_f64.sqrt() / 2.0;
    // Cheap deterministic per-index hash onto [-1, 1] (splitmix-style).
    let unit = |k: u64| {
        let mut x = k
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0x5ca1_ab1e);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        // 53 uniform bits over [0, 2) shifted to [-1, 1).
        (x >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    };
    (0..n)
        .map(|i| {
            let (r, c) = (i / side, i % side);
            let stagger = if r % 2 == 1 { spacing / 2.0 } else { 0.0 };
            Point::new(
                c as f64 * spacing + stagger + jitter * unit(2 * i as u64),
                r as f64 * row_height + jitter * unit(2 * i as u64 + 1),
            )
        })
        .collect()
}

/// Named initial-configuration shapes used by the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// [`random_spread`] over a square sized for the robot count.
    Random,
    /// [`line`] with a 3-radius gap.
    Line,
    /// [`grid`] with a 1-radius gap.
    Grid,
    /// [`circle`] sized for the robot count.
    Circle,
    /// [`clusters`] with `⌈n/4⌉` groups.
    Clusters,
    /// [`hex`] with the scale workloads' 2.1 spacing.
    Hex,
}

impl Shape {
    /// All shapes, for sweeps.
    pub const ALL: [Shape; 6] = [
        Shape::Random,
        Shape::Line,
        Shape::Grid,
        Shape::Circle,
        Shape::Clusters,
        Shape::Hex,
    ];

    /// A short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Shape::Random => "random",
            Shape::Line => "line",
            Shape::Grid => "grid",
            Shape::Circle => "circle",
            Shape::Clusters => "clusters",
            Shape::Hex => "hex",
        }
    }

    /// Generates a configuration of `n` robots for this shape.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Point> {
        match self {
            Shape::Random => random_spread(n, seed, (n as f64 * 16.0).sqrt().max(8.0) * 2.0),
            Shape::Line => line(n, 3.0),
            Shape::Grid => grid(n, 1.0),
            Shape::Circle => circle(n, (n as f64).max(4.0)),
            Shape::Clusters => clusters(n, n.div_ceil(4).max(1), seed),
            Shape::Hex => hex(n, 2.1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid(centers: &[Point], n: usize) {
        assert_eq!(centers.len(), n);
        assert!(
            GeometricConfig::new(centers.to_vec()).is_valid(),
            "generated configuration contains overlapping discs"
        );
    }

    #[test]
    fn random_spread_is_valid_and_deterministic() {
        let a = random_spread(12, 7, 40.0);
        let b = random_spread(12, 7, 40.0);
        assert_eq!(a, b);
        assert_valid(&a, 12);
        let c = random_spread(12, 8, 40.0);
        assert_ne!(a, c);
    }

    #[test]
    fn structured_generators_are_valid() {
        assert_valid(&line(9, 3.0), 9);
        assert_valid(&grid(10, 1.0), 10);
        assert_valid(&circle(8, 8.0), 8);
        assert_valid(&clusters(13, 4, 3), 13);
        assert_valid(&hex(100, 2.1), 100);
    }

    #[test]
    fn hex_is_deterministic_and_jittered() {
        let a = hex(64, 2.1);
        assert_eq!(a, hex(64, 2.1));
        assert_valid(&a, 64);
        // The jitter must actually perturb the lattice (no robot sits on an
        // exact grid point after the hash offset).
        assert!(a.iter().any(|c| c.x.fract().abs() > 1e-6));
    }

    #[test]
    fn all_shapes_generate_valid_configurations() {
        for shape in Shape::ALL {
            for n in [1, 2, 5, 9, 16] {
                let centers = shape.generate(n, 42);
                assert_valid(&centers, n);
            }
        }
    }

    #[test]
    fn line_is_actually_collinear() {
        let centers = line(5, 3.0);
        assert!(centers.iter().all(|c| c.y == 0.0));
    }

    #[test]
    #[should_panic]
    fn tiny_circle_is_rejected() {
        let _ = circle(20, 3.0);
    }

    #[test]
    #[should_panic]
    fn zero_robots_rejected() {
        let _ = random_spread(0, 1, 100.0);
    }
}
