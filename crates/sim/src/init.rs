//! Seeded initial-configuration generators.
//!
//! Every generator returns a *valid* configuration (pairwise center
//! distances strictly greater than 2, so no two discs overlap) and is
//! deterministic given its arguments, so experiments are reproducible.

use fatrobots_geometry::Point;
use fatrobots_model::GeometricConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Minimum clearance added on top of the contact distance when generating
/// configurations, so initial configurations never start in contact.
const CLEARANCE: f64 = 0.25;

/// Cheap deterministic per-index hash onto [-1, 1) (splitmix-style), used
/// by the generators that need seed-free reproducible jitter.
fn unit(k: u64) -> f64 {
    let mut x = k
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(0x5ca1_ab1e);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    // 53 uniform bits over [0, 2) shifted to [-1, 1).
    (x >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

/// `n` robots spread uniformly at random over a square of the given side,
/// rejection-sampled so that no two discs overlap.
///
/// # Panics
/// Panics if `n == 0` or the square is too small to hold `n` unit discs.
pub fn random_spread(n: usize, seed: u64, side: f64) -> Vec<Point> {
    assert!(n > 0, "at least one robot is required");
    assert!(
        side * side >= (n as f64) * 9.0,
        "the square of side {side} cannot comfortably hold {n} unit discs"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centers: Vec<Point> = Vec::with_capacity(n);
    let mut attempts = 0usize;
    while centers.len() < n {
        attempts += 1;
        assert!(
            attempts < 1_000_000,
            "rejection sampling failed; increase the square side"
        );
        let candidate = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
        if centers
            .iter()
            .all(|c| c.distance(candidate) > 2.0 + CLEARANCE)
        {
            centers.push(candidate);
        }
    }
    debug_assert!(GeometricConfig::new(centers.clone()).is_valid());
    centers
}

/// `n` robots on a horizontal line with the given boundary gap between
/// consecutive discs (a worst case for visibility: every robot except the
/// two ends is hidden from most others).
pub fn line(n: usize, gap: f64) -> Vec<Point> {
    assert!(n > 0, "at least one robot is required");
    assert!(gap >= 0.0, "the gap cannot be negative");
    (0..n)
        .map(|i| Point::new(i as f64 * (2.0 + gap + CLEARANCE.min(gap + 0.01)), 0.0))
        .collect()
}

/// `n` robots on a square grid with the given boundary gap between
/// neighbouring discs.
pub fn grid(n: usize, gap: f64) -> Vec<Point> {
    assert!(n > 0, "at least one robot is required");
    assert!(gap > 0.0, "the grid gap must be positive");
    let cols = (n as f64).sqrt().ceil() as usize;
    let pitch = 2.0 + gap;
    (0..n)
        .map(|i| {
            let (r, c) = (i / cols, i % cols);
            Point::new(c as f64 * pitch, r as f64 * pitch)
        })
        .collect()
}

/// `n` robots equally spaced on a circle of the given radius.
///
/// # Panics
/// Panics if the circle is too small for `n` non-overlapping unit discs.
pub fn circle(n: usize, radius: f64) -> Vec<Point> {
    assert!(n > 0, "at least one robot is required");
    if n > 1 {
        let chord = 2.0 * radius * (std::f64::consts::PI / n as f64).sin();
        assert!(
            chord > 2.0,
            "a circle of radius {radius} cannot hold {n} non-overlapping unit discs"
        );
    }
    (0..n)
        .map(|i| {
            let a = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            Point::new(radius * a.cos(), radius * a.sin())
        })
        .collect()
}

/// `n` robots in `clusters` tight groups whose cluster centers are spread
/// far apart — the configuration the convergence phase has to merge.
pub fn clusters(n: usize, clusters: usize, seed: u64) -> Vec<Point> {
    assert!(n > 0, "at least one robot is required");
    assert!(
        clusters > 0 && clusters <= n,
        "1 ≤ clusters ≤ n is required"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let spread = 20.0 * clusters as f64;
    let cluster_centers: Vec<Point> = (0..clusters)
        .map(|i| {
            let a = 2.0 * std::f64::consts::PI * i as f64 / clusters as f64;
            Point::new(
                spread * a.cos() + rng.gen_range(-2.0..2.0),
                spread * a.sin() + rng.gen_range(-2.0..2.0),
            )
        })
        .collect();
    let mut centers: Vec<Point> = Vec::with_capacity(n);
    for i in 0..n {
        let base = cluster_centers[i % clusters];
        // Place members of a cluster on a small local spiral to avoid
        // overlap deterministically.
        let k = (i / clusters) as f64;
        let r = 2.4 * (1.0 + k * 0.5);
        let a = k * 2.4 + (i % clusters) as f64;
        centers.push(Point::new(base.x + r * a.cos(), base.y + r * a.sin()));
    }
    // The deterministic spiral can still produce rare near-misses between
    // clusters; nudge any offending robot outward until valid.
    let mut attempts = 0;
    while !GeometricConfig::new(centers.clone()).is_valid() {
        attempts += 1;
        assert!(
            attempts < 1000,
            "cluster generation failed to separate discs"
        );
        for i in 0..centers.len() {
            for j in (i + 1)..centers.len() {
                if centers[i].distance(centers[j]) <= 2.0 + 1e-6 {
                    let dir = (centers[j] - centers[i]).normalized();
                    centers[j] += dir * 0.5;
                }
            }
        }
    }
    centers
}

/// `n` robots on a jittered hexagonal packing with the given center
/// spacing — the dense-but-valid layout the n = 10⁴ scale workloads use
/// (each disc has up to six neighbours just out of contact, so visibility
/// is strictly local). The jitter is a deterministic per-index hash kept
/// small enough that validity is preserved by construction.
///
/// # Panics
/// Panics if `n == 0` or the spacing leaves less than the generator
/// clearance between neighbouring discs after jitter.
pub fn hex(n: usize, spacing: f64) -> Vec<Point> {
    assert!(n > 0, "at least one robot is required");
    // Adjacent centers sit `spacing` apart (same row) or `spacing` along
    // the staggered diagonal; the jitter moves each center by at most
    // `jitter * √2`, so two neighbours lose at most twice that.
    let jitter = 0.015 * spacing;
    assert!(
        spacing - 2.0 * jitter * std::f64::consts::SQRT_2 > 2.0,
        "a hex packing with spacing {spacing} cannot hold jittered unit discs"
    );
    let side = (n as f64).sqrt().ceil() as usize;
    let row_height = spacing * 3.0_f64.sqrt() / 2.0;
    (0..n)
        .map(|i| {
            let (r, c) = (i / side, i % side);
            let stagger = if r % 2 == 1 { spacing / 2.0 } else { 0.0 };
            Point::new(
                c as f64 * spacing + stagger + jitter * unit(2 * i as u64),
                r as f64 * row_height + jitter * unit(2 * i as u64 + 1),
            )
        })
        .collect()
}

/// Two dense grid clusters joined by a single-file chain of robots — the
/// only visibility between the clusters runs through the chain's corridor,
/// so the configuration stresses exactly the connectivity-preservation
/// lemmas. Roughly `n/3` robots per cluster and `n/3` on the chain; small
/// `n` degenerates gracefully (n ≤ 2 is just the chain). All centers sit
/// on one lattice of pitch `2 + gap`, so validity holds by construction.
pub fn bridge(n: usize, gap: f64) -> Vec<Point> {
    assert!(n > 0, "at least one robot is required");
    assert!(gap > 0.0, "the bridge gap must be positive");
    let pitch = 2.0 + gap;
    let per_cluster = n / 3;
    let chain = n - 2 * per_cluster;
    let cols = ((per_cluster as f64).sqrt().ceil() as usize).max(1);
    let rows = per_cluster.div_ceil(cols).max(1);
    // Rows straddle y = 0 so the chain leaves from the clusters' midline.
    let y_of = |r: usize| (r as f64 - (rows as f64 - 1.0) / 2.0) * pitch;
    let mut centers: Vec<Point> = Vec::with_capacity(n);
    for i in 0..per_cluster {
        let (r, c) = (i / cols, i % cols);
        centers.push(Point::new(c as f64 * pitch, y_of(r)));
    }
    for i in 0..chain {
        centers.push(Point::new((cols + i) as f64 * pitch, 0.0));
    }
    for i in 0..per_cluster {
        let (r, c) = (i / cols, i % cols);
        centers.push(Point::new((cols + chain + c) as f64 * pitch, y_of(r)));
    }
    debug_assert!(GeometricConfig::new(centers.clone()).is_valid());
    centers
}

/// `n` robots equally spaced along a circular arc with a hole: the arc
/// covers `1 - hole_fraction` of the circle, leaving one angular gap. The
/// near-cyclic symmetry stresses the hull-vertex selection; the hole
/// breaks it in exactly one place. The radius is sized so the closest pair
/// (adjacent robots, or the two robots facing each other across the hole)
/// keeps the generator clearance.
pub fn ring_hole(n: usize, hole_fraction: f64) -> Vec<Point> {
    assert!(n > 0, "at least one robot is required");
    assert!(
        (0.01..1.0).contains(&hole_fraction),
        "the hole must cover a positive fraction of the circle"
    );
    if n == 1 {
        return vec![Point::new(0.0, 0.0)];
    }
    let span = 2.0 * std::f64::consts::PI * (1.0 - hole_fraction);
    let step = span / (n - 1) as f64;
    // The minimum chord over all pairs: chord(kθ) = 2R·sin(kθ/2) is not
    // monotone past π, so scan every multiple of the step.
    let min_sin = (1..n)
        .map(|k| (k as f64 * step / 2.0).sin())
        .fold(f64::INFINITY, f64::min);
    assert!(min_sin > 1e-9, "degenerate arc: robots would coincide");
    let radius = (2.0 + CLEARANCE) / (2.0 * min_sin) * 1.05;
    let centers: Vec<Point> = (0..n)
        .map(|i| {
            let a = i as f64 * step;
            Point::new(radius * a.cos(), radius * a.sin())
        })
        .collect();
    debug_assert!(GeometricConfig::new(centers.clone()).is_valid());
    centers
}

/// `n` robots on a near-collinear chain: a line with deterministic
/// transverse jitter at scale `eps` — small enough that the collinearity
/// predicates operate right at their tolerance, which is exactly the
/// regime the exact-arithmetic shadow oracle exists for.
pub fn near_collinear(n: usize, gap: f64, eps: f64) -> Vec<Point> {
    assert!(n > 0, "at least one robot is required");
    assert!(gap > 0.0, "the chain gap must be positive");
    assert!(
        eps.is_finite() && (0.0..1.0).contains(&eps),
        "the perturbation must stay well below the disc radius"
    );
    (0..n)
        .map(|i| Point::new(i as f64 * (2.0 + gap), eps * unit(i as u64)))
        .collect()
}

/// Named initial-configuration shapes used by the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// [`random_spread`] over a square sized for the robot count.
    Random,
    /// [`line`] with a 3-radius gap.
    Line,
    /// [`grid`] with a 1-radius gap.
    Grid,
    /// [`circle`] sized for the robot count.
    Circle,
    /// [`clusters`] with `⌈n/4⌉` groups.
    Clusters,
    /// [`hex`] with the scale workloads' 2.1 spacing.
    Hex,
    /// [`bridge`]: two dense clusters joined by a single visibility
    /// corridor.
    Bridge,
    /// [`ring_hole`]: a near-symmetric ring with one angular gap.
    RingHole,
    /// [`near_collinear`]: a chain perturbed at ε scale.
    NearCollinear,
}

impl Shape {
    /// All shapes, for sweeps.
    pub const ALL: [Shape; 9] = [
        Shape::Random,
        Shape::Line,
        Shape::Grid,
        Shape::Circle,
        Shape::Clusters,
        Shape::Hex,
        Shape::Bridge,
        Shape::RingHole,
        Shape::NearCollinear,
    ];

    /// A short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Shape::Random => "random",
            Shape::Line => "line",
            Shape::Grid => "grid",
            Shape::Circle => "circle",
            Shape::Clusters => "clusters",
            Shape::Hex => "hex",
            Shape::Bridge => "bridge",
            Shape::RingHole => "ring-hole",
            Shape::NearCollinear => "near-collinear",
        }
    }

    /// The shape with the given [`Self::name`], or `None` for an unknown
    /// name — the inverse of [`Self::name`], used by the fuzzer's fixture
    /// loader.
    pub fn from_name(name: &str) -> Option<Shape> {
        Shape::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Generates a configuration of `n` robots for this shape.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Point> {
        match self {
            Shape::Random => random_spread(n, seed, (n as f64 * 16.0).sqrt().max(8.0) * 2.0),
            Shape::Line => line(n, 3.0),
            Shape::Grid => grid(n, 1.0),
            Shape::Circle => circle(n, (n as f64).max(4.0)),
            Shape::Clusters => clusters(n, n.div_ceil(4).max(1), seed),
            Shape::Hex => hex(n, 2.1),
            Shape::Bridge => bridge(n, 1.0),
            Shape::RingHole => ring_hole(n, 1.0 / 6.0),
            Shape::NearCollinear => near_collinear(n, 3.0, 1e-7),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid(centers: &[Point], n: usize) {
        assert_eq!(centers.len(), n);
        assert!(
            GeometricConfig::new(centers.to_vec()).is_valid(),
            "generated configuration contains overlapping discs"
        );
    }

    #[test]
    fn random_spread_is_valid_and_deterministic() {
        let a = random_spread(12, 7, 40.0);
        let b = random_spread(12, 7, 40.0);
        assert_eq!(a, b);
        assert_valid(&a, 12);
        let c = random_spread(12, 8, 40.0);
        assert_ne!(a, c);
    }

    #[test]
    fn structured_generators_are_valid() {
        assert_valid(&line(9, 3.0), 9);
        assert_valid(&grid(10, 1.0), 10);
        assert_valid(&circle(8, 8.0), 8);
        assert_valid(&clusters(13, 4, 3), 13);
        assert_valid(&hex(100, 2.1), 100);
    }

    #[test]
    fn hex_is_deterministic_and_jittered() {
        let a = hex(64, 2.1);
        assert_eq!(a, hex(64, 2.1));
        assert_valid(&a, 64);
        // The jitter must actually perturb the lattice (no robot sits on an
        // exact grid point after the hash offset).
        assert!(a.iter().any(|c| c.x.fract().abs() > 1e-6));
    }

    #[test]
    fn all_shapes_generate_valid_configurations() {
        for shape in Shape::ALL {
            for n in [1, 2, 5, 9, 16] {
                let centers = shape.generate(n, 42);
                assert_valid(&centers, n);
            }
        }
    }

    #[test]
    fn bridge_has_a_single_file_corridor() {
        let n = 15;
        let centers = bridge(n, 1.0);
        assert_valid(&centers, n);
        // The chain third sits alone on the midline between the clusters
        // (a 5-robot cluster spans rows straddling y = 0, so robots on
        // y = 0 include one cluster column too; the corridor columns hold
        // exactly one robot each).
        let per_cluster = n / 3;
        let chain = n - 2 * per_cluster;
        assert!(chain >= 1);
        let xs: Vec<f64> = centers[per_cluster..per_cluster + chain]
            .iter()
            .map(|c| {
                assert_eq!(c.y, 0.0, "chain robots sit on the corridor line");
                c.x
            })
            .collect();
        for x in &xs {
            assert_eq!(
                centers.iter().filter(|c| c.x == *x).count(),
                1,
                "a corridor column holds exactly one robot"
            );
        }
    }

    #[test]
    fn ring_hole_is_valid_and_actually_has_a_hole() {
        for n in [2, 5, 9, 16] {
            let centers = ring_hole(n, 1.0 / 6.0);
            assert_valid(&centers, n);
        }
        let centers = ring_hole(12, 1.0 / 6.0);
        let mut angles: Vec<f64> = centers.iter().map(|c| c.y.atan2(c.x)).collect();
        angles.sort_by(f64::total_cmp);
        let mut max_gap: f64 = 0.0;
        for i in 0..angles.len() {
            let next = angles[(i + 1) % angles.len()];
            let gap = (next - angles[i]).rem_euclid(2.0 * std::f64::consts::PI);
            max_gap = max_gap.max(gap);
        }
        // The hole covers 1/6 of the circle; every regular step covers
        // (5/6)/11 of it. The largest gap must be the hole.
        assert!(max_gap > 2.0 * std::f64::consts::PI / 7.0);
    }

    #[test]
    fn near_collinear_perturbs_at_epsilon_scale() {
        let eps = 1e-7;
        let centers = near_collinear(9, 3.0, eps);
        assert_valid(&centers, 9);
        assert!(centers.iter().all(|c| c.y.abs() <= eps));
        assert!(
            centers.iter().any(|c| c.y != 0.0),
            "the chain must not be exactly collinear"
        );
        assert_eq!(centers, near_collinear(9, 3.0, eps), "deterministic");
    }

    #[test]
    fn shape_names_round_trip() {
        for shape in Shape::ALL {
            assert_eq!(Shape::from_name(shape.name()), Some(shape));
        }
        assert_eq!(Shape::from_name("no-such-shape"), None);
    }

    #[test]
    fn line_is_actually_collinear() {
        let centers = line(5, 3.0);
        assert!(centers.iter().all(|c| c.y == 0.0));
    }

    #[test]
    #[should_panic]
    fn tiny_circle_is_rejected() {
        let _ = circle(20, 3.0);
    }

    #[test]
    #[should_panic]
    fn zero_robots_rejected() {
        let _ = random_spread(0, 1, 100.0);
    }
}
