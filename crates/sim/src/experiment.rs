//! The experiment harness behind EXPERIMENTS.md.
//!
//! Every table of EXPERIMENTS.md is produced by one of the `*_table`
//! functions below; the `report` binary in `fatrobots-bench` simply calls
//! them and prints the rows, and the Criterion benches reuse the same
//! functions so the published numbers and the benchmarked code paths cannot
//! drift apart.

use std::fmt;

use fatrobots_baselines::{CentroidBaseline, GreedyNearest, SmallN};
use fatrobots_core::{AlgorithmParams, LocalAlgorithm, Strategy};
use fatrobots_scheduler::{
    Adversary, CollisionSeeker, CrashStop, Liveness, PersistentSleep, RandomAsync, RoundRobin,
    SlowCoalition, SlowRobot, StopHappy,
};

use crate::engine::{CancelFlag, SimConfig, Simulator};
use crate::init::Shape;
use crate::shadow::{ShadowExecutor, ShadowStats};
use crate::sweep::{SweepFailure, SweepObserver, SweepPool};
use crate::world::WorldMode;

/// Which local decision rule a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// The paper's gathering algorithm.
    Paper,
    /// The centroid-pursuit baseline.
    Centroid,
    /// The greedy nearest-neighbour baseline.
    GreedyNearest,
    /// The small-n (n ≤ 4) exhaustive baseline.
    SmallN,
}

impl StrategyKind {
    /// All strategies, for sweeps.
    pub const ALL: [StrategyKind; 4] = [
        StrategyKind::Paper,
        StrategyKind::Centroid,
        StrategyKind::GreedyNearest,
        StrategyKind::SmallN,
    ];

    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::Paper => "agm-gathering",
            StrategyKind::Centroid => "centroid",
            StrategyKind::GreedyNearest => "greedy-nearest",
            StrategyKind::SmallN => "small-n",
        }
    }

    /// Builds the strategy for a system of `n` robots.
    pub fn build(&self, n: usize) -> Box<dyn Strategy> {
        match self {
            StrategyKind::Paper => Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(n))),
            StrategyKind::Centroid => Box::new(CentroidBaseline::new()),
            StrategyKind::GreedyNearest => Box::new(GreedyNearest::new()),
            StrategyKind::SmallN => Box::new(SmallN::new()),
        }
    }
}

/// Which asynchronous schedule a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdversaryKind {
    /// Round-robin, full-speed moves (friendly).
    RoundRobin,
    /// Seeded random robot order and random move truncation.
    RandomAsync,
    /// Every move stopped after δ (maximally obstructive mover schedule).
    StopHappy,
    /// One victim robot always crawls at δ while the rest run full speed
    /// (the schedule behind the paper's bad configurations).
    SlowRobot,
    /// Prefers scheduling the closest pair of movers (provokes collisions).
    CollisionSeeker,
    /// Fault injection: `k` seed-chosen victims permanently stop activating
    /// after a seed-derived warm-up (the crash-stop fault the paper's
    /// liveness condition 1 excludes). The run is settled on the survivors.
    CrashStop {
        /// Number of victims (clamped to `n - 1`).
        k: usize,
    },
    /// Fault injection: `k` seed-chosen victims are starved for a long
    /// seeded window of scheduling decisions, then resume.
    PersistentSleep {
        /// Number of victims (clamped to `n - 1`).
        k: usize,
    },
    /// Fault injection: a `k`-robot seed-chosen coalition is always
    /// truncated to δ while everyone else runs full speed.
    SlowCoalition {
        /// Coalition size (clamped to `n`).
        k: usize,
    },
}

impl AdversaryKind {
    /// All adversaries, for sweeps. The fault injectors participate with
    /// `k = 1` so the determinism matrix and the adversary table pin them
    /// alongside the fault-free schedules; the fuzzer explores larger `k`.
    pub const ALL: [AdversaryKind; 8] = [
        AdversaryKind::RoundRobin,
        AdversaryKind::RandomAsync,
        AdversaryKind::StopHappy,
        AdversaryKind::SlowRobot,
        AdversaryKind::CollisionSeeker,
        AdversaryKind::CrashStop { k: 1 },
        AdversaryKind::PersistentSleep { k: 1 },
        AdversaryKind::SlowCoalition { k: 1 },
    ];

    /// Short name used in reports (independent of fault parameters).
    pub fn name(&self) -> &'static str {
        match self {
            AdversaryKind::RoundRobin => "round-robin",
            AdversaryKind::RandomAsync => "random-async",
            AdversaryKind::StopHappy => "stop-happy",
            AdversaryKind::SlowRobot => "slow-robot",
            AdversaryKind::CollisionSeeker => "collision-seeker",
            AdversaryKind::CrashStop { .. } => "crash-stop",
            AdversaryKind::PersistentSleep { .. } => "persistent-sleep",
            AdversaryKind::SlowCoalition { .. } => "slow-coalition",
        }
    }

    /// The fault parameter `k` (0 for the fault-free schedules).
    pub fn fault_k(&self) -> usize {
        match self {
            AdversaryKind::CrashStop { k }
            | AdversaryKind::PersistentSleep { k }
            | AdversaryKind::SlowCoalition { k } => *k,
            _ => 0,
        }
    }

    /// The kind with the given [`Self::name`] and fault parameter `k`
    /// (ignored for fault-free kinds), or `None` for an unknown name. The
    /// inverse of [`Self::name`]/[`Self::fault_k`], used by the fuzzer's
    /// fixture loader.
    pub fn from_name(name: &str, k: usize) -> Option<AdversaryKind> {
        Some(match name {
            "round-robin" => AdversaryKind::RoundRobin,
            "random-async" => AdversaryKind::RandomAsync,
            "stop-happy" => AdversaryKind::StopHappy,
            "slow-robot" => AdversaryKind::SlowRobot,
            "collision-seeker" => AdversaryKind::CollisionSeeker,
            "crash-stop" => AdversaryKind::CrashStop { k },
            "persistent-sleep" => AdversaryKind::PersistentSleep { k },
            "slow-coalition" => AdversaryKind::SlowCoalition { k },
            _ => return None,
        })
    }

    /// Builds the adversary for a system of `n` robots (seeded where
    /// applicable). The slow-robot schedule derives its victim from the
    /// seed, so a seed sweep drags out a different robot each run instead
    /// of always picking robot 0; the fault injectors derive victims and
    /// fault timing from the seed the same way.
    pub fn build(&self, seed: u64, n: usize) -> Box<dyn Adversary> {
        match self {
            AdversaryKind::RoundRobin => Box::new(RoundRobin::new()),
            AdversaryKind::RandomAsync => Box::new(RandomAsync::new(seed)),
            AdversaryKind::StopHappy => Box::new(StopHappy::new()),
            AdversaryKind::SlowRobot => Box::new(SlowRobot::for_system(seed, n)),
            AdversaryKind::CollisionSeeker => Box::new(CollisionSeeker::new()),
            AdversaryKind::CrashStop { k } => Box::new(CrashStop::new(seed, n, *k)),
            AdversaryKind::PersistentSleep { k } => Box::new(PersistentSleep::new(seed, n, *k)),
            AdversaryKind::SlowCoalition { k } => Box::new(SlowCoalition::new(seed, n, *k)),
        }
    }
}

/// A fully specified run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSpec {
    /// Number of robots.
    pub n: usize,
    /// Seed for the initial configuration and (where applicable) the
    /// adversary.
    pub seed: u64,
    /// Initial configuration shape.
    pub shape: Shape,
    /// Local decision rule.
    pub strategy: StrategyKind,
    /// Asynchronous schedule.
    pub adversary: AdversaryKind,
    /// Liveness distance δ.
    pub delta: f64,
    /// Event budget.
    pub max_events: usize,
    /// Run the exact-arithmetic shadow oracle alongside the engine and
    /// attach its divergence tallies to the summary. Only meaningful for
    /// [`StrategyKind::Paper`] (the oracle replays the paper's kernelised
    /// Compute pipeline); other strategies ignore it. Off by default — the
    /// oracle roughly triples per-Compute cost.
    pub shadow: bool,
    /// How the world answers queries: the dense incremental cache (the
    /// default), the sparse store for large n, or from-scratch reference
    /// recomputation. All three are event-for-event identical.
    pub world_mode: WorldMode,
    /// Thread budget for the run ([`SimConfig::threads`]): `1` (the
    /// default) runs the serial event loop, more routes the run through the
    /// deterministic parallel executor — identical events, metrics, and
    /// outcome, only throughput changes (`report --threads N`).
    pub threads: usize,
    /// Configuration-sampling period ([`SimConfig::sample_every`]). The
    /// default matches the engine's; the `scale` table sets 0 — a single
    /// predicate sample at n = 10⁴ forces the whole lazy visibility graph
    /// and would dwarf the event window it is meant to measure.
    pub sample_every: usize,
}

impl RunSpec {
    /// A reasonable default specification for `n` robots and a seed: random
    /// initial configuration, the paper's algorithm, the random-async
    /// adversary, and an event budget that scales with `n`.
    pub fn new(n: usize, seed: u64) -> Self {
        RunSpec {
            n,
            seed,
            shape: Shape::Random,
            strategy: StrategyKind::Paper,
            adversary: AdversaryKind::RandomAsync,
            delta: 1e-3,
            max_events: 60_000 + 20_000 * n,
            shadow: false,
            world_mode: WorldMode::Incremental,
            threads: 1,
            sample_every: SimConfig::default().sample_every,
        }
    }
}

/// The measurable outcome of one run, flattened for table building.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// The specification that produced this summary.
    pub spec: RunSpec,
    /// `true` when every robot terminated and the final configuration was
    /// connected and fully visible.
    pub gathered: bool,
    /// `true` when every robot terminated (whether or not gathered).
    pub terminated: bool,
    /// Events applied.
    pub events: usize,
    /// Look events per robot (completed LCM cycles per robot).
    pub cycles_per_robot: f64,
    /// Total distance travelled by all robots.
    pub distance: f64,
    /// First event at which the configuration was fully visible, if ever.
    pub first_fully_visible: Option<usize>,
    /// First event at which the configuration was connected, if ever.
    pub first_connected: Option<usize>,
    /// Fraction of sampled steps before full visibility where the hull did
    /// not shrink (Lemma 20 witness).
    pub expansion_monotonicity: Option<f64>,
    /// Fraction of sampled steps after full visibility where the hull did
    /// not grow (Lemma 21 witness).
    pub convergence_monotonicity: Option<f64>,
    /// Pairwise-visibility lookups answered from the incremental world's
    /// cache.
    pub visibility_cache_hits: u64,
    /// Pairwise-visibility lookups that had to be recomputed.
    pub visibility_cache_misses: u64,
    /// Compute events answered by replaying the memoized decision (the
    /// robot's view version was unchanged since its previous decision).
    pub decision_cache_hits: u64,
    /// Compute events that ran the full Compute pipeline.
    pub decision_cache_misses: u64,
    /// Hull-cache refreshes served by the single-mover in-place repair.
    pub hull_repairs: u64,
    /// Hull-cache refreshes that fell back to a full rebuild.
    pub hull_rebuilds: u64,
    /// Visibility pair-store entries materialized by the end of the run —
    /// the full Θ(n²) triangle in the dense world, only the computed pairs
    /// in the sparse one.
    pub world_pair_entries: u64,
    /// Live corridor registrations held by the pair store at the end of
    /// the run.
    pub world_pair_registrations: u64,
    /// Batches committed by the parallel executor (0 for serial runs).
    pub par_batches: u64,
    /// Events committed inside multi-event batches — the events that
    /// actually ran grouped (0 for serial runs).
    pub par_batched_events: u64,
    /// Speculative decisions consumed by a Compute event (each replayed as
    /// the decision-cache miss it would have been serially).
    pub speculation_hits: u64,
    /// Speculative decisions discarded on a stale version stamp.
    pub speculation_aborts: u64,
    /// Robots permanently crashed by a fired crash-stop fault (0 for
    /// fault-free adversaries).
    pub fault_crashed_robots: u64,
    /// Scheduling decisions taken while a persistent-sleep victim was
    /// starved (0 for fault-free adversaries).
    pub fault_starved_directives: u64,
    /// Directives truncated to δ by a slow coalition (0 for fault-free
    /// adversaries).
    pub fault_truncated_directives: u64,
    /// Shadow-oracle tallies, present when the spec requested the oracle
    /// and the strategy was the paper's algorithm.
    pub shadow: Option<ShadowStats>,
}

/// Default interval, in events, between [`RunHooks::progress`] callbacks —
/// frequent enough that a checkpointed run loses little work to a crash,
/// rare enough that the fingerprint fold never shows up in a profile.
pub const PROGRESS_EVERY_DEFAULT: usize = 8_192;

/// Supervision hooks threaded into [`run_with_hooks`].
///
/// The default hooks are inert — a disarmed cancel flag and no progress
/// callback — and make [`run_with_hooks`] behave exactly like [`run`].
pub struct RunHooks<'a> {
    /// Cooperative cancellation flag, polled by the engine between events
    /// ([`SimConfig::cancel`]). Arm it and raise it from a watchdog to stop
    /// a hung run at a clean event boundary.
    pub cancel: CancelFlag,
    /// Called every [`RunHooks::progress_every`] events with the applied
    /// event count and the engine's [state
    /// fingerprint](crate::engine::Simulator::fingerprint) — the payload of
    /// a checkpoint progress record.
    pub progress: Option<&'a mut dyn FnMut(usize, u64)>,
    /// Interval between progress callbacks (events; `0` is treated as the
    /// default).
    pub progress_every: usize,
}

impl Default for RunHooks<'_> {
    fn default() -> Self {
        RunHooks {
            cancel: CancelFlag::default(),
            progress: None,
            progress_every: PROGRESS_EVERY_DEFAULT,
        }
    }
}

impl std::fmt::Debug for RunHooks<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunHooks")
            .field("cancel", &self.cancel)
            .field("progress", &self.progress.is_some())
            .field("progress_every", &self.progress_every)
            .finish()
    }
}

/// How a supervised run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunStatus {
    /// The run finished (terminated, or ran out of event budget) and
    /// produced its summary (boxed: the summary dwarfs the other variant).
    Completed(Box<RunSummary>),
    /// The run was stopped early by its [`CancelFlag`]; `events` is how far
    /// it got. There is no summary — a cancelled run's counters describe an
    /// arbitrary prefix, not an outcome.
    Cancelled {
        /// Events applied before the cancellation was observed.
        events: usize,
    },
}

/// Executes one run.
pub fn run(spec: &RunSpec) -> RunSummary {
    match run_with_hooks(spec, RunHooks::default()) {
        RunStatus::Completed(summary) => *summary,
        RunStatus::Cancelled { .. } => {
            unreachable!("a disarmed cancel flag can never cancel a run")
        }
    }
}

/// [`run`] with supervision hooks: a cooperative cancellation flag and a
/// periodic progress callback (event count plus engine fingerprint). The
/// event stream is identical to [`run`] — the hooks only watch — so a
/// completed supervised run returns exactly [`run`]'s summary.
pub fn run_with_hooks(spec: &RunSpec, mut hooks: RunHooks<'_>) -> RunStatus {
    let centers = spec.shape.generate(spec.n, spec.seed);
    let config = SimConfig {
        max_events: spec.max_events,
        liveness: Liveness::new(spec.delta),
        world_mode: spec.world_mode,
        threads: spec.threads.max(1),
        sample_every: spec.sample_every,
        cancel: hooks.cancel.clone(),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(
        centers,
        spec.strategy.build(spec.n),
        spec.adversary.build(spec.seed, spec.n),
        config,
    );
    let shadowing = spec.shadow && spec.strategy == StrategyKind::Paper;
    let mut oracle = shadowing.then(|| ShadowExecutor::new(spec.n));
    let progress_every = if hooks.progress_every == 0 {
        PROGRESS_EVERY_DEFAULT
    } else {
        hooks.progress_every
    };
    let outcome = {
        let mut progress = hooks.progress.as_mut();
        let mut oracle_ref = oracle.as_mut();
        let mut observed = 0usize;
        if oracle_ref.is_none() && progress.is_none() {
            sim.run()
        } else {
            sim.run_observed(|sim, event| {
                if let Some(oracle) = oracle_ref.as_deref_mut() {
                    oracle.observe(sim, event);
                }
                if let Some(progress) = progress.as_deref_mut() {
                    observed += 1;
                    if observed % progress_every == 0 {
                        progress(observed, sim.fingerprint());
                    }
                }
            })
        }
    };
    if outcome.cancelled {
        return RunStatus::Cancelled {
            events: outcome.events,
        };
    }
    let shadow = oracle.map(ShadowExecutor::into_stats);
    let (visibility_cache_hits, visibility_cache_misses) = sim.visibility_cache_stats();
    let (decision_cache_hits, decision_cache_misses) = sim.decision_cache_stats();
    let (hull_repairs, hull_rebuilds) = sim.hull_repair_stats();
    let (world_pair_entries, world_pair_registrations) = sim.pair_store_stats();
    let (par_batches, par_batched_events, speculation_hits, speculation_aborts) =
        sim.parallel_stats();
    let fault = sim.fault_stats();
    RunStatus::Completed(Box::new(RunSummary {
        spec: *spec,
        gathered: outcome.gathered,
        terminated: outcome.terminated,
        events: outcome.events,
        cycles_per_robot: outcome.metrics.looks as f64 / spec.n as f64,
        distance: outcome.metrics.distance_travelled,
        first_fully_visible: outcome.metrics.first_fully_visible,
        first_connected: outcome.metrics.first_connected,
        expansion_monotonicity: outcome.metrics.expansion_monotonicity(),
        convergence_monotonicity: outcome.metrics.convergence_monotonicity(),
        visibility_cache_hits,
        visibility_cache_misses,
        decision_cache_hits,
        decision_cache_misses,
        hull_repairs,
        hull_rebuilds,
        world_pair_entries,
        world_pair_registrations,
        par_batches,
        par_batched_events,
        speculation_hits,
        speculation_aborts,
        fault_crashed_robots: fault.crashed_robots,
        fault_starved_directives: fault.starved_directives,
        fault_truncated_directives: fault.truncated_directives,
        shadow,
    }))
}

/// An aggregated row over several seeds of the same specification family.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateRow {
    /// Row label (e.g. the robot count, the adversary name, the shape).
    pub label: String,
    /// Number of runs aggregated.
    pub runs: usize,
    /// Fraction of runs that gathered.
    pub gathered_rate: f64,
    /// Mean events per run.
    pub mean_events: f64,
    /// Mean LCM cycles per robot.
    pub mean_cycles_per_robot: f64,
    /// Mean total travelled distance.
    pub mean_distance: f64,
    /// Mean first-fully-visible event index over the runs that reached it.
    pub mean_first_fully_visible: Option<f64>,
    /// Mean expansion monotonicity over the runs that measured it.
    pub mean_expansion_monotonicity: Option<f64>,
    /// Mean convergence monotonicity over the runs that measured it.
    pub mean_convergence_monotonicity: Option<f64>,
    /// Total shadow-oracle decision divergences (ε decision ≠ exact
    /// decision) over the runs that ran the oracle; `None` when none did.
    pub shadow_divergent: Option<u64>,
    /// Total shadow-oracle predicate flips (per-site ε-vs-exact verdict
    /// disagreements, including benign ones absorbed by control flow) over
    /// the runs that ran the oracle; `None` when none did.
    pub shadow_flips: Option<u64>,
}

impl AggregateRow {
    /// Aggregates a batch of summaries under one label.
    pub fn from_summaries(label: impl Into<String>, summaries: &[RunSummary]) -> Self {
        let runs = summaries.len().max(1);
        let mean =
            |f: &dyn Fn(&RunSummary) -> f64| summaries.iter().map(f).sum::<f64>() / runs as f64;
        let mean_opt = |f: &dyn Fn(&RunSummary) -> Option<f64>| {
            let vals: Vec<f64> = summaries.iter().filter_map(f).collect();
            if vals.is_empty() {
                None
            } else {
                Some(vals.iter().sum::<f64>() / vals.len() as f64)
            }
        };
        let shadowed: Vec<&ShadowStats> =
            summaries.iter().filter_map(|s| s.shadow.as_ref()).collect();
        AggregateRow {
            label: label.into(),
            runs: summaries.len(),
            gathered_rate: summaries.iter().filter(|s| s.gathered).count() as f64 / runs as f64,
            mean_events: mean(&|s| s.events as f64),
            mean_cycles_per_robot: mean(&|s| s.cycles_per_robot),
            mean_distance: mean(&|s| s.distance),
            mean_first_fully_visible: mean_opt(&|s| s.first_fully_visible.map(|v| v as f64)),
            mean_expansion_monotonicity: mean_opt(&|s| s.expansion_monotonicity),
            mean_convergence_monotonicity: mean_opt(&|s| s.convergence_monotonicity),
            shadow_divergent: (!shadowed.is_empty())
                .then(|| shadowed.iter().map(|s| s.divergent).sum()),
            shadow_flips: (!shadowed.is_empty())
                .then(|| shadowed.iter().map(|s| s.predicate_flips()).sum()),
        }
    }

    /// The table header matching [`fmt::Display`] output.
    pub fn header() -> &'static str {
        "label                 runs  gathered  events      cycles/robot  distance    first-FV    exp-mono  conv-mono"
    }
}

impl fmt::Display for AggregateRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:10.2}"),
            None => format!("{:>10}", "-"),
        };
        write!(
            f,
            "{:<20} {:>5} {:>9.2} {:>11.1} {:>13.1} {:>11.1} {} {} {}",
            self.label,
            self.runs,
            self.gathered_rate,
            self.mean_events,
            self.mean_cycles_per_robot,
            self.mean_distance,
            opt(self.mean_first_fully_visible),
            opt(self.mean_expansion_monotonicity),
            opt(self.mean_convergence_monotonicity),
        )
    }
}

/// A labelled family of specs — one table row before execution.
#[derive(Debug, Clone)]
pub struct SpecGroup {
    /// Row label (e.g. `n=6`, the adversary name, the shape).
    pub label: String,
    /// The runs aggregated into this row.
    pub specs: Vec<RunSpec>,
}

impl SpecGroup {
    /// A group from a label and the specs produced per seed.
    pub fn per_seed(
        label: impl Into<String>,
        seeds: &[u64],
        mut spec: impl FnMut(u64) -> RunSpec,
    ) -> Self {
        SpecGroup {
            label: label.into(),
            specs: seeds.iter().map(|&seed| spec(seed)).collect(),
        }
    }
}

/// One executed table row: the label plus every per-run summary behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupResult {
    /// Row label, carried over from the [`SpecGroup`].
    pub label: String,
    /// Per-run summaries, in seed order.
    pub summaries: Vec<RunSummary>,
}

impl GroupResult {
    /// Aggregates this group into its display row.
    pub fn aggregate(&self) -> AggregateRow {
        AggregateRow::from_summaries(self.label.clone(), &self.summaries)
    }
}

/// An executed experiment table: identity, caption, and every run grouped
/// by row. The aggregate rows are derived views ([`ExperimentTable::rows`]);
/// the per-run summaries stay available for machine-readable reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentTable {
    /// Stable identifier (`e1` … `e7`), used for CLI flags and JSON.
    pub id: &'static str,
    /// Human-readable caption printed above the table.
    pub title: String,
    /// One entry per table row.
    pub groups: Vec<GroupResult>,
}

impl ExperimentTable {
    /// The aggregate rows, one per group.
    pub fn rows(&self) -> Vec<AggregateRow> {
        self.groups.iter().map(GroupResult::aggregate).collect()
    }

    /// Every per-run summary in the table, in row-major order.
    pub fn summaries(&self) -> impl Iterator<Item = &RunSummary> {
        self.groups.iter().flat_map(|g| g.summaries.iter())
    }
}

/// A table before execution: identity, caption, and the labelled spec
/// groups. Execute with [`TableSpec::execute`] (one-shot scoped sweep) or
/// [`TableSpec::execute_on`] (a shared [`SweepPool`](crate::sweep::SweepPool)
/// reused across tables, as the `report` binary does).
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Stable identifier (`e1` … `e7`).
    pub id: &'static str,
    /// Human-readable caption.
    pub title: String,
    /// One entry per table row.
    pub groups: Vec<SpecGroup>,
}

impl TableSpec {
    /// The groups flattened into one spec list, row-major. Flattening means
    /// short and long rows share the same worker pool instead of
    /// serialising on the slowest row.
    fn flat_specs(&self) -> Vec<RunSpec> {
        self.groups
            .iter()
            .flat_map(|g| g.specs.iter().copied())
            .collect()
    }

    /// Slices flat summaries back into their rows.
    fn assemble(self, summaries: Vec<RunSummary>) -> ExperimentTable {
        let mut summaries = summaries.into_iter();
        let groups = self
            .groups
            .into_iter()
            .map(|g| GroupResult {
                label: g.label,
                summaries: summaries.by_ref().take(g.specs.len()).collect(),
            })
            .collect();
        ExperimentTable {
            id: self.id,
            title: self.title,
            groups,
        }
    }

    /// Executes the table as one flat sweep over `jobs` one-shot workers.
    pub fn execute(self, jobs: usize) -> ExperimentTable {
        let summaries = crate::sweep::run_sweep(&self.flat_specs(), jobs);
        self.assemble(summaries)
    }

    /// Executes the table on a shared worker pool. The output is
    /// byte-identical to [`TableSpec::execute`] with the pool's worker
    /// count.
    pub fn execute_on(self, pool: &mut SweepPool) -> ExperimentTable {
        let summaries = pool.run(&self.flat_specs());
        self.assemble(summaries)
    }

    /// [`TableSpec::execute_on`] under supervision: a panicking or
    /// watchdog-cancelled run becomes a structured [`SweepFailure`] instead
    /// of aborting the sweep, and with a checkpoint session the table is
    /// crash-safe — rows already in the journal are loaded instead of
    /// re-run, and every completion/progress milestone is journalled as it
    /// happens. A failure-free, checkpoint-free call returns exactly
    /// [`TableSpec::execute_on`]'s table.
    pub fn execute_supervised_on(
        self,
        pool: &mut SweepPool,
        policy: &crate::sweep::SupervisionPolicy,
        mut checkpoint: Option<&mut crate::checkpoint::CheckpointedSweep>,
    ) -> TableRun {
        let specs = self.flat_specs();
        let mut summaries: Vec<Option<RunSummary>> = vec![None; specs.len()];
        // Partition against the journal: slot i of this table is ordinal
        // base + i of the whole invocation, in canonical execution order.
        let base = checkpoint.as_deref().map_or(0, |ck| ck.next_ordinal());
        let mut to_run: Vec<(usize, RunSpec)> = Vec::new();
        if let Some(ck) = checkpoint.as_deref_mut() {
            for (slot, &spec) in specs.iter().enumerate() {
                match ck.take_completed(base + slot as u64, &spec) {
                    Some(summary) => summaries[slot] = Some(summary),
                    None => to_run.push((slot, spec)),
                }
            }
            ck.advance(specs.len() as u64);
        } else {
            to_run.extend(specs.iter().copied().enumerate());
        }

        // Journal milestones as they arrive, translating pool slots (the
        // index into `to_run`) back to table slots and global ordinals.
        struct JournalObserver<'a> {
            ck: Option<&'a mut crate::checkpoint::CheckpointedSweep>,
            to_run: &'a [(usize, RunSpec)],
            base: u64,
        }
        impl SweepObserver for JournalObserver<'_> {
            fn on_progress(&mut self, pool_slot: usize, events: usize, fingerprint: u64) {
                if let Some(ck) = self.ck.as_deref_mut() {
                    let (slot, spec) = self.to_run[pool_slot];
                    ck.journal_progress(self.base + slot as u64, &spec, events, fingerprint);
                }
            }
            fn on_completed(&mut self, pool_slot: usize, summary: &RunSummary) {
                if let Some(ck) = self.ck.as_deref_mut() {
                    let (slot, _) = self.to_run[pool_slot];
                    ck.journal_completed(self.base + slot as u64, summary);
                }
            }
        }

        let run_specs: Vec<RunSpec> = to_run.iter().map(|&(_, spec)| spec).collect();
        let mut observer = JournalObserver {
            ck: checkpoint,
            to_run: &to_run,
            base,
        };
        let outcome = pool.run_supervised(&run_specs, policy, &mut observer);
        for (pool_slot, summary) in outcome.summaries.into_iter().enumerate() {
            if let Some(summary) = summary {
                summaries[to_run[pool_slot].0] = Some(summary);
            }
        }
        let failures = outcome.failures;
        TableRun {
            table: self.assemble_partial(summaries),
            failures,
            retries: outcome.retries,
        }
    }

    /// [`TableSpec::assemble`] tolerating holes: failed runs simply do not
    /// contribute a summary, so their row aggregates over the seeds that
    /// did complete.
    fn assemble_partial(self, summaries: Vec<Option<RunSummary>>) -> ExperimentTable {
        let mut summaries = summaries.into_iter();
        let groups = self
            .groups
            .into_iter()
            .map(|g| GroupResult {
                label: g.label,
                summaries: summaries.by_ref().take(g.specs.len()).flatten().collect(),
            })
            .collect();
        ExperimentTable {
            id: self.id,
            title: self.title,
            groups,
        }
    }
}

/// The outcome of a supervised table execution: the assembled table (failed
/// runs leave holes in their rows) plus the structured failures and the
/// retry count, for the report's telemetry section and exit code.
#[derive(Debug, Clone)]
pub struct TableRun {
    /// The assembled table; rows aggregate over their completed runs only.
    pub table: ExperimentTable,
    /// One entry per run that exhausted its retries (or was quarantined).
    pub failures: Vec<SweepFailure>,
    /// Re-executions performed after a failed attempt, across all runs.
    pub retries: u64,
}

/// Executes a table's groups as one flat sweep over `jobs` workers and
/// slices the summaries back into their rows.
pub fn sweep_table(
    id: &'static str,
    title: impl Into<String>,
    groups: Vec<SpecGroup>,
    jobs: usize,
) -> ExperimentTable {
    TableSpec {
        id,
        title: title.into(),
        groups,
    }
    .execute(jobs)
}

/// Robot counts at or above this threshold run with the bounded
/// [`LARGE_N_EVENT_CAP`] budget in [`scaling_table`].
pub const LARGE_N_THRESHOLD: usize = 48;

/// Event budget for the large-`n` rows of E1. The paper's algorithm does
/// not reach the gathering postcondition at these sizes within any
/// practical budget (see the livelock note in ROADMAP.md), so the rows
/// measure event throughput and visibility-cache behaviour over a fixed
/// window instead of time-to-gather.
pub const LARGE_N_EVENT_CAP: usize = 60_000;

/// E1 — gathering success and cost versus the number of robots.
pub fn scaling_table(ns: &[usize], seeds: &[u64], jobs: usize) -> ExperimentTable {
    scaling_table_spec(ns, seeds).execute(jobs)
}

/// The [`TableSpec`] behind [`scaling_table`], with the default
/// [`LARGE_N_EVENT_CAP`] budget on the large-`n` rows.
pub fn scaling_table_spec(ns: &[usize], seeds: &[u64]) -> TableSpec {
    scaling_table_spec_with_cap(ns, seeds, LARGE_N_EVENT_CAP)
}

/// [`scaling_table_spec`] with an explicit event budget for the rows at or
/// above [`LARGE_N_THRESHOLD`] (the `report --event-cap` flag). The cap
/// only ever *lowers* a row's budget — small-n rows keep their
/// scale-with-n default unless the cap is tighter.
pub fn scaling_table_spec_with_cap(ns: &[usize], seeds: &[u64], event_cap: usize) -> TableSpec {
    TableSpec {
        id: "e1",
        title: "E1 — gathering cost vs number of robots (random starts, random-async adversary)"
            .into(),
        groups: ns
            .iter()
            .map(|&n| {
                SpecGroup::per_seed(format!("n={n}"), seeds, |seed| {
                    let mut spec = RunSpec::new(n, seed);
                    if n >= LARGE_N_THRESHOLD {
                        spec.max_events = spec.max_events.min(event_cap);
                    }
                    spec
                })
            })
            .collect(),
    }
}

/// E2/E3 — hull-expansion and convergence monotonicity per initial shape.
pub fn expansion_table(n: usize, seeds: &[u64], jobs: usize) -> ExperimentTable {
    expansion_table_spec(n, seeds).execute(jobs)
}

/// The [`TableSpec`] behind [`expansion_table`].
pub fn expansion_table_spec(n: usize, seeds: &[u64]) -> TableSpec {
    TableSpec {
        id: "e2e3",
        title: format!(
            "E2/E3 — hull expansion & convergence monotonicity by initial shape (n = {n})"
        ),
        groups: [Shape::Clusters, Shape::Line, Shape::Random]
            .iter()
            .map(|&shape| {
                SpecGroup::per_seed(format!("shape={}", shape.name()), seeds, |seed| RunSpec {
                    shape,
                    ..RunSpec::new(n, seed)
                })
            })
            .collect(),
    }
}

/// E4 — behaviour under each adversary.
pub fn adversary_table(n: usize, seeds: &[u64], jobs: usize) -> ExperimentTable {
    adversary_table_spec(n, seeds).execute(jobs)
}

/// The [`TableSpec`] behind [`adversary_table`].
pub fn adversary_table_spec(n: usize, seeds: &[u64]) -> TableSpec {
    TableSpec {
        id: "e4",
        title: format!("E4 — behaviour under each adversary (n = {n}, random starts)"),
        groups: AdversaryKind::ALL
            .iter()
            .map(|&adv| {
                SpecGroup::per_seed(adv.name(), seeds, |seed| RunSpec {
                    adversary: adv,
                    ..RunSpec::new(n, seed)
                })
            })
            .collect(),
    }
}

/// E5 — the paper's algorithm versus the baselines, for a given `n`.
pub fn baseline_table(n: usize, seeds: &[u64], jobs: usize) -> ExperimentTable {
    baseline_table_spec(n, seeds).execute(jobs)
}

/// The [`TableSpec`] behind [`baseline_table`].
pub fn baseline_table_spec(n: usize, seeds: &[u64]) -> TableSpec {
    TableSpec {
        id: "e5",
        title: format!("E5 — the paper's algorithm vs the baselines (n = {n}, random starts)"),
        groups: StrategyKind::ALL
            .iter()
            .map(|&strategy| {
                SpecGroup::per_seed(strategy.name(), seeds, |seed| RunSpec {
                    strategy,
                    // Baselines get a smaller budget: they either succeed
                    // quickly (n ≤ 4) or plateau without terminating.
                    max_events: if strategy == StrategyKind::Paper {
                        RunSpec::new(n, seed).max_events
                    } else {
                        30_000
                    },
                    ..RunSpec::new(n, seed)
                })
            })
            .collect(),
    }
}

/// E6 — sensitivity to the liveness distance δ.
pub fn delta_table(n: usize, deltas: &[f64], seeds: &[u64], jobs: usize) -> ExperimentTable {
    delta_table_spec(n, deltas, seeds).execute(jobs)
}

/// The [`TableSpec`] behind [`delta_table`].
pub fn delta_table_spec(n: usize, deltas: &[f64], seeds: &[u64]) -> TableSpec {
    TableSpec {
        id: "e6",
        title: format!("E6 — sensitivity to the liveness distance delta (n = {n})"),
        groups: deltas
            .iter()
            .map(|&delta| {
                SpecGroup::per_seed(format!("delta={delta}"), seeds, |seed| RunSpec {
                    delta,
                    ..RunSpec::new(n, seed)
                })
            })
            .collect(),
    }
}

/// E7 — sensitivity to the initial configuration shape.
pub fn shape_table(n: usize, seeds: &[u64], jobs: usize) -> ExperimentTable {
    shape_table_spec(n, seeds).execute(jobs)
}

/// The [`TableSpec`] behind [`shape_table`].
pub fn shape_table_spec(n: usize, seeds: &[u64]) -> TableSpec {
    TableSpec {
        id: "e7",
        title: format!("E7 — sensitivity to the initial configuration shape (n = {n})"),
        groups: Shape::ALL
            .iter()
            .map(|&shape| {
                SpecGroup::per_seed(shape.name(), seeds, |seed| RunSpec {
                    shape,
                    ..RunSpec::new(n, seed)
                })
            })
            .collect(),
    }
}

/// Event budget for the `scale` table rows. The rows measure per-event
/// cost (row-init Looks over the sparse world), not time-to-gather, so a
/// short fixed window keeps the quick report fast while still exercising
/// tens of thousands of pair kernels per row at n = 10⁴ (each n = 10⁴
/// Look initializes a full sparse row: ~10⁴ corridor gathers and
/// strip-cover certificates, ~200 ms serially).
pub const SCALE_TABLE_EVENT_CAP: usize = 64;

/// `scale` — large-n event throughput over the sparse world (n ∈ {10³,
/// 10⁴}), so the scaling curve the CI `scale` job gates is also tracked in
/// the committed baseline.
pub fn scale_table(event_cap: usize, jobs: usize) -> ExperimentTable {
    scale_table_spec(event_cap).execute(jobs)
}

/// The [`TableSpec`] behind [`scale_table`]. One seed per row: the hex
/// packing is deterministic and the round-robin schedule seed-free, so
/// extra seeds would replay the same run. `--event-cap` below the default
/// [`SCALE_TABLE_EVENT_CAP`] tightens the window further.
pub fn scale_table_spec(event_cap: usize) -> TableSpec {
    TableSpec {
        id: "scale",
        title: "SCALE — event throughput at large n (hex packing, sparse world, round-robin)"
            .into(),
        groups: [1_000usize, 10_000]
            .iter()
            .map(|&n| {
                SpecGroup::per_seed(format!("n={n}"), &[1], |seed| RunSpec {
                    shape: Shape::Hex,
                    adversary: AdversaryKind::RoundRobin,
                    world_mode: WorldMode::Sparse,
                    max_events: SCALE_TABLE_EVENT_CAP.min(event_cap),
                    sample_every: 0,
                    ..RunSpec::new(n, seed)
                })
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_distinct_names_and_build() {
        let strategy_names: std::collections::HashSet<_> =
            StrategyKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(strategy_names.len(), StrategyKind::ALL.len());
        let adversary_names: std::collections::HashSet<_> =
            AdversaryKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(adversary_names.len(), AdversaryKind::ALL.len());
        for k in StrategyKind::ALL {
            let _ = k.build(5);
        }
        for k in AdversaryKind::ALL {
            let _ = k.build(1, 5);
        }
    }

    #[test]
    fn single_run_with_the_paper_algorithm_gathers_a_small_system() {
        let spec = RunSpec {
            max_events: 120_000,
            shape: Shape::Circle,
            adversary: AdversaryKind::RoundRobin,
            ..RunSpec::new(5, 3)
        };
        let summary = run(&spec);
        assert!(summary.terminated, "5 robots on a circle must terminate");
        assert!(summary.gathered);
        assert!(summary.cycles_per_robot >= 1.0);
    }

    #[test]
    fn shadow_spec_attaches_oracle_stats_without_changing_the_run() {
        let base = RunSpec {
            max_events: 120_000,
            shape: Shape::Circle,
            adversary: AdversaryKind::RoundRobin,
            ..RunSpec::new(5, 3)
        };
        let plain = run(&base);
        let shadowed = run(&RunSpec {
            shadow: true,
            ..base
        });
        // The oracle only observes: every engine-level field agrees.
        assert_eq!(plain.gathered, shadowed.gathered);
        assert_eq!(plain.events, shadowed.events);
        assert_eq!(plain.distance, shadowed.distance);
        let stats = shadowed.shadow.expect("paper strategy + shadow spec");
        assert!(stats.computes > 0);
        assert!(stats.log.calls() > 0);
        assert!(plain.shadow.is_none());
        // Baselines do not run the paper pipeline; the oracle stays off.
        let baseline = run(&RunSpec {
            shadow: true,
            strategy: StrategyKind::Centroid,
            max_events: 2_000,
            ..base
        });
        assert!(baseline.shadow.is_none());
    }

    #[test]
    fn aggregate_row_mixes_runs() {
        let spec = RunSpec {
            max_events: 5_000,
            ..RunSpec::new(3, 1)
        };
        let summaries = vec![run(&spec), run(&RunSpec { seed: 2, ..spec })];
        let row = AggregateRow::from_summaries("n=3", &summaries);
        assert_eq!(row.runs, 2);
        assert!(row.gathered_rate >= 0.0 && row.gathered_rate <= 1.0);
        assert!(!format!("{row}").is_empty());
        assert!(!AggregateRow::header().is_empty());
    }

    #[test]
    fn sweep_table_slices_summaries_back_into_rows() {
        let seeds = [1u64, 2];
        let groups = vec![
            SpecGroup::per_seed("n=3", &seeds, |seed| RunSpec {
                max_events: 5_000,
                ..RunSpec::new(3, seed)
            }),
            SpecGroup::per_seed("n=4", &seeds, |seed| RunSpec {
                max_events: 5_000,
                ..RunSpec::new(4, seed)
            }),
        ];
        let table = sweep_table("t", "test table", groups, 2);
        assert_eq!(table.id, "t");
        assert_eq!(table.groups.len(), 2);
        assert_eq!(table.rows().len(), 2);
        assert_eq!(table.summaries().count(), 4);
        for group in &table.groups {
            assert_eq!(group.summaries.len(), seeds.len());
            for (summary, &seed) in group.summaries.iter().zip(seeds.iter()) {
                assert_eq!(summary.spec.seed, seed);
            }
        }
        assert_eq!(table.groups[0].summaries[0].spec.n, 3);
        assert_eq!(table.groups[1].summaries[0].spec.n, 4);
    }

    #[test]
    fn tables_agree_with_direct_runs() {
        let seeds = [1u64];
        let table = scaling_table(&[3], &seeds, 2);
        let direct = run(&RunSpec::new(3, 1));
        assert_eq!(table.groups[0].summaries[0], direct);
        assert_eq!(table.rows()[0].label, "n=3");
    }

    #[test]
    fn adversary_names_round_trip_with_their_fault_parameter() {
        for kind in AdversaryKind::ALL {
            let k = kind.fault_k().max(2);
            let parsed =
                AdversaryKind::from_name(kind.name(), if kind.fault_k() > 0 { k } else { 0 });
            match (kind, parsed.expect("every listed adversary parses")) {
                (AdversaryKind::CrashStop { .. }, AdversaryKind::CrashStop { k: pk }) => {
                    assert_eq!(pk, k)
                }
                (
                    AdversaryKind::PersistentSleep { .. },
                    AdversaryKind::PersistentSleep { k: pk },
                ) => {
                    assert_eq!(pk, k)
                }
                (AdversaryKind::SlowCoalition { .. }, AdversaryKind::SlowCoalition { k: pk }) => {
                    assert_eq!(pk, k)
                }
                (original, parsed) => assert_eq!(parsed, original),
            }
        }
        assert_eq!(AdversaryKind::from_name("no-such-schedule", 1), None);
    }

    #[test]
    fn crash_stop_run_terminates_and_reports_live_gathering() {
        // Five robots on a circle with one crash victim: the run must not
        // busy-wait on the dead robot — the effective-termination detector
        // ends it — and the fault counter must land in the summary.
        // (Whether the survivors manage to gather is configuration-specific;
        // seed 3 is pinned by the fixture-style assertions below.)
        let spec = RunSpec {
            shape: Shape::Circle,
            adversary: AdversaryKind::CrashStop { k: 1 },
            max_events: 200_000,
            ..RunSpec::new(5, 3)
        };
        let summary = run(&spec);
        assert_eq!(
            summary.fault_crashed_robots, 1,
            "the crash must actually fire and be reported"
        );
        assert_eq!(summary.fault_starved_directives, 0);
        assert_eq!(summary.fault_truncated_directives, 0);
        if summary.gathered {
            assert!(summary.terminated, "gathered implies terminated");
        }
        // Determinism: the faulty run replays bit-identically.
        assert_eq!(run(&spec), summary);
    }

    #[test]
    fn persistent_sleep_and_slow_coalition_counters_reach_the_summary() {
        let sleep = run(&RunSpec {
            shape: Shape::Circle,
            adversary: AdversaryKind::PersistentSleep { k: 2 },
            max_events: 60_000,
            ..RunSpec::new(6, 1)
        });
        assert!(
            sleep.fault_starved_directives > 0,
            "a 6-robot run must enter the sleep window and starve the victims"
        );
        assert_eq!(sleep.fault_crashed_robots, 0);
        let slow = run(&RunSpec {
            shape: Shape::Circle,
            adversary: AdversaryKind::SlowCoalition { k: 2 },
            max_events: 60_000,
            ..RunSpec::new(6, 1)
        });
        assert!(
            slow.fault_truncated_directives > 0,
            "the coalition's directives must be δ-truncated"
        );
        // Fault-free adversaries keep all three counters at zero.
        let clean = run(&RunSpec {
            max_events: 60_000,
            ..RunSpec::new(5, 1)
        });
        assert_eq!(
            (
                clean.fault_crashed_robots,
                clean.fault_starved_directives,
                clean.fault_truncated_directives
            ),
            (0, 0, 0)
        );
    }

    #[test]
    fn baseline_small_n_idles_for_large_systems() {
        let spec = RunSpec {
            strategy: StrategyKind::SmallN,
            shape: Shape::Circle,
            adversary: AdversaryKind::RoundRobin,
            max_events: 2_000,
            ..RunSpec::new(6, 1)
        };
        let summary = run(&spec);
        assert!(
            !summary.gathered,
            "the small-n baseline cannot gather 6 robots"
        );
    }

    /// A small two-row table spec with one poisoned run (n = 0 panics in
    /// the initializer) sitting among healthy ones.
    fn poisoned_table_spec() -> TableSpec {
        let healthy = |seed| RunSpec {
            shape: Shape::Circle,
            adversary: AdversaryKind::RoundRobin,
            max_events: 120_000,
            ..RunSpec::new(3, seed)
        };
        TableSpec {
            id: "e1",
            title: "supervision smoke".into(),
            groups: vec![
                SpecGroup {
                    label: "healthy".into(),
                    specs: vec![healthy(1), healthy(2)],
                },
                SpecGroup {
                    label: "poisoned".into(),
                    specs: vec![
                        healthy(3),
                        RunSpec {
                            max_events: 10,
                            ..RunSpec::new(0, 1)
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn supervised_table_converts_a_panicking_run_into_a_failure_row() {
        let mut pool = crate::sweep::SweepPool::new(2);
        let policy = crate::sweep::SupervisionPolicy {
            backoff: std::time::Duration::ZERO,
            ..crate::sweep::SupervisionPolicy::default()
        };
        let run = poisoned_table_spec().execute_supervised_on(&mut pool, &policy, None);
        // The poisoned run becomes one structured failure row with its
        // retry budget spent; every healthy run still completes.
        assert_eq!(run.failures.len(), 1);
        let failure = &run.failures[0];
        assert_eq!(failure.spec.n, 0);
        assert_eq!(failure.attempts, policy.max_retries + 1);
        assert!(failure.quarantined);
        assert!(!failure.message.is_empty());
        assert_eq!(run.retries, policy.max_retries as u64);
        let rows = run.table.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].runs, 2, "the healthy row keeps both seeds");
        assert_eq!(
            rows[1].runs, 1,
            "the poisoned row aggregates over its surviving run"
        );
        // The surviving rows match an unsupervised execution of the same
        // healthy specs.
        let healthy_only = TableSpec {
            groups: poisoned_table_spec()
                .groups
                .into_iter()
                .map(|mut g| {
                    g.specs.retain(|s| s.n > 0);
                    g
                })
                .collect(),
            ..poisoned_table_spec()
        };
        let reference = healthy_only.execute_on(&mut pool);
        assert_eq!(run.table.rows(), reference.rows());
    }

    #[test]
    fn supervised_table_resumes_from_its_checkpoint_journal() {
        let dir = std::env::temp_dir().join(format!("fatrobots-ck-resume-{}", std::process::id()));
        let journal = dir.join("journal.frck");
        let spec = || TableSpec {
            groups: poisoned_table_spec()
                .groups
                .into_iter()
                .map(|mut g| {
                    g.specs.retain(|s| s.n > 0);
                    g
                })
                .collect(),
            ..poisoned_table_spec()
        };
        let mut pool = crate::sweep::SweepPool::new(2);
        let policy = crate::sweep::SupervisionPolicy::default();

        let mut first =
            crate::checkpoint::CheckpointedSweep::open(&journal).expect("journal opens");
        let cold = spec().execute_supervised_on(&mut pool, &policy, Some(&mut first));
        assert_eq!(
            first.telemetry().resumed_rows,
            0,
            "a fresh journal resumes nothing"
        );

        // A second session over the same journal replays every row from
        // the journal — bit-identical, without re-running anything.
        let mut second =
            crate::checkpoint::CheckpointedSweep::open(&journal).expect("journal reopens");
        let warm = spec().execute_supervised_on(&mut pool, &policy, Some(&mut second));
        assert_eq!(second.telemetry().resumed_rows, 3, "all three runs resume");
        assert_eq!(warm.table, cold.table, "resumed tables are identical");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
