//! The shadow oracle: replay every Compute decision of a run under the
//! exact-arithmetic kernel and tally where the ε-tolerant production
//! predicates disagree with exact geometry.
//!
//! The engine itself never leaves the default [`EpsKernel`] hot path — the
//! oracle rides along as a [`Simulator::run_observed`] observer. After each
//! `Compute` event the acting robot's Look snapshot and pending decision are
//! still intact in the engine, so the oracle re-decides that exact view
//! twice:
//!
//! * under [`ShadowKernel`], which evaluates both kernels per predicate and
//!   tallies per-[`PredicateSite`] disagreements while returning ε verdicts
//!   (by construction this reproduces the production decision bit for bit);
//! * under [`ExactKernel`], whose decision is compared against the pending
//!   ε decision — any difference is a *decision divergence*: a place where
//!   ε tolerance, not geometry, chose the robot's move.
//!
//! Divergence attribution answers the convergence-stall question directly:
//! if a stalled run shows zero divergences, the fixed point is real geometry
//! (a model deviation to document); if the first divergence lands inside the
//! stall window, the stall is a floating-point artifact of the predicate
//! site it names.
//!
//! [`EpsKernel`]: fatrobots_geometry::kernel::EpsKernel

use fatrobots_core::{AlgorithmParams, ComputeScratch, Decision, KernelAlgorithm};
use fatrobots_geometry::kernel::shadow::{self, PredicateSite, ShadowKernel, ShadowLog};
use fatrobots_geometry::kernel::ExactKernel;
use fatrobots_model::RobotId;
use fatrobots_scheduler::Event;

use crate::engine::Simulator;

/// The first Compute event whose exact-kernel decision differed from the
/// production ε decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DivergenceRecord {
    /// Event index (1-based position in the run's event stream) of the
    /// diverging Compute event.
    pub event: usize,
    /// The robot whose decision diverged.
    pub robot: usize,
    /// The predicate site with the most ε-vs-exact verdict flips during
    /// that decision — the best single-site attribution of the divergence.
    /// `None` only in the degenerate case where the decision differed
    /// without any logged predicate flip (not expected: constructions are
    /// shared, so decisions can only diverge through predicate flips).
    pub site: Option<PredicateSite>,
    /// The production (ε-kernel) decision.
    pub eps: Decision,
    /// The exact-kernel decision.
    pub exact: Decision,
}

/// Aggregated shadow-oracle output for one run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ShadowStats {
    /// Compute events replayed under the shadow kernels.
    pub computes: u64,
    /// Compute events whose exact-kernel decision differed from the ε
    /// decision.
    pub divergent: u64,
    /// Per-predicate-site call and disagreement tallies, summed over every
    /// replayed decision. Site disagreements without a decision divergence
    /// are benign flips (the control flow absorbed them).
    pub log: ShadowLog,
    /// The first decision divergence, if any.
    pub first_divergence: Option<DivergenceRecord>,
}

impl ShadowStats {
    /// Total predicate-site disagreements (ε verdict vs exact verdict)
    /// across all sites, including benign ones.
    pub fn predicate_flips(&self) -> u64 {
        self.log.disagreements()
    }
}

/// Observer that replays every Compute decision under the shadow and exact
/// kernels. Drive it with [`Simulator::run_observed`]:
///
/// ```
/// use fatrobots_core::{AlgorithmParams, LocalAlgorithm};
/// use fatrobots_geometry::Point;
/// use fatrobots_scheduler::RoundRobin;
/// use fatrobots_sim::engine::{SimConfig, Simulator};
/// use fatrobots_sim::shadow::ShadowExecutor;
///
/// let n = 3;
/// let centers = vec![
///     Point::new(0.0, 0.0),
///     Point::new(2.0, 0.0),
///     Point::new(1.0, 3.0_f64.sqrt()),
/// ];
/// let mut sim = Simulator::new(
///     centers,
///     Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(n))),
///     Box::new(RoundRobin::new()),
///     SimConfig::default(),
/// );
/// let mut oracle = ShadowExecutor::new(n);
/// let outcome = sim.run_observed(|sim, event| oracle.observe(sim, event));
/// let stats = oracle.into_stats();
/// assert!(outcome.gathered);
/// assert_eq!(stats.computes, 3);
/// ```
#[derive(Debug)]
pub struct ShadowExecutor {
    params: AlgorithmParams,
    stats: ShadowStats,
    /// Scratch arena shared by the two replay pipelines (the buffers are
    /// kernel-independent).
    scratch: ComputeScratch,
}

impl ShadowExecutor {
    /// An oracle for a system of `n` robots running the paper's algorithm.
    pub fn new(n: usize) -> Self {
        ShadowExecutor {
            params: AlgorithmParams::for_n(n),
            stats: ShadowStats::default(),
            scratch: ComputeScratch::default(),
        }
    }

    /// Observes one applied event. Non-Compute events are free; a Compute
    /// event re-decides the acting robot's snapshot under both shadow
    /// kernels. Call from the [`Simulator::run_observed`] closure.
    pub fn observe(&mut self, sim: &Simulator, event: &Event) {
        let Event::Compute(RobotId(i)) = event else {
            return;
        };
        let Some(eps) = sim.pending_decision(*i) else {
            return;
        };
        let view = sim.view_of(*i);
        self.stats.computes += 1;

        shadow::reset();
        let shadowed =
            KernelAlgorithm::<ShadowKernel>::new(self.params).run_with(view, &mut self.scratch);
        let log = shadow::take();
        debug_assert_eq!(
            shadowed, eps,
            "the shadow kernel returns ε verdicts and must reproduce the production decision"
        );

        let exact =
            KernelAlgorithm::<ExactKernel>::new(self.params).run_with(view, &mut self.scratch);
        self.stats.log.merge(&log);
        if exact != eps {
            self.stats.divergent += 1;
            if self.stats.first_divergence.is_none() {
                self.stats.first_divergence = Some(DivergenceRecord {
                    event: sim.metrics().events,
                    robot: *i,
                    site: log.dominant_site(),
                    eps,
                    exact,
                });
            }
        }
    }

    /// The tallies accumulated so far.
    pub fn stats(&self) -> &ShadowStats {
        &self.stats
    }

    /// Consumes the oracle, returning its tallies.
    pub fn into_stats(self) -> ShadowStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatrobots_core::LocalAlgorithm;
    use fatrobots_geometry::Point;
    use fatrobots_scheduler::RoundRobin;

    use crate::engine::{SimConfig, Simulator};

    fn paper_sim(centers: Vec<Point>, max_events: usize) -> Simulator {
        let n = centers.len();
        Simulator::new(
            centers,
            Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(n))),
            Box::new(RoundRobin::new()),
            SimConfig {
                max_events,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn oracle_covers_every_compute_event() {
        let centers = vec![
            Point::new(0.0, 0.0),
            Point::new(16.0, 0.0),
            Point::new(8.0, 14.0),
        ];
        let mut sim = paper_sim(centers, 50_000);
        let mut oracle = ShadowExecutor::new(3);
        let outcome = sim.run_observed(|sim, event| oracle.observe(sim, event));
        assert!(outcome.terminated);
        let stats = oracle.into_stats();
        assert_eq!(
            stats.computes, outcome.metrics.computes as u64,
            "every Compute event must be replayed"
        );
        assert!(stats.log.calls() > 0, "the replay must exercise predicates");
        assert!(stats.divergent <= stats.computes);
        if stats.divergent == 0 {
            assert_eq!(stats.first_divergence, None);
        }
    }

    #[test]
    fn oracle_does_not_perturb_the_run() {
        // The observed run's outcome and final centers are bit-identical to
        // an unobserved run: the oracle only watches.
        let centers = || {
            vec![
                Point::new(0.0, 0.0),
                Point::new(16.0, 0.0),
                Point::new(16.0, 16.0),
                Point::new(0.0, 16.0),
            ]
        };
        let mut plain = paper_sim(centers(), 100_000);
        let plain_outcome = plain.run();

        let mut observed = paper_sim(centers(), 100_000);
        let mut oracle = ShadowExecutor::new(4);
        let observed_outcome = observed.run_observed(|sim, event| oracle.observe(sim, event));

        assert_eq!(plain_outcome, observed_outcome);
        assert_eq!(plain.centers(), observed.centers());
    }
}
