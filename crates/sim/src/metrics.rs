//! Per-run metrics.

use fatrobots_geometry::hull::ConvexHull;
use fatrobots_geometry::Point;
use fatrobots_model::GeometricConfig;
use fatrobots_scheduler::Event;

/// One sampled point of the configuration-level series recorded during a
/// run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Event index at which the sample was taken.
    pub event: usize,
    /// Area of the convex hull of the robot centers.
    pub hull_area: f64,
    /// `true` when every center was on the hull.
    pub all_on_hull: bool,
    /// `true` when additionally no three consecutive hull centers were
    /// collinear (full visibility in convex position).
    pub fully_visible: bool,
    /// `true` when the union of the discs was connected.
    pub connected: bool,
}

/// The configuration-level predicate values behind one [`Sample`],
/// decoupled from *how* they were obtained: [`SamplePredicates::from_centers`]
/// recomputes everything from scratch, while the incremental world state
/// supplies them from its caches via [`SamplePredicates::from_hull`]. Both
/// paths evaluate the same formulas on the same inputs, so the recorded
/// samples are identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePredicates {
    /// Area of the convex hull of the centers.
    pub hull_area: f64,
    /// `true` when every center is on the hull boundary.
    pub all_on_hull: bool,
    /// `true` when additionally no three consecutive hull centers are
    /// collinear (full visibility in convex position).
    pub fully_visible: bool,
    /// `true` when the union of the discs is connected.
    pub connected: bool,
}

impl SamplePredicates {
    /// Evaluates every predicate from scratch on a center slice.
    pub fn from_centers(centers: &[Point], collinearity_tol: f64) -> Self {
        let hull = ConvexHull::from_points(centers);
        let all_on_hull = centers.len() <= 2 || hull.all_on_hull();
        let connected = GeometricConfig::is_connected_on(centers);
        Self::from_hull(&hull, all_on_hull, connected, collinearity_tol)
    }

    /// Builds the predicates from an already-computed hull and
    /// connectivity answer (the incremental world's cached values).
    pub fn from_hull(
        hull: &ConvexHull,
        all_on_hull: bool,
        connected: bool,
        collinearity_tol: f64,
    ) -> Self {
        let fully_visible =
            all_on_hull && consecutive_hull_triples_ok(&hull.boundary(), collinearity_tol);
        SamplePredicates {
            hull_area: hull.area(),
            all_on_hull,
            fully_visible,
            connected,
        }
    }
}

/// Metrics collected by the simulator over one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Total number of events applied.
    pub events: usize,
    /// Number of `Look` events (equals the number of started LCM cycles).
    pub looks: usize,
    /// Number of `Compute` events.
    pub computes: usize,
    /// Number of `Move` events (cycles that produced a motion).
    pub moves: usize,
    /// Number of `Arrive` events.
    pub arrivals: usize,
    /// Number of `Stop` events.
    pub stops: usize,
    /// Number of `Collide` events.
    pub collisions: usize,
    /// Number of `Done` events (terminations).
    pub dones: usize,
    /// Total distance travelled by all robots.
    pub distance_travelled: f64,
    /// First event index at which every center was on the hull, if ever.
    pub first_all_on_hull: Option<usize>,
    /// First event index at which the configuration was fully visible (all
    /// on hull, no three consecutive hull centers collinear), if ever.
    pub first_fully_visible: Option<usize>,
    /// First event index at which the configuration was connected, if ever.
    pub first_connected: Option<usize>,
    /// Sampled configuration-level series (present when sampling is
    /// enabled).
    pub samples: Vec<Sample>,
}

impl Metrics {
    /// Records one applied event.
    pub fn record_event(&mut self, event: &Event) {
        self.events += 1;
        match event {
            Event::Look(_) => self.looks += 1,
            Event::Compute(_) => self.computes += 1,
            Event::Move(_) => self.moves += 1,
            Event::Arrive(_) => self.arrivals += 1,
            Event::Stop(_) => self.stops += 1,
            Event::Collide(_) => self.collisions += 1,
            Event::Done(_) => self.dones += 1,
        }
    }

    /// Adds travelled distance.
    pub fn record_travel(&mut self, distance: f64) {
        self.distance_travelled += distance;
    }

    /// Evaluates the configuration-level predicates on the current centers
    /// and records a [`Sample`] plus the first-time markers.
    pub fn record_sample(&mut self, centers: &[Point], collinearity_tol: f64) {
        self.record_sample_predicates(SamplePredicates::from_centers(centers, collinearity_tol));
    }

    /// Records a [`Sample`] from already-evaluated predicates (the
    /// incremental world's cached hull and connectivity).
    pub fn record_sample_predicates(&mut self, p: SamplePredicates) {
        let sample = Sample {
            event: self.events,
            hull_area: p.hull_area,
            all_on_hull: p.all_on_hull,
            fully_visible: p.fully_visible,
            connected: p.connected,
        };
        if p.all_on_hull && self.first_all_on_hull.is_none() {
            self.first_all_on_hull = Some(self.events);
        }
        if p.fully_visible && self.first_fully_visible.is_none() {
            self.first_fully_visible = Some(self.events);
        }
        if p.connected && self.first_connected.is_none() {
            self.first_connected = Some(self.events);
        }
        self.samples.push(sample);
    }

    /// The hull-area series of the recorded samples.
    pub fn hull_area_series(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.hull_area).collect()
    }

    /// Fraction of consecutive sample pairs where the hull area did not
    /// decrease (a monotonicity witness for Lemma 20) over the samples taken
    /// *before* full visibility was first reached.
    pub fn expansion_monotonicity(&self) -> Option<f64> {
        let cutoff = self.first_fully_visible?;
        let pre: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.event <= cutoff)
            .map(|s| s.hull_area)
            .collect();
        monotone_fraction(&pre, true)
    }

    /// Fraction of consecutive sample pairs where the hull area did not
    /// increase (Lemma 21) over the samples taken *after* full visibility
    /// was first reached.
    pub fn convergence_monotonicity(&self) -> Option<f64> {
        let cutoff = self.first_fully_visible?;
        let post: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.event >= cutoff)
            .map(|s| s.hull_area)
            .collect();
        monotone_fraction(&post, false)
    }
}

/// Fraction of consecutive pairs that are non-decreasing (`increasing =
/// true`) or non-increasing (`increasing = false`), with a small slack for
/// floating-point noise. `None` when fewer than two values.
fn monotone_fraction(values: &[f64], increasing: bool) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let slack = 1e-6;
    let ok = values
        .windows(2)
        .filter(|w| {
            if increasing {
                w[1] >= w[0] - slack
            } else {
                w[1] <= w[0] + slack
            }
        })
        .count();
    Some(ok as f64 / (values.len() - 1) as f64)
}

/// `true` when no three *consecutive* hull boundary points are collinear
/// within the tolerance — in convex position this is equivalent to no three
/// centers being collinear at all, and it is O(n) instead of O(n³).
fn consecutive_hull_triples_ok(boundary: &[Point], tol: f64) -> bool {
    let m = boundary.len();
    if m < 3 {
        return true;
    }
    (0..m).all(|i| {
        let a = boundary[i];
        let b = boundary[(i + 1) % m];
        let c = boundary[(i + 2) % m];
        fatrobots_geometry::predicates::orientation_tol(a, b, c, tol)
            != fatrobots_geometry::predicates::Orientation::Collinear
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatrobots_model::RobotId;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn event_counters() {
        let mut m = Metrics::default();
        m.record_event(&Event::Look(RobotId(0)));
        m.record_event(&Event::Compute(RobotId(0)));
        m.record_event(&Event::Move(RobotId(0)));
        m.record_event(&Event::Arrive(RobotId(0)));
        m.record_event(&Event::Stop(RobotId(1)));
        m.record_event(&Event::Collide(vec![RobotId(0), RobotId(1)]));
        m.record_event(&Event::Done(RobotId(2)));
        assert_eq!(m.events, 7);
        assert_eq!(
            (
                m.looks,
                m.computes,
                m.moves,
                m.arrivals,
                m.stops,
                m.collisions,
                m.dones
            ),
            (1, 1, 1, 1, 1, 1, 1)
        );
    }

    #[test]
    fn samples_and_first_time_markers() {
        let mut m = Metrics::default();
        // Disconnected square: all on hull, fully visible, not connected.
        let square = vec![p(0.0, 0.0), p(10.0, 0.0), p(10.0, 10.0), p(0.0, 10.0)];
        m.record_sample(&square, 1e-9);
        assert_eq!(m.first_all_on_hull, Some(0));
        assert_eq!(m.first_fully_visible, Some(0));
        assert_eq!(m.first_connected, None);
        // Connected triangle.
        m.record_event(&Event::Look(RobotId(0)));
        let triangle = vec![p(0.0, 0.0), p(2.0, 0.0), p(1.0, 3.0_f64.sqrt())];
        m.record_sample(&triangle, 1e-9);
        assert_eq!(m.first_connected, Some(1));
        assert_eq!(m.samples.len(), 2);
        assert!(m.hull_area_series()[0] > m.hull_area_series()[1]);
    }

    #[test]
    fn collinear_configuration_is_not_fully_visible() {
        let mut m = Metrics::default();
        let line = vec![p(0.0, 0.0), p(2.0, 0.0), p(4.0, 0.0)];
        m.record_sample(&line, 1e-9);
        assert!(m.samples[0].all_on_hull);
        assert!(!m.samples[0].fully_visible);
        assert!(m.samples[0].connected);
    }

    #[test]
    fn monotonicity_fractions() {
        assert_eq!(monotone_fraction(&[1.0], true), None);
        assert_eq!(monotone_fraction(&[1.0, 2.0, 3.0], true), Some(1.0));
        assert_eq!(monotone_fraction(&[3.0, 2.0, 2.5], false), Some(0.5));
    }

    #[test]
    fn expansion_and_convergence_monotonicity_need_full_visibility() {
        let mut m = Metrics::default();
        let line = vec![p(0.0, 0.0), p(6.0, 0.0), p(12.0, 0.0)];
        m.record_sample(&line, 1e-9);
        assert!(m.expansion_monotonicity().is_none());
        // Reach a fully visible configuration, then shrink it.
        let tri_big = vec![p(0.0, 0.0), p(12.0, 0.0), p(6.0, 10.0)];
        let tri_small = vec![p(0.0, 0.0), p(10.0, 0.0), p(5.0, 8.0)];
        m.record_event(&Event::Look(RobotId(0)));
        m.record_sample(&tri_big, 1e-9);
        m.record_event(&Event::Look(RobotId(1)));
        m.record_sample(&tri_small, 1e-9);
        assert_eq!(m.convergence_monotonicity(), Some(1.0));
    }
}
