//! Execution traces: the alternating sequence of events and (sampled)
//! configurations of Section 2's execution model, with CSV export.

use std::fmt::Write as _;

use fatrobots_geometry::Point;
use fatrobots_scheduler::Event;

/// A recorded execution: every applied event plus configuration snapshots
/// sampled at a configurable interval.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecutionTrace {
    events: Vec<Event>,
    snapshots: Vec<(usize, Vec<Point>)>,
}

impl ExecutionTrace {
    /// Records one applied event.
    pub fn push_event(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Records a configuration snapshot taken after `event_index` events.
    pub fn push_snapshot(&mut self, event_index: usize, centers: Vec<Point>) {
        self.snapshots.push((event_index, centers));
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The recorded snapshots, in order.
    pub fn snapshots(&self) -> &[(usize, Vec<Point>)] {
        &self.snapshots
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.snapshots.is_empty()
    }

    /// The events serialised as a two-column CSV (`index,event`).
    pub fn events_csv(&self) -> String {
        let mut out = String::from("index,event\n");
        for (i, e) in self.events.iter().enumerate() {
            let _ = writeln!(out, "{i},{e}");
        }
        out
    }

    /// The snapshots serialised as CSV (`event_index,robot,x,y`).
    pub fn snapshots_csv(&self) -> String {
        let mut out = String::from("event_index,robot,x,y\n");
        for (idx, centers) in &self.snapshots {
            for (r, c) in centers.iter().enumerate() {
                let _ = writeln!(out, "{idx},{r},{:.9},{:.9}", c.x, c.y);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatrobots_model::RobotId;

    #[test]
    fn recording_and_export() {
        let mut t = ExecutionTrace::default();
        assert!(t.is_empty());
        t.push_event(Event::Look(RobotId(0)));
        t.push_event(Event::Compute(RobotId(0)));
        t.push_snapshot(2, vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.snapshots().len(), 1);

        let csv = t.events_csv();
        assert!(csv.starts_with("index,event\n"));
        assert!(csv.contains("0,Look(r0)"));
        assert!(csv.contains("1,Compute(r0)"));

        let scsv = t.snapshots_csv();
        assert!(scsv.contains("2,0,1.000000000,2.000000000"));
        assert!(scsv.contains("2,1,3.000000000,4.000000000"));
    }
}
