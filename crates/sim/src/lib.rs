//! # fatrobots-sim
//!
//! The discrete-event simulation engine for fat-robot gathering: it executes
//! the Look–Compute–Move model of Section 2 of the paper, with an
//! [`Adversary`](fatrobots_scheduler::Adversary) supplying the asynchronous
//! schedule and a [`Strategy`](fatrobots_core::Strategy) (the paper's local
//! algorithm or one of the baselines) supplying the per-robot decisions.
//!
//! The crate provides:
//!
//! * [`checkpoint`] — the crash-safe sweep journal: length-framed,
//!   CRC-checksummed records of (spec, event index, engine fingerprint)
//!   plus inlined completed summaries, written atomically and decoded with
//!   recovery to the last valid record, so a killed sweep resumes
//!   byte-identically;
//! * [`engine`] — the [`Simulator`](engine::Simulator): one event per call,
//!   motion integration with contact detection, validity assertions,
//!   termination detection, an event budget, and a cooperative
//!   cancellation flag for supervised runs;
//! * [`init`] — seeded initial-configuration generators (random spread,
//!   line, grid, circle, clusters);
//! * [`metrics`] — per-run metrics: event counts, travelled distance, times
//!   to all-on-hull / full visibility / connectivity, hull-area series;
//! * [`parallel`] — the deterministic intra-run parallel executor:
//!   commutation batching of disjoint Looks plus speculative Compute,
//!   committed in the serial event order (`SimConfig::threads`);
//! * [`trace`] — execution traces (events plus sampled configurations) with
//!   CSV export;
//! * [`render`] — small SVG / ASCII renderers for configurations;
//! * [`shadow`] — the exact-arithmetic shadow oracle: replays every Compute
//!   decision under the exact kernel via [`engine::Simulator::run_observed`]
//!   and attributes ε-vs-exact decision divergences to predicate sites;
//! * [`experiment`] — the parameter-sweep harness behind EXPERIMENTS.md and
//!   the Criterion benches;
//! * [`fuzz`] — the shrinking scenario fuzzer: sweeps shape × adversary ×
//!   fault × n × seed under an event budget hunting non-gathering runs,
//!   shrinks finds via deterministic replay, and emits the livelock
//!   regression fixtures under `tests/fixtures/livelock/`;
//! * [`sweep`] — the parallel sweep engine: fans `RunSpec`s out over a
//!   scoped worker pool and returns summaries in deterministic input
//!   order, with a supervised mode that converts panicking runs into
//!   structured failure rows (bounded retries, quarantine) and reaps hung
//!   runs via a wall-clock watchdog;
//! * [`world`] — the incremental world state: ground-truth centers plus a
//!   cached pairwise visibility matrix (lazy dirty-pair invalidation over a
//!   spatial grid), cached hull/connectivity/validity, and a from-scratch
//!   reference mode that pins the cached path to bit-identical results.
//!
//! ## Quick example
//!
//! ```
//! use fatrobots_sim::engine::{SimConfig, Simulator};
//! use fatrobots_sim::init;
//! use fatrobots_core::{AlgorithmParams, LocalAlgorithm};
//! use fatrobots_scheduler::RoundRobin;
//!
//! let n = 5;
//! let centers = init::circle(n, 12.0);
//! let mut sim = Simulator::new(
//!     centers,
//!     Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(n))),
//!     Box::new(RoundRobin::new()),
//!     SimConfig::default(),
//! );
//! let outcome = sim.run();
//! assert!(outcome.gathered);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod engine;
pub mod experiment;
pub mod fuzz;
pub mod init;
pub mod metrics;
pub mod parallel;
pub mod render;
pub mod shadow;
pub mod sweep;
pub mod trace;
pub mod world;

pub use engine::{CancelFlag, RunOutcome, SimConfig, Simulator};
pub use metrics::Metrics;
pub use shadow::{DivergenceRecord, ShadowExecutor, ShadowStats};
pub use world::{World, WorldMode};
