//! Parallel sweep engine with supervised execution.
//!
//! Every experiment in this repo is a bag of fully seeded, independent
//! simulations, so sweeps are embarrassingly parallel. [`run_sweep`] fans a
//! `&[RunSpec]` out over a scoped worker pool (plain `std::thread`, no
//! external dependencies) and returns the summaries **in input order**, so
//! the output of a parallel sweep is byte-identical to the serial one —
//! `run_sweep(specs, jobs)` equals `specs.iter().map(run).collect()` for
//! every `jobs`.
//!
//! The work queue is a single [`AtomicUsize`] index into the spec slice:
//! each worker claims the next unclaimed spec, executes it, and stores the
//! summary into that spec's dedicated slot. Long and short runs therefore
//! interleave freely across workers without any ordering machinery beyond
//! the slot index.
//!
//! For one-shot sweeps, [`run_sweep`] spawns a scoped pool per call. A
//! caller that dispatches *several* sweeps in one invocation (the `report`
//! binary runs up to six experiment tables) uses a [`SweepPool`] instead:
//! the workers are spawned once and fed batches over a channel, so the
//! table groups share one pool rather than paying a thread spawn/join per
//! `sweep_table` call. Both dispatchers return summaries in input order, so
//! their output is byte-identical to the serial sweep.
//!
//! ## Supervision
//!
//! [`SweepPool::run_supervised`] is the fault-tolerant dispatcher: a run
//! that panics (or trips its wall-clock watchdog) does **not** abort the
//! sweep. The failed attempt is retried up to
//! [`SupervisionPolicy::max_retries`] times with deterministic linear
//! backoff; a run that exhausts its retries becomes a structured
//! [`SweepFailure`] (spec, message, attempt count) and its spec is
//! **quarantined** — re-submitting it to the same pool fails immediately
//! instead of burning another worker on a deterministic crash. The sweep
//! always completes with every non-failing summary in place.
//!
//! The watchdog is cooperative: each supervised run gets an armed
//! [`CancelFlag`](crate::engine::CancelFlag) wired into
//! [`SimConfig::cancel`](crate::engine::SimConfig), and one shared watchdog
//! thread raises the flag when the run's wall-clock budget expires. The
//! engine polls the flag between events, so cancellation always lands on a
//! clean event boundary — a hung run is reaped gracefully rather than
//! wedging its worker until CI's job timeout.
//!
//! [`SweepPool::run`] keeps the historical fail-fast contract (any failure
//! panics on the caller's thread once the batch drains) for callers that
//! prefer abort-everything semantics — the `report --fail-fast` flag.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::engine::CancelFlag;
use crate::experiment::{run, run_with_hooks, RunHooks, RunSpec, RunStatus, RunSummary};

/// The number of workers to use when the caller has no preference: the
/// available hardware parallelism, or 1 if that cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Executes every spec and returns the summaries in input order.
///
/// `jobs` is the worker count; `0` is treated as 1, and the pool never
/// spawns more workers than there are specs. With `jobs <= 1` the sweep
/// runs inline on the calling thread — no threads are spawned at all.
///
/// A panic inside any run (a simulator validity assertion, for instance)
/// propagates to the caller once the scope joins. For supervised execution
/// use [`SweepPool::run_supervised`].
pub fn run_sweep(specs: &[RunSpec], jobs: usize) -> Vec<RunSummary> {
    let jobs = jobs.clamp(1, specs.len().max(1));
    if jobs == 1 {
        return specs.iter().map(run).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunSummary>>> = specs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(i) else { break };
                let summary = run(spec);
                *slots[i].lock().expect("sweep slot poisoned") = Some(summary);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep slot poisoned")
                .expect("every claimed slot is filled before the scope joins")
        })
        .collect()
}

/// How [`SweepPool::run_supervised`] handles failing and hung runs.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisionPolicy {
    /// Re-executions granted after a failed first attempt. A run therefore
    /// executes at most `1 + max_retries` times before it becomes a
    /// [`SweepFailure`].
    pub max_retries: u32,
    /// Base of the deterministic linear backoff: the k-th retry of a run
    /// sleeps `k * backoff` before re-dispatch.
    pub backoff: Duration,
    /// Wall-clock budget per run attempt. When set, every attempt gets an
    /// armed cancel flag and the pool's watchdog thread raises it once the
    /// budget expires; the cancelled attempt counts as a failure ("hung"
    /// runs are deterministic here, so they are usually quarantined after
    /// their retries hang too). `None` disables the watchdog.
    pub watchdog: Option<Duration>,
    /// Interval, in events, between progress callbacks delivered to the
    /// [`SweepObserver`] (`0` disables progress reporting). The checkpoint
    /// journal uses these as its progress records.
    pub progress_every: usize,
}

impl Default for SupervisionPolicy {
    fn default() -> Self {
        SupervisionPolicy {
            max_retries: 1,
            backoff: Duration::from_millis(25),
            watchdog: None,
            progress_every: 0,
        }
    }
}

impl SupervisionPolicy {
    /// The policy behind the historical abort-everything contract: no
    /// retries, no watchdog, no progress traffic.
    pub fn fail_fast() -> Self {
        SupervisionPolicy {
            max_retries: 0,
            backoff: Duration::ZERO,
            watchdog: None,
            progress_every: 0,
        }
    }
}

/// A run that exhausted its supervision budget.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepFailure {
    /// The spec that failed.
    pub spec: RunSpec,
    /// The panic message, or a watchdog/quarantine description.
    pub message: String,
    /// Attempts actually executed (0 for a run rejected by quarantine).
    pub attempts: u32,
    /// `true` when the spec is now quarantined in this pool: identical
    /// specs submitted later fail immediately without running.
    pub quarantined: bool,
}

/// The outcome of a supervised sweep: per-slot summaries (`None` where the
/// run failed), the structured failures, and the retry count.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// One slot per input spec, in input order; `None` marks a failed run.
    pub summaries: Vec<Option<RunSummary>>,
    /// Failures in input-slot order (deterministic regardless of worker
    /// interleaving).
    pub failures: Vec<SweepFailure>,
    /// Total re-executions performed after failed attempts.
    pub retries: u64,
}

/// Milestone callbacks delivered by [`SweepPool::run_supervised`] on the
/// caller's thread. The checkpoint journal is the canonical implementor;
/// `()` implements it as a no-op sink.
pub trait SweepObserver {
    /// A run reported progress: `slot` is the index into the submitted spec
    /// slice, `events` the applied-event count, `fingerprint` the engine's
    /// [state fingerprint](crate::engine::Simulator::fingerprint) at that
    /// index. Only delivered when [`SupervisionPolicy::progress_every`] is
    /// non-zero.
    fn on_progress(&mut self, slot: usize, events: usize, fingerprint: u64) {
        let _ = (slot, events, fingerprint);
    }
    /// A run completed; delivered before the summary is stored into its
    /// slot, so a journal write here strictly precedes the sweep returning.
    fn on_completed(&mut self, slot: usize, summary: &RunSummary) {
        let _ = (slot, summary);
    }
}

impl SweepObserver for () {}

/// One unit of pool work.
#[derive(Debug, Clone, Copy)]
struct PoolTask {
    /// Index into the submitted spec slice.
    slot: usize,
    spec: RunSpec,
    /// Events between progress messages (0 = none).
    progress_every: usize,
    /// Wall-clock budget for this attempt.
    watchdog: Option<Duration>,
}

/// How one attempt of a task ended.
#[derive(Debug)]
enum RunVerdict {
    /// The run finished and produced its summary (boxed: a summary is a few
    /// hundred bytes and rides a channel).
    Completed(Box<RunSummary>),
    /// The watchdog cancelled the run after `events` events.
    Cancelled { events: usize },
    /// The run panicked with this message.
    Panicked { message: String },
}

/// A message from a worker to the supervisor.
#[derive(Debug)]
enum PoolMsg {
    /// Periodic progress from an in-flight run.
    Progress {
        slot: usize,
        events: usize,
        fingerprint: u64,
    },
    /// A run attempt finished (one way or another).
    Done { slot: usize, verdict: RunVerdict },
}

/// Shared state of the pool's watchdog thread: armed deadlines plus a
/// condvar the registrar pokes so the thread re-plans its sleep.
#[derive(Debug, Default)]
struct WatchdogShared {
    state: Mutex<WatchdogState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct WatchdogState {
    /// (token, deadline, flag-to-raise) per in-flight supervised attempt.
    entries: Vec<(u64, Instant, CancelFlag)>,
    next_token: u64,
    shutdown: bool,
}

/// Registers a deadline with the watchdog; returns the token to deregister
/// with once the attempt finishes.
fn watchdog_register(shared: &WatchdogShared, deadline: Instant, flag: CancelFlag) -> u64 {
    let mut state = shared.state.lock().expect("watchdog state poisoned");
    let token = state.next_token;
    state.next_token += 1;
    state.entries.push((token, deadline, flag));
    shared.cv.notify_all();
    token
}

/// Removes a deadline (the attempt finished before — or after — it fired).
fn watchdog_deregister(shared: &WatchdogShared, token: u64) {
    let mut state = shared.state.lock().expect("watchdog state poisoned");
    state.entries.retain(|&(t, _, _)| t != token);
    shared.cv.notify_all();
}

/// The watchdog loop: raise every expired flag, then sleep until the
/// nearest remaining deadline (or until poked).
fn watchdog_loop(shared: &WatchdogShared) {
    let mut state = shared.state.lock().expect("watchdog state poisoned");
    loop {
        if state.shutdown {
            break;
        }
        let now = Instant::now();
        state.entries.retain(|(_, deadline, flag)| {
            if *deadline <= now {
                flag.cancel();
                false
            } else {
                true
            }
        });
        let nearest = state
            .entries
            .iter()
            .map(|&(_, deadline, _)| deadline.duration_since(now))
            .min();
        state = match nearest {
            Some(wait) => {
                shared
                    .cv
                    .wait_timeout(state, wait)
                    .expect("watchdog state poisoned")
                    .0
            }
            None => shared.cv.wait(state).expect("watchdog state poisoned"),
        };
    }
}

/// Executes one attempt of a task: arms the watchdog (when budgeted), runs
/// with hooks, catches panics, and always deregisters the deadline.
fn execute_attempt(
    task: &PoolTask,
    watchdog: &WatchdogShared,
    mut on_progress: impl FnMut(usize, u64),
) -> RunVerdict {
    let cancel = if task.watchdog.is_some() {
        CancelFlag::armed()
    } else {
        CancelFlag::default()
    };
    let token = task
        .watchdog
        .map(|budget| watchdog_register(watchdog, Instant::now() + budget, cancel.clone()));
    let spec = task.spec;
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let mut progress = |events: usize, fingerprint: u64| on_progress(events, fingerprint);
        let hooks = RunHooks {
            cancel: cancel.clone(),
            progress: (task.progress_every > 0)
                .then_some(&mut progress as &mut dyn FnMut(usize, u64)),
            progress_every: task.progress_every,
        };
        run_with_hooks(&spec, hooks)
    }));
    if let Some(token) = token {
        watchdog_deregister(watchdog, token);
    }
    match result {
        Ok(RunStatus::Completed(summary)) => RunVerdict::Completed(summary),
        Ok(RunStatus::Cancelled { events }) => RunVerdict::Cancelled { events },
        Err(payload) => RunVerdict::Panicked {
            message: panic_message(payload.as_ref()),
        },
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The failure message for a non-completed verdict.
fn verdict_message(verdict: &RunVerdict, budget: Option<Duration>) -> String {
    match verdict {
        RunVerdict::Completed(_) => unreachable!("completed runs are not failures"),
        RunVerdict::Cancelled { events } => format!(
            "watchdog: cancelled after {events} events (budget {:.3}s)",
            budget.unwrap_or_default().as_secs_f64()
        ),
        RunVerdict::Panicked { message } => format!("panic: {message}"),
    }
}

/// Message attached to a quarantine rejection.
const QUARANTINE_MESSAGE: &str =
    "quarantined: this spec already exhausted its retries in this invocation";

/// A persistent worker pool for multi-sweep invocations.
///
/// Workers are spawned once (at construction) and shared by every
/// [`SweepPool::run`] / [`SweepPool::run_supervised`] call; each batch
/// drains completely before the call returns, so batches never interleave
/// and the summaries come back in input order — element-for-element equal
/// to [`run_sweep`] with the same worker count, which is how the
/// determinism tests pin it.
///
/// With `jobs <= 1` no worker threads are spawned and every batch runs
/// inline on the calling thread (the watchdog thread, if a policy asks for
/// one, is spawned lazily either way).
#[derive(Debug)]
pub struct SweepPool {
    /// Sender side of the task queue; `None` once the pool is shut down.
    task_tx: Option<mpsc::Sender<PoolTask>>,
    result_rx: mpsc::Receiver<PoolMsg>,
    workers: Vec<std::thread::JoinHandle<()>>,
    jobs: usize,
    /// Deadlines shared with the (lazily spawned) watchdog thread.
    watchdog: Arc<WatchdogShared>,
    watchdog_thread: Option<std::thread::JoinHandle<()>>,
    /// Specs that exhausted their retries in this pool's lifetime;
    /// re-submissions fail immediately.
    quarantine: Vec<RunSpec>,
}

impl SweepPool {
    /// Spawns a pool with the given worker count (`0` is treated as 1; one
    /// worker means inline execution, no worker threads).
    pub fn new(jobs: usize) -> Self {
        let jobs = jobs.max(1);
        let (task_tx, task_rx) = mpsc::channel::<PoolTask>();
        let (result_tx, result_rx) = mpsc::channel::<PoolMsg>();
        let task_rx = Arc::new(Mutex::new(task_rx));
        let watchdog = Arc::new(WatchdogShared::default());
        let workers = if jobs == 1 {
            Vec::new()
        } else {
            (0..jobs)
                .map(|_| {
                    let task_rx = Arc::clone(&task_rx);
                    let result_tx = result_tx.clone();
                    let watchdog = Arc::clone(&watchdog);
                    std::thread::spawn(move || loop {
                        // Hold the queue lock only for the receive so other
                        // workers can claim tasks while this one runs.
                        let task = {
                            let rx = task_rx.lock().expect("sweep task queue poisoned");
                            rx.recv()
                        };
                        let Ok(task) = task else { break };
                        let progress_tx = result_tx.clone();
                        let verdict = execute_attempt(&task, &watchdog, |events, fingerprint| {
                            let _ = progress_tx.send(PoolMsg::Progress {
                                slot: task.slot,
                                events,
                                fingerprint,
                            });
                        });
                        // A send error means the pool was dropped mid-batch
                        // (the caller gave up); just exit.
                        if result_tx
                            .send(PoolMsg::Done {
                                slot: task.slot,
                                verdict,
                            })
                            .is_err()
                        {
                            break;
                        }
                    })
                })
                .collect()
        };
        SweepPool {
            task_tx: Some(task_tx),
            result_rx,
            workers,
            jobs,
            watchdog,
            watchdog_thread: None,
            quarantine: Vec::new(),
        }
    }

    /// The worker count this pool runs with.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The specs currently quarantined in this pool.
    pub fn quarantined(&self) -> &[RunSpec] {
        &self.quarantine
    }

    /// Spawns the watchdog thread if a policy needs one and it is not
    /// running yet.
    fn ensure_watchdog(&mut self, policy: &SupervisionPolicy) {
        if policy.watchdog.is_some() && self.watchdog_thread.is_none() {
            let shared = Arc::clone(&self.watchdog);
            self.watchdog_thread = Some(std::thread::spawn(move || watchdog_loop(&shared)));
        }
    }

    /// Executes every spec on the pool and returns the summaries in input
    /// order — the historical fail-fast contract.
    ///
    /// # Panics
    /// Panics on the caller's thread if any run failed (after the batch
    /// drains, so the pool stays reusable up to the panic). For structured
    /// failures use [`SweepPool::run_supervised`].
    pub fn run(&mut self, specs: &[RunSpec]) -> Vec<RunSummary> {
        let outcome = self.run_supervised(specs, &SupervisionPolicy::fail_fast(), &mut ());
        if let Some(failure) = outcome.failures.first() {
            panic!("sweep run failed: {}", failure.message);
        }
        outcome
            .summaries
            .into_iter()
            .map(|slot| slot.expect("a failure-free sweep fills every slot"))
            .collect()
    }

    /// Executes every spec under supervision and returns the structured
    /// outcome: summaries in input order (`None` for failed slots),
    /// failures in slot order, and the retry count. Never panics on a
    /// failing run — panics are caught per attempt, retried per the
    /// policy, and quarantined once the retries are spent. Progress and
    /// completion milestones are delivered to `observer` on this thread.
    pub fn run_supervised(
        &mut self,
        specs: &[RunSpec],
        policy: &SupervisionPolicy,
        observer: &mut dyn SweepObserver,
    ) -> SweepOutcome {
        self.ensure_watchdog(policy);
        if self.workers.is_empty() {
            self.run_supervised_inline(specs, policy, observer)
        } else {
            self.run_supervised_pooled(specs, policy, observer)
        }
    }

    /// The inline (jobs ≤ 1) supervised path: same semantics, no worker
    /// threads, specs executed in order on the calling thread.
    fn run_supervised_inline(
        &mut self,
        specs: &[RunSpec],
        policy: &SupervisionPolicy,
        observer: &mut dyn SweepObserver,
    ) -> SweepOutcome {
        let mut summaries: Vec<Option<RunSummary>> = vec![None; specs.len()];
        let mut failures: Vec<SweepFailure> = Vec::new();
        let mut retries = 0u64;
        for (slot, &spec) in specs.iter().enumerate() {
            if self.quarantine.contains(&spec) {
                failures.push(SweepFailure {
                    spec,
                    message: QUARANTINE_MESSAGE.to_string(),
                    attempts: 0,
                    quarantined: true,
                });
                continue;
            }
            let task = PoolTask {
                slot,
                spec,
                progress_every: policy.progress_every,
                watchdog: policy.watchdog,
            };
            let mut attempts = 0u32;
            loop {
                let verdict = execute_attempt(&task, &self.watchdog, |events, fingerprint| {
                    observer.on_progress(slot, events, fingerprint)
                });
                match verdict {
                    RunVerdict::Completed(summary) => {
                        observer.on_completed(slot, &summary);
                        summaries[slot] = Some(*summary);
                        break;
                    }
                    failed => {
                        attempts += 1;
                        if attempts <= policy.max_retries {
                            retries += 1;
                            std::thread::sleep(policy.backoff * attempts);
                            continue;
                        }
                        self.quarantine.push(spec);
                        failures.push(SweepFailure {
                            spec,
                            message: verdict_message(&failed, policy.watchdog),
                            attempts,
                            quarantined: true,
                        });
                        break;
                    }
                }
            }
        }
        SweepOutcome {
            summaries,
            failures,
            retries,
        }
    }

    /// The threaded supervised path: dispatch everything, then drain
    /// completions, re-dispatching failed attempts until every slot either
    /// completed or exhausted its retries.
    fn run_supervised_pooled(
        &mut self,
        specs: &[RunSpec],
        policy: &SupervisionPolicy,
        observer: &mut dyn SweepObserver,
    ) -> SweepOutcome {
        let task_tx = self.task_tx.as_ref().expect("pool is live").clone();
        let mut summaries: Vec<Option<RunSummary>> = vec![None; specs.len()];
        // (slot, failure) so the rows can be emitted in deterministic slot
        // order whatever the worker interleaving was.
        let mut failures: Vec<(usize, SweepFailure)> = Vec::new();
        let mut attempts: Vec<u32> = vec![0; specs.len()];
        let mut retries = 0u64;
        let mut pending = 0usize;
        for (slot, &spec) in specs.iter().enumerate() {
            if self.quarantine.contains(&spec) {
                failures.push((
                    slot,
                    SweepFailure {
                        spec,
                        message: QUARANTINE_MESSAGE.to_string(),
                        attempts: 0,
                        quarantined: true,
                    },
                ));
                continue;
            }
            task_tx
                .send(PoolTask {
                    slot,
                    spec,
                    progress_every: policy.progress_every,
                    watchdog: policy.watchdog,
                })
                .expect("a sweep worker died");
            pending += 1;
        }
        while pending > 0 {
            let msg = self
                .result_rx
                .recv()
                .expect("a sweep worker died before finishing its batch");
            match msg {
                PoolMsg::Progress {
                    slot,
                    events,
                    fingerprint,
                } => observer.on_progress(slot, events, fingerprint),
                PoolMsg::Done { slot, verdict } => match verdict {
                    RunVerdict::Completed(summary) => {
                        observer.on_completed(slot, &summary);
                        summaries[slot] = Some(*summary);
                        pending -= 1;
                    }
                    failed => {
                        attempts[slot] += 1;
                        if attempts[slot] <= policy.max_retries {
                            retries += 1;
                            // Deterministic linear backoff before the
                            // re-dispatch. The supervisor sleeps; queued
                            // completions simply wait in the channel.
                            std::thread::sleep(policy.backoff * attempts[slot]);
                            task_tx
                                .send(PoolTask {
                                    slot,
                                    spec: specs[slot],
                                    progress_every: policy.progress_every,
                                    watchdog: policy.watchdog,
                                })
                                .expect("a sweep worker died");
                        } else {
                            self.quarantine.push(specs[slot]);
                            failures.push((
                                slot,
                                SweepFailure {
                                    spec: specs[slot],
                                    message: verdict_message(&failed, policy.watchdog),
                                    attempts: attempts[slot],
                                    quarantined: true,
                                },
                            ));
                            pending -= 1;
                        }
                    }
                },
            }
        }
        failures.sort_by_key(|&(slot, _)| slot);
        SweepOutcome {
            summaries,
            failures: failures.into_iter().map(|(_, f)| f).collect(),
            retries,
        }
    }
}

impl Drop for SweepPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's receive loop.
        self.task_tx.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(watchdog) = self.watchdog_thread.take() {
            {
                let mut state = self.watchdog.state.lock().expect("watchdog state poisoned");
                state.shutdown = true;
                self.watchdog.cv.notify_all();
            }
            let _ = watchdog.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{AdversaryKind, StrategyKind};
    use crate::init::Shape;

    /// A small but non-trivial spec matrix: two robot counts, three seeds,
    /// two shapes — twelve runs, each short enough for a debug-mode test.
    fn spec_matrix() -> Vec<RunSpec> {
        let mut specs = Vec::new();
        for &n in &[3usize, 4] {
            for seed in 1..=3u64 {
                for &shape in &[Shape::Circle, Shape::Clusters] {
                    specs.push(RunSpec {
                        shape,
                        adversary: AdversaryKind::RoundRobin,
                        strategy: StrategyKind::Paper,
                        max_events: 20_000,
                        ..RunSpec::new(n, seed)
                    });
                }
            }
        }
        specs
    }

    /// A spec that deterministically panics inside the engine (n = 0).
    fn panicking_spec() -> RunSpec {
        RunSpec {
            max_events: 10,
            ..RunSpec::new(0, 1)
        }
    }

    #[test]
    fn parallel_sweep_matches_serial_element_for_element() {
        let specs = spec_matrix();
        let serial = run_sweep(&specs, 1);
        let parallel = run_sweep(&specs, 4);
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(s, p, "summary {i} differs between jobs=1 and jobs=4");
        }
    }

    #[test]
    fn sweep_preserves_input_order() {
        let specs = spec_matrix();
        let summaries = run_sweep(&specs, 3);
        for (spec, summary) in specs.iter().zip(&summaries) {
            assert_eq!(*spec, summary.spec);
        }
    }

    #[test]
    fn zero_jobs_is_treated_as_one() {
        let specs = vec![RunSpec {
            shape: Shape::Circle,
            adversary: AdversaryKind::RoundRobin,
            max_events: 20_000,
            ..RunSpec::new(3, 1)
        }];
        assert_eq!(run_sweep(&specs, 0), run_sweep(&specs, 1));
    }

    #[test]
    fn empty_sweep_returns_no_summaries() {
        assert!(run_sweep(&[], 8).is_empty());
    }

    #[test]
    fn more_jobs_than_specs_is_fine() {
        let specs = vec![
            RunSpec {
                shape: Shape::Circle,
                adversary: AdversaryKind::RoundRobin,
                max_events: 20_000,
                ..RunSpec::new(3, 1)
            };
            2
        ];
        assert_eq!(run_sweep(&specs, 16), run_sweep(&specs, 1));
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn pool_reused_across_batches_matches_run_sweep() {
        // One pool dispatching several batches (the report binary's usage
        // pattern) must produce exactly the per-call sweeps' output.
        let specs = spec_matrix();
        let (first, second) = specs.split_at(specs.len() / 2);
        let mut pool = SweepPool::new(4);
        assert_eq!(pool.jobs(), 4);
        assert_eq!(pool.run(first), run_sweep(first, 4));
        assert_eq!(pool.run(second), run_sweep(second, 1));
        // And an empty batch is fine.
        assert!(pool.run(&[]).is_empty());
    }

    #[test]
    fn pool_converts_worker_panics_into_failure_rows() {
        // The supervised contract that replaced the historical
        // `resume_unwind`: a panicking run (n = 0) becomes a structured
        // failure row with its retry count while every healthy run in the
        // same batch completes, and the sweep itself never panics.
        let good = RunSpec {
            shape: Shape::Circle,
            adversary: AdversaryKind::RoundRobin,
            max_events: 20_000,
            ..RunSpec::new(3, 1)
        };
        let specs = vec![panicking_spec(), good, panicking_spec()];
        let mut pool = SweepPool::new(2);
        let policy = SupervisionPolicy {
            max_retries: 1,
            backoff: Duration::from_millis(1),
            ..SupervisionPolicy::default()
        };
        let outcome = pool.run_supervised(&specs, &policy, &mut ());
        assert_eq!(outcome.summaries.len(), 3);
        assert!(outcome.summaries[0].is_none());
        assert!(outcome.summaries[2].is_none());
        let healthy = outcome.summaries[1]
            .as_ref()
            .expect("healthy run completes");
        assert_eq!(healthy.spec, good);
        // Two failing slots; the first to exhaust its retries quarantines
        // the spec, and the identical sibling either also ran (2 attempts)
        // or was rejected by the fresh quarantine (0 attempts).
        assert_eq!(outcome.failures.len(), 2);
        for failure in &outcome.failures {
            assert_eq!(failure.spec, panicking_spec());
            assert!(failure.quarantined);
            assert!(
                failure.attempts == 0 || failure.attempts == 2,
                "ran attempts = 1 + 1 retry"
            );
            assert!(!failure.message.is_empty());
        }
        assert!(outcome.retries >= 1);
        // The pool survives: the same batch re-submitted now short-circuits
        // the quarantined spec without running it.
        let again = pool.run_supervised(&specs, &policy, &mut ());
        assert!(again.summaries[1].is_some());
        assert_eq!(again.failures.len(), 2);
        for failure in &again.failures {
            assert_eq!(failure.attempts, 0, "quarantine rejects without running");
            assert_eq!(failure.message, QUARANTINE_MESSAGE);
        }
        assert_eq!(again.retries, 0);
    }

    #[test]
    #[should_panic(expected = "sweep run failed")]
    fn fail_fast_run_still_panics_on_a_failing_spec() {
        // The historical abort-everything contract lives on behind
        // `SweepPool::run` (the `report --fail-fast` path).
        let specs = vec![panicking_spec(); 2];
        let mut pool = SweepPool::new(2);
        let _ = pool.run(&specs);
    }

    #[test]
    fn supervised_matches_run_sweep_on_healthy_specs() {
        // Supervision must be a no-op for failure-free sweeps: identical
        // summaries, no failures, no retries — inline and pooled.
        let specs = spec_matrix();
        let expected = run_sweep(&specs, 1);
        for jobs in [1, 4] {
            let mut pool = SweepPool::new(jobs);
            let outcome = pool.run_supervised(&specs, &SupervisionPolicy::default(), &mut ());
            assert!(outcome.failures.is_empty());
            assert_eq!(outcome.retries, 0);
            let summaries: Vec<RunSummary> =
                outcome.summaries.into_iter().map(Option::unwrap).collect();
            assert_eq!(summaries, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn watchdog_cancels_a_long_run() {
        // A run with an enormous event budget under the maximally
        // obstructive adversary takes far longer than the 10 ms budget, so
        // the watchdog must cancel it and the supervisor must turn the
        // cancellation into a failure row (no retry: max_retries = 0).
        let hung = RunSpec {
            adversary: AdversaryKind::StopHappy,
            max_events: 50_000_000,
            ..RunSpec::new(10, 1)
        };
        let policy = SupervisionPolicy {
            max_retries: 0,
            watchdog: Some(Duration::from_millis(10)),
            ..SupervisionPolicy::default()
        };
        for jobs in [1, 2] {
            let mut pool = SweepPool::new(jobs);
            let outcome = pool.run_supervised(&[hung], &policy, &mut ());
            assert!(outcome.summaries[0].is_none(), "jobs={jobs}");
            assert_eq!(outcome.failures.len(), 1, "jobs={jobs}");
            assert!(
                outcome.failures[0].message.contains("watchdog"),
                "jobs={jobs}: {}",
                outcome.failures[0].message
            );
        }
    }

    #[test]
    fn observer_sees_progress_and_completion() {
        #[derive(Default)]
        struct Recorder {
            progress: Vec<(usize, usize, u64)>,
            completed: Vec<usize>,
        }
        impl SweepObserver for Recorder {
            fn on_progress(&mut self, slot: usize, events: usize, fingerprint: u64) {
                self.progress.push((slot, events, fingerprint));
            }
            fn on_completed(&mut self, slot: usize, _summary: &RunSummary) {
                self.completed.push(slot);
            }
        }
        let specs = vec![RunSpec {
            shape: Shape::Circle,
            adversary: AdversaryKind::RoundRobin,
            max_events: 20_000,
            ..RunSpec::new(4, 2)
        }];
        let policy = SupervisionPolicy {
            progress_every: 50,
            ..SupervisionPolicy::default()
        };
        let mut pool = SweepPool::new(1);
        let mut recorder = Recorder::default();
        let outcome = pool.run_supervised(&specs, &policy, &mut recorder);
        let summary = outcome.summaries[0].as_ref().expect("run completes");
        assert_eq!(recorder.completed, vec![0]);
        assert!(
            !recorder.progress.is_empty(),
            "a {}-event run reports progress at interval 50",
            summary.events
        );
        // Progress is monotone in events and every record belongs to slot 0.
        let mut last = 0;
        for &(slot, events, _) in &recorder.progress {
            assert_eq!(slot, 0);
            assert!(events > last);
            last = events;
        }
    }

    #[test]
    fn single_job_pool_runs_inline() {
        let specs = spec_matrix();
        let mut pool = SweepPool::new(1);
        assert_eq!(pool.run(&specs[..3]), run_sweep(&specs[..3], 1));
        let mut zero = SweepPool::new(0);
        assert_eq!(zero.jobs(), 1);
        assert_eq!(zero.run(&specs[..1]), run_sweep(&specs[..1], 1));
    }
}
