//! Parallel sweep engine.
//!
//! Every experiment in this repo is a bag of fully seeded, independent
//! simulations, so sweeps are embarrassingly parallel. [`run_sweep`] fans a
//! `&[RunSpec]` out over a scoped worker pool (plain `std::thread`, no
//! external dependencies) and returns the summaries **in input order**, so
//! the output of a parallel sweep is byte-identical to the serial one —
//! `run_sweep(specs, jobs)` equals `specs.iter().map(run).collect()` for
//! every `jobs`.
//!
//! The work queue is a single [`AtomicUsize`] index into the spec slice:
//! each worker claims the next unclaimed spec, executes it, and stores the
//! summary into that spec's dedicated slot. Long and short runs therefore
//! interleave freely across workers without any ordering machinery beyond
//! the slot index.
//!
//! For one-shot sweeps, [`run_sweep`] spawns a scoped pool per call. A
//! caller that dispatches *several* sweeps in one invocation (the `report`
//! binary runs up to six experiment tables) uses a [`SweepPool`] instead:
//! the workers are spawned once and fed batches over a channel, so the
//! table groups share one pool rather than paying a thread spawn/join per
//! `sweep_table` call. Both dispatchers return summaries in input order, so
//! their output is byte-identical to the serial sweep.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use crate::experiment::{run, RunSpec, RunSummary};

/// The number of workers to use when the caller has no preference: the
/// available hardware parallelism, or 1 if that cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Executes every spec and returns the summaries in input order.
///
/// `jobs` is the worker count; `0` is treated as 1, and the pool never
/// spawns more workers than there are specs. With `jobs <= 1` the sweep
/// runs inline on the calling thread — no threads are spawned at all.
///
/// A panic inside any run (a simulator validity assertion, for instance)
/// propagates to the caller once the scope joins.
pub fn run_sweep(specs: &[RunSpec], jobs: usize) -> Vec<RunSummary> {
    let jobs = jobs.clamp(1, specs.len().max(1));
    if jobs == 1 {
        return specs.iter().map(run).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunSummary>>> = specs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(i) else { break };
                let summary = run(spec);
                *slots[i].lock().expect("sweep slot poisoned") = Some(summary);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep slot poisoned")
                .expect("every claimed slot is filled before the scope joins")
        })
        .collect()
}

/// One unit of pool work: the slot index within the current batch plus the
/// spec to execute.
type PoolTask = (usize, RunSpec);

/// One pool result: the slot index plus the run outcome — `Err` carries a
/// worker panic payload to re-throw on the caller's thread.
type PoolResult = (usize, std::thread::Result<RunSummary>);

/// A persistent worker pool for multi-sweep invocations.
///
/// Workers are spawned once (at construction) and shared by every
/// [`SweepPool::run`] call; each batch drains completely before the call
/// returns, so batches never interleave and the summaries come back in
/// input order — element-for-element equal to [`run_sweep`] with the same
/// worker count, which is how the determinism tests pin it.
///
/// With `jobs <= 1` no threads are spawned and every batch runs inline on
/// the calling thread.
#[derive(Debug)]
pub struct SweepPool {
    /// Sender side of the task queue; `None` once the pool is shut down.
    task_tx: Option<mpsc::Sender<PoolTask>>,
    result_rx: mpsc::Receiver<PoolResult>,
    workers: Vec<std::thread::JoinHandle<()>>,
    jobs: usize,
}

impl SweepPool {
    /// Spawns a pool with the given worker count (`0` is treated as 1; one
    /// worker means inline execution, no threads).
    pub fn new(jobs: usize) -> Self {
        let jobs = jobs.max(1);
        let (task_tx, task_rx) = mpsc::channel::<PoolTask>();
        let (result_tx, result_rx) = mpsc::channel::<PoolResult>();
        let task_rx = Arc::new(Mutex::new(task_rx));
        let workers = if jobs == 1 {
            Vec::new()
        } else {
            (0..jobs)
                .map(|_| {
                    let task_rx = Arc::clone(&task_rx);
                    let result_tx = result_tx.clone();
                    std::thread::spawn(move || loop {
                        // Hold the queue lock only for the receive so other
                        // workers can claim tasks while this one runs.
                        let task = {
                            let rx = task_rx.lock().expect("sweep task queue poisoned");
                            rx.recv()
                        };
                        let Ok((slot, spec)) = task else { break };
                        // Catch a panicking run and ship the payload back,
                        // so the caller re-throws instead of waiting forever
                        // for a slot that will never be filled. A send error
                        // means the pool was dropped mid-batch (the caller
                        // gave up); just exit.
                        let outcome = std::panic::catch_unwind(|| run(&spec));
                        let failed = outcome.is_err();
                        if result_tx.send((slot, outcome)).is_err() || failed {
                            break;
                        }
                    })
                })
                .collect()
        };
        SweepPool {
            task_tx: Some(task_tx),
            result_rx,
            workers,
            jobs,
        }
    }

    /// The worker count this pool runs with.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Executes every spec on the pool and returns the summaries in input
    /// order.
    ///
    /// # Panics
    /// Re-throws the panic of any run that panicked inside a worker (the
    /// same behaviour as [`run_sweep`]'s scoped pool at join).
    pub fn run(&mut self, specs: &[RunSpec]) -> Vec<RunSummary> {
        if self.workers.is_empty() {
            return specs.iter().map(run).collect();
        }
        let task_tx = self.task_tx.as_ref().expect("pool is live");
        for (slot, &spec) in specs.iter().enumerate() {
            task_tx.send((slot, spec)).expect("a sweep worker died");
        }
        let mut slots: Vec<Option<RunSummary>> = specs.iter().map(|_| None).collect();
        for _ in 0..specs.len() {
            let (slot, outcome) = self
                .result_rx
                .recv()
                .expect("a sweep worker died before finishing its batch");
            match outcome {
                Ok(summary) => slots[slot] = Some(summary),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every slot is filled once the batch drains"))
            .collect()
    }
}

impl Drop for SweepPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's receive loop.
        self.task_tx.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{AdversaryKind, StrategyKind};
    use crate::init::Shape;

    /// A small but non-trivial spec matrix: two robot counts, three seeds,
    /// two shapes — twelve runs, each short enough for a debug-mode test.
    fn spec_matrix() -> Vec<RunSpec> {
        let mut specs = Vec::new();
        for &n in &[3usize, 4] {
            for seed in 1..=3u64 {
                for &shape in &[Shape::Circle, Shape::Clusters] {
                    specs.push(RunSpec {
                        shape,
                        adversary: AdversaryKind::RoundRobin,
                        strategy: StrategyKind::Paper,
                        max_events: 20_000,
                        ..RunSpec::new(n, seed)
                    });
                }
            }
        }
        specs
    }

    #[test]
    fn parallel_sweep_matches_serial_element_for_element() {
        let specs = spec_matrix();
        let serial = run_sweep(&specs, 1);
        let parallel = run_sweep(&specs, 4);
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(s, p, "summary {i} differs between jobs=1 and jobs=4");
        }
    }

    #[test]
    fn sweep_preserves_input_order() {
        let specs = spec_matrix();
        let summaries = run_sweep(&specs, 3);
        for (spec, summary) in specs.iter().zip(&summaries) {
            assert_eq!(*spec, summary.spec);
        }
    }

    #[test]
    fn zero_jobs_is_treated_as_one() {
        let specs = vec![RunSpec {
            shape: Shape::Circle,
            adversary: AdversaryKind::RoundRobin,
            max_events: 20_000,
            ..RunSpec::new(3, 1)
        }];
        assert_eq!(run_sweep(&specs, 0), run_sweep(&specs, 1));
    }

    #[test]
    fn empty_sweep_returns_no_summaries() {
        assert!(run_sweep(&[], 8).is_empty());
    }

    #[test]
    fn more_jobs_than_specs_is_fine() {
        let specs = vec![
            RunSpec {
                shape: Shape::Circle,
                adversary: AdversaryKind::RoundRobin,
                max_events: 20_000,
                ..RunSpec::new(3, 1)
            };
            2
        ];
        assert_eq!(run_sweep(&specs, 16), run_sweep(&specs, 1));
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn pool_reused_across_batches_matches_run_sweep() {
        // One pool dispatching several batches (the report binary's usage
        // pattern) must produce exactly the per-call sweeps' output.
        let specs = spec_matrix();
        let (first, second) = specs.split_at(specs.len() / 2);
        let mut pool = SweepPool::new(4);
        assert_eq!(pool.jobs(), 4);
        assert_eq!(pool.run(first), run_sweep(first, 4));
        assert_eq!(pool.run(second), run_sweep(second, 1));
        // And an empty batch is fine.
        assert!(pool.run(&[]).is_empty());
    }

    #[test]
    #[should_panic]
    fn pool_propagates_worker_panics() {
        // n = 0 makes the run panic inside the worker; the pool must
        // re-throw on the caller's thread instead of hanging on a slot
        // that will never be filled.
        let specs = vec![
            RunSpec {
                max_events: 10,
                ..RunSpec::new(0, 1)
            };
            2
        ];
        let mut pool = SweepPool::new(2);
        let _ = pool.run(&specs);
    }

    #[test]
    fn single_job_pool_runs_inline() {
        let specs = spec_matrix();
        let mut pool = SweepPool::new(1);
        assert_eq!(pool.run(&specs[..3]), run_sweep(&specs[..3], 1));
        let mut zero = SweepPool::new(0);
        assert_eq!(zero.jobs(), 1);
        assert_eq!(zero.run(&specs[..1]), run_sweep(&specs[..1], 1));
    }
}
