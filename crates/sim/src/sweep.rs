//! Parallel sweep engine.
//!
//! Every experiment in this repo is a bag of fully seeded, independent
//! simulations, so sweeps are embarrassingly parallel. [`run_sweep`] fans a
//! `&[RunSpec]` out over a scoped worker pool (plain `std::thread`, no
//! external dependencies) and returns the summaries **in input order**, so
//! the output of a parallel sweep is byte-identical to the serial one —
//! `run_sweep(specs, jobs)` equals `specs.iter().map(run).collect()` for
//! every `jobs`.
//!
//! The work queue is a single [`AtomicUsize`] index into the spec slice:
//! each worker claims the next unclaimed spec, executes it, and stores the
//! summary into that spec's dedicated slot. Long and short runs therefore
//! interleave freely across workers without any ordering machinery beyond
//! the slot index.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::experiment::{run, RunSpec, RunSummary};

/// The number of workers to use when the caller has no preference: the
/// available hardware parallelism, or 1 if that cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Executes every spec and returns the summaries in input order.
///
/// `jobs` is the worker count; `0` is treated as 1, and the pool never
/// spawns more workers than there are specs. With `jobs <= 1` the sweep
/// runs inline on the calling thread — no threads are spawned at all.
///
/// A panic inside any run (a simulator validity assertion, for instance)
/// propagates to the caller once the scope joins.
pub fn run_sweep(specs: &[RunSpec], jobs: usize) -> Vec<RunSummary> {
    let jobs = jobs.clamp(1, specs.len().max(1));
    if jobs == 1 {
        return specs.iter().map(run).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunSummary>>> = specs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(i) else { break };
                let summary = run(spec);
                *slots[i].lock().expect("sweep slot poisoned") = Some(summary);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep slot poisoned")
                .expect("every claimed slot is filled before the scope joins")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{AdversaryKind, StrategyKind};
    use crate::init::Shape;

    /// A small but non-trivial spec matrix: two robot counts, three seeds,
    /// two shapes — twelve runs, each short enough for a debug-mode test.
    fn spec_matrix() -> Vec<RunSpec> {
        let mut specs = Vec::new();
        for &n in &[3usize, 4] {
            for seed in 1..=3u64 {
                for &shape in &[Shape::Circle, Shape::Clusters] {
                    specs.push(RunSpec {
                        shape,
                        adversary: AdversaryKind::RoundRobin,
                        strategy: StrategyKind::Paper,
                        max_events: 20_000,
                        ..RunSpec::new(n, seed)
                    });
                }
            }
        }
        specs
    }

    #[test]
    fn parallel_sweep_matches_serial_element_for_element() {
        let specs = spec_matrix();
        let serial = run_sweep(&specs, 1);
        let parallel = run_sweep(&specs, 4);
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(s, p, "summary {i} differs between jobs=1 and jobs=4");
        }
    }

    #[test]
    fn sweep_preserves_input_order() {
        let specs = spec_matrix();
        let summaries = run_sweep(&specs, 3);
        for (spec, summary) in specs.iter().zip(&summaries) {
            assert_eq!(*spec, summary.spec);
        }
    }

    #[test]
    fn zero_jobs_is_treated_as_one() {
        let specs = vec![RunSpec {
            shape: Shape::Circle,
            adversary: AdversaryKind::RoundRobin,
            max_events: 20_000,
            ..RunSpec::new(3, 1)
        }];
        assert_eq!(run_sweep(&specs, 0), run_sweep(&specs, 1));
    }

    #[test]
    fn empty_sweep_returns_no_summaries() {
        assert!(run_sweep(&[], 8).is_empty());
    }

    #[test]
    fn more_jobs_than_specs_is_fine() {
        let specs = vec![
            RunSpec {
                shape: Shape::Circle,
                adversary: AdversaryKind::RoundRobin,
                max_events: 20_000,
                ..RunSpec::new(3, 1)
            };
            2
        ];
        assert_eq!(run_sweep(&specs, 16), run_sweep(&specs, 1));
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
