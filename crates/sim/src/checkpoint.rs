//! Crash-safe checkpoint/resume journal for sweeps.
//!
//! Runs are fully seeded and deterministic, so a checkpoint is tiny: a
//! [`RunSpec`] plus an event index plus the engine's [state
//! fingerprint](crate::engine::Simulator::fingerprint) at that index
//! identify a run's progress exactly — replaying the spec to the index
//! reproduces the state bit-for-bit. The journal therefore stores only two
//! kinds of record:
//!
//! * **progress** — an in-flight run reached `events` events with
//!   fingerprint `fp` (written every
//!   [`SupervisionPolicy::progress_every`](crate::sweep::SupervisionPolicy)
//!   events);
//! * **completed** — a run finished, with its full [`RunSummary`] inlined
//!   so resume never re-executes a finished run.
//!
//! ## Byte layout
//!
//! All integers little-endian; `f64` stored as its IEEE-754 bit pattern.
//!
//! ```text
//! journal := magic "FRCK" | version u32 | record*
//! record  := len u32 | crc32 u32 | payload           (len = payload bytes)
//! payload := kind u8 | ordinal u64 | body
//! kind 1  := spec | events u64 | fingerprint u64      (progress)
//! kind 2  := spec | summary                           (completed)
//! spec    := n u64 | seed u64 | shape u8 | strategy u8 | adversary u8 |
//!            fault_k u64 | delta f64 | max_events u64 | shadow u8 |
//!            world_mode u8 | threads u64 | sample_every u64
//! ```
//!
//! The CRC is the IEEE CRC-32 of the payload. Records are appended by
//! rewriting the whole journal to a temp file and renaming it over the old
//! one — the journal is small (a record is ~60–300 bytes and progress
//! records are upserted in place), and the rename keeps every observation
//! of the file a valid prefix-consistent journal. The decoder walks
//! records until the first torn frame, bad CRC, or undecodable payload and
//! **recovers to the last valid record** — it never panics on corrupt
//! input (pinned by `crates/sim/tests/checkpoint_robustness.rs`).
//!
//! Summaries that carry shadow-oracle stats are not journalled (the stats
//! drag a full divergence log along); a shadowed run simply re-executes on
//! resume, which determinism makes byte-identical.

use std::collections::HashMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::experiment::{AdversaryKind, RunSpec, RunSummary, StrategyKind};
use crate::init::Shape;
use crate::world::WorldMode;

/// The journal's magic prefix.
pub const MAGIC: [u8; 4] = *b"FRCK";
/// The journal format version this build writes and reads.
pub const VERSION: u32 = 1;
/// Upper bound on a record's payload length; longer frames are treated as
/// corruption (a torn length field would otherwise ask for gigabytes).
pub const MAX_RECORD_LEN: usize = 4096;

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// An in-flight run's latest checkpoint: replaying `spec` for `events`
    /// events reproduces the state with this `fingerprint`.
    Progress {
        /// Position of the run in the invocation's canonical execution
        /// order.
        ordinal: u64,
        /// The run being checkpointed.
        spec: RunSpec,
        /// Events applied at this checkpoint.
        events: u64,
        /// Engine state fingerprint at `events`.
        fingerprint: u64,
    },
    /// A finished run with its summary inlined.
    Completed {
        /// Position of the run in the invocation's canonical execution
        /// order.
        ordinal: u64,
        /// The finished run's summary (never carries shadow stats; boxed
        /// because it dwarfs the `Progress` variant).
        summary: Box<RunSummary>,
    },
}

/// What the decoder salvaged from an existing journal file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recovery {
    /// Records decoded successfully.
    pub records: usize,
    /// Bytes discarded after the last valid record (torn tail, bad CRC,
    /// or undecodable payload).
    pub dropped_bytes: usize,
    /// `true` when the file ended exactly at a record boundary with a
    /// valid header — nothing was dropped.
    pub clean: bool,
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, reflected) — hand-rolled, no dependencies.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of `bytes` (the checksum in every record frame).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Byte-level encoding.

/// Little-endian byte writer for record payloads.
#[derive(Debug, Default)]
struct ByteWriter(Vec<u8>);

impl ByteWriter {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
            None => self.u8(0),
        }
    }
    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(v) => {
                self.u8(1);
                self.f64(v);
            }
            None => self.u8(0),
        }
    }
}

/// Panic-free little-endian reader; every read returns `None` past the end.
#[derive(Debug)]
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }
    fn u8(&mut self) -> Option<u8> {
        let v = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }
    fn u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let chunk = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(u64::from_le_bytes(chunk.try_into().ok()?))
    }
    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }
    fn opt_u64(&mut self) -> Option<Option<u64>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.u64()?)),
            _ => None,
        }
    }
    fn opt_f64(&mut self) -> Option<Option<f64>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.f64()?)),
            _ => None,
        }
    }
    fn exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn shape_tag(shape: Shape) -> u8 {
    match shape {
        Shape::Random => 0,
        Shape::Line => 1,
        Shape::Grid => 2,
        Shape::Circle => 3,
        Shape::Clusters => 4,
        Shape::Hex => 5,
        Shape::Bridge => 6,
        Shape::RingHole => 7,
        Shape::NearCollinear => 8,
    }
}

fn shape_from_tag(tag: u8) -> Option<Shape> {
    Some(match tag {
        0 => Shape::Random,
        1 => Shape::Line,
        2 => Shape::Grid,
        3 => Shape::Circle,
        4 => Shape::Clusters,
        5 => Shape::Hex,
        6 => Shape::Bridge,
        7 => Shape::RingHole,
        8 => Shape::NearCollinear,
        _ => return None,
    })
}

fn strategy_tag(strategy: StrategyKind) -> u8 {
    match strategy {
        StrategyKind::Paper => 0,
        StrategyKind::Centroid => 1,
        StrategyKind::GreedyNearest => 2,
        StrategyKind::SmallN => 3,
    }
}

fn strategy_from_tag(tag: u8) -> Option<StrategyKind> {
    Some(match tag {
        0 => StrategyKind::Paper,
        1 => StrategyKind::Centroid,
        2 => StrategyKind::GreedyNearest,
        3 => StrategyKind::SmallN,
        _ => return None,
    })
}

fn adversary_tag(adversary: AdversaryKind) -> (u8, u64) {
    match adversary {
        AdversaryKind::RoundRobin => (0, 0),
        AdversaryKind::RandomAsync => (1, 0),
        AdversaryKind::StopHappy => (2, 0),
        AdversaryKind::SlowRobot => (3, 0),
        AdversaryKind::CollisionSeeker => (4, 0),
        AdversaryKind::CrashStop { k } => (5, k as u64),
        AdversaryKind::PersistentSleep { k } => (6, k as u64),
        AdversaryKind::SlowCoalition { k } => (7, k as u64),
    }
}

fn adversary_from_tag(tag: u8, k: u64) -> Option<AdversaryKind> {
    let k = k as usize;
    Some(match tag {
        0 => AdversaryKind::RoundRobin,
        1 => AdversaryKind::RandomAsync,
        2 => AdversaryKind::StopHappy,
        3 => AdversaryKind::SlowRobot,
        4 => AdversaryKind::CollisionSeeker,
        5 => AdversaryKind::CrashStop { k },
        6 => AdversaryKind::PersistentSleep { k },
        7 => AdversaryKind::SlowCoalition { k },
        _ => return None,
    })
}

fn world_mode_tag(mode: WorldMode) -> u8 {
    match mode {
        WorldMode::Incremental => 0,
        WorldMode::Sparse => 1,
        WorldMode::Scratch => 2,
    }
}

fn world_mode_from_tag(tag: u8) -> Option<WorldMode> {
    Some(match tag {
        0 => WorldMode::Incremental,
        1 => WorldMode::Sparse,
        2 => WorldMode::Scratch,
        _ => return None,
    })
}

fn encode_spec(w: &mut ByteWriter, spec: &RunSpec) {
    let (adv, k) = adversary_tag(spec.adversary);
    w.u64(spec.n as u64);
    w.u64(spec.seed);
    w.u8(shape_tag(spec.shape));
    w.u8(strategy_tag(spec.strategy));
    w.u8(adv);
    w.u64(k);
    w.f64(spec.delta);
    w.u64(spec.max_events as u64);
    w.u8(spec.shadow as u8);
    w.u8(world_mode_tag(spec.world_mode));
    w.u64(spec.threads as u64);
    w.u64(spec.sample_every as u64);
}

fn decode_spec(r: &mut ByteReader<'_>) -> Option<RunSpec> {
    let n = r.u64()? as usize;
    let seed = r.u64()?;
    let shape = shape_from_tag(r.u8()?)?;
    let strategy = strategy_from_tag(r.u8()?)?;
    let adv_tag = r.u8()?;
    let k = r.u64()?;
    let adversary = adversary_from_tag(adv_tag, k)?;
    let delta = r.f64()?;
    let max_events = r.u64()? as usize;
    let shadow = match r.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let world_mode = world_mode_from_tag(r.u8()?)?;
    let threads = r.u64()? as usize;
    let sample_every = r.u64()? as usize;
    Some(RunSpec {
        n,
        seed,
        shape,
        strategy,
        adversary,
        delta,
        max_events,
        shadow,
        world_mode,
        threads,
        sample_every,
    })
}

fn encode_summary(w: &mut ByteWriter, s: &RunSummary) {
    debug_assert!(s.shadow.is_none(), "shadowed summaries are not journalled");
    encode_spec(w, &s.spec);
    w.u8(s.gathered as u8);
    w.u8(s.terminated as u8);
    w.u64(s.events as u64);
    w.f64(s.cycles_per_robot);
    w.f64(s.distance);
    w.opt_u64(s.first_fully_visible.map(|v| v as u64));
    w.opt_u64(s.first_connected.map(|v| v as u64));
    w.opt_f64(s.expansion_monotonicity);
    w.opt_f64(s.convergence_monotonicity);
    for v in [
        s.visibility_cache_hits,
        s.visibility_cache_misses,
        s.decision_cache_hits,
        s.decision_cache_misses,
        s.hull_repairs,
        s.hull_rebuilds,
        s.world_pair_entries,
        s.world_pair_registrations,
        s.par_batches,
        s.par_batched_events,
        s.speculation_hits,
        s.speculation_aborts,
        s.fault_crashed_robots,
        s.fault_starved_directives,
        s.fault_truncated_directives,
    ] {
        w.u64(v);
    }
}

fn decode_bool(r: &mut ByteReader<'_>) -> Option<bool> {
    match r.u8()? {
        0 => Some(false),
        1 => Some(true),
        _ => None,
    }
}

fn decode_summary(r: &mut ByteReader<'_>) -> Option<RunSummary> {
    let spec = decode_spec(r)?;
    let gathered = decode_bool(r)?;
    let terminated = decode_bool(r)?;
    let events = r.u64()? as usize;
    let cycles_per_robot = r.f64()?;
    let distance = r.f64()?;
    let first_fully_visible = r.opt_u64()?.map(|v| v as usize);
    let first_connected = r.opt_u64()?.map(|v| v as usize);
    let expansion_monotonicity = r.opt_f64()?;
    let convergence_monotonicity = r.opt_f64()?;
    let mut counters = [0u64; 15];
    for c in counters.iter_mut() {
        *c = r.u64()?;
    }
    Some(RunSummary {
        spec,
        gathered,
        terminated,
        events,
        cycles_per_robot,
        distance,
        first_fully_visible,
        first_connected,
        expansion_monotonicity,
        convergence_monotonicity,
        visibility_cache_hits: counters[0],
        visibility_cache_misses: counters[1],
        decision_cache_hits: counters[2],
        decision_cache_misses: counters[3],
        hull_repairs: counters[4],
        hull_rebuilds: counters[5],
        world_pair_entries: counters[6],
        world_pair_registrations: counters[7],
        par_batches: counters[8],
        par_batched_events: counters[9],
        speculation_hits: counters[10],
        speculation_aborts: counters[11],
        fault_crashed_robots: counters[12],
        fault_starved_directives: counters[13],
        fault_truncated_directives: counters[14],
        shadow: None,
    })
}

fn encode_record(record: &Record) -> Vec<u8> {
    let mut w = ByteWriter::default();
    match record {
        Record::Progress {
            ordinal,
            spec,
            events,
            fingerprint,
        } => {
            w.u8(1);
            w.u64(*ordinal);
            encode_spec(&mut w, spec);
            w.u64(*events);
            w.u64(*fingerprint);
        }
        Record::Completed { ordinal, summary } => {
            w.u8(2);
            w.u64(*ordinal);
            encode_summary(&mut w, summary);
        }
    }
    w.0
}

fn decode_payload(payload: &[u8]) -> Option<Record> {
    let mut r = ByteReader::new(payload);
    let kind = r.u8()?;
    let ordinal = r.u64()?;
    let record = match kind {
        1 => {
            let spec = decode_spec(&mut r)?;
            let events = r.u64()?;
            let fingerprint = r.u64()?;
            Record::Progress {
                ordinal,
                spec,
                events,
                fingerprint,
            }
        }
        2 => Record::Completed {
            ordinal,
            summary: Box::new(decode_summary(&mut r)?),
        },
        _ => return None,
    };
    // Trailing garbage inside a CRC-valid frame means the frame was not
    // written by this encoder; reject it.
    r.exhausted().then_some(record)
}

/// Serializes a full journal (header plus every record) to bytes.
pub fn encode_journal(records: &[Record]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(8 + records.len() * 128);
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    for record in records {
        let payload = encode_record(record);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
    }
    bytes
}

/// Decodes a journal, recovering to the last valid record: decoding stops
/// at the first torn frame, CRC mismatch, or undecodable payload, and
/// everything before it is kept. Never panics, whatever the input.
pub fn decode_journal(bytes: &[u8]) -> (Vec<Record>, Recovery) {
    let mut records = Vec::new();
    if bytes.len() < 8 || bytes[..4] != MAGIC || bytes[4..8] != VERSION.to_le_bytes() {
        return (
            records,
            Recovery {
                records: 0,
                dropped_bytes: bytes.len(),
                clean: false,
            },
        );
    }
    let mut pos = 8usize;
    loop {
        if pos == bytes.len() {
            let n = records.len();
            return (
                records,
                Recovery {
                    records: n,
                    dropped_bytes: 0,
                    clean: true,
                },
            );
        }
        let frame = (|| {
            let header = bytes.get(pos..pos + 8)?;
            let len = u32::from_le_bytes(header[..4].try_into().ok()?) as usize;
            if len > MAX_RECORD_LEN {
                return None;
            }
            let crc = u32::from_le_bytes(header[4..8].try_into().ok()?);
            let payload = bytes.get(pos + 8..pos + 8 + len)?;
            if crc32(payload) != crc {
                return None;
            }
            decode_payload(payload).map(|record| (record, 8 + len))
        })();
        match frame {
            Some((record, consumed)) => {
                records.push(record);
                pos += consumed;
            }
            None => {
                let n = records.len();
                return (
                    records,
                    Recovery {
                        records: n,
                        dropped_bytes: bytes.len() - pos,
                        clean: false,
                    },
                );
            }
        }
    }
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// flush + sync, rename over the destination. Creates missing parent
/// directories. A crash at any point leaves either the old file or the new
/// one — never a torn mix.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// The on-disk journal: the decoded records plus the path they persist to.
///
/// Appends rewrite the whole journal atomically ([`write_atomic`]) — the
/// journal is small by construction (progress records are upserted, not
/// accumulated), and atomic whole-file replacement is what makes every
/// crash recoverable.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    records: Vec<Record>,
    /// ordinal → index into `records` of its completed record.
    completed: HashMap<u64, usize>,
    /// ordinal → index into `records` of its (single) progress record.
    progress: HashMap<u64, usize>,
    recovery: Recovery,
}

impl Journal {
    /// Opens the journal at `path`, recovering whatever valid prefix an
    /// earlier (possibly killed) invocation left behind; a missing file is
    /// an empty journal.
    pub fn open(path: &Path) -> io::Result<Journal> {
        let (records, recovery) = match std::fs::read(path) {
            Ok(bytes) => decode_journal(&bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => (Vec::new(), Recovery::default()),
            Err(e) => return Err(e),
        };
        let mut journal = Journal {
            path: path.to_path_buf(),
            records: Vec::new(),
            completed: HashMap::new(),
            progress: HashMap::new(),
            recovery,
        };
        for record in records {
            journal.index(record);
        }
        Ok(journal)
    }

    fn index(&mut self, record: Record) {
        match &record {
            Record::Completed { ordinal, .. } => {
                self.completed.insert(*ordinal, self.records.len());
            }
            Record::Progress { ordinal, .. } => {
                if let Some(&i) = self.progress.get(ordinal) {
                    self.records[i] = record;
                    return;
                }
                self.progress.insert(*ordinal, self.records.len());
            }
        }
        self.records.push(record);
    }

    /// What the decoder salvaged when this journal was opened.
    pub fn recovery(&self) -> &Recovery {
        &self.recovery
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The completed summary for `ordinal`, if its journalled spec matches
    /// `spec` (a mismatch means the journal belongs to a differently
    /// configured sweep and the row must re-run).
    pub fn completed(&self, ordinal: u64, spec: &RunSpec) -> Option<&RunSummary> {
        let i = *self.completed.get(&ordinal)?;
        match &self.records[i] {
            Record::Completed { summary, .. } if summary.spec == *spec => Some(summary.as_ref()),
            _ => None,
        }
    }

    /// The latest progress checkpoint for `ordinal` with a matching spec:
    /// `(events, fingerprint)`.
    pub fn progress(&self, ordinal: u64, spec: &RunSpec) -> Option<(u64, u64)> {
        let i = *self.progress.get(&ordinal)?;
        match &self.records[i] {
            Record::Progress {
                spec: s,
                events,
                fingerprint,
                ..
            } if s == spec => Some((*events, *fingerprint)),
            _ => None,
        }
    }

    /// Appends (or, for progress records, upserts) a record and persists
    /// the journal atomically.
    pub fn append(&mut self, record: Record) -> io::Result<()> {
        self.index(record);
        write_atomic(&self.path, &encode_journal(&self.records))
    }
}

/// Checkpoint telemetry surfaced into `bench_report.json` (schema v8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointTelemetry {
    /// Completed rows loaded from the journal instead of re-run.
    pub resumed_rows: u64,
    /// Events covered by progress checkpoints of runs that had to be
    /// replayed (the in-flight work a resume replays to its last
    /// checkpointed event).
    pub replayed_events: u64,
    /// Records in the journal at the end of the sweep.
    pub journal_records: u64,
    /// Records salvaged from a pre-existing journal at open.
    pub recovered_records: u64,
    /// Bytes discarded after the last valid record at open.
    pub dropped_bytes: u64,
    /// Journal writes that failed (the sweep continues; resume coverage
    /// degrades).
    pub write_errors: u64,
}

/// A checkpointed sweep session: the journal plus the invocation-wide run
/// ordinal and the resume/telemetry counters. One session spans every
/// table of a `report` invocation, so ordinals are globally unique in
/// canonical execution order.
#[derive(Debug)]
pub struct CheckpointedSweep {
    journal: Journal,
    next_ordinal: u64,
    resumed_rows: u64,
    replayed_events: u64,
    write_errors: u64,
}

impl CheckpointedSweep {
    /// Opens (or creates) the journal at `path` and starts a session at
    /// ordinal 0.
    pub fn open(path: &Path) -> io::Result<CheckpointedSweep> {
        Ok(CheckpointedSweep {
            journal: Journal::open(path)?,
            next_ordinal: 0,
            resumed_rows: 0,
            replayed_events: 0,
            write_errors: 0,
        })
    }

    /// The ordinal the next table's first run will get.
    pub fn next_ordinal(&self) -> u64 {
        self.next_ordinal
    }

    /// Advances the ordinal counter past a table's `count` runs.
    pub fn advance(&mut self, count: u64) {
        self.next_ordinal += count;
    }

    /// The journalled summary for `ordinal` if it matches `spec`
    /// (counting it as a resumed row); otherwise accounts any progress
    /// checkpoint toward the replayed-events counter and returns `None`.
    pub fn take_completed(&mut self, ordinal: u64, spec: &RunSpec) -> Option<RunSummary> {
        if let Some(summary) = self.journal.completed(ordinal, spec) {
            self.resumed_rows += 1;
            return Some(summary.clone());
        }
        if let Some((events, _)) = self.journal.progress(ordinal, spec) {
            self.replayed_events += events;
        }
        None
    }

    /// Journals an in-flight run's progress checkpoint. I/O errors are
    /// counted, not propagated — a failing checkpoint disk must not take
    /// the sweep down with it.
    pub fn journal_progress(&mut self, ordinal: u64, spec: &RunSpec, events: usize, fp: u64) {
        let record = Record::Progress {
            ordinal,
            spec: *spec,
            events: events as u64,
            fingerprint: fp,
        };
        if self.journal.append(record).is_err() {
            self.write_errors += 1;
        }
    }

    /// Journals a completed run. Summaries carrying shadow stats are
    /// skipped (see the module docs); I/O errors are counted, not
    /// propagated.
    pub fn journal_completed(&mut self, ordinal: u64, summary: &RunSummary) {
        if summary.shadow.is_some() {
            return;
        }
        let record = Record::Completed {
            ordinal,
            summary: Box::new(summary.clone()),
        };
        if self.journal.append(record).is_err() {
            self.write_errors += 1;
        }
    }

    /// The session's telemetry for the report's schema-v8 counters.
    pub fn telemetry(&self) -> CheckpointTelemetry {
        CheckpointTelemetry {
            resumed_rows: self.resumed_rows,
            replayed_events: self.replayed_events,
            journal_records: self.journal.len() as u64,
            recovered_records: self.journal.recovery().records as u64,
            dropped_bytes: self.journal.recovery().dropped_bytes as u64,
            write_errors: self.write_errors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::run;

    fn sample_spec() -> RunSpec {
        RunSpec {
            shape: Shape::Circle,
            adversary: AdversaryKind::CrashStop { k: 2 },
            strategy: StrategyKind::Centroid,
            delta: 0.25,
            max_events: 12_345,
            threads: 3,
            sample_every: 7,
            ..RunSpec::new(9, 42)
        }
    }

    #[test]
    fn spec_round_trips() {
        let spec = sample_spec();
        let mut w = ByteWriter::default();
        encode_spec(&mut w, &spec);
        let mut r = ByteReader::new(&w.0);
        assert_eq!(decode_spec(&mut r), Some(spec));
        assert!(r.exhausted());
    }

    #[test]
    fn summary_round_trips() {
        let spec = RunSpec {
            shape: Shape::Circle,
            adversary: AdversaryKind::RoundRobin,
            max_events: 20_000,
            ..RunSpec::new(3, 1)
        };
        let summary = run(&spec);
        let mut w = ByteWriter::default();
        encode_summary(&mut w, &summary);
        let mut r = ByteReader::new(&w.0);
        assert_eq!(decode_summary(&mut r), Some(summary));
        assert!(r.exhausted());
    }

    #[test]
    fn journal_round_trips_through_bytes() {
        let spec = sample_spec();
        let records = vec![
            Record::Progress {
                ordinal: 0,
                spec,
                events: 4096,
                fingerprint: 0xdead_beef,
            },
            Record::Progress {
                ordinal: 7,
                spec,
                events: 8192,
                fingerprint: 0xfeed_face,
            },
        ];
        let bytes = encode_journal(&records);
        let (decoded, recovery) = decode_journal(&bytes);
        assert_eq!(decoded, records);
        assert!(recovery.clean);
        assert_eq!(recovery.records, 2);
        assert_eq!(recovery.dropped_bytes, 0);
    }

    #[test]
    fn empty_and_garbage_inputs_recover_to_nothing() {
        for bytes in [&[][..], b"not a journal at all", &[0xff; 64][..]] {
            let (records, recovery) = decode_journal(bytes);
            assert!(records.is_empty());
            assert!(!recovery.clean || bytes.is_empty());
        }
        // A bare valid header is a clean empty journal.
        let (records, recovery) = decode_journal(&encode_journal(&[]));
        assert!(records.is_empty());
        assert!(recovery.clean);
    }

    #[test]
    fn journal_open_append_reload() {
        let dir = std::env::temp_dir().join(format!("frck_test_{}", std::process::id()));
        let path = dir.join("nested").join("journal.frck");
        let spec = sample_spec();
        {
            let mut journal = Journal::open(&path).expect("open fresh journal");
            assert!(journal.is_empty());
            journal
                .append(Record::Progress {
                    ordinal: 3,
                    spec,
                    events: 100,
                    fingerprint: 1,
                })
                .expect("append progress");
            // Upsert: same ordinal replaces, journal does not grow.
            journal
                .append(Record::Progress {
                    ordinal: 3,
                    spec,
                    events: 200,
                    fingerprint: 2,
                })
                .expect("upsert progress");
            assert_eq!(journal.len(), 1);
            assert_eq!(journal.progress(3, &spec), Some((200, 2)));
        }
        {
            let journal = Journal::open(&path).expect("reload journal");
            assert!(journal.recovery().clean);
            assert_eq!(journal.len(), 1);
            assert_eq!(journal.progress(3, &spec), Some((200, 2)));
            // A different spec under the same ordinal does not match.
            let other = RunSpec::new(4, 4);
            assert_eq!(journal.progress(3, &other), None);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpointed_sweep_resumes_completed_rows() {
        let dir = std::env::temp_dir().join(format!("frck_session_{}", std::process::id()));
        let path = dir.join("journal.frck");
        let spec = RunSpec {
            shape: Shape::Circle,
            adversary: AdversaryKind::RoundRobin,
            max_events: 20_000,
            ..RunSpec::new(3, 1)
        };
        let summary = run(&spec);
        {
            let mut session = CheckpointedSweep::open(&path).expect("open session");
            assert_eq!(session.take_completed(0, &spec), None);
            session.journal_progress(1, &spec, 4096, 0xabc);
            session.journal_completed(0, &summary);
            session.advance(2);
            assert_eq!(session.next_ordinal(), 2);
        }
        {
            let mut session = CheckpointedSweep::open(&path).expect("reopen session");
            assert_eq!(session.take_completed(0, &spec), Some(summary.clone()));
            // Ordinal 1 only has progress: not completed, but its events
            // count toward the replay telemetry.
            assert_eq!(session.take_completed(1, &spec), None);
            let telemetry = session.telemetry();
            assert_eq!(telemetry.resumed_rows, 1);
            assert_eq!(telemetry.replayed_events, 4096);
            assert_eq!(telemetry.recovered_records, 2);
            assert_eq!(telemetry.dropped_bytes, 0);
            assert_eq!(telemetry.write_errors, 0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
