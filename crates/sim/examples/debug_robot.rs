//! Diagnostic: trace one robot's events and positions during a run.

use fatrobots_core::{AlgorithmParams, LocalAlgorithm};
use fatrobots_sim::engine::{SimConfig, Simulator};
use fatrobots_sim::init::Shape;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let robot: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(7);
    let warm: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(40_000);
    let show: usize = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(60);

    let centers = Shape::Random.generate(n, seed);
    let mut sim = Simulator::new(
        centers,
        Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(n))),
        Box::new(fatrobots_scheduler::RandomAsync::new(seed)),
        SimConfig {
            max_events: warm,
            sample_every: 0,
            ..SimConfig::default()
        },
    );
    // Warm up.
    for _ in 0..warm {
        if sim.step().is_none() {
            break;
        }
    }
    println!("--- events touching robot r{robot} after warm-up ---");
    let mut shown = 0;
    while shown < show {
        let before = sim.centers()[robot];
        let Some(ev) = sim.step() else { break };
        let involved = ev.robots().iter().any(|r| r.0 == robot);
        if involved {
            let after = sim.centers()[robot];
            println!(
                "{ev}  pos=({:.4},{:.4}) moved={:.5}",
                after.x,
                after.y,
                before.distance(after)
            );
            shown += 1;
        }
    }
}
