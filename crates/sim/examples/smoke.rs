fn main() {
    use fatrobots_sim::experiment::{run, AdversaryKind, RunSpec, StrategyKind};
    use fatrobots_sim::init::Shape;
    for n in [5usize, 8, 12] {
        for seed in [1u64, 2, 3] {
            let spec = RunSpec {
                shape: Shape::Random,
                adversary: AdversaryKind::RandomAsync,
                strategy: StrategyKind::Paper,
                max_events: 60_000 + 20_000 * n,
                ..RunSpec::new(n, seed)
            };
            let t0 = std::time::Instant::now();
            let s = run(&spec);
            println!("n={n} seed={seed} gathered={} terminated={} events={} cycles/robot={:.1} ffv={:?} elapsed={:.2}s",
                s.gathered, s.terminated, s.events, s.cycles_per_robot, s.first_fully_visible, t0.elapsed().as_secs_f64());
        }
    }
}
