//! Diagnostic run: prints the configuration-level state periodically.

use fatrobots_core::{AlgorithmParams, LocalAlgorithm};
use fatrobots_model::GeometricConfig;
use fatrobots_sim::engine::{SimConfig, Simulator};
use fatrobots_sim::init::Shape;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let adv: String = args.get(3).cloned().unwrap_or_else(|| "random".into());

    let centers = Shape::Random.generate(n, seed);
    let adversary: Box<dyn fatrobots_scheduler::Adversary> = match adv.as_str() {
        "rr" => Box::new(fatrobots_scheduler::RoundRobin::new()),
        _ => Box::new(fatrobots_scheduler::RandomAsync::new(seed)),
    };
    let mut sim = Simulator::new(
        centers,
        Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(n))),
        adversary,
        SimConfig {
            max_events: 120_000,
            sample_every: 0,
            ..SimConfig::default()
        },
    );
    let mut last_report = 0usize;
    loop {
        if sim.step().is_none() {
            break;
        }
        let ev = sim.metrics().events;
        if ev - last_report >= 5000 || ev < 60 {
            last_report = ev;
            let g = GeometricConfig::new(sim.centers().to_vec());
            let hull = g.hull();
            let comps = g.tangency_components().len();
            let terminated = sim.phases().iter().filter(|p| p.is_terminal()).count();
            println!(
                "ev={ev:7} on_hull={}/{} hull_area={:9.2} tang_comps={} terminated={} connected={}",
                hull.boundary_len(),
                n,
                hull.area(),
                comps,
                terminated,
                g.is_connected()
            );
        }
        if ev >= 120_000 {
            break;
        }
    }
    let g = GeometricConfig::new(sim.centers().to_vec());
    println!(
        "final: terminated={} gathered={}",
        sim.all_terminated(),
        sim.is_gathered()
    );
    for (i, c) in sim.centers().iter().enumerate() {
        println!(
            "  r{i}: ({:.3}, {:.3}) phase={:?}",
            c.x,
            c.y,
            sim.phases()[i]
        );
    }
    println!("tangency components: {:?}", g.tangency_components());
}
