//! Shadow-oracle stall diagnosis: replay the two known convergence stalls
//! (see ROADMAP.md) with every Compute decision re-decided under the
//! exact-arithmetic kernel, and report whether the ε-tolerant predicates
//! ever disagree with exact geometry.
//!
//! * Zero decision divergences over a stall window ⇒ the stall is a genuine
//!   fixed point of the algorithm under the simulation model, not a
//!   floating-point artifact.
//! * A divergence inside the window ⇒ the ε tolerance (at the reported
//!   predicate site) chose a different move than exact geometry — a
//!   tolerance bug with a concrete first-failure coordinate.
//!
//! ```sh
//! cargo run --release -p fatrobots-sim --example shadow_oracle
//! ```

use std::process::ExitCode;
use std::time::Instant;

use fatrobots_geometry::kernel::shadow::PredicateSite;
use fatrobots_sim::experiment::{run, AdversaryKind, RunSpec};
use fatrobots_sim::init::Shape;

fn diagnose(label: &str, spec: RunSpec) -> bool {
    let start = Instant::now();
    let summary = run(&spec);
    let elapsed = start.elapsed();
    let Some(stats) = summary.shadow else {
        eprintln!("shadow_oracle: FAIL — {label}: no shadow stats recorded");
        return false;
    };
    println!(
        "{label}: {} events in {elapsed:.2?}, gathered={}, {} computes replayed, \
         {} decision divergences, {} predicate flips",
        summary.events,
        summary.gathered,
        stats.computes,
        stats.divergent,
        stats.predicate_flips(),
    );
    for site in PredicateSite::ALL {
        if stats.log.calls_at(site) > 0 {
            println!(
                "  {:<22} {:>12} calls  {:>8} eps-vs-exact flips",
                site.name(),
                stats.log.calls_at(site),
                stats.log.disagreements_at(site),
            );
        }
    }
    match stats.first_divergence {
        Some(d) => println!(
            "  FIRST DIVERGENCE at event {} robot {} (dominant site: {}):\n    eps   = {:?}\n    exact = {:?}",
            d.event,
            d.robot,
            d.site.map_or("none", PredicateSite::name),
            d.eps,
            d.exact,
        ),
        None => println!("  no decision ever diverged from exact arithmetic"),
    }
    stats.computes > 0
}

fn main() -> ExitCode {
    // Stall regime 1 (ROADMAP): the idle-decision fixed point. n=7 seed=7
    // under round-robin re-decides bit-identical views forever.
    let idle = diagnose(
        "idle-decision fixed point (n=7 seed=7 round-robin, 30k window)",
        RunSpec {
            shape: Shape::Random,
            adversary: AdversaryKind::RoundRobin,
            max_events: 30_000,
            shadow: true,
            ..RunSpec::new(7, 7)
        },
    );

    // Stall regime 2 (ROADMAP): the moving oscillation. Most n ≥ 16 random
    // starts keep physically moving without reaching the postcondition
    // (n=16 seeds 2 and 3 stall; seeds 1, 4, 5 gather).
    let oscillation = diagnose(
        "moving oscillation (n=16 seed=2 random-async, 60k window)",
        RunSpec {
            shape: Shape::Random,
            max_events: 60_000,
            shadow: true,
            ..RunSpec::new(16, 2)
        },
    );

    // A healthy sibling seed as a control: it gathers, and its replay count
    // pins the oracle against the full decision stream of a complete run.
    let control = diagnose(
        "control (n=7 seed=1 round-robin, gathers)",
        RunSpec {
            shape: Shape::Random,
            adversary: AdversaryKind::RoundRobin,
            max_events: 60_000,
            shadow: true,
            ..RunSpec::new(7, 1)
        },
    );

    if idle && oscillation && control {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
