//! Release-mode large-n smoke: one n = 64 gathering run with a bounded
//! event budget, exercising the incremental world state (grid, visibility
//! cache, cached predicates) at a size the pre-cache engine could not touch
//! in CI. Exits non-zero when any invariant breaks.
//!
//! ```sh
//! cargo run --release -p fatrobots-sim --example large_n_smoke
//! ```

use std::process::ExitCode;
use std::time::Instant;

use fatrobots_core::{AlgorithmParams, LocalAlgorithm};
use fatrobots_scheduler::RoundRobin;
use fatrobots_sim::engine::{SimConfig, Simulator};
use fatrobots_sim::init::Shape;

const N: usize = 64;
const EVENT_BUDGET: usize = 40_000;

fn main() -> ExitCode {
    let centers = Shape::Random.generate(N, 1);
    let mut sim = Simulator::new(
        centers,
        Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(N))),
        Box::new(RoundRobin::new()),
        SimConfig {
            max_events: EVENT_BUDGET,
            ..SimConfig::default()
        },
    );
    let start = Instant::now();
    let outcome = sim.run();
    let elapsed = start.elapsed();
    let (hits, misses) = sim.visibility_cache_stats();
    let rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    println!(
        "large_n_smoke: n={N} events={} ({:.0} events/s) gathered={} looks={} \
         cache hits={hits} misses={misses} (hit rate {rate:.3})",
        outcome.events,
        outcome.events as f64 / elapsed.as_secs_f64(),
        outcome.gathered,
        outcome.metrics.looks,
    );

    let mut ok = true;
    if outcome.events == 0 {
        eprintln!("large_n_smoke: FAIL — no events were executed");
        ok = false;
    }
    if outcome.metrics.looks == 0 {
        eprintln!("large_n_smoke: FAIL — no Look snapshots were taken");
        ok = false;
    }
    if hits + misses == 0 {
        eprintln!("large_n_smoke: FAIL — the visibility cache saw no traffic");
        ok = false;
    }
    // Physical validity must hold at the end of the budget (release builds
    // skip the per-event debug assertion, so check it explicitly here).
    if !fatrobots_model::GeometricConfig::is_valid_on(sim.centers()) {
        eprintln!("large_n_smoke: FAIL — final configuration contains overlapping robots");
        ok = false;
    }
    if ok {
        println!("large_n_smoke: OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
