//! Release-mode sparse-world scale smoke: n = 10⁴ robots in a jittered
//! hex packing, a bounded 60 000-event Look/move workload over
//! [`WorldMode::Sparse`], and a peak-heap gate that fails on any O(n²)
//! memory regression.
//!
//! The hex packing is the regime the sparse world is built for: every
//! robot sees only its local ring (~12 neighbors), every far pair is
//! blocked, and the blocked-certificate machinery keeps a mover's far-pair
//! row clean across its oscillation. A byte-counting global allocator
//! tracks live and peak heap usage for the whole process; the dense
//! incremental world's n(n−1)/2 pair triangle (~400 MB of entries at
//! n = 10⁴) would blow the budget before the first event, so the gate
//! cleanly separates linear from quadratic. Exits non-zero when the
//! budget, the pair-store cap, the event-rate floor or any physical
//! invariant breaks.
//!
//! Telemetry (events/s, cache/cover counters, heap) is printed and, when
//! `SCALE_TELEMETRY` names a path, written there as JSON for the CI
//! artifact.
//!
//! ```sh
//! cargo run --release -p fatrobots-sim --example scale_smoke
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use fatrobots_geometry::visibility::VisibilityConfig;
use fatrobots_geometry::Point;
use fatrobots_sim::world::{World, WorldMode};

const SIDE: usize = 100;
const N: usize = SIDE * SIDE;
/// Hex-packing center spacing. With per-axis jitter ≤ 0.01 and move
/// amplitude 0.02, adjacent centers stay at distance
/// ≥ 2.1 − 2·0.015 − 2·0.02 = 2.03 > 2.0: the configuration is valid
/// throughout, and with every gap > 0 the disc union is (deterministically)
/// not connected, which pins `is_connected` without an O(n²) reference.
const SPACING: f64 = 2.1;
const EVENT_BUDGET: usize = 60_000;
/// Robots that Look and move; the event loop round-robins over them. The
/// other robots are scenery the corridor queries must prune efficiently.
const ACTIVE: usize = 16;
/// Oscillation amplitude of the active robots. Stays within the world's
/// certificate drift radius (COVER_STABILITY_RADIUS/2 = 0.025), so a
/// blocked far pair is certified once and then survives the whole run
/// without recomputes — and its registrations cost the drains one branch
/// per move.
const AMPLITUDE: f64 = 0.02;
/// Peak-heap gate. The sparse world's footprint is dominated by the
/// ACTIVE·n computed pair entries plus their corridor registrations (tens
/// of MB); the dense pair triangle alone would blow this at n = 10⁴.
const PEAK_BUDGET_BYTES: u64 = 256 * 1024 * 1024;
/// Throughput floor: the run must also *finish promptly*, not just finish.
/// Measured steady state is ~340 events/s on a weak single-core container
/// (dominated by the ~60 near-ring pair recomputes per event — certified
/// far pairs cost one branch each); the floor trips when the certificate
/// skip path breaks and every event rescans its full row, long before the
/// job-level timeout would.
const MIN_EVENTS_PER_SEC: f64 = 100.0;

/// Pass-through allocator tracking live bytes and their high-water mark.
struct PeakAllocator;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn on_alloc(bytes: u64) {
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let ptr = System.realloc(ptr, layout, new_size);
        if !ptr.is_null() {
            let (old, new) = (layout.size() as u64, new_size as u64);
            if new >= old {
                on_alloc(new - old);
            } else {
                LIVE.fetch_sub(old - new, Ordering::Relaxed);
            }
        }
        ptr
    }
}

#[global_allocator]
static PEAK_TRACKING: PeakAllocator = PeakAllocator;

/// Deterministic jitter source (no RNG dependency).
fn lcg_unit(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 11) as f64) / ((1u64 << 53) as f64)
}

fn main() -> ExitCode {
    let mut rng = 0x5ca1ab1e_u64;
    let row_h = SPACING * 3f64.sqrt() / 2.0;
    let centers: Vec<Point> = (0..N)
        .map(|i| {
            let (row, col) = (i / SIDE, i % SIDE);
            let stagger = if row % 2 == 1 { SPACING / 2.0 } else { 0.0 };
            let jx = (lcg_unit(&mut rng) - 0.5) * 0.02;
            let jy = (lcg_unit(&mut rng) - 0.5) * 0.02;
            Point::new(col as f64 * SPACING + stagger + jx, row as f64 * row_h + jy)
        })
        .collect();

    // Active robots spread across the whole field, each oscillating around
    // its home position so every event both drains its cells and
    // re-queries a warm row.
    let movers: Vec<usize> = (0..ACTIVE)
        .map(|k| k * (N / ACTIVE) + (k * 37) % SIDE)
        .collect();
    let homes: Vec<Point> = movers.iter().map(|&m| centers[m]).collect();
    const PHASES: [(f64, f64); 4] = [
        (AMPLITUDE, 0.0),
        (0.0, AMPLITUDE),
        (-AMPLITUDE, 0.0),
        (0.0, -AMPLITUDE),
    ];

    let mut world = World::new(centers, VisibilityConfig::default(), WorldMode::Sparse);
    let mut visible = Vec::new();
    let mut ok = true;
    let start = Instant::now();
    for event in 0..EVENT_BUDGET {
        let slot = event % ACTIVE;
        let mover = movers[slot];
        world.visible_of_into(mover, &mut visible);
        if visible.is_empty() {
            eprintln!("scale_smoke: FAIL — robot {mover} sees nobody at event {event}");
            ok = false;
            break;
        }
        let (dx, dy) = PHASES[(event / ACTIVE) % PHASES.len()];
        let home = homes[slot];
        world.move_robot(mover, Point::new(home.x + dx, home.y + dy));
        if event % 10_000 == 9_999 {
            if !world.is_valid() {
                eprintln!("scale_smoke: FAIL — overlapping robots at event {event}");
                ok = false;
                break;
            }
            if world.is_connected() {
                eprintln!(
                    "scale_smoke: FAIL — a positive-gap hex packing cannot be a \
                     connected disc union"
                );
                ok = false;
                break;
            }
        }
    }
    let elapsed = start.elapsed();
    let events_per_sec = EVENT_BUDGET as f64 / elapsed.as_secs_f64();

    let (hits, misses) = world.cache_stats();
    let (entries, registrations) = world.pair_store_stats();
    let (covers, skips) = world.cert_stats();
    let (live, peak) = (LIVE.load(Ordering::Relaxed), PEAK.load(Ordering::Relaxed));
    let (live_mib, peak_mib) = (
        live as f64 / (1024.0 * 1024.0),
        peak as f64 / (1024.0 * 1024.0),
    );
    println!(
        "scale_smoke: n={N} events={EVENT_BUDGET} ({events_per_sec:.0} events/s) \
         cache hits={hits} misses={misses} cover answers={covers} cert skips={skips} \
         pair entries={entries} registrations={registrations} \
         heap live={live_mib:.1} MiB peak={peak_mib:.1} MiB",
    );

    if !world.is_valid() {
        eprintln!("scale_smoke: FAIL — final configuration contains overlapping robots");
        ok = false;
    }
    // Only queried rows may materialize pair entries: a cap at ACTIVE·n
    // trips immediately if the sparse store regresses to the Θ(n²)
    // triangle (5·10⁷ entries at this n).
    let entry_cap = (ACTIVE * N) as u64;
    if entries > entry_cap {
        eprintln!("scale_smoke: FAIL — {entries} pair entries exceed the linear cap {entry_cap}");
        ok = false;
    }
    if peak > PEAK_BUDGET_BYTES {
        eprintln!(
            "scale_smoke: FAIL — peak heap {peak} bytes exceeds the {PEAK_BUDGET_BYTES}-byte \
             budget (an O(n²) structure is back)"
        );
        ok = false;
    }
    if events_per_sec < MIN_EVENTS_PER_SEC {
        eprintln!(
            "scale_smoke: FAIL — {events_per_sec:.0} events/s is below the \
             {MIN_EVENTS_PER_SEC} events/s floor"
        );
        ok = false;
    }

    if let Ok(path) = std::env::var("SCALE_TELEMETRY") {
        let json = format!(
            "{{\n  \"n\": {N},\n  \"events\": {EVENT_BUDGET},\n  \
             \"events_per_sec\": {events_per_sec:.1},\n  \"cache_hits\": {hits},\n  \
             \"cache_misses\": {misses},\n  \"cover_answers\": {covers},\n  \
             \"cert_skips\": {skips},\n  \"pair_entries\": {entries},\n  \
             \"registrations\": {registrations},\n  \"heap_live_mib\": {live_mib:.1},\n  \
             \"heap_peak_mib\": {peak_mib:.1},\n  \"ok\": {ok}\n}}\n"
        );
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("scale_smoke: FAIL — cannot write telemetry to {path}: {e}");
            ok = false;
        }
    }
    if ok {
        println!("scale_smoke: OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
