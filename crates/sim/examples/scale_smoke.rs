//! Release-mode sparse-world scale smoke: n = 10⁴ robots in a jittered
//! hex packing, a bounded 60 000-event Look/move workload over
//! [`WorldMode::Sparse`], and a peak-heap gate that fails on any O(n²)
//! memory regression.
//!
//! The hex packing is the regime the sparse world is built for: every
//! robot sees only its local ring (~12 neighbors), every far pair is
//! blocked, and the blocked-certificate machinery keeps a mover's far-pair
//! row clean across its oscillation. A byte-counting global allocator
//! tracks live and peak heap usage for the whole process; the dense
//! incremental world's n(n−1)/2 pair triangle (~400 MB of entries at
//! n = 10⁴) would blow the budget before the first event, so the gate
//! cleanly separates linear from quadratic. Exits non-zero when the
//! budget, the pair-store cap, the event-rate floor or any physical
//! invariant breaks.
//!
//! Each cycle performs the 16 movers' Looks first and then their moves.
//! With `--threads N` (default 1) the Look phase batches movers whose
//! recompute plans ([`World::look_plan`]) are pair-disjoint and fans their
//! pair kernels out over `N` threads ([`compute_pair_answers`]), committing
//! each Look in slot order with the precomputed answers injected — the
//! same commutation-batching protocol as the engine's parallel executor.
//! The injected answers are answer-preserving, so the final world state
//! and every cache counter are bit-identical across thread counts; the
//! telemetry carries a state fingerprint the CI `scale` job compares
//! between its serial and `--threads 2` runs.
//!
//! Telemetry (events/s, cache/cover counters, batching counters, heap,
//! fingerprint) is printed and, when `SCALE_TELEMETRY` names a path,
//! written there as JSON for the CI artifact.
//!
//! ```sh
//! cargo run --release -p fatrobots-sim --example scale_smoke -- --threads 2
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use fatrobots_geometry::visibility::VisibilityConfig;
use fatrobots_geometry::Point;
use fatrobots_sim::parallel::compute_pair_answers;
use fatrobots_sim::world::{PairAnswers, World, WorldMode};

const SIDE: usize = 100;
const N: usize = SIDE * SIDE;
/// Hex-packing center spacing. With per-axis jitter ≤ 0.01 and move
/// amplitude 0.02, adjacent centers stay at distance
/// ≥ 2.1 − 2·0.015 − 2·0.02 = 2.03 > 2.0: the configuration is valid
/// throughout, and with every gap > 0 the disc union is (deterministically)
/// not connected, which pins `is_connected` without an O(n²) reference.
const SPACING: f64 = 2.1;
const EVENT_BUDGET: usize = 60_000;
/// Robots that Look and move; the event loop round-robins over them. The
/// other robots are scenery the corridor queries must prune efficiently.
const ACTIVE: usize = 16;
/// Oscillation amplitude of the active robots. Stays within the world's
/// certificate drift radius (COVER_STABILITY_RADIUS/2 = 0.025), so a
/// blocked far pair is certified once and then survives the whole run
/// without recomputes — and its registrations cost the drains one branch
/// per move.
const AMPLITUDE: f64 = 0.02;
/// Peak-heap gate. The sparse world's footprint is dominated by the
/// ACTIVE·n computed pair entries plus their corridor registrations (tens
/// of MB); the dense pair triangle alone would blow this at n = 10⁴.
const PEAK_BUDGET_BYTES: u64 = 256 * 1024 * 1024;
/// Throughput floor: the run must also *finish promptly*, not just finish.
/// Measured steady state is ~340 events/s on a weak single-core container
/// (dominated by the ~60 near-ring pair recomputes per event — certified
/// far pairs cost one branch each); the floor trips when the certificate
/// skip path breaks and every event rescans its full row, long before the
/// job-level timeout would.
const MIN_EVENTS_PER_SEC: f64 = 100.0;

/// Pass-through allocator tracking live bytes and their high-water mark.
struct PeakAllocator;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn on_alloc(bytes: u64) {
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let ptr = System.realloc(ptr, layout, new_size);
        if !ptr.is_null() {
            let (old, new) = (layout.size() as u64, new_size as u64);
            if new >= old {
                on_alloc(new - old);
            } else {
                LIVE.fetch_sub(old - new, Ordering::Relaxed);
            }
        }
        ptr
    }
}

#[global_allocator]
static PEAK_TRACKING: PeakAllocator = PeakAllocator;

/// Deterministic jitter source (no RNG dependency).
fn lcg_unit(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 11) as f64) / ((1u64 << 53) as f64)
}

/// FNV-1a word fold.
fn fnv(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x100_0000_01b3)
}

/// Order-sensitive fingerprint of the world's observable state: every
/// center's exact bit pattern plus the cache/cover/store counters. Serial
/// and `--threads N` runs must produce the same value — the CI `scale` job
/// gates on it.
fn fingerprint(world: &World) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for c in world.centers() {
        h = fnv(h, c.x.to_bits());
        h = fnv(h, c.y.to_bits());
    }
    let (hits, misses) = world.cache_stats();
    let (entries, registrations) = world.pair_store_stats();
    let (covers, skips) = world.cert_stats();
    for v in [hits, misses, entries, registrations, covers, skips] {
        h = fnv(h, v);
    }
    h
}

/// Commits the pending Look batch: fans the pooled pair plans out over the
/// thread budget, then refreshes each batched mover's row in slot order
/// with the answers injected. Returns `false` when a mover sees nobody
/// (the smoke's visibility invariant broke).
#[allow(clippy::too_many_arguments)]
fn flush_batch(
    world: &mut World,
    batch: &mut Vec<usize>,
    plan: &mut Vec<(usize, usize)>,
    in_batch: &mut [bool],
    answers: &mut PairAnswers,
    threads: usize,
    visible: &mut Vec<usize>,
    stats: &mut BatchStats,
) -> bool {
    if batch.is_empty() {
        return true;
    }
    compute_pair_answers(world, plan, threads, answers);
    stats.batches += 1;
    if batch.len() > 1 {
        stats.batched_looks += batch.len() as u64;
    }
    stats.pair_tasks += plan.len() as u64;
    for &mover in batch.iter() {
        world.visible_of_into_with(mover, visible, Some(answers));
        in_batch[mover] = false;
        if visible.is_empty() {
            eprintln!("scale_smoke: FAIL — robot {mover} sees nobody");
            return false;
        }
    }
    batch.clear();
    plan.clear();
    true
}

/// Batching telemetry for the parallel Look phase.
#[derive(Default)]
struct BatchStats {
    batches: u64,
    batched_looks: u64,
    pair_tasks: u64,
}

fn main() -> ExitCode {
    let mut threads = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => {
                    eprintln!("scale_smoke: --threads needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!(
                    "scale_smoke: unknown argument {other}; usage: scale_smoke [--threads N]"
                );
                return ExitCode::from(2);
            }
        }
    }

    let mut rng = 0x5ca1ab1e_u64;
    let row_h = SPACING * 3f64.sqrt() / 2.0;
    let centers: Vec<Point> = (0..N)
        .map(|i| {
            let (row, col) = (i / SIDE, i % SIDE);
            let stagger = if row % 2 == 1 { SPACING / 2.0 } else { 0.0 };
            let jx = (lcg_unit(&mut rng) - 0.5) * 0.02;
            let jy = (lcg_unit(&mut rng) - 0.5) * 0.02;
            Point::new(col as f64 * SPACING + stagger + jx, row as f64 * row_h + jy)
        })
        .collect();

    // Active robots spread across the whole field, each oscillating around
    // its home position so every event both drains its cells and
    // re-queries a warm row.
    let movers: Vec<usize> = (0..ACTIVE)
        .map(|k| k * (N / ACTIVE) + (k * 37) % SIDE)
        .collect();
    let homes: Vec<Point> = movers.iter().map(|&m| centers[m]).collect();
    const PHASES: [(f64, f64); 4] = [
        (AMPLITUDE, 0.0),
        (0.0, AMPLITUDE),
        (-AMPLITUDE, 0.0),
        (0.0, -AMPLITUDE),
    ];

    let mut world = World::new(centers, VisibilityConfig::default(), WorldMode::Sparse);
    let mut visible = Vec::new();
    let mut batch: Vec<usize> = Vec::new();
    let mut plan: Vec<(usize, usize)> = Vec::new();
    let mut in_batch = vec![false; N];
    let mut answers = PairAnswers::default();
    let mut stats = BatchStats::default();
    let mut ok = true;
    let cycles = EVENT_BUDGET / ACTIVE;
    let start = Instant::now();
    'run: for cycle in 0..cycles {
        // Look phase: all ACTIVE movers observe the pre-move configuration.
        if threads <= 1 {
            for &mover in &movers {
                world.visible_of_into(mover, &mut visible);
                if visible.is_empty() {
                    eprintln!("scale_smoke: FAIL — robot {mover} sees nobody in cycle {cycle}");
                    ok = false;
                    break 'run;
                }
            }
        } else {
            // Batch movers whose recompute plans are pair-disjoint; flush
            // (and re-plan) whenever a mover's plan touches a robot already
            // in the batch, then commit in slot order with the precomputed
            // answers injected — answer-preserving, so state and counters
            // match the serial path bit-for-bit.
            for &mover in &movers {
                loop {
                    let plan_start = plan.len();
                    world.look_plan(mover, &mut plan);
                    let conflict = plan[plan_start..]
                        .iter()
                        .any(|&(a, b)| in_batch[a] || in_batch[b]);
                    if !conflict {
                        batch.push(mover);
                        in_batch[mover] = true;
                        break;
                    }
                    plan.truncate(plan_start);
                    if !flush_batch(
                        &mut world,
                        &mut batch,
                        &mut plan,
                        &mut in_batch,
                        &mut answers,
                        threads,
                        &mut visible,
                        &mut stats,
                    ) {
                        ok = false;
                        break 'run;
                    }
                }
            }
            if !flush_batch(
                &mut world,
                &mut batch,
                &mut plan,
                &mut in_batch,
                &mut answers,
                threads,
                &mut visible,
                &mut stats,
            ) {
                ok = false;
                break 'run;
            }
        }
        // Move phase: the whole cohort advances to this cycle's oscillation
        // phase, draining each mover's registrations against the warm rows.
        let (dx, dy) = PHASES[cycle % PHASES.len()];
        for (slot, &mover) in movers.iter().enumerate() {
            let home = homes[slot];
            world.move_robot(mover, Point::new(home.x + dx, home.y + dy));
        }
        if cycle % 625 == 624 {
            if !world.is_valid() {
                eprintln!("scale_smoke: FAIL — overlapping robots in cycle {cycle}");
                ok = false;
                break;
            }
            if world.is_connected() {
                eprintln!(
                    "scale_smoke: FAIL — a positive-gap hex packing cannot be a \
                     connected disc union"
                );
                ok = false;
                break;
            }
        }
    }
    let elapsed = start.elapsed();
    let events_per_sec = EVENT_BUDGET as f64 / elapsed.as_secs_f64();

    let (hits, misses) = world.cache_stats();
    let (entries, registrations) = world.pair_store_stats();
    let (covers, skips) = world.cert_stats();
    let state_fp = fingerprint(&world);
    let (live, peak) = (LIVE.load(Ordering::Relaxed), PEAK.load(Ordering::Relaxed));
    let (live_mib, peak_mib) = (
        live as f64 / (1024.0 * 1024.0),
        peak as f64 / (1024.0 * 1024.0),
    );
    println!(
        "scale_smoke: n={N} events={EVENT_BUDGET} threads={threads} \
         ({events_per_sec:.0} events/s) \
         cache hits={hits} misses={misses} cover answers={covers} cert skips={skips} \
         pair entries={entries} registrations={registrations} \
         batches={} batched looks={} pair tasks={} \
         heap live={live_mib:.1} MiB peak={peak_mib:.1} MiB fingerprint={state_fp:#018x}",
        stats.batches, stats.batched_looks, stats.pair_tasks,
    );

    if !world.is_valid() {
        eprintln!("scale_smoke: FAIL — final configuration contains overlapping robots");
        ok = false;
    }
    // Only queried rows may materialize pair entries: a cap at ACTIVE·n
    // trips immediately if the sparse store regresses to the Θ(n²)
    // triangle (5·10⁷ entries at this n).
    let entry_cap = (ACTIVE * N) as u64;
    if entries > entry_cap {
        eprintln!("scale_smoke: FAIL — {entries} pair entries exceed the linear cap {entry_cap}");
        ok = false;
    }
    if peak > PEAK_BUDGET_BYTES {
        eprintln!(
            "scale_smoke: FAIL — peak heap {peak} bytes exceeds the {PEAK_BUDGET_BYTES}-byte \
             budget (an O(n²) structure is back)"
        );
        ok = false;
    }
    if events_per_sec < MIN_EVENTS_PER_SEC {
        eprintln!(
            "scale_smoke: FAIL — {events_per_sec:.0} events/s is below the \
             {MIN_EVENTS_PER_SEC} events/s floor"
        );
        ok = false;
    }

    if let Ok(path) = std::env::var("SCALE_TELEMETRY") {
        let json = format!(
            "{{\n  \"n\": {N},\n  \"events\": {EVENT_BUDGET},\n  \"threads\": {threads},\n  \
             \"events_per_sec\": {events_per_sec:.1},\n  \"cache_hits\": {hits},\n  \
             \"cache_misses\": {misses},\n  \"cover_answers\": {covers},\n  \
             \"cert_skips\": {skips},\n  \"pair_entries\": {entries},\n  \
             \"registrations\": {registrations},\n  \"par_batches\": {},\n  \
             \"par_batched_looks\": {},\n  \"par_pair_tasks\": {},\n  \
             \"fingerprint\": \"{state_fp:#018x}\",\n  \"heap_live_mib\": {live_mib:.1},\n  \
             \"heap_peak_mib\": {peak_mib:.1},\n  \"ok\": {ok}\n}}\n",
            stats.batches, stats.batched_looks, stats.pair_tasks,
        );
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("scale_smoke: FAIL — cannot write telemetry to {path}: {e}");
            ok = false;
        }
    }
    if ok {
        println!("scale_smoke: OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
