//! Throwaway calibration harness for the sparse world at large n (not part
//! of CI): times row init and steady-state refresh separately so hot-path
//! work can be attributed. Run with `N_SIDE=...` to change the field size.

use std::time::Instant;

use fatrobots_geometry::visibility::VisibilityConfig;
use fatrobots_geometry::Point;
use fatrobots_sim::world::{World, WorldMode};

fn main() {
    let side: usize = std::env::var("N_SIDE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let spacing: f64 = std::env::var("SPACING")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    let n = side * side;
    let mut state = 0x5ca1ab1e_u64;
    let mut lcg = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    };
    let hex = std::env::var("HEX").is_ok();
    let centers: Vec<Point> = (0..n)
        .map(|i| {
            let (row, col) = (i / side, i % side);
            let jx = (lcg() - 0.5) * 0.02;
            let jy = (lcg() - 0.5) * 0.02;
            if hex {
                let row_h = spacing * 3f64.sqrt() / 2.0;
                let stagger = if row % 2 == 1 { spacing / 2.0 } else { 0.0 };
                Point::new(col as f64 * spacing + stagger + jx, row as f64 * row_h + jy)
            } else {
                Point::new(col as f64 * spacing + jx, row as f64 * spacing + jy)
            }
        })
        .collect();
    let t0 = Instant::now();
    let mut world = World::new(
        centers.clone(),
        VisibilityConfig::default(),
        WorldMode::Sparse,
    );
    println!("World::new: {:?}", t0.elapsed());

    let mover = n / 2 + side / 2;
    let home = centers[mover];
    let mut visible = Vec::new();

    let t0 = Instant::now();
    world.visible_of_into(mover, &mut visible);
    println!(
        "row init: {:?}  visible={} (n={n}, spacing={spacing})",
        t0.elapsed(),
        visible.len()
    );

    // Steady state: oscillate and re-Look.
    let rounds = 20;
    let t0 = Instant::now();
    for r in 0..rounds {
        let dx = if r % 2 == 0 { 0.005 } else { -0.005 };
        world.move_robot(mover, Point::new(home.x + dx, home.y));
        world.visible_of_into(mover, &mut visible);
    }
    let el = t0.elapsed();
    println!(
        "steady move+refresh: {:?}/cycle over {rounds} cycles, visible={}",
        el / rounds,
        visible.len()
    );
    let (hits, misses) = world.cache_stats();
    let (entries, regs) = world.pair_store_stats();
    let (covers, skips) = world.cert_stats();
    println!(
        "hits={hits} misses={misses} entries={entries} regs={regs} covers={covers} skips={skips}"
    );
}
