//! Diagnostic: run for a while, then print every robot's current decision.

use fatrobots_core::{AlgorithmParams, LocalAlgorithm};
use fatrobots_geometry::visibility::VisibilityConfig;
use fatrobots_model::{GeometricConfig, LocalView};
use fatrobots_sim::engine::{SimConfig, Simulator};
use fatrobots_sim::init::Shape;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let warm: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(20_000);

    let adv: String = args.get(4).cloned().unwrap_or_else(|| "rr".into());
    let adversary: Box<dyn fatrobots_scheduler::Adversary> = match adv.as_str() {
        "random" => Box::new(fatrobots_scheduler::RandomAsync::new(seed)),
        "stop" => Box::new(fatrobots_scheduler::StopHappy::new()),
        _ => Box::new(fatrobots_scheduler::RoundRobin::new()),
    };
    let centers = Shape::Random.generate(n, seed);
    let algo = LocalAlgorithm::new(AlgorithmParams::for_n(n));
    let mut sim = Simulator::new(
        centers,
        Box::new(algo),
        adversary,
        SimConfig {
            max_events: warm,
            sample_every: 0,
            ..SimConfig::default()
        },
    );
    let _ = sim.run();

    let g = GeometricConfig::new(sim.centers().to_vec());
    let hull = g.hull();
    println!(
        "after {} events: on_hull={}/{} area={:.2} connected={} comps={:?}",
        sim.metrics().events,
        hull.boundary_len(),
        n,
        hull.area(),
        g.is_connected(),
        g.tangency_components()
    );
    for (i, c) in sim.centers().iter().enumerate() {
        println!(
            "  r{i}: ({:.4}, {:.4}) phase={:?}",
            c.x,
            c.y,
            sim.phases()[i]
        );
    }
    let vis = VisibilityConfig::default();
    for i in 0..n {
        let view = LocalView::snapshot(&g, i, &vis);
        let out = algo.run_traced(&view);
        let me = sim.centers()[i];
        let desc = match out.decision {
            fatrobots_core::Decision::Terminate => "TERMINATE".to_string(),
            fatrobots_core::Decision::MoveTo(t) => {
                if t.approx_eq(me) {
                    "STAY".to_string()
                } else {
                    format!("move {:.4} to ({:.3},{:.3})", me.distance(t), t.x, t.y)
                }
            }
        };
        println!(
            "  r{i}: sees {}/{}  trace={:?}  -> {desc}",
            view.size(),
            n,
            out.trace.last().unwrap(),
        );
    }
}
