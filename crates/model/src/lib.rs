//! # fatrobots-model
//!
//! The robot and configuration model of Section 2 of
//! *A Distributed Algorithm for Gathering Many Fat Mobile Robots in the
//! Plane* (Agathangelou, Georgiou & Mavronicolas, PODC 2013).
//!
//! The crate defines:
//!
//! * [`Robot`] and [`RobotId`] — fat robots are closed unit discs identified
//!   only for bookkeeping (the algorithm itself is anonymous);
//! * [`Phase`] — the five-state Look–Compute–Move machine of Figure 1
//!   (`Wait`, `Look`, `Compute`, `Move`, `Terminate`);
//! * [`GeometricConfig`] — a geometric configuration `G = (c_1, …, c_n)`
//!   with validity (no two discs overlap), connectivity of the disc union,
//!   convex-hull queries and the full-visibility predicate;
//! * [`RobotConfig`] — a robot configuration `R = (⟨s_1, c_1⟩, …)` combining
//!   phases with positions;
//! * [`LocalView`] — the snapshot `V_i ⊆ G` a robot obtains in its Look
//!   phase, which is the only input of the local Compute algorithm.
//!
//! ```
//! use fatrobots_model::GeometricConfig;
//! use fatrobots_geometry::Point;
//!
//! // Three unit discs in a row, each touching the next: connected.
//! let g = GeometricConfig::new(vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(2.0, 0.0),
//!     Point::new(4.0, 0.0),
//! ]);
//! assert!(g.is_valid());
//! assert!(g.is_connected());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod phase;
pub mod robot;
pub mod view;

pub use config::{GeometricConfig, RobotConfig};
pub use phase::Phase;
pub use robot::{Robot, RobotId};
pub use view::LocalView;
