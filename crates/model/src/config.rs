//! Geometric, state and robot configurations.

use fatrobots_geometry::hull::ConvexHull;
use fatrobots_geometry::predicates::approx_eq_tol;
use fatrobots_geometry::visibility::{
    disc_sees_disc, min_pairwise_gap, no_three_collinear, VisibilityConfig,
};
use fatrobots_geometry::{Point, UNIT_RADIUS};

use crate::phase::Phase;

/// Tolerance used when deciding whether two unit discs touch: the boundary
/// gap may be at most this value. The simulator places touching robots at
/// distance exactly 2 up to floating-point error, and the gathering
/// algorithm's own tolerances (`1/2n`) are far larger than this.
pub const TOUCH_TOL: f64 = 1e-6;

/// The tangency predicate on a boundary gap (center distance minus one
/// diameter): touching when the gap is within [`TOUCH_TOL`] of zero, or
/// negative (overlap counts as contact). The single definition shared by
/// [`GeometricConfig::touching`], the component partition, and the
/// simulator's grid-local connectivity — these must agree exactly for the
/// incremental world state to stay bit-identical to the from-scratch path.
#[inline]
pub fn gap_touches(gap: f64) -> bool {
    approx_eq_tol(gap, 0.0, TOUCH_TOL) || gap < 0.0
}

/// A geometric configuration `G = (c_1, …, c_n)`: the centers of the robots'
/// unit discs.
#[derive(Debug, Clone, PartialEq)]
pub struct GeometricConfig {
    centers: Vec<Point>,
}

impl GeometricConfig {
    /// Creates a configuration from robot centers.
    pub fn new(centers: Vec<Point>) -> Self {
        GeometricConfig { centers }
    }

    /// Number of robots.
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// `true` when the configuration holds no robots.
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// The robot centers, indexed by robot.
    pub fn centers(&self) -> &[Point] {
        &self.centers
    }

    /// Center of robot `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn center(&self, i: usize) -> Point {
        self.centers[i]
    }

    /// Replaces the center of robot `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn set_center(&mut self, i: usize, p: Point) {
        self.centers[i] = p;
    }

    /// `true` when no two robot discs overlap (they may touch).
    ///
    /// The paper's model forbids two robots from sharing more than one
    /// boundary point; the simulator asserts this invariant after every
    /// event.
    pub fn is_valid(&self) -> bool {
        Self::is_valid_on(&self.centers)
    }

    /// Borrowed form of [`Self::is_valid`]: validity of a raw center slice,
    /// with no configuration allocated. This is what the simulator's
    /// per-event assertion calls.
    pub fn is_valid_on(centers: &[Point]) -> bool {
        match min_pairwise_gap(centers) {
            None => true,
            Some(gap) => gap >= -TOUCH_TOL,
        }
    }

    /// Boundary gap between robots `i` and `j` (center distance minus 2).
    /// Zero for touching robots, negative for overlapping ones.
    pub fn gap(&self, i: usize, j: usize) -> f64 {
        self.centers[i].distance(self.centers[j]) - 2.0 * UNIT_RADIUS
    }

    /// `true` when robots `i` and `j` touch (tangent discs).
    pub fn touching(&self, i: usize, j: usize) -> bool {
        gap_touches(self.gap(i, j))
    }

    /// Indices of robots touching robot `i`.
    pub fn neighbors_touching(&self, i: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&j| j != i && self.touching(i, j))
            .collect()
    }

    /// Partition of the robots into connected components of the tangency
    /// graph (the components of the union of the closed discs). Each
    /// component is a sorted list of robot indices.
    pub fn tangency_components(&self) -> Vec<Vec<usize>> {
        Self::tangency_components_on(&self.centers)
    }

    /// Borrowed form of [`Self::tangency_components`].
    pub fn tangency_components_on(centers: &[Point]) -> Vec<Vec<usize>> {
        let n = centers.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        let touching =
            |i: usize, j: usize| gap_touches(centers[i].distance(centers[j]) - 2.0 * UNIT_RADIUS);
        for i in 0..n {
            for j in (i + 1)..n {
                if touching(i, j) {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for i in 0..n {
            let r = find(&mut parent, i);
            groups.entry(r).or_default().push(i);
        }
        groups.into_values().collect()
    }

    /// `true` when the union of the robot discs is connected
    /// (Definition: between any two points of any two robots there is a
    /// polygonal line inside the union). Equivalent to the tangency graph
    /// being connected.
    pub fn is_connected(&self) -> bool {
        Self::is_connected_on(&self.centers)
    }

    /// Borrowed form of [`Self::is_connected`].
    pub fn is_connected_on(centers: &[Point]) -> bool {
        centers.len() <= 1 || Self::tangency_components_on(centers).len() == 1
    }

    /// Convex hull of the robot centers.
    pub fn hull(&self) -> ConvexHull {
        ConvexHull::from_points(&self.centers)
    }

    /// `true` when every robot center lies on the convex hull boundary
    /// (`|onCH(G)| = n`).
    pub fn all_on_hull(&self) -> bool {
        Self::all_on_hull_on(&self.centers)
    }

    /// Borrowed form of [`Self::all_on_hull`].
    pub fn all_on_hull_on(centers: &[Point]) -> bool {
        centers.len() <= 2 || ConvexHull::from_points(centers).all_on_hull()
    }

    /// Exact full-visibility test for configurations in convex position:
    /// all centers on the hull and no three centers collinear within
    /// `collinearity_tol` (tolerance on the doubled triangle area).
    ///
    /// This is the characterisation the algorithm itself uses (Lemma 4).
    pub fn is_fully_visible_convex(&self, collinearity_tol: f64) -> bool {
        Self::is_fully_visible_convex_on(&self.centers, collinearity_tol)
    }

    /// Borrowed form of [`Self::is_fully_visible_convex`].
    pub fn is_fully_visible_convex_on(centers: &[Point], collinearity_tol: f64) -> bool {
        Self::all_on_hull_on(centers) && no_three_collinear(centers, collinearity_tol)
    }

    /// General full-visibility test using the sampling-based visibility
    /// oracle: every robot sees every other robot.
    ///
    /// Quadratic in `n` and considerably more expensive than
    /// [`Self::is_fully_visible_convex`]; intended for metrics and tests on
    /// arbitrary (non-convex-position) configurations.
    pub fn is_fully_visible_sampled(&self, vis: &VisibilityConfig) -> bool {
        Self::is_fully_visible_sampled_on(&self.centers, vis)
    }

    /// Borrowed form of [`Self::is_fully_visible_sampled`].
    pub fn is_fully_visible_sampled_on(centers: &[Point], vis: &VisibilityConfig) -> bool {
        let n = centers.len();
        for i in 0..n {
            for j in (i + 1)..n {
                if !disc_sees_disc(i, j, centers, vis) {
                    return false;
                }
            }
        }
        true
    }

    /// `true` when the configuration solves the gathering problem
    /// geometrically: connected and fully visible (Definition 1).
    pub fn is_gathered(&self, collinearity_tol: f64) -> bool {
        Self::is_gathered_on(&self.centers, collinearity_tol)
    }

    /// Borrowed form of [`Self::is_gathered`]: the gathering predicate on a
    /// raw center slice, with no configuration allocated.
    pub fn is_gathered_on(centers: &[Point], collinearity_tol: f64) -> bool {
        Self::is_connected_on(centers)
            && (Self::is_fully_visible_convex_on(centers, collinearity_tol)
                || Self::is_fully_visible_sampled_on(centers, &VisibilityConfig::default()))
    }

    /// Total area of the convex hull of the centers (a monotonicity witness
    /// for the paper's Lemmas 20 and 21).
    pub fn hull_area(&self) -> f64 {
        self.hull().area()
    }
}

/// A robot configuration `R = (⟨s_1, c_1⟩, …, ⟨s_n, c_n⟩)`: phases combined
/// with positions.
#[derive(Debug, Clone, PartialEq)]
pub struct RobotConfig {
    phases: Vec<Phase>,
    geometry: GeometricConfig,
}

impl RobotConfig {
    /// Creates the initial robot configuration for the given centers:
    /// every robot is in phase `Wait`.
    pub fn initial(centers: Vec<Point>) -> Self {
        let phases = vec![Phase::Wait; centers.len()];
        RobotConfig {
            phases,
            geometry: GeometricConfig::new(centers),
        }
    }

    /// Creates a robot configuration from explicit phases and centers.
    ///
    /// # Panics
    /// Panics if the two vectors have different lengths.
    pub fn new(phases: Vec<Phase>, centers: Vec<Point>) -> Self {
        assert_eq!(
            phases.len(),
            centers.len(),
            "one phase per robot is required"
        );
        RobotConfig {
            phases,
            geometry: GeometricConfig::new(centers),
        }
    }

    /// Number of robots.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// `true` when there are no robots.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// The geometric part of the configuration.
    pub fn geometry(&self) -> &GeometricConfig {
        &self.geometry
    }

    /// Mutable access to the geometric part.
    pub fn geometry_mut(&mut self) -> &mut GeometricConfig {
        &mut self.geometry
    }

    /// Phase of robot `i`.
    pub fn phase(&self, i: usize) -> Phase {
        self.phases[i]
    }

    /// Sets the phase of robot `i`.
    ///
    /// # Panics
    /// Panics if the transition is not allowed by the cycle of Figure 1.
    pub fn set_phase(&mut self, i: usize, next: Phase) {
        assert!(
            self.phases[i].can_transition_to(next),
            "illegal phase transition {:?} -> {:?} for robot {i}",
            self.phases[i],
            next
        );
        self.phases[i] = next;
    }

    /// All phases, indexed by robot.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// `true` when every robot is in the terminal phase.
    pub fn all_terminated(&self) -> bool {
        self.phases.iter().all(|p| p.is_terminal())
    }

    /// `true` when this is a terminal robot configuration that also solves
    /// gathering (connected, fully visible, all terminated) — the
    /// postcondition of Theorem 26.
    pub fn is_gathering_terminal(&self, collinearity_tol: f64) -> bool {
        self.all_terminated() && self.geometry.is_gathered(collinearity_tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn chain(n: usize) -> GeometricConfig {
        GeometricConfig::new((0..n).map(|i| p(2.0 * i as f64, 0.0)).collect())
    }

    #[test]
    fn validity_detects_overlap() {
        assert!(chain(4).is_valid());
        let bad = GeometricConfig::new(vec![p(0.0, 0.0), p(1.0, 0.0)]);
        assert!(!bad.is_valid());
        let empty = GeometricConfig::new(vec![]);
        assert!(empty.is_valid() && empty.is_empty());
    }

    #[test]
    fn touching_and_gap() {
        let g = chain(3);
        assert!(g.touching(0, 1));
        assert!(!g.touching(0, 2));
        assert!((g.gap(0, 2) - 2.0).abs() < 1e-12);
        assert_eq!(g.neighbors_touching(1), vec![0, 2]);
    }

    #[test]
    fn connectivity_of_chain_and_split() {
        assert!(chain(5).is_connected());
        let split = GeometricConfig::new(vec![p(0.0, 0.0), p(2.0, 0.0), p(10.0, 0.0)]);
        assert!(!split.is_connected());
        assert_eq!(split.tangency_components().len(), 2);
        let single = GeometricConfig::new(vec![p(0.0, 0.0)]);
        assert!(single.is_connected());
    }

    #[test]
    fn hull_predicates() {
        let square =
            GeometricConfig::new(vec![p(0.0, 0.0), p(10.0, 0.0), p(10.0, 10.0), p(0.0, 10.0)]);
        assert!(square.all_on_hull());
        assert!(square.is_fully_visible_convex(1e-9));
        assert!((square.hull_area() - 100.0).abs() < 1e-9);

        let mut with_interior = square.clone();
        with_interior.set_center(0, p(6.0, 5.0));
        // Moving a corner into the interior leaves only 3 on the hull.
        assert!(!with_interior.all_on_hull());
        assert!(!with_interior.is_fully_visible_convex(1e-9));
    }

    #[test]
    fn collinear_hull_is_not_fully_visible() {
        let line = chain(4);
        assert!(line.all_on_hull());
        assert!(!line.is_fully_visible_convex(1e-9));
        assert!(!line.is_fully_visible_sampled(&VisibilityConfig::default()));
    }

    #[test]
    fn gathered_configuration() {
        // Three touching robots forming a triangle: connected, convex
        // position, no three collinear.
        let g = GeometricConfig::new(vec![p(0.0, 0.0), p(2.0, 0.0), p(1.0, 3.0_f64.sqrt())]);
        assert!(g.is_valid());
        assert!(g.is_connected());
        assert!(g.is_gathered(1e-9));

        // A disconnected square is not gathered.
        let square =
            GeometricConfig::new(vec![p(0.0, 0.0), p(10.0, 0.0), p(10.0, 10.0), p(0.0, 10.0)]);
        assert!(!square.is_gathered(1e-9));
    }

    #[test]
    fn robot_config_phase_transitions() {
        let mut r = RobotConfig::initial(vec![p(0.0, 0.0), p(4.0, 0.0)]);
        assert_eq!(r.phase(0), Phase::Wait);
        assert!(!r.all_terminated());
        r.set_phase(0, Phase::Look);
        r.set_phase(0, Phase::Compute);
        r.set_phase(0, Phase::Terminate);
        assert!(r.phase(0).is_terminal());
    }

    #[test]
    #[should_panic]
    fn illegal_phase_transition_panics() {
        let mut r = RobotConfig::initial(vec![p(0.0, 0.0)]);
        r.set_phase(0, Phase::Move); // Wait -> Move is not allowed
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = RobotConfig::new(vec![Phase::Wait], vec![p(0.0, 0.0), p(4.0, 0.0)]);
    }

    #[test]
    fn gathering_terminal_postcondition() {
        let centers = vec![p(0.0, 0.0), p(2.0, 0.0), p(1.0, 3.0_f64.sqrt())];
        let mut r = RobotConfig::initial(centers);
        assert!(!r.is_gathering_terminal(1e-9));
        for i in 0..r.len() {
            r.set_phase(i, Phase::Look);
            r.set_phase(i, Phase::Compute);
            r.set_phase(i, Phase::Terminate);
        }
        assert!(r.is_gathering_terminal(1e-9));
    }
}
