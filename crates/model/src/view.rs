//! Local views (`V_i`): the snapshot a robot obtains in its Look phase.

use fatrobots_geometry::hull::ConvexHull;
use fatrobots_geometry::visibility::{visible_set, VisibilityConfig};
use fatrobots_geometry::Point;

use crate::config::GeometricConfig;

/// The local view `V_i ⊆ G` of a robot: its own center plus the centers of
/// all robots visible to it at the moment of the snapshot, together with the
/// globally-known number of robots `n`.
///
/// Per the paper, `V_i` is the *only* input of the local Compute algorithm;
/// the robot additionally knows `n` and the common unit of distance (the
/// disc radius), both of which are part of the model.
///
/// A view additionally carries a **version stamp** — provenance metadata
/// set by the simulator ([`LocalView::stamp_version`]) recording the
/// world's per-robot view version at snapshot time. The paper's `V_i` is
/// exactly `(me, others, n)`; the stamp is bookkeeping for the engine's
/// decision memoization (two snapshots of a robot carrying the same
/// non-zero stamp are guaranteed identical) and deliberately does **not**
/// participate in equality.
#[derive(Debug, Clone)]
pub struct LocalView {
    me: Point,
    others: Vec<Point>,
    n: usize,
    /// 0 = never stamped; the engine stamps world versions, which start at 1.
    version: u64,
}

impl PartialEq for LocalView {
    /// View identity is the paper's `V_i = (me, others, n)`; the version
    /// stamp is provenance, not content.
    fn eq(&self, other: &Self) -> bool {
        self.me == other.me && self.others == other.others && self.n == other.n
    }
}

impl LocalView {
    /// Creates a view for a robot at `me` that sees `others`, in a system of
    /// `n` robots.
    ///
    /// # Panics
    /// Panics if `others` holds `n` or more centers (a robot can see at most
    /// `n − 1` other robots).
    pub fn new(me: Point, others: Vec<Point>, n: usize) -> Self {
        assert!(
            others.len() < n,
            "a robot sees at most n-1 other robots (saw {} of n={})",
            others.len(),
            n
        );
        LocalView {
            me,
            others,
            n,
            version: 0,
        }
    }

    /// Takes the snapshot of robot `i` in configuration `g`, using the
    /// sampling-based visibility oracle: the Look phase of the paper.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn snapshot(g: &GeometricConfig, i: usize, vis: &VisibilityConfig) -> Self {
        let centers = g.centers();
        let visible = visible_set(i, centers, vis);
        Self::from_visible(centers, i, &visible)
    }

    /// Builds the view of robot `i` from a center slice and a precomputed
    /// list of visible robot indices (ascending, excluding `i`), borrowing
    /// the configuration instead of cloning it.
    ///
    /// This is the constructor the simulator's incremental world state uses:
    /// the visibility decisions come from its cached pair matrix, so the
    /// per-Look cost is one small allocation for the view itself.
    ///
    /// # Panics
    /// Panics if `i` or any element of `visible` is out of bounds, or if
    /// `visible` does not leave room for the observer (`visible.len() >= n`).
    pub fn from_visible(centers: &[Point], i: usize, visible: &[usize]) -> Self {
        debug_assert!(
            visible.iter().all(|&j| j != i),
            "the visible set must not contain the observer"
        );
        Self::new(
            centers[i],
            visible.iter().map(|&j| centers[j]).collect(),
            centers.len(),
        )
    }

    /// Refills this view in place with the snapshot [`Self::from_visible`]
    /// would build, reusing the view's own center storage. This is what the
    /// engine calls on every Look event: each robot keeps one `LocalView`
    /// for the lifetime of the run, so the steady-state snapshot performs no
    /// heap allocation.
    ///
    /// # Panics
    /// Panics (in debug builds) if `visible` contains the observer; panics
    /// if any index is out of bounds or `visible` does not leave room for
    /// the observer.
    pub fn refill_from_visible(&mut self, centers: &[Point], i: usize, visible: &[usize]) {
        debug_assert!(
            visible.iter().all(|&j| j != i),
            "the visible set must not contain the observer"
        );
        assert!(
            visible.len() < centers.len(),
            "a robot sees at most n-1 other robots (saw {} of n={})",
            visible.len(),
            centers.len()
        );
        self.me = centers[i];
        self.n = centers.len();
        self.version = 0; // content changed: a stale stamp must never survive
        self.others.clear();
        self.others.extend(visible.iter().map(|&j| centers[j]));
    }

    /// Stamps this view with the simulator's per-robot view version (see
    /// the type docs). [`Self::refill_from_visible`] resets the stamp to 0
    /// (unstamped), so a forgotten stamp can never alias a previous one.
    pub fn stamp_version(&mut self, version: u64) {
        self.version = version;
    }

    /// The version stamp: 0 when never stamped, otherwise the world's view
    /// version for this robot at snapshot time.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Takes a snapshot assuming full visibility (every other robot is seen).
    /// Useful once the configuration is in convex position, where visibility
    /// is decided exactly by the no-three-collinear predicate and the
    /// sampling oracle is unnecessary.
    pub fn full_snapshot(g: &GeometricConfig, i: usize) -> Self {
        let centers = g.centers();
        LocalView {
            me: centers[i],
            others: centers
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &c)| c)
                .collect(),
            n: g.len(),
            version: 0,
        }
    }

    /// The observing robot's own center (`c_i`).
    pub fn me(&self) -> Point {
        self.me
    }

    /// Centers of the *other* visible robots.
    pub fn others(&self) -> &[Point] {
        &self.others
    }

    /// All centers in the view: the observer first, then the others.
    pub fn all_centers(&self) -> Vec<Point> {
        let mut v = Vec::with_capacity(self.others.len() + 1);
        v.push(self.me);
        v.extend_from_slice(&self.others);
        v
    }

    /// Number of robots in the view (`|V_i|`, observer included).
    pub fn size(&self) -> usize {
        self.others.len() + 1
    }

    /// The total number of robots `n` in the system (known to every robot).
    pub fn n(&self) -> usize {
        self.n
    }

    /// `true` when the robot sees all `n − 1` other robots (`|V_i| = n`).
    pub fn sees_all(&self) -> bool {
        self.size() == self.n
    }

    /// Convex hull of all centers in the view.
    pub fn hull(&self) -> ConvexHull {
        ConvexHull::from_points(&self.all_centers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn snapshot_reflects_occlusion() {
        // Three collinear robots: the middle one hides the far one.
        let g = GeometricConfig::new(vec![p(0.0, 0.0), p(10.0, 0.0), p(20.0, 0.0)]);
        let vis = VisibilityConfig::default();
        let v0 = LocalView::snapshot(&g, 0, &vis);
        assert_eq!(v0.size(), 2);
        assert!(!v0.sees_all());
        let v1 = LocalView::snapshot(&g, 1, &vis);
        assert_eq!(v1.size(), 3);
        assert!(v1.sees_all());
    }

    #[test]
    fn from_visible_matches_snapshot() {
        let g = GeometricConfig::new(vec![p(0.0, 0.0), p(10.0, 0.0), p(20.0, 0.0)]);
        let vis = VisibilityConfig::default();
        for i in 0..g.len() {
            let direct = LocalView::snapshot(&g, i, &vis);
            let visible = fatrobots_geometry::visibility::visible_set(i, g.centers(), &vis);
            let borrowed = LocalView::from_visible(g.centers(), i, &visible);
            assert_eq!(direct, borrowed);
        }
    }

    #[test]
    fn refill_reuses_storage_and_matches_from_visible() {
        let g = GeometricConfig::new(vec![p(0.0, 0.0), p(10.0, 0.0), p(20.0, 0.0)]);
        let vis = VisibilityConfig::default();
        // One view refilled across every robot must always equal the
        // freshly built snapshot.
        let mut view = LocalView::new(p(0.0, 0.0), vec![], 3);
        for i in 0..g.len() {
            let visible = fatrobots_geometry::visibility::visible_set(i, g.centers(), &vis);
            view.refill_from_visible(g.centers(), i, &visible);
            assert_eq!(view, LocalView::from_visible(g.centers(), i, &visible));
        }
    }

    #[test]
    fn version_stamp_is_provenance_not_content() {
        let mut view = LocalView::new(p(0.0, 0.0), vec![p(5.0, 0.0)], 2);
        assert_eq!(view.version(), 0, "fresh views are unstamped");
        view.stamp_version(7);
        assert_eq!(view.version(), 7);
        // Equality ignores the stamp: V_i is (me, others, n).
        assert_eq!(view, LocalView::new(p(0.0, 0.0), vec![p(5.0, 0.0)], 2));
        // A refill resets the stamp so it can never alias the previous one.
        view.refill_from_visible(&[p(0.0, 0.0), p(5.0, 0.0)], 0, &[1]);
        assert_eq!(view.version(), 0);
    }

    #[test]
    #[should_panic]
    fn refill_rejects_oversized_visible_sets() {
        let mut view = LocalView::new(p(0.0, 0.0), vec![], 2);
        view.refill_from_visible(&[p(0.0, 0.0), p(5.0, 0.0)], 0, &[1, 1]);
    }

    #[test]
    fn full_snapshot_sees_everyone() {
        let g = GeometricConfig::new(vec![p(0.0, 0.0), p(10.0, 0.0), p(20.0, 0.0)]);
        let v = LocalView::full_snapshot(&g, 0);
        assert!(v.sees_all());
        assert_eq!(v.me(), p(0.0, 0.0));
        assert_eq!(v.others().len(), 2);
    }

    #[test]
    fn all_centers_starts_with_observer() {
        let v = LocalView::new(p(1.0, 1.0), vec![p(5.0, 5.0)], 3);
        let all = v.all_centers();
        assert_eq!(all[0], p(1.0, 1.0));
        assert_eq!(all.len(), 2);
        assert_eq!(v.n(), 3);
        assert!(!v.sees_all());
    }

    #[test]
    fn hull_of_view() {
        let v = LocalView::new(
            p(0.0, 0.0),
            vec![p(10.0, 0.0), p(10.0, 10.0), p(0.0, 10.0)],
            4,
        );
        assert_eq!(v.hull().vertices().len(), 4);
        assert!(v.sees_all());
    }

    #[test]
    #[should_panic]
    fn view_cannot_exceed_n() {
        let _ = LocalView::new(p(0.0, 0.0), vec![p(3.0, 0.0), p(6.0, 0.0)], 2);
    }
}
