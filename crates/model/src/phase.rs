//! The five-phase Look–Compute–Move cycle of Figure 1.

use std::fmt;

/// Phase of a robot in its Look–Compute–Move cycle (the paper's "states" of
/// the robot state machine, Figure 1).
///
/// The transitions realised by the scheduler events are:
///
/// ```text
/// Wait --Look--> Look --Compute--> Compute --Move--> Move --Arrive/Stop/Collide--> Wait
///                                      \--Done--> Terminate
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Phase {
    /// Idling; the robot has no memory of previous cycles (history
    /// obliviousness). This is the initial phase.
    #[default]
    Wait,
    /// Taking a snapshot of the plane (producing the local view `V_i`).
    Look,
    /// Running the local algorithm `A_i` on the snapshot.
    Compute,
    /// Moving on a straight line towards the computed target point.
    Move,
    /// Terminal phase: the local algorithm returned ⊥; no further steps.
    Terminate,
}

impl Phase {
    /// `true` for the terminal phase.
    pub fn is_terminal(self) -> bool {
        self == Phase::Terminate
    }

    /// The phases a robot may legally transition to from `self`, per
    /// Figure 1 of the paper.
    pub fn successors(self) -> &'static [Phase] {
        match self {
            Phase::Wait => &[Phase::Look],
            Phase::Look => &[Phase::Compute],
            Phase::Compute => &[Phase::Move, Phase::Terminate],
            Phase::Move => &[Phase::Wait],
            Phase::Terminate => &[],
        }
    }

    /// `true` when a transition from `self` to `next` is allowed by the
    /// cycle of Figure 1.
    pub fn can_transition_to(self, next: Phase) -> bool {
        self.successors().contains(&next)
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Wait => "Wait",
            Phase::Look => "Look",
            Phase::Compute => "Compute",
            Phase::Move => "Move",
            Phase::Terminate => "Terminate",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_wait() {
        assert_eq!(Phase::default(), Phase::Wait);
    }

    #[test]
    fn figure_1_transitions() {
        assert!(Phase::Wait.can_transition_to(Phase::Look));
        assert!(Phase::Look.can_transition_to(Phase::Compute));
        assert!(Phase::Compute.can_transition_to(Phase::Move));
        assert!(Phase::Compute.can_transition_to(Phase::Terminate));
        assert!(Phase::Move.can_transition_to(Phase::Wait));

        assert!(!Phase::Wait.can_transition_to(Phase::Compute));
        assert!(!Phase::Move.can_transition_to(Phase::Look));
        assert!(!Phase::Terminate.can_transition_to(Phase::Wait));
        assert!(Phase::Terminate.successors().is_empty());
    }

    #[test]
    fn terminal_detection_and_display() {
        assert!(Phase::Terminate.is_terminal());
        assert!(!Phase::Move.is_terminal());
        assert_eq!(format!("{}", Phase::Compute), "Compute");
    }
}
