//! Robots as unit discs.

use std::fmt;

use fatrobots_geometry::{Circle, Point, UNIT_RADIUS};

/// Identifier of a robot.
///
/// The robots of the paper are anonymous and indistinguishable; identifiers
/// exist purely so the *simulator* can address robots ("used only for
/// reference purposes" in the paper's words). The local algorithm never
/// receives an id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RobotId(pub usize);

impl fmt::Display for RobotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<usize> for RobotId {
    fn from(v: usize) -> Self {
        RobotId(v)
    }
}

/// A fat robot: a closed unit disc at a given center.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Robot {
    /// Bookkeeping identifier (not visible to the algorithm).
    pub id: RobotId,
    /// Center of the robot's unit disc.
    pub center: Point,
}

impl Robot {
    /// Creates a robot with the given id and center.
    pub fn new(id: impl Into<RobotId>, center: Point) -> Self {
        Robot {
            id: id.into(),
            center,
        }
    }

    /// The robot's body as a unit disc.
    pub fn disc(&self) -> Circle {
        Circle::unit(self.center)
    }

    /// Radius of every robot (they are identical unit discs).
    pub const fn radius() -> f64 {
        UNIT_RADIUS
    }

    /// `true` when this robot's disc is externally tangent to `other`'s
    /// (they "touch", in the paper's terminology).
    pub fn touches(&self, other: &Robot) -> bool {
        self.disc().is_tangent_to(&other.disc())
    }

    /// `true` when this robot's disc shares interior points with `other`'s —
    /// an invalid physical state that the simulator must never produce.
    pub fn overlaps(&self, other: &Robot) -> bool {
        self.disc().overlaps(&other.disc())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_and_overlap() {
        let a = Robot::new(0, Point::new(0.0, 0.0));
        let b = Robot::new(1, Point::new(2.0, 0.0));
        let c = Robot::new(2, Point::new(1.0, 0.0));
        let d = Robot::new(3, Point::new(5.0, 0.0));
        assert!(a.touches(&b));
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(!a.touches(&d));
        assert!(!a.overlaps(&d));
    }

    #[test]
    fn ids_display_and_convert() {
        let r = Robot::new(7, Point::ORIGIN);
        assert_eq!(format!("{}", r.id), "r7");
        assert_eq!(RobotId::from(3), RobotId(3));
        assert_eq!(Robot::radius(), 1.0);
    }
}
