//! Property-based tests for the geometry substrate.

use fatrobots_geometry::hull::{convex_hull, ConvexHull, HullScratch};
use fatrobots_geometry::predicates::{self, Orientation};
use fatrobots_geometry::visibility::{disc_sees_disc, min_pairwise_gap, VisibilityConfig};
use fatrobots_geometry::{Circle, EpsKernel, ExactKernel, Kernel, Point, Segment, Vec2, EPS};
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    -100.0f64..100.0
}

fn point() -> impl Strategy<Value = Point> {
    (coord(), coord()).prop_map(|(x, y)| Point::new(x, y))
}

fn point_vec(min: usize, max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(point(), min..=max)
}

/// Points spaced far enough apart to be valid disc centers (pairwise distance > 2).
fn disc_centers(n: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0i32..20, 0i32..20), n..=n).prop_map(|cells| {
        let mut seen = std::collections::HashSet::new();
        cells
            .into_iter()
            .filter(|c| seen.insert(*c))
            .map(|(i, j)| Point::new(i as f64 * 3.0, j as f64 * 3.0))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hull_contains_all_input_points(pts in point_vec(1, 40)) {
        let hull = ConvexHull::from_points(&pts);
        for p in &pts {
            prop_assert!(hull.contains(*p), "hull must contain every input point {p}");
        }
    }

    #[test]
    fn hull_is_idempotent(pts in point_vec(3, 40)) {
        let h1 = convex_hull(&pts);
        let h2 = convex_hull(&h1);
        prop_assert_eq!(h1.len(), h2.len());
    }

    #[test]
    fn hull_vertices_are_input_points(pts in point_vec(1, 40)) {
        let h = convex_hull(&pts);
        for v in &h {
            prop_assert!(pts.iter().any(|p| p.approx_eq(*v)));
        }
    }

    #[test]
    fn hull_vertices_are_ccw(pts in point_vec(3, 40)) {
        let hull = ConvexHull::from_points(&pts);
        let v = hull.vertices();
        if v.len() >= 3 {
            let mut area2 = 0.0;
            for i in 0..v.len() {
                let a = v[i];
                let b = v[(i + 1) % v.len()];
                area2 += a.x * b.y - b.x * a.y;
            }
            prop_assert!(area2 > 0.0);
        }
    }

    #[test]
    fn hull_area_not_larger_than_bounding_box(pts in point_vec(1, 40)) {
        let hull = ConvexHull::from_points(&pts);
        let min_x = pts.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
        let max_x = pts.iter().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max);
        let min_y = pts.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
        let max_y = pts.iter().map(|p| p.y).fold(f64::NEG_INFINITY, f64::max);
        let bbox = (max_x - min_x) * (max_y - min_y);
        prop_assert!(hull.area() <= bbox + 1e-6);
    }

    #[test]
    fn adding_interior_point_does_not_change_hull_area(pts in point_vec(3, 20)) {
        let hull = ConvexHull::from_points(&pts);
        if hull.vertices().len() >= 3 {
            let centroid = Point::centroid(hull.vertices());
            let mut extended = pts.clone();
            extended.push(centroid);
            let hull2 = ConvexHull::from_points(&extended);
            prop_assert!((hull.area() - hull2.area()).abs() < 1e-6);
        }
    }

    /// The incremental-repair pin: after an arbitrary sequence of
    /// single-point moves (interior shuffles, boundary crossings, exact
    /// coincidences — the coordinate grid makes collisions and collinear
    /// runs likely), a hull maintained by `repair_point_move` must be
    /// structure-for-structure identical to a from-scratch build: same
    /// vertices, same boundary indices, same input.
    #[test]
    fn single_point_repair_matches_full_rebuild(
        pts in prop::collection::vec((0i32..8, 0i32..8), 2..24),
        script in prop::collection::vec((0usize..64, 0i32..8, 0i32..8, -0.5f64..0.5, -0.5f64..0.5), 1..24),
    ) {
        let mut pts: Vec<Point> = pts
            .into_iter()
            .map(|(i, j)| Point::new(i as f64, j as f64))
            .collect();
        let mut hull = ConvexHull::default();
        let mut scratch = HullScratch::default();
        hull.rebuild_with(&pts, &mut scratch);
        for (pick, i, j, dx, dy) in script {
            let idx = pick % pts.len();
            let to = Point::new(i as f64 + dx, j as f64 + dy);
            pts[idx] = to;
            prop_assert!(hull.repair_point_move(idx, to, &mut scratch));
            prop_assert_eq!(&hull, &ConvexHull::from_points(&pts));
        }
    }

    #[test]
    fn segment_distance_symmetric(a in point(), b in point(), c in point(), d in point()) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        let d1 = s1.distance_to_segment(&s2);
        let d2 = s2.distance_to_segment(&s1);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!(d1 >= 0.0);
    }

    #[test]
    fn closest_point_is_on_segment_and_closest_among_samples(a in point(), b in point(), q in point()) {
        let s = Segment::new(a, b);
        let cp = s.closest_point_to(q);
        prop_assert!(s.distance_to(cp) < 1e-7);
        for k in 0..=10 {
            let t = k as f64 / 10.0;
            prop_assert!(q.distance(cp) <= q.distance(s.point_at(t)) + 1e-9);
        }
    }

    #[test]
    fn circle_segment_intersections_lie_on_both(center in point(), r in 0.1f64..10.0, a in point(), b in point()) {
        let c = Circle::new(center, r);
        let seg = Segment::new(a, b);
        for p in c.intersect_segment(&seg) {
            prop_assert!((p.distance(center) - r).abs() < 1e-6);
            prop_assert!(seg.distance_to(p) < 1e-6);
        }
    }

    #[test]
    fn visibility_is_symmetric(centers in disc_centers(6)) {
        prop_assume!(centers.len() >= 3);
        if let Some(gap) = min_pairwise_gap(&centers) {
            prop_assume!(gap > 0.0);
        }
        let cfg = VisibilityConfig::default();
        for i in 0..centers.len() {
            for j in (i + 1)..centers.len() {
                prop_assert_eq!(
                    disc_sees_disc(i, j, &centers, &cfg),
                    disc_sees_disc(j, i, &centers, &cfg)
                );
            }
        }
    }

    #[test]
    fn adjacent_discs_always_see_each_other(centers in disc_centers(5)) {
        prop_assume!(centers.len() >= 2);
        // The pair at minimum distance has nothing between them.
        let cfg = VisibilityConfig::default();
        let mut best = (0, 1, f64::INFINITY);
        for i in 0..centers.len() {
            for j in (i + 1)..centers.len() {
                let d = centers[i].distance(centers[j]);
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        prop_assert!(disc_sees_disc(best.0, best.1, &centers, &cfg));
    }

    #[test]
    fn vector_rotation_preserves_norm(x in coord(), y in coord(), theta in -6.3f64..6.3) {
        let v = Vec2::new(x, y);
        prop_assert!((v.rotated(theta).norm() - v.norm()).abs() < 1e-6);
    }

    #[test]
    fn perp_is_orthogonal(x in coord(), y in coord()) {
        let v = Vec2::new(x, y);
        prop_assert!(v.dot(v.perp_ccw()).abs() < 1e-9);
        prop_assert!(v.dot(v.perp_cw()).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Kernel agreement and exactness (the shadow oracle's soundness assumptions).
// ---------------------------------------------------------------------------

/// Adversarial near-collinear triples: `c` sits on the segment `ab` displaced
/// perpendicularly by a few ulps, the regime where the ε kernel must report
/// `Collinear` and only exact arithmetic can recover the true side.
fn near_collinear_triple() -> impl Strategy<Value = (Point, Point, Point, i32)> {
    (
        (-50i32..50, -50i32..50),
        (-50i32..50, -50i32..50),
        0i32..17,
        -4i32..5,
    )
        .prop_map(|((ax, ay), (bx, by), sixteenths, ulps)| {
            let a = Point::new(f64::from(ax), f64::from(ay));
            let b = Point::new(f64::from(bx), f64::from(by));
            let t = f64::from(sixteenths) / 16.0;
            let on_line = a.lerp(b, t);
            let d = b - a;
            let n = if d.is_zero() {
                Vec2::new(0.0, 1.0)
            } else {
                d.perp_ccw()
            };
            let c = on_line + n * (f64::from(ulps) * f64::EPSILON);
            // Rounding may snap a sub-ulp displacement back onto the line
            // (rounding never flips a component's sign, so a partly-surviving
            // displacement still lies on the intended side). Record the side
            // of the *stored* point: 0 when the nudge rounded away entirely.
            let ulps = if c == on_line { 0 } else { ulps };
            (a, b, c, ulps)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn kernels_agree_on_orientation_far_from_collinearity(a in point(), b in point(), c in point()) {
        prop_assume!(predicates::cross_of_triple(a, b, c).abs() > 10.0 * EPS);
        prop_assert_eq!(EpsKernel::orientation(a, b, c), ExactKernel::orientation(a, b, c));
    }

    #[test]
    fn kernels_agree_on_distance_comparisons_far_from_ties(
        p1 in point(), p2 in point(), r in 0.0f64..300.0
    ) {
        prop_assume!((p1.distance(p2) - r).abs() > 10.0 * EPS);
        prop_assert_eq!(EpsKernel::cmp_dist(p1, p2, r), ExactKernel::cmp_dist(p1, p2, r));
    }

    #[test]
    fn kernels_agree_on_segment_distance_far_from_ties(
        a in point(), b in point(), q in point(), r in 0.0f64..300.0
    ) {
        let seg = Segment::new(a, b);
        prop_assume!((seg.distance_to(q) - r).abs() > 10.0 * EPS);
        prop_assert_eq!(
            EpsKernel::cmp_segment_dist(a, b, q, r),
            ExactKernel::cmp_segment_dist(a, b, q, r)
        );
    }

    #[test]
    fn exact_orientation_is_antisymmetric_on_adversarial_triples(
        triple in near_collinear_triple()
    ) {
        let (a, b, c, _ulps) = triple;
        prop_assume!(!a.approx_eq(b));
        let fwd = ExactKernel::orientation(a, b, c);
        let rev = ExactKernel::orientation(b, a, c);
        let flipped = match fwd {
            Orientation::CounterClockwise => Orientation::Clockwise,
            Orientation::Clockwise => Orientation::CounterClockwise,
            Orientation::Collinear => Orientation::Collinear,
        };
        prop_assert_eq!(rev, flipped);
    }

    #[test]
    fn exact_orientation_is_cyclically_consistent_on_adversarial_triples(
        triple in near_collinear_triple()
    ) {
        let (a, b, c, _ulps) = triple;
        let abc = ExactKernel::orientation(a, b, c);
        prop_assert_eq!(abc, ExactKernel::orientation(b, c, a));
        prop_assert_eq!(abc, ExactKernel::orientation(c, a, b));
    }

    #[test]
    fn exact_orientation_recovers_the_true_side_of_ulp_offsets(
        triple in near_collinear_triple()
    ) {
        let (a, b, c, ulps) = triple;
        prop_assume!(!a.approx_eq(b));
        // The displacement was constructed along ±perp_ccw, so exact
        // arithmetic must classify the *stored* point by the sign of the
        // offset (the strategy zeroes `ulps` when rounding erased the nudge).
        let expected = match ulps.signum() {
            1 => Orientation::CounterClockwise,
            -1 => Orientation::Clockwise,
            _ => Orientation::Collinear,
        };
        prop_assert_eq!(ExactKernel::orientation(a, b, c), expected);
    }
}
