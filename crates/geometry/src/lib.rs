//! # fatrobots-geometry
//!
//! The 2-D computational-geometry substrate used by the fat-robot gathering
//! algorithm of Agathangelou, Georgiou & Mavronicolas (PODC 2013).
//!
//! The crate is deliberately self-contained (no external geometry
//! dependencies) and provides exactly the primitives the paper's Section 3
//! functions and Section 4 procedures need:
//!
//! * [`Point`] / [`Vec2`] — points and vectors in the plane with the usual
//!   arithmetic, rotation and projection helpers;
//! * [`Segment`] and [`Line`] — straight segments and infinite lines, with
//!   distance, intersection and side-of queries;
//! * [`Circle`] — circles (of which the robots' unit discs are the special
//!   case of radius [`UNIT_RADIUS`]), with tangency and intersection tests;
//! * [`hull`] — convex hulls (Andrew's monotone chain, equivalent to the
//!   Graham scan the paper cites), hull membership, neighbours on the hull,
//!   area/perimeter and point-in-convex-polygon queries;
//! * [`visibility`] — visibility between unit discs when other unit discs act
//!   as opaque obstacles, as defined in Section 2 of the paper;
//! * [`grid`] — a uniform spatial grid over point sites with conservative
//!   capsule (corridor) queries, the index behind the simulator's
//!   incremental world state;
//! * [`predicates`] — the ε-tolerant orientation/collinearity predicates that
//!   every other module builds on;
//! * [`kernel`] — the predicate [`Kernel`] abstraction: the default
//!   ε-tolerant [`EpsKernel`] (bit-identical to calling [`predicates`]
//!   directly) and the adaptive exact-arithmetic [`ExactKernel`], plus the
//!   disagreement-tallying shadow kernel behind the simulator's shadow
//!   oracle.
//!
//! ## Numerical model
//!
//! The paper reasons over exact real arithmetic. This crate uses `f64` with a
//! single global comparison tolerance [`predicates::EPS`] (documented per
//! function). The gathering algorithm itself never relies on exact equality:
//! the paper's own constructions are tolerance bands (`1/n` collinearity band,
//! `1/2n` gaps, `1/2n − ε` steps), which dominate the floating-point error by
//! many orders of magnitude for any practical `n`.
//!
//! ## Quick example
//!
//! ```
//! use fatrobots_geometry::{Point, hull::convex_hull};
//!
//! let pts = vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(4.0, 0.0),
//!     Point::new(4.0, 3.0),
//!     Point::new(2.0, 1.0), // interior
//! ];
//! let h = convex_hull(&pts);
//! assert_eq!(h.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circle;
pub mod grid;
pub mod hull;
pub mod kernel;
pub mod line;
pub mod point;
pub mod predicates;
pub mod segment;
pub mod visibility;

pub use circle::{Circle, UNIT_RADIUS};
pub use grid::UniformGrid;
pub use hull::ConvexHull;
pub use kernel::{EpsKernel, ExactKernel, Kernel};
pub use line::Line;
pub use point::{Point, Vec2};
pub use predicates::{approx_eq, orientation, Orientation, EPS};
pub use segment::Segment;
