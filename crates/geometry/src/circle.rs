//! Circles and unit discs.

use std::cmp::Ordering;

use crate::kernel::Kernel;
use crate::point::{Point, Vec2};
use crate::predicates::{approx_eq, approx_eq_tol, EPS};
use crate::segment::Segment;

/// Radius of the robots' unit discs (the paper's "fat robots" are closed
/// discs of radius 1).
pub const UNIT_RADIUS: f64 = 1.0;

/// A circle (equivalently, the closed disc it bounds).
///
/// ```
/// use fatrobots_geometry::{Circle, Point};
/// let c = Circle::unit(Point::new(0.0, 0.0));
/// let d = Circle::unit(Point::new(2.0, 0.0));
/// assert!(c.is_tangent_to(&d));
/// assert!(!c.overlaps(&d));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Center of the circle.
    pub center: Point,
    /// Radius of the circle (non-negative).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle from center and radius.
    ///
    /// # Panics
    /// Panics in debug builds if `radius` is negative.
    pub fn new(center: Point, radius: f64) -> Self {
        debug_assert!(radius >= 0.0, "circle radius must be non-negative");
        Circle { center, radius }
    }

    /// A unit disc (radius [`UNIT_RADIUS`]) centred at `center`.
    pub fn unit(center: Point) -> Self {
        Circle::new(center, UNIT_RADIUS)
    }

    /// `true` when `p` lies inside or on the circle (closed disc membership).
    pub fn contains(&self, p: Point) -> bool {
        self.center.distance(p) <= self.radius + EPS
    }

    /// `true` when `p` lies strictly inside the circle (by more than `tol`).
    pub fn contains_strict(&self, p: Point, tol: f64) -> bool {
        self.center.distance(p) < self.radius - tol
    }

    /// `true` when the two closed discs share interior points
    /// (center distance strictly less than the sum of radii).
    pub fn overlaps(&self, other: &Circle) -> bool {
        self.center.distance(other.center) < self.radius + other.radius - EPS
    }

    /// `true` when the two discs are externally tangent (touching in exactly
    /// one point, within tolerance).
    pub fn is_tangent_to(&self, other: &Circle) -> bool {
        approx_eq_tol(
            self.center.distance(other.center),
            self.radius + other.radius,
            1e-6,
        )
    }

    /// Gap between the two disc boundaries: center distance minus the sum of
    /// the radii. Zero for tangent discs, negative for overlapping ones.
    pub fn gap_to(&self, other: &Circle) -> f64 {
        self.center.distance(other.center) - self.radius - other.radius
    }

    /// The point of the circle boundary closest to `p` (for `p` different
    /// from the center). For `p == center`, an arbitrary boundary point is
    /// returned.
    pub fn boundary_point_towards(&self, p: Point) -> Point {
        let d = p - self.center;
        if d.is_zero() {
            self.center + Vec2::new(self.radius, 0.0)
        } else {
            self.center + d.normalized() * self.radius
        }
    }

    /// Boundary point at angle `theta` (radians from the +x axis).
    pub fn point_at_angle(&self, theta: f64) -> Point {
        self.center + Vec2::from_angle(theta) * self.radius
    }

    /// Minimum distance from `p` to the closed disc (0 when `p` is inside).
    pub fn distance_to_point(&self, p: Point) -> f64 {
        (self.center.distance(p) - self.radius).max(0.0)
    }

    /// `true` when the segment contains a point of the **closed** disc
    /// (within tolerance `tol`).
    ///
    /// This is the obstacle test used for visibility. Robots are closed
    /// discs in the paper, so a sight line that merely grazes another
    /// robot's boundary already "contains a point of another robot" and is
    /// blocked — this is exactly why three collinear hull robots break full
    /// visibility (Lemma 4).
    pub fn blocks_segment(&self, seg: &Segment, tol: f64) -> bool {
        seg.distance_to(self.center) < self.radius + tol
    }

    /// [`Self::blocks_segment`] with the distance classification decided by
    /// kernel `K` against the blocking threshold `radius + tol` (an
    /// algorithmic clearance both kernels honor).
    pub fn blocks_segment_k<K: Kernel>(&self, seg: &Segment, tol: f64) -> bool {
        K::cmp_segment_dist(seg.a, seg.b, self.center, self.radius + tol) == Ordering::Less
    }

    /// Intersection points of the circle with the supporting line of `seg`
    /// restricted to the segment. Returns 0, 1 or 2 points.
    pub fn intersect_segment(&self, seg: &Segment) -> Vec<Point> {
        let d = seg.direction();
        let len_sq = d.norm_sq();
        if len_sq <= f64::EPSILON {
            return if approx_eq(seg.a.distance(self.center), self.radius) {
                vec![seg.a]
            } else {
                vec![]
            };
        }
        let f = seg.a - self.center;
        let a = len_sq;
        let b = 2.0 * f.dot(d);
        let c = f.norm_sq() - self.radius * self.radius;
        let disc = b * b - 4.0 * a * c;
        if disc < 0.0 {
            return vec![];
        }
        let sqrt_disc = disc.sqrt();
        let mut out = Vec::new();
        for t in [(-b - sqrt_disc) / (2.0 * a), (-b + sqrt_disc) / (2.0 * a)] {
            if (-EPS..=1.0 + EPS).contains(&t) {
                let p = seg.point_at(t.clamp(0.0, 1.0));
                if out.iter().all(|q: &Point| !q.approx_eq(p)) {
                    out.push(p);
                }
            }
        }
        out
    }

    /// Intersection points of two circle boundaries (0, 1 or 2 points).
    pub fn intersect_circle(&self, other: &Circle) -> Vec<Point> {
        let d = other.center - self.center;
        let dist = d.norm();
        if dist <= f64::EPSILON {
            return vec![]; // concentric: none or infinitely many; report none
        }
        if dist > self.radius + other.radius + EPS
            || dist < (self.radius - other.radius).abs() - EPS
        {
            return vec![];
        }
        let a =
            (self.radius * self.radius - other.radius * other.radius + dist * dist) / (2.0 * dist);
        let h_sq = self.radius * self.radius - a * a;
        let h = h_sq.max(0.0).sqrt();
        let base = self.center + d.normalized() * a;
        let off = d.normalized().perp_ccw() * h;
        if h <= EPS {
            vec![base]
        } else {
            vec![base + off, base - off]
        }
    }

    /// The two outer common tangent segments between two **equal-radius**
    /// circles, as segments between the tangency points. Returns `None` when
    /// the centers coincide.
    ///
    /// For equal radii the outer tangents are simply the center segment
    /// translated by ±r perpendicular to it, which is all the visibility test
    /// needs.
    pub fn outer_tangent_segments(&self, other: &Circle) -> Option<[Segment; 2]> {
        debug_assert!(
            approx_eq_tol(self.radius, other.radius, 1e-12),
            "outer_tangent_segments assumes equal radii"
        );
        let d = other.center - self.center;
        if d.is_zero() {
            return None;
        }
        let n = d.normalized().perp_ccw() * self.radius;
        Some([
            Segment::new(self.center + n, other.center + n),
            Segment::new(self.center - n, other.center - n),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn containment() {
        let c = Circle::unit(p(0.0, 0.0));
        assert!(c.contains(p(0.5, 0.5)));
        assert!(c.contains(p(1.0, 0.0))); // boundary counts
        assert!(!c.contains(p(1.5, 0.0)));
        assert!(c.contains_strict(p(0.0, 0.0), 1e-6));
        assert!(!c.contains_strict(p(1.0, 0.0), 1e-6));
    }

    #[test]
    fn tangency_and_overlap() {
        let a = Circle::unit(p(0.0, 0.0));
        let b = Circle::unit(p(2.0, 0.0));
        let c = Circle::unit(p(1.5, 0.0));
        let d = Circle::unit(p(5.0, 0.0));
        assert!(a.is_tangent_to(&b));
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(!a.is_tangent_to(&d));
        assert!((a.gap_to(&d) - 3.0).abs() < 1e-12);
        assert!(a.gap_to(&c) < 0.0);
    }

    #[test]
    fn boundary_points() {
        let c = Circle::unit(p(0.0, 0.0));
        assert!(c.boundary_point_towards(p(5.0, 0.0)).approx_eq(p(1.0, 0.0)));
        assert!(c
            .point_at_angle(std::f64::consts::FRAC_PI_2)
            .approx_eq(p(0.0, 1.0)));
        // Degenerate: p == center still yields a boundary point.
        assert!((c.boundary_point_towards(p(0.0, 0.0)).distance(c.center) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distance_to_point() {
        let c = Circle::unit(p(0.0, 0.0));
        assert_eq!(c.distance_to_point(p(0.3, 0.0)), 0.0);
        assert!((c.distance_to_point(p(3.0, 0.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn segment_blocking() {
        let c = Circle::unit(p(0.0, 0.0));
        let through = Segment::new(p(-3.0, 0.0), p(3.0, 0.0));
        let graze = Segment::new(p(-3.0, 1.0), p(3.0, 1.0));
        let miss = Segment::new(p(-3.0, 2.0), p(3.0, 2.0));
        assert!(c.blocks_segment(&through, 1e-9));
        assert!(c.blocks_segment(&graze, 1e-9)); // closed disc: grazing blocks
        assert!(!c.blocks_segment(&miss, 1e-9));
    }

    #[test]
    fn segment_circle_intersection() {
        let c = Circle::unit(p(0.0, 0.0));
        let seg = Segment::new(p(-3.0, 0.0), p(3.0, 0.0));
        let pts = c.intersect_segment(&seg);
        assert_eq!(pts.len(), 2);
        let tangent = Segment::new(p(-3.0, 1.0), p(3.0, 1.0));
        assert_eq!(c.intersect_segment(&tangent).len(), 1);
        let outside = Segment::new(p(-3.0, 5.0), p(3.0, 5.0));
        assert!(c.intersect_segment(&outside).is_empty());
        let short = Segment::new(p(0.0, 0.0), p(0.5, 0.0));
        assert!(c.intersect_segment(&short).is_empty());
    }

    #[test]
    fn circle_circle_intersection() {
        let a = Circle::unit(p(0.0, 0.0));
        let b = Circle::unit(p(1.0, 0.0));
        assert_eq!(a.intersect_circle(&b).len(), 2);
        let t = Circle::unit(p(2.0, 0.0));
        assert_eq!(a.intersect_circle(&t).len(), 1);
        let far = Circle::unit(p(5.0, 0.0));
        assert!(a.intersect_circle(&far).is_empty());
        assert!(a.intersect_circle(&a).is_empty());
    }

    #[test]
    fn outer_tangents_of_equal_circles() {
        let a = Circle::unit(p(0.0, 0.0));
        let b = Circle::unit(p(4.0, 0.0));
        let tangents = a.outer_tangent_segments(&b).unwrap();
        assert!(tangents[0].a.approx_eq(p(0.0, 1.0)) || tangents[0].a.approx_eq(p(0.0, -1.0)));
        assert!((tangents[0].length() - 4.0).abs() < 1e-12);
        assert!(a.outer_tangent_segments(&a).is_none());
    }
}
