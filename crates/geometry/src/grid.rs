//! A uniform spatial grid over point sites.
//!
//! The gathering dynamics are local: visibility between two robots can only
//! be affected by discs near their sight corridor, motion can only be
//! stopped by discs near the swept trajectory, and tangency is a
//! fixed-radius neighbourhood relation. [`UniformGrid`] hashes every site
//! into a square cell so all three queries reduce to *corridor → candidate
//! cells → candidate sites* instead of an all-pairs scan.
//!
//! The cell cover used by the capsule queries is **conservative**: the walk
//! visits, for every cell column the capsule's x-extent touches, the
//! column's y-band swept by the (radius-padded) segment — a superset of the
//! cells that actually intersect the capsule. Queries therefore return a
//! superset of the sites within `radius` of the segment — callers that need
//! the exact set re-filter, and callers that only need soundness (cache
//! invalidation, obstacle pre-filters) use the superset as-is.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::point::Point;
use crate::predicates::approx_eq_tol;

/// Integer cell coordinates (floor of the position divided by the cell
/// edge).
pub type CellCoord = (i64, i64);

/// A minimal multiply-xor hasher for integer cell coordinates. Cell lookups
/// sit on the simulator's hottest path (every cache invalidation and every
/// corridor query hashes a handful of coordinates), where the default
/// SipHash's keyed security is pure overhead.
#[derive(Debug, Default, Clone)]
pub struct CellHasher(u64);

impl Hasher for CellHasher {
    fn finish(&self) -> u64 {
        // Final avalanche (splitmix-style) so sequential coordinates spread
        // over the whole table.
        let mut h = self.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^ (h >> 33)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_i64(&mut self, i: i64) {
        self.0 = (self.0.rotate_left(32) ^ i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// `BuildHasher` for [`CellHasher`].
pub type CellHashBuilder = BuildHasherDefault<CellHasher>;

/// A hash map keyed by grid cells, using the fast cell hasher.
pub type CellMap<V> = HashMap<CellCoord, V, CellHashBuilder>;

/// Number of grid levels: level 0 is the base cell, each coarser level
/// multiplies the cell edge by [`GRID_LEVEL_SCALE`]. Three levels span the
/// scales the simulator meets: contact-radius queries (level 0), mid-range
/// corridors, and the cross-configuration chords of an n = 10⁴ world.
pub const GRID_LEVELS: usize = 3;

/// Edge-length ratio between consecutive grid levels.
pub const GRID_LEVEL_SCALE: i64 = 8;

/// A uniform grid of square cells indexing a set of point sites by
/// position.
///
/// Sites are identified by their index in the original slice; the grid owns
/// a copy of every position so sites can be moved one at a time
/// ([`UniformGrid::move_point`]) without the caller threading positions
/// through every query.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    cell: f64,
    positions: Vec<Point>,
    cells: CellMap<Vec<usize>>,
    /// Site counts per coarse cell, one map per level above the base
    /// (levels `1..GRID_LEVELS`). Corridor walks over long chords consult
    /// these to skip empty regions a whole coarse cell at a time.
    coarse_counts: Vec<CellMap<u32>>,
}

impl UniformGrid {
    /// Builds a grid with the given cell edge length over the sites.
    ///
    /// # Panics
    /// Panics if `cell` is not strictly positive and finite.
    pub fn new(cell: f64, points: &[Point]) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "grid cell edge must be positive and finite (got {cell})"
        );
        let mut grid = UniformGrid {
            cell,
            positions: points.to_vec(),
            cells: CellMap::default(),
            coarse_counts: vec![CellMap::default(); GRID_LEVELS - 1],
        };
        for (i, &p) in points.iter().enumerate() {
            let base = grid.cell_of(p);
            grid.cells.entry(base).or_default().push(i);
            for level in 1..GRID_LEVELS {
                let coarse = grid.cell_of_at(p, level);
                *grid.coarse_counts[level - 1].entry(coarse).or_default() += 1;
            }
        }
        grid
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` when the grid holds no sites.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The cell edge length.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Current position of every site, indexed like the construction slice.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// The cell containing `p`.
    pub fn cell_of(&self, p: Point) -> CellCoord {
        (
            (p.x / self.cell).floor() as i64,
            (p.y / self.cell).floor() as i64,
        )
    }

    /// The cell edge length at the given level (`level 0` is
    /// [`UniformGrid::cell_size`]; each coarser level multiplies it by
    /// [`GRID_LEVEL_SCALE`]).
    ///
    /// # Panics
    /// Panics if `level >= GRID_LEVELS`.
    pub fn cell_size_at(&self, level: usize) -> f64 {
        assert!(level < GRID_LEVELS, "grid level out of range");
        self.cell * GRID_LEVEL_SCALE.pow(level as u32) as f64
    }

    /// The level-`level` cell containing `p`.
    ///
    /// # Panics
    /// Panics if `level >= GRID_LEVELS`.
    pub fn cell_of_at(&self, p: Point, level: usize) -> CellCoord {
        let edge = self.cell_size_at(level);
        ((p.x / edge).floor() as i64, (p.y / edge).floor() as i64)
    }

    /// `true` when at least one site is hashed into the given cell of the
    /// given level.
    ///
    /// # Panics
    /// Panics if `level >= GRID_LEVELS`.
    pub fn occupied_at(&self, level: usize, cell: CellCoord) -> bool {
        assert!(level < GRID_LEVELS, "grid level out of range");
        if level == 0 {
            self.cells.contains_key(&cell)
        } else {
            self.coarse_counts[level - 1].contains_key(&cell)
        }
    }

    /// Moves site `i` to `new`, rehashing it into its new cell. Returns the
    /// previous position.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn move_point(&mut self, i: usize, new: Point) -> Point {
        let old = self.positions[i];
        let from = self.cell_of(old);
        let to = self.cell_of(new);
        self.positions[i] = new;
        if from != to {
            if let Some(bucket) = self.cells.get_mut(&from) {
                if let Some(pos) = bucket.iter().position(|&k| k == i) {
                    bucket.swap_remove(pos);
                }
                if bucket.is_empty() {
                    self.cells.remove(&from);
                }
            }
            self.cells.entry(to).or_default().push(i);
        }
        for level in 1..GRID_LEVELS {
            let from = self.cell_of_at(old, level);
            let to = self.cell_of_at(new, level);
            if from != to {
                let counts = &mut self.coarse_counts[level - 1];
                if let Some(count) = counts.get_mut(&from) {
                    *count -= 1;
                    if *count == 0 {
                        counts.remove(&from);
                    }
                }
                *counts.entry(to).or_default() += 1;
            }
        }
        old
    }

    /// Visits every cell of the conservative cover of the capsule of the
    /// given `radius` around segment `ab`, in deterministic row-major
    /// order. The closure returns `false` to stop early.
    ///
    /// Every cell that intersects the capsule is visited (possibly along
    /// with a few neighbours that do not), so a site within `radius` of the
    /// segment always lies in a visited cell.
    pub fn for_each_cell_near_segment(
        &self,
        a: Point,
        b: Point,
        radius: f64,
        visit: impl FnMut(CellCoord) -> bool,
    ) {
        walk_cells_near_segment(self.cell, a, b, radius, visit);
    }

    /// [`UniformGrid::for_each_cell_near_segment`] at a coarser grid level:
    /// visits the conservative cover of the capsule in level-`level` cells.
    /// The same cover guarantee holds at every level — a point within
    /// `radius` of the segment always lies in a visited level-`level` cell.
    ///
    /// # Panics
    /// Panics if `level >= GRID_LEVELS`.
    pub fn for_each_cell_near_segment_at(
        &self,
        level: usize,
        a: Point,
        b: Point,
        radius: f64,
        visit: impl FnMut(CellCoord) -> bool,
    ) {
        walk_cells_near_segment(self.cell_size_at(level), a, b, radius, visit);
    }

    /// Hierarchical corridor walk: visits every **base** cell of the
    /// conservative capsule cover that lies inside an *occupied* level-1
    /// cell, skipping empty regions [`GRID_LEVEL_SCALE`]² base cells at a
    /// time. Because empty cells hold no sites, the visited cells contain
    /// exactly the same sites as the full [`for_each_cell_near_segment`]
    /// cover — callers gathering *sites* (not registering future
    /// dependencies) get an identical result, output-sensitively in the
    /// occupied length of the corridor. The closure returns `false` to stop
    /// early. Visit order is deterministic (coarse row-major, base
    /// row-major within each coarse cell) but differs from the flat walk.
    pub fn for_each_occupied_cell_near_segment(
        &self,
        a: Point,
        b: Point,
        radius: f64,
        mut visit: impl FnMut(CellCoord) -> bool,
    ) {
        let dx = b.x - a.x;
        let dy = b.y - a.y;
        let mut go = true;
        self.for_each_cell_near_segment_at(1, a, b, radius, |coarse| {
            if !self.occupied_at(1, coarse) {
                return true;
            }
            // Base-cell block of this coarse cell, clipped per column to
            // the same y-band formula as the flat walk — the union over all
            // occupied coarse cells is the flat cover minus cells inside
            // empty coarse cells.
            let bx0 = coarse.0 * GRID_LEVEL_SCALE;
            let by0 = coarse.1 * GRID_LEVEL_SCALE;
            for cx in bx0..bx0 + GRID_LEVEL_SCALE {
                let x0 = cx as f64 * self.cell;
                let x1 = x0 + self.cell;
                let (t0, t1) = if approx_eq_tol(dx, 0.0, f64::EPSILON) {
                    (0.0, 1.0)
                } else {
                    let ta = ((x0 - radius - a.x) / dx).clamp(0.0, 1.0);
                    let tb = ((x1 + radius - a.x) / dx).clamp(0.0, 1.0);
                    (ta.min(tb), ta.max(tb))
                };
                // Columns outside the capsule's x-extent contribute nothing:
                // the clamp collapses their parameter range onto a segment
                // endpoint, whose band may still not reach this column.
                if x1 < a.x.min(b.x) - radius || x0 > a.x.max(b.x) + radius {
                    continue;
                }
                let ya = a.y + t0 * dy;
                let yb = a.y + t1 * dy;
                let cy0 = (((ya.min(yb) - radius) / self.cell).floor() as i64).max(by0);
                let cy1 = (((ya.max(yb) + radius) / self.cell).floor() as i64)
                    .min(by0 + GRID_LEVEL_SCALE - 1);
                for cy in cy0..=cy1 {
                    if !visit((cx, cy)) {
                        go = false;
                        return false;
                    }
                }
            }
            go
        });
    }

    /// Appends (to `out`) the indices of every site in the conservative
    /// cell cover of the capsule of `radius` around segment `ab`, sorted
    /// ascending.
    ///
    /// The result is a **superset** of the sites within `radius` of the
    /// segment; callers needing the exact set must re-filter by distance.
    pub fn candidates_near_segment(&self, a: Point, b: Point, radius: f64, out: &mut Vec<usize>) {
        out.clear();
        self.for_each_cell_near_segment(a, b, radius, |cell| {
            if let Some(bucket) = self.cells.get(&cell) {
                out.extend_from_slice(bucket);
            }
            true
        });
        // Each site lives in exactly one cell, so sorting suffices (no
        // duplicates to strip). Ascending order keeps downstream scans
        // deterministic and identical to an index-order sweep.
        out.sort_unstable();
    }

    /// Appends the indices of every site in the conservative cell cover of
    /// the disc of `radius` around `p`, sorted ascending. Superset
    /// semantics as for [`UniformGrid::candidates_near_segment`].
    pub fn candidates_near_point(&self, p: Point, radius: f64, out: &mut Vec<usize>) {
        self.candidates_near_segment(p, p, radius, out);
    }

    /// The sites currently hashed into `cell` (unordered within the cell;
    /// insertion order, which is deterministic for a deterministic caller).
    /// `None` when the cell is empty.
    pub fn sites_in(&self, cell: CellCoord) -> Option<&[usize]> {
        self.cells.get(&cell).map(Vec::as_slice)
    }
}

/// Column-band walk over a square grid of edge `cell`: for each cell column
/// intersecting the capsule's x-extent, visit the cells of that column's
/// y-band. The band is the y-range the segment sweeps over the
/// (radius-widened) column, padded by the radius — a superset of the
/// capsule's cells in that column, without scanning the full bounding box
/// of a diagonal segment. Row-major, early-exit on `false`.
fn walk_cells_near_segment(
    cell: f64,
    a: Point,
    b: Point,
    radius: f64,
    mut visit: impl FnMut(CellCoord) -> bool,
) {
    let (min_x, max_x) = (a.x.min(b.x) - radius, a.x.max(b.x) + radius);
    let cx0 = (min_x / cell).floor() as i64;
    let cx1 = (max_x / cell).floor() as i64;
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    for cx in cx0..=cx1 {
        let x0 = cx as f64 * cell;
        let x1 = x0 + cell;
        // Parameter range of the segment whose x lies within `radius`
        // of this column (the whole segment when it is near-vertical).
        let (t0, t1) = if approx_eq_tol(dx, 0.0, f64::EPSILON) {
            (0.0, 1.0)
        } else {
            let ta = ((x0 - radius - a.x) / dx).clamp(0.0, 1.0);
            let tb = ((x1 + radius - a.x) / dx).clamp(0.0, 1.0);
            (ta.min(tb), ta.max(tb))
        };
        let ya = a.y + t0 * dy;
        let yb = a.y + t1 * dy;
        let cy0 = ((ya.min(yb) - radius) / cell).floor() as i64;
        let cy1 = ((ya.max(yb) + radius) / cell).floor() as i64;
        for cy in cy0..=cy1 {
            if !visit((cx, cy)) {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::Segment;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn brute_near_segment(points: &[Point], a: Point, b: Point, radius: f64) -> Vec<usize> {
        let seg = Segment::new(a, b);
        (0..points.len())
            .filter(|&i| seg.distance_to(points[i]) <= radius)
            .collect()
    }

    #[test]
    fn candidates_are_a_sorted_superset_of_the_capsule() {
        let pts: Vec<Point> = (0..40)
            .map(|i| p((i % 8) as f64 * 3.0, (i / 8) as f64 * 3.0))
            .collect();
        let grid = UniformGrid::new(4.0, &pts);
        let (a, b) = (p(1.0, 1.0), p(19.0, 9.0));
        let mut got = Vec::new();
        grid.candidates_near_segment(a, b, 3.0, &mut got);
        assert!(got.windows(2).all(|w| w[0] < w[1]), "sorted, no duplicates");
        for i in brute_near_segment(&pts, a, b, 3.0) {
            assert!(got.contains(&i), "site {i} within the capsule was missed");
        }
    }

    #[test]
    fn point_query_is_a_superset_of_the_disc() {
        let pts = vec![p(0.0, 0.0), p(2.5, 0.0), p(10.0, 10.0), p(-3.0, 1.0)];
        let grid = UniformGrid::new(4.0, &pts);
        let mut got = Vec::new();
        grid.candidates_near_point(p(0.0, 0.0), 3.5, &mut got);
        assert!(got.contains(&0));
        assert!(got.contains(&1));
        assert!(got.contains(&3));
    }

    #[test]
    fn move_point_rehashes_and_returns_the_old_position() {
        let pts = vec![p(0.0, 0.0), p(20.0, 20.0)];
        let mut grid = UniformGrid::new(4.0, &pts);
        let old = grid.move_point(1, p(1.0, 1.0));
        assert_eq!(old, p(20.0, 20.0));
        assert_eq!(grid.positions()[1], p(1.0, 1.0));
        let mut near_origin = Vec::new();
        grid.candidates_near_point(p(0.0, 0.0), 2.0, &mut near_origin);
        assert_eq!(near_origin, vec![0, 1]);
        let mut near_old = Vec::new();
        grid.candidates_near_point(p(20.0, 20.0), 2.0, &mut near_old);
        assert!(near_old.is_empty());
    }

    #[test]
    fn moves_that_stay_in_one_cell_keep_queries_correct() {
        let pts = vec![p(0.5, 0.5)];
        let mut grid = UniformGrid::new(4.0, &pts);
        grid.move_point(0, p(1.5, 0.5));
        let mut got = Vec::new();
        grid.candidates_near_point(p(1.5, 0.5), 1.0, &mut got);
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn negative_coordinates_hash_consistently() {
        let pts = vec![p(-0.1, -0.1), p(-7.9, -7.9)];
        let grid = UniformGrid::new(4.0, &pts);
        assert_eq!(grid.cell_of(p(-0.1, -0.1)), (-1, -1));
        let mut got = Vec::new();
        grid.candidates_near_point(p(-0.1, -0.1), 0.5, &mut got);
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn cell_walk_early_exit_stops() {
        let pts = vec![p(0.0, 0.0)];
        let grid = UniformGrid::new(1.0, &pts);
        let mut visited = 0;
        grid.for_each_cell_near_segment(p(0.0, 0.0), p(10.0, 0.0), 1.0, |_| {
            visited += 1;
            visited < 3
        });
        assert_eq!(visited, 3, "the walk must stop when the closure says so");
    }

    #[test]
    #[should_panic]
    fn zero_cell_edge_is_rejected() {
        let _ = UniformGrid::new(0.0, &[]);
    }

    #[test]
    fn coarse_levels_track_occupancy_across_moves() {
        let pts = vec![p(0.5, 0.5), p(200.0, 200.0)];
        let mut grid = UniformGrid::new(1.0, &pts);
        for level in 0..GRID_LEVELS {
            assert!(grid.occupied_at(level, grid.cell_of_at(p(0.5, 0.5), level)));
            assert!(grid.occupied_at(level, grid.cell_of_at(p(200.0, 200.0), level)));
        }
        assert_eq!(grid.cell_size_at(1), 8.0);
        assert_eq!(grid.cell_size_at(2), 64.0);
        // Moving the far site empties its coarse cells and fills new ones.
        grid.move_point(1, p(-300.0, -300.0));
        for level in 1..GRID_LEVELS {
            assert!(
                !grid.occupied_at(level, grid.cell_of_at(p(200.0, 200.0), level)),
                "vacated level-{level} cell must drop to empty"
            );
            assert!(grid.occupied_at(level, grid.cell_of_at(p(-300.0, -300.0), level)));
        }
        // Both sites sharing one coarse cell: leaving decrements, not drops.
        grid.move_point(1, p(1.5, 1.5));
        grid.move_point(1, p(100.0, 0.0));
        assert!(grid.occupied_at(1, grid.cell_of_at(p(0.5, 0.5), 1)));
    }

    #[test]
    fn occupied_cell_walk_finds_every_site_the_flat_walk_finds() {
        // A sparse field with a long empty middle: the pruned walk must
        // still surface every site near the segment, at every geometry.
        let mut pts: Vec<Point> = (0..10).map(|i| p(i as f64 * 2.0, (i % 3) as f64)).collect();
        pts.push(p(400.0, 3.0));
        pts.push(p(401.0, -2.0));
        pts.push(p(-50.0, -50.0));
        let grid = UniformGrid::new(4.0, &pts);
        for (a, b, radius) in [
            (p(0.0, 0.0), p(402.0, 0.0), 3.0),
            (p(-60.0, -60.0), p(5.0, 5.0), 2.0),
            (p(400.0, 0.0), p(400.0, 10.0), 5.0),
            (p(1.0, 1.0), p(1.0, 1.0), 4.0),
        ] {
            let mut flat: Vec<usize> = Vec::new();
            grid.for_each_cell_near_segment(a, b, radius, |cell| {
                if let Some(sites) = grid.sites_in(cell) {
                    flat.extend_from_slice(sites);
                }
                true
            });
            flat.sort_unstable();
            let mut pruned: Vec<usize> = Vec::new();
            grid.for_each_occupied_cell_near_segment(a, b, radius, |cell| {
                if let Some(sites) = grid.sites_in(cell) {
                    pruned.extend_from_slice(sites);
                }
                true
            });
            pruned.sort_unstable();
            assert_eq!(
                flat, pruned,
                "pruned walk lost sites for segment {a:?}-{b:?} r={radius}"
            );
        }
    }

    #[test]
    fn occupied_cell_walk_early_exit_stops() {
        let pts: Vec<Point> = (0..20).map(|i| p(i as f64, 0.0)).collect();
        let grid = UniformGrid::new(1.0, &pts);
        let mut visited = 0;
        grid.for_each_occupied_cell_near_segment(p(0.0, 0.0), p(19.0, 0.0), 1.0, |_| {
            visited += 1;
            visited < 3
        });
        assert_eq!(visited, 3, "the pruned walk must stop when asked to");
    }

    #[test]
    fn coarse_cover_contains_every_point_near_the_segment() {
        let grid = UniformGrid::new(4.0, &[]);
        let (a, b, radius) = (p(3.0, -2.0), p(77.0, 31.0), 6.0);
        for level in 0..GRID_LEVELS {
            let mut cover = Vec::new();
            grid.for_each_cell_near_segment_at(level, a, b, radius, |cell| {
                cover.push(cell);
                true
            });
            let seg = Segment::new(a, b);
            for step in 0..200 {
                let t = step as f64 / 199.0;
                let on = seg.point_at(t);
                for (ox, oy) in [(radius, 0.0), (-radius, 0.0), (0.0, radius), (0.0, -radius)] {
                    let q = p(on.x + ox, on.y + oy);
                    assert!(
                        cover.contains(&grid.cell_of_at(q, level)),
                        "level-{level} cover misses {q:?}"
                    );
                }
            }
        }
    }
}
