//! Straight segments in the plane.

use crate::line::Line;
use crate::point::{Point, Vec2};
use crate::predicates::{approx_eq, clamp, EPS};

/// A straight segment between two endpoints.
///
/// ```
/// use fatrobots_geometry::{Point, Segment};
/// let s = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 0.0));
/// assert_eq!(s.length(), 4.0);
/// assert!((s.distance_to(Point::new(2.0, 1.5)) - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates the segment between `a` and `b` (degenerate segments allowed).
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// Direction vector from `a` to `b` (not normalised).
    #[inline]
    pub fn direction(&self) -> Vec2 {
        self.b - self.a
    }

    /// The supporting infinite line, or `None` for a degenerate segment.
    pub fn supporting_line(&self) -> Option<Line> {
        if self.length() <= f64::EPSILON {
            None
        } else {
            Some(Line::through(self.a, self.b))
        }
    }

    /// Point at parameter `t ∈ [0, 1]` along the segment.
    #[inline]
    pub fn point_at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Closest point of the segment to `p`.
    pub fn closest_point_to(&self, p: Point) -> Point {
        let d = self.direction();
        let len_sq = d.norm_sq();
        if len_sq <= f64::EPSILON {
            return self.a;
        }
        let t = clamp((p - self.a).dot(d) / len_sq, 0.0, 1.0);
        self.point_at(t)
    }

    /// Euclidean distance from `p` to the segment.
    pub fn distance_to(&self, p: Point) -> f64 {
        self.closest_point_to(p).distance(p)
    }

    /// Squared distance from `p` to the segment: the same closest-point
    /// construction as [`Self::distance_to`] minus the square root. Because
    /// `sqrt` is correctly rounded and monotone, `distance_sq_to(p) <= r*r`
    /// decides `distance_to(p) <= r` **exactly** whenever `r*r` is exact —
    /// which is how the hot paths (obstacle gathering, cache invalidation)
    /// use it.
    pub fn distance_sq_to(&self, p: Point) -> f64 {
        (p - self.closest_point_to(p)).norm_sq()
    }

    /// Minimum distance between two segments.
    pub fn distance_to_segment(&self, other: &Segment) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        let d1 = self.distance_to(other.a).min(self.distance_to(other.b));
        let d2 = other.distance_to(self.a).min(other.distance_to(self.b));
        d1.min(d2)
    }

    /// `true` when the two segments share at least one point
    /// (proper crossing, touching endpoints or collinear overlap).
    pub fn intersects(&self, other: &Segment) -> bool {
        self.intersection(other).is_some() || self.collinear_overlap(other)
    }

    /// Intersection point of two non-parallel segments, if it lies on both.
    pub fn intersection(&self, other: &Segment) -> Option<Point> {
        let d1 = self.direction();
        let d2 = other.direction();
        let denom = d1.cross(d2);
        if approx_eq(denom, 0.0) {
            return None;
        }
        let t = (other.a - self.a).cross(d2) / denom;
        let u = (other.a - self.a).cross(d1) / denom;
        if (-EPS..=1.0 + EPS).contains(&t) && (-EPS..=1.0 + EPS).contains(&u) {
            Some(self.point_at(clamp(t, 0.0, 1.0)))
        } else {
            None
        }
    }

    fn collinear_overlap(&self, other: &Segment) -> bool {
        let d1 = self.direction();
        let d2 = other.direction();
        if d1.cross(d2).abs() > EPS || d1.cross(other.a - self.a).abs() > EPS {
            return false;
        }
        // Project onto the dominant axis of d1.
        let project = |p: Point| {
            if d1.x.abs() >= d1.y.abs() {
                p.x
            } else {
                p.y
            }
        };
        let (s0, s1) = {
            let (x, y) = (project(self.a), project(self.b));
            (x.min(y), x.max(y))
        };
        let (o0, o1) = {
            let (x, y) = (project(other.a), project(other.b));
            (x.min(y), x.max(y))
        };
        s0 <= o1 + EPS && o0 <= s1 + EPS
    }

    /// `true` when `p` lies on the segment within tolerance `tol`.
    pub fn contains_tol(&self, p: Point, tol: f64) -> bool {
        self.distance_to(p) <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn length_midpoint_direction() {
        let s = Segment::new(p(0.0, 0.0), p(3.0, 4.0));
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.midpoint(), p(1.5, 2.0));
        assert_eq!(s.direction(), Vec2::new(3.0, 4.0));
    }

    #[test]
    fn closest_point_clamps_to_endpoints() {
        let s = Segment::new(p(0.0, 0.0), p(4.0, 0.0));
        assert_eq!(s.closest_point_to(p(-2.0, 1.0)), p(0.0, 0.0));
        assert_eq!(s.closest_point_to(p(6.0, 1.0)), p(4.0, 0.0));
        assert_eq!(s.closest_point_to(p(2.0, 1.0)), p(2.0, 0.0));
    }

    #[test]
    fn distance_to_point() {
        let s = Segment::new(p(0.0, 0.0), p(4.0, 0.0));
        assert!((s.distance_to(p(2.0, 3.0)) - 3.0).abs() < 1e-12);
        assert!((s.distance_to(p(-3.0, 4.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn crossing_segments_intersect() {
        let s1 = Segment::new(p(0.0, 0.0), p(2.0, 2.0));
        let s2 = Segment::new(p(0.0, 2.0), p(2.0, 0.0));
        let x = s1.intersection(&s2).unwrap();
        assert!(x.approx_eq(p(1.0, 1.0)));
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn disjoint_segments_do_not_intersect() {
        let s1 = Segment::new(p(0.0, 0.0), p(1.0, 0.0));
        let s2 = Segment::new(p(0.0, 1.0), p(1.0, 1.0));
        assert!(!s1.intersects(&s2));
        assert!((s1.distance_to_segment(&s2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn touching_at_endpoint_counts_as_intersection() {
        let s1 = Segment::new(p(0.0, 0.0), p(1.0, 0.0));
        let s2 = Segment::new(p(1.0, 0.0), p(2.0, 5.0));
        assert!(s1.intersects(&s2));
        assert_eq!(s1.distance_to_segment(&s2), 0.0);
    }

    #[test]
    fn collinear_overlapping_segments_intersect() {
        let s1 = Segment::new(p(0.0, 0.0), p(2.0, 0.0));
        let s2 = Segment::new(p(1.0, 0.0), p(5.0, 0.0));
        assert!(s1.intersects(&s2));
        let s3 = Segment::new(p(3.0, 0.0), p(5.0, 0.0));
        assert!(!s1.intersects(&s3));
    }

    #[test]
    fn degenerate_segment_behaves_like_point() {
        let s = Segment::new(p(1.0, 1.0), p(1.0, 1.0));
        assert_eq!(s.length(), 0.0);
        assert!((s.distance_to(p(4.0, 5.0)) - 5.0).abs() < 1e-12);
        assert!(s.supporting_line().is_none());
    }

    #[test]
    fn contains_tolerance() {
        let s = Segment::new(p(0.0, 0.0), p(4.0, 0.0));
        assert!(s.contains_tol(p(2.0, 0.05), 0.1));
        assert!(!s.contains_tol(p(2.0, 0.5), 0.1));
    }
}
