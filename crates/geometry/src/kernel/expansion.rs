//! Floating-point expansion arithmetic (Shewchuk, 1997).
//!
//! An [`Expansion`] is a sum of f64 components, ordered by increasing
//! magnitude, that are *non-overlapping*: each component's least
//! significant set bit is above the most significant bit of the component
//! below it. The mathematical value is the exact (unrounded) sum of the
//! components, so signs of polynomial expressions in f64 inputs can be
//! decided exactly — every f64 product of two doubles and every sum of two
//! doubles is representable as a two-component expansion, and expansions
//! are closed under addition and multiplication via the error-free
//! transformations below.
//!
//! This is the "vendored exact arithmetic from f64 mantissa decomposition"
//! the kernel's [`ExactKernel`](super::ExactKernel) runs on. Components are
//! kept in a `Vec`: the expansion path only runs when the f64 filter fails
//! (near-degenerate inputs), so the allocation sits far off the hot path.

use std::cmp::Ordering;

/// Knuth's TwoSum: `a + b = s + err` exactly, `s = fl(a + b)`.
#[inline]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bvirt = s - a;
    let avirt = s - bvirt;
    let bround = b - bvirt;
    let around = a - avirt;
    (s, around + bround)
}

/// TwoDiff: `a - b = s + err` exactly, `s = fl(a - b)`.
#[inline]
fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let s = a - b;
    let bvirt = a - s;
    let avirt = s + bvirt;
    let bround = bvirt - b;
    let around = a - avirt;
    (s, around + bround)
}

/// Dekker's split constant: 2^27 + 1 for the 53-bit f64 mantissa.
const SPLITTER: f64 = 134_217_729.0;

/// Split `a` into `hi + lo` with both halves fitting in 26/27 mantissa
/// bits, so products of halves are exact.
#[inline]
fn split(a: f64) -> (f64, f64) {
    let c = SPLITTER * a;
    let abig = c - a;
    let hi = c - abig;
    (hi, a - hi)
}

/// TwoProduct: `a * b = p + err` exactly, `p = fl(a * b)`.
#[inline]
fn two_product(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let (ahi, alo) = split(a);
    let (bhi, blo) = split(b);
    let err1 = p - ahi * bhi;
    let err2 = err1 - alo * bhi;
    let err3 = err2 - ahi * blo;
    (p, alo * blo - err3)
}

/// An exact multi-component value; components in increasing-magnitude
/// order, zero components elided (the empty expansion is zero).
#[derive(Debug, Clone, PartialEq)]
pub struct Expansion(Vec<f64>);

impl From<f64> for Expansion {
    fn from(v: f64) -> Self {
        debug_assert!(v.is_finite());
        if v == 0.0 {
            Expansion(Vec::new())
        } else {
            Expansion(vec![v])
        }
    }
}

impl Expansion {
    /// The exact difference `a - b` as a (≤2)-component expansion.
    pub fn from_diff(a: f64, b: f64) -> Self {
        let (s, e) = two_diff(a, b);
        Self::from_two(e, s)
    }

    /// The exact sum `a + b`.
    pub fn from_sum(a: f64, b: f64) -> Self {
        let (s, e) = two_sum(a, b);
        Self::from_two(e, s)
    }

    /// The exact product `a * b`.
    pub fn from_product(a: f64, b: f64) -> Self {
        let (p, e) = two_product(a, b);
        Self::from_two(e, p)
    }

    fn from_two(lo: f64, hi: f64) -> Self {
        let mut c = Vec::with_capacity(2);
        if lo != 0.0 {
            c.push(lo);
        }
        if hi != 0.0 {
            c.push(hi);
        }
        Expansion(c)
    }

    /// Sign of the exact value: the sign of the largest-magnitude (last)
    /// component — non-overlapping components cannot cancel it.
    pub fn sign(&self) -> Ordering {
        match self.0.last() {
            None => Ordering::Equal,
            Some(&c) if c > 0.0 => Ordering::Greater,
            _ => Ordering::Less,
        }
    }

    /// f64 approximation of the exact value (correct to one ulp).
    pub fn approx(&self) -> f64 {
        self.0.iter().sum()
    }

    /// Number of stored components (diagnostics).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the exact value is zero.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Grow-Expansion-Zeroelim: add a single f64 into the expansion.
    fn grow(&self, b: f64) -> Self {
        let mut h = Vec::with_capacity(self.0.len() + 1);
        let mut q = b;
        for &e in &self.0 {
            let (qnew, err) = two_sum(q, e);
            q = qnew;
            if err != 0.0 {
                h.push(err);
            }
        }
        if q != 0.0 {
            h.push(q);
        }
        Expansion(h)
    }

    /// Exact sum of two expansions (repeated grow; components stay
    /// non-overlapping and magnitude-ordered).
    pub fn add(&self, other: &Self) -> Self {
        let mut acc = self.clone();
        for &e in &other.0 {
            acc = acc.grow(e);
        }
        acc
    }

    /// Exact difference `self - other`.
    pub fn sub(&self, other: &Self) -> Self {
        let mut acc = self.clone();
        for &e in &other.0 {
            acc = acc.grow(-e);
        }
        acc
    }

    /// Scale-Expansion-Zeroelim: exact product with a single f64.
    fn scale(&self, b: f64) -> Self {
        if self.0.is_empty() || b == 0.0 {
            return Expansion(Vec::new());
        }
        let mut h = Vec::with_capacity(2 * self.0.len());
        let (mut q, err) = two_product(self.0[0], b);
        if err != 0.0 {
            h.push(err);
        }
        for &e in &self.0[1..] {
            let (p, perr) = two_product(e, b);
            let (sum, serr) = two_sum(q, perr);
            if serr != 0.0 {
                h.push(serr);
            }
            let (qnew, qerr) = two_sum(p, sum);
            q = qnew;
            if qerr != 0.0 {
                h.push(qerr);
            }
        }
        if q != 0.0 {
            h.push(q);
        }
        Expansion(h)
    }

    /// Exact product of two expansions: distribute `other`'s components
    /// over scaled copies of `self`. Component counts grow multiplicatively
    /// — acceptable, this only runs behind the f64 filters.
    pub fn mul(&self, other: &Self) -> Self {
        let mut acc = Expansion(Vec::new());
        for &e in &other.0 {
            acc = acc.add(&self.scale(e));
        }
        acc
    }

    /// Exact negation.
    pub fn neg(&self) -> Self {
        Expansion(self.0.iter().map(|&c| -c).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_recovers_the_rounding_error() {
        let (s, e) = two_sum(1.0, 1e-30);
        assert_eq!(s, 1.0);
        assert_eq!(e, 1e-30);
    }

    #[test]
    fn two_product_is_exact() {
        // (1 + 2^-52) * (1 + 2^-52) = 1 + 2^-51 + 2^-104: the f64 product
        // drops the 2^-104 tail, the error term recovers it.
        let a = 1.0 + f64::EPSILON / 2.0 * 2.0;
        let (p, e) = two_product(a, a);
        assert_eq!(p + e, p); // non-overlap: e is far below p's ulp...
        assert_ne!(e, 0.0); // ...but not zero: the product was inexact.
    }

    #[test]
    fn diff_of_equal_values_is_zero() {
        let d = Expansion::from_diff(0.1, 0.1);
        assert_eq!(d.sign(), Ordering::Equal);
        assert!(d.is_empty());
    }

    #[test]
    fn sign_resolves_catastrophic_cancellation() {
        // (a + tiny) - a computed exactly is `tiny`, even when the f64
        // subtraction would round it away entirely at this magnitude.
        let a = 1e16;
        let tiny = 1.0 - f64::EPSILON; // below 1 ulp of 1e16 (which is 2.0)
        let lhs = Expansion::from_sum(a, tiny);
        let d = lhs.sub(&Expansion::from(a));
        assert_eq!(d.sign(), Ordering::Greater);
        assert_eq!(d.approx(), tiny);
    }

    #[test]
    fn mul_matches_integer_arithmetic_on_a_dyadic_grid() {
        // Coordinates k·2^-20 with |k| < 2^20 make every product and
        // difference exactly representable in i128 — cross-check the
        // expansion arithmetic against integers.
        let scale = (1u64 << 20) as f64;
        let vals = [-873_541i64, -1, 0, 7, 524_287, 1_000_003];
        for &ka in &vals {
            for &kb in &vals {
                let (a, b) = (ka as f64 / scale, kb as f64 / scale);
                let prod = Expansion::from_product(a, b);
                let sum = Expansion::from_sum(a, b).mul(&Expansion::from_diff(a, b));
                // a·b sign vs integer sign.
                assert_eq!(
                    prod.sign(),
                    (ka as i128 * kb as i128).cmp(&0),
                    "product sign {ka} {kb}"
                );
                // (a+b)(a−b) = a² − b² sign vs integer sign.
                let exact = ka as i128 * ka as i128 - kb as i128 * kb as i128;
                assert_eq!(sum.sign(), exact.cmp(&0), "a²−b² sign {ka} {kb}");
            }
        }
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Expansion::from_product(0.1, 0.3);
        let b = Expansion::from_product(0.2, 0.7);
        let s = a.add(&b);
        assert_eq!(s.sub(&b).sub(&a).sign(), Ordering::Equal);
        assert_eq!(s.sub(&a).sub(&b).sign(), Ordering::Equal);
        assert_eq!(a.neg().add(&a).sign(), Ordering::Equal);
    }
}
