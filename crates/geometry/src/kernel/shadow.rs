//! The shadow kernel: run [`EpsKernel`] and [`ExactKernel`] side by side,
//! tally their disagreements per predicate site, and *return the ε
//! verdict* — so a decision computed under [`ShadowKernel`] is bitwise the
//! decision the production engine makes, with a disagreement log on the
//! side. The sim crate's `ShadowExecutor` drives this per Compute event.
//!
//! The tally lives in a thread-local ([`reset`]/[`take`]): a shadow replay
//! owns its thread (one run per worker in the sweep pool), so no shared
//! state or locks are needed and parallel shadow sweeps stay independent.

use std::cell::RefCell;
use std::cmp::Ordering;

use super::{EpsKernel, ExactKernel, Kernel};
use crate::point::Point;
use crate::predicates::Orientation;
use crate::segment::Segment;

/// Where in the pipeline a kernel predicate was asked — the unit of
/// divergence attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredicateSite {
    /// Policy-width orientation of a triple (hull chains, side tests).
    Orientation,
    /// Orientation against an explicit tolerance (collinearity band,
    /// hull containment).
    OrientationTol,
    /// Point–point distance vs radius (touch tests, visibility range).
    CmpDist,
    /// Point–segment distance vs radius, sqrt form (hull boundary,
    /// circle blocking).
    CmpSegmentDist,
    /// Point–segment squared distance vs squared radius (visibility
    /// witness corridor).
    CmpSegmentDistSq,
    /// Point–line distance vs radius (chord band, tangent side tests).
    CmpLineDist,
    /// Segment–segment intersection classification (ray exits,
    /// boundary crossings).
    SegmentIntersection,
}

impl PredicateSite {
    /// All sites, in tally-array order.
    pub const ALL: [PredicateSite; 7] = [
        PredicateSite::Orientation,
        PredicateSite::OrientationTol,
        PredicateSite::CmpDist,
        PredicateSite::CmpSegmentDist,
        PredicateSite::CmpSegmentDistSq,
        PredicateSite::CmpLineDist,
        PredicateSite::SegmentIntersection,
    ];

    /// Stable short name (report keys).
    pub fn name(self) -> &'static str {
        match self {
            PredicateSite::Orientation => "orientation",
            PredicateSite::OrientationTol => "orientation_tol",
            PredicateSite::CmpDist => "cmp_dist",
            PredicateSite::CmpSegmentDist => "cmp_segment_dist",
            PredicateSite::CmpSegmentDistSq => "cmp_segment_dist_sq",
            PredicateSite::CmpLineDist => "cmp_line_dist",
            PredicateSite::SegmentIntersection => "segment_intersection",
        }
    }

    fn idx(self) -> usize {
        match self {
            PredicateSite::Orientation => 0,
            PredicateSite::OrientationTol => 1,
            PredicateSite::CmpDist => 2,
            PredicateSite::CmpSegmentDist => 3,
            PredicateSite::CmpSegmentDistSq => 4,
            PredicateSite::CmpLineDist => 5,
            PredicateSite::SegmentIntersection => 6,
        }
    }
}

/// Per-site call and disagreement tallies for one shadow evaluation span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShadowLog {
    calls: [u64; 7],
    disagreements: [u64; 7],
}

impl ShadowLog {
    /// Total predicate calls across all sites.
    pub fn calls(&self) -> u64 {
        self.calls.iter().sum()
    }

    /// Total ε-vs-exact disagreements across all sites.
    pub fn disagreements(&self) -> u64 {
        self.disagreements.iter().sum()
    }

    /// Calls observed at one site.
    pub fn calls_at(&self, site: PredicateSite) -> u64 {
        self.calls[site.idx()]
    }

    /// Disagreements observed at one site.
    pub fn disagreements_at(&self, site: PredicateSite) -> u64 {
        self.disagreements[site.idx()]
    }

    /// The site with the most disagreements, if any disagreed.
    pub fn dominant_site(&self) -> Option<PredicateSite> {
        PredicateSite::ALL
            .into_iter()
            .max_by_key(|s| self.disagreements[s.idx()])
            .filter(|s| self.disagreements[s.idx()] > 0)
    }

    /// Merge another log into this one (aggregation across events/runs).
    pub fn merge(&mut self, other: &ShadowLog) {
        for i in 0..7 {
            self.calls[i] += other.calls[i];
            self.disagreements[i] += other.disagreements[i];
        }
    }

    fn record(&mut self, site: PredicateSite, agreed: bool) {
        self.calls[site.idx()] += 1;
        if !agreed {
            self.disagreements[site.idx()] += 1;
        }
    }
}

thread_local! {
    static LOG: RefCell<ShadowLog> = const { RefCell::new(ShadowLog {
        calls: [0; 7],
        disagreements: [0; 7],
    }) };
}

/// Clear this thread's shadow tally (call before an evaluation span).
pub fn reset() {
    LOG.with(|l| *l.borrow_mut() = ShadowLog::default());
}

/// Take this thread's shadow tally, clearing it.
pub fn take() -> ShadowLog {
    LOG.with(|l| std::mem::take(&mut *l.borrow_mut()))
}

fn record(site: PredicateSite, agreed: bool) {
    LOG.with(|l| l.borrow_mut().record(site, agreed));
}

/// Evaluates every predicate under both [`EpsKernel`] and [`ExactKernel`],
/// records agreement per [`PredicateSite`] in the thread-local log, and
/// returns the ε verdict — shadow-driven decisions equal production
/// decisions by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShadowKernel;

impl Kernel for ShadowKernel {
    const NAME: &'static str = "shadow";

    fn orientation(a: Point, b: Point, c: Point) -> Orientation {
        let eps = EpsKernel::orientation(a, b, c);
        let exact = ExactKernel::orientation(a, b, c);
        record(PredicateSite::Orientation, eps == exact);
        eps
    }

    fn orientation_tol(a: Point, b: Point, c: Point, tol: f64) -> Orientation {
        let eps = EpsKernel::orientation_tol(a, b, c, tol);
        let exact = ExactKernel::orientation_tol(a, b, c, tol);
        record(PredicateSite::OrientationTol, eps == exact);
        eps
    }

    fn cmp_dist(p: Point, q: Point, r: f64) -> Ordering {
        let eps = EpsKernel::cmp_dist(p, q, r);
        let exact = ExactKernel::cmp_dist(p, q, r);
        record(PredicateSite::CmpDist, eps == exact);
        eps
    }

    fn cmp_segment_dist(a: Point, b: Point, p: Point, r: f64) -> Ordering {
        let eps = EpsKernel::cmp_segment_dist(a, b, p, r);
        let exact = ExactKernel::cmp_segment_dist(a, b, p, r);
        record(PredicateSite::CmpSegmentDist, eps == exact);
        eps
    }

    fn cmp_segment_dist_sq(a: Point, b: Point, p: Point, r_sq: f64) -> Ordering {
        let eps = EpsKernel::cmp_segment_dist_sq(a, b, p, r_sq);
        let exact = ExactKernel::cmp_segment_dist_sq(a, b, p, r_sq);
        record(PredicateSite::CmpSegmentDistSq, eps == exact);
        eps
    }

    fn cmp_line_dist(a: Point, b: Point, p: Point, r: f64) -> Ordering {
        let eps = EpsKernel::cmp_line_dist(a, b, p, r);
        let exact = ExactKernel::cmp_line_dist(a, b, p, r);
        record(PredicateSite::CmpLineDist, eps == exact);
        eps
    }

    fn segment_intersection(s1: &Segment, s2: &Segment) -> Option<Point> {
        let eps = EpsKernel::segment_intersection(s1, s2);
        let exact = ExactKernel::segment_intersection(s1, s2);
        // Classification agreement only: when both kernels say "crosses",
        // the constructed point is the same f64 construction by design.
        record(
            PredicateSite::SegmentIntersection,
            eps.is_some() == exact.is_some(),
        );
        eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn shadow_returns_the_eps_verdict_and_tallies() {
        reset();
        let (a, b) = (p(0.0, 0.0), p(1.0, 0.0));
        // Sub-ε offset: ε says Collinear, exact says CCW → disagreement.
        let near = p(0.5, 1e-12);
        assert_eq!(
            ShadowKernel::orientation(a, b, near),
            EpsKernel::orientation(a, b, near)
        );
        // Clear CCW: agreement.
        let far = p(0.5, 1.0);
        assert_eq!(
            ShadowKernel::orientation(a, b, far),
            Orientation::CounterClockwise
        );
        let log = take();
        assert_eq!(log.calls_at(PredicateSite::Orientation), 2);
        assert_eq!(log.disagreements_at(PredicateSite::Orientation), 1);
        assert_eq!(log.dominant_site(), Some(PredicateSite::Orientation));
        // take() cleared the tally.
        assert_eq!(take(), ShadowLog::default());
    }

    #[test]
    fn merge_accumulates_sites_independently() {
        reset();
        ShadowKernel::cmp_dist(p(0.0, 0.0), p(3.0, 4.0), 5.0);
        let mut total = take();
        reset();
        ShadowKernel::cmp_line_dist(p(0.0, 0.0), p(1.0, 0.0), p(0.5, 0.2), 0.1);
        total.merge(&take());
        assert_eq!(total.calls(), 2);
        assert_eq!(total.calls_at(PredicateSite::CmpDist), 1);
        assert_eq!(total.calls_at(PredicateSite::CmpLineDist), 1);
    }
}
