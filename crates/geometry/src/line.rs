//! Infinite lines in the plane.

use std::cmp::Ordering;

use crate::kernel::Kernel;
use crate::point::{Point, Vec2};
use crate::predicates::{approx_eq_tol, EPS};

/// An infinite line through two distinct points.
///
/// ```
/// use fatrobots_geometry::{Line, Point};
/// let l = Line::through(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
/// assert!((l.distance_to(Point::new(1.0, 3.0)) - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Line {
    a: Point,
    b: Point,
}

impl Line {
    /// Line through the two points `a` and `b`.
    ///
    /// # Panics
    /// Panics in debug builds when `a` and `b` coincide (no direction).
    pub fn through(a: Point, b: Point) -> Self {
        debug_assert!(
            a.distance(b) > f64::EPSILON,
            "a line needs two distinct points"
        );
        Line { a, b }
    }

    /// Line through `p` with direction `dir`.
    pub fn from_point_dir(p: Point, dir: Vec2) -> Self {
        Line::through(p, p + dir)
    }

    /// One anchor point of the line.
    pub fn anchor(&self) -> Point {
        self.a
    }

    /// Direction vector (not normalised).
    pub fn direction(&self) -> Vec2 {
        self.b - self.a
    }

    /// Perpendicular (unsigned) distance from point `p` to the line.
    pub fn distance_to(&self, p: Point) -> f64 {
        self.signed_distance_to(p).abs()
    }

    /// Signed perpendicular distance: positive when `p` lies to the left of
    /// the directed line `a → b`.
    pub fn signed_distance_to(&self, p: Point) -> f64 {
        let d = self.direction();
        d.cross(p - self.a) / d.norm()
    }

    /// Orthogonal projection of `p` onto the line.
    pub fn project(&self, p: Point) -> Point {
        let d = self.direction();
        let t = (p - self.a).dot(d) / d.norm_sq();
        self.a + d * t
    }

    /// Parameter `t` such that `project(p) = a + t·(b − a)`.
    pub fn project_param(&self, p: Point) -> f64 {
        let d = self.direction();
        (p - self.a).dot(d) / d.norm_sq()
    }

    /// Intersection point with another line, or `None` when (numerically)
    /// parallel.
    pub fn intersect(&self, other: &Line) -> Option<Point> {
        let d1 = self.direction();
        let d2 = other.direction();
        let denom = d1.cross(d2);
        if approx_eq_tol(denom, 0.0, EPS * d1.norm() * d2.norm()) {
            return None;
        }
        let t = (other.a - self.a).cross(d2) / denom;
        Some(self.a + d1 * t)
    }

    /// `true` when `p` lies on the line within tolerance `tol`
    /// (perpendicular distance).
    pub fn contains_tol(&self, p: Point, tol: f64) -> bool {
        self.distance_to(p) <= tol
    }

    /// [`Self::distance_to`]`(p) <=> r` decided by kernel `K` on the line's
    /// two defining points. Under the ε kernel this is bit-identical to
    /// comparing [`Self::distance_to`] directly; the exact kernel compares
    /// the underlying squared-cross polynomial exactly.
    pub fn cmp_distance_to_k<K: Kernel>(&self, p: Point, r: f64) -> Ordering {
        K::cmp_line_dist(self.a, self.b, p, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_projection() {
        let l = Line::through(Point::new(0.0, 0.0), Point::new(4.0, 0.0));
        let p = Point::new(2.0, 3.0);
        assert!((l.distance_to(p) - 3.0).abs() < 1e-12);
        assert!(l.project(p).approx_eq(Point::new(2.0, 0.0)));
        assert!((l.project_param(p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn signed_distance_side() {
        let l = Line::through(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        assert!(l.signed_distance_to(Point::new(0.0, 2.0)) > 0.0);
        assert!(l.signed_distance_to(Point::new(0.0, -2.0)) < 0.0);
    }

    #[test]
    fn intersection_of_crossing_lines() {
        let l1 = Line::through(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let l2 = Line::through(Point::new(0.0, 2.0), Point::new(2.0, 0.0));
        let p = l1.intersect(&l2).unwrap();
        assert!(p.approx_eq(Point::new(1.0, 1.0)));
    }

    #[test]
    fn parallel_lines_do_not_intersect() {
        let l1 = Line::through(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        let l2 = Line::through(Point::new(0.0, 1.0), Point::new(1.0, 1.0));
        assert!(l1.intersect(&l2).is_none());
    }

    #[test]
    fn contains_with_tolerance() {
        let l = Line::through(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        assert!(l.contains_tol(Point::new(5.0, 0.05), 0.1));
        assert!(!l.contains_tol(Point::new(5.0, 0.5), 0.1));
    }

    #[test]
    fn from_point_dir_matches_through() {
        let l = Line::from_point_dir(Point::new(1.0, 1.0), Vec2::new(0.0, 3.0));
        assert!((l.distance_to(Point::new(4.0, 7.0)) - 3.0).abs() < 1e-12);
    }
}
