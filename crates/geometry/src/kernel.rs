//! Geometric predicate kernels.
//!
//! Every *classification* the gathering pipeline makes — orientation of a
//! triple, "is this point within `r` of that segment/chord", "do these
//! segments intersect" — is answered through a [`Kernel`]. Two kernels are
//! provided:
//!
//! * [`EpsKernel`] — the production hot path: the ε-tolerant f64 predicates
//!   of [`crate::predicates`], bit-identical to the pre-kernel code. This is
//!   the default kernel everywhere (`Ctx<K = EpsKernel>` in the core crate),
//!   so the refactor costs the hot path nothing.
//! * [`ExactKernel`] — adaptive-precision exact arithmetic (Shewchuk-style
//!   floating-point expansions built from f64 mantissa decomposition; no
//!   external crates). Each predicate first evaluates a cheap f64 filter
//!   with a conservative forward error bound and only falls back to the
//!   exact expansion computation when the filter cannot certify the sign.
//!   Explicit *algorithmic* tolerances (the paper's `1/n` band, the hull
//!   boundary tolerance `1e-7`, the touch tolerance `1e-6`) are still
//!   honored — exactly: the underlying polynomial is evaluated exactly and
//!   compared against the tolerance without rounding.
//!
//! The [`shadow`] submodule adds a third kernel that evaluates *both* and
//! tallies their disagreements per predicate site — the instrument behind
//! the sim crate's `ShadowExecutor`.
//!
//! ## What kernels do (and do not) decide
//!
//! Kernels govern sign/threshold *predicates on polynomial quantities* of
//! the input points. Derived f64 *constructions* (step targets, projected
//! points, normalized directions, square-root distances used as magnitudes)
//! are shared by all kernels: exact arithmetic cannot un-round a
//! constructed coordinate, and re-deriving them symbolically is outside the
//! scope of this oracle. Consequently two kernels produce *bitwise equal*
//! move targets whenever all predicate verdicts along the decision path
//! agree — which is exactly what makes decision divergence a faithful
//! "the ε-tolerance changed the outcome" signal.

use std::cmp::Ordering;

use crate::point::Point;
use crate::predicates::{self, Orientation};
use crate::segment::Segment;

pub mod expansion;
pub mod shadow;

use expansion::Expansion;

/// A family of geometric predicate implementations.
///
/// All methods are associated functions on zero-sized marker types, so a
/// kernel-generic call compiles to a direct (inlinable) call — selecting
/// [`EpsKernel`] is free.
pub trait Kernel:
    Copy + Clone + Default + std::fmt::Debug + PartialEq + Eq + Send + Sync + 'static
{
    /// Short human-readable kernel name (for logs and reports).
    const NAME: &'static str;

    /// Orientation of the triple `(a, b, c)` under the kernel's *policy*
    /// collinearity width (ε on the doubled triangle area for
    /// [`EpsKernel`]; the exact sign for [`ExactKernel`]).
    fn orientation(a: Point, b: Point, c: Point) -> Orientation;

    /// Orientation of `(a, b, c)` against an explicit algorithmic tolerance
    /// `tol ≥ 0` on the doubled triangle area. Both kernels honor `tol`;
    /// [`ExactKernel`] evaluates the cross product exactly before comparing.
    fn orientation_tol(a: Point, b: Point, c: Point, tol: f64) -> Orientation;

    /// `|p − q|` compared with `r` (`r ≥ 0`). [`EpsKernel`] compares the
    /// rounded Euclidean distance (matching the pre-kernel call sites);
    /// [`ExactKernel`] compares `|p − q|²` with `r²` exactly.
    fn cmp_dist(p: Point, q: Point, r: f64) -> Ordering;

    /// Distance from `p` to the segment `ab` compared with `r` (`r ≥ 0`),
    /// in the *square-root* form `dist(p, ab) <=> r` used by the hull
    /// boundary tagging and circle blocking tests.
    fn cmp_segment_dist(a: Point, b: Point, p: Point, r: f64) -> Ordering;

    /// Squared distance from `p` to the segment `ab` compared with a
    /// precomputed squared threshold `r_sq` — the form the visibility
    /// witness kernel uses (`norm_sq > block_sq`). Kept separate from
    /// [`Self::cmp_segment_dist`] so [`EpsKernel`] stays bit-identical to
    /// both call-site families.
    fn cmp_segment_dist_sq(a: Point, b: Point, p: Point, r_sq: f64) -> Ordering;

    /// Distance from `p` to the infinite line through `a` and `b` compared
    /// with `r` (`r ≥ 0`): the chord-band test of Procedure
    /// `NotAllOnConvexHull` and the tangent-line side test of the
    /// visibility kernel. Degenerate `a == b` falls back to point distance.
    fn cmp_line_dist(a: Point, b: Point, p: Point, r: f64) -> Ordering;

    /// Intersection point of two non-parallel segments, if it lies on both
    /// (the classification mirrors [`Segment::intersection`]; the returned
    /// point is always the shared f64 construction).
    fn segment_intersection(s1: &Segment, s2: &Segment) -> Option<Point>;
}

/// The production ε-tolerant kernel: every method is the exact code the
/// pre-kernel call sites ran, so routing through `EpsKernel` is
/// bit-identical (pinned by the event-for-event determinism harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpsKernel;

impl Kernel for EpsKernel {
    const NAME: &'static str = "eps";

    #[inline]
    fn orientation(a: Point, b: Point, c: Point) -> Orientation {
        predicates::orientation(a, b, c)
    }

    #[inline]
    fn orientation_tol(a: Point, b: Point, c: Point, tol: f64) -> Orientation {
        predicates::orientation_tol(a, b, c, tol)
    }

    #[inline]
    fn cmp_dist(p: Point, q: Point, r: f64) -> Ordering {
        p.distance(q).partial_cmp(&r).unwrap_or(Ordering::Equal)
    }

    #[inline]
    fn cmp_segment_dist(a: Point, b: Point, p: Point, r: f64) -> Ordering {
        Segment::new(a, b)
            .distance_to(p)
            .partial_cmp(&r)
            .unwrap_or(Ordering::Equal)
    }

    #[inline]
    fn cmp_segment_dist_sq(a: Point, b: Point, p: Point, r_sq: f64) -> Ordering {
        Segment::new(a, b)
            .distance_sq_to(p)
            .partial_cmp(&r_sq)
            .unwrap_or(Ordering::Equal)
    }

    #[inline]
    fn cmp_line_dist(a: Point, b: Point, p: Point, r: f64) -> Ordering {
        // Exactly `Line::through(a, b).distance_to(p)`; callers guard
        // near-coincident chord endpoints themselves (the exact-zero branch
        // only protects against a 0/0 NaN).
        let d = b - a;
        let dist = if d.norm_sq() == 0.0 {
            p.distance(a)
        } else {
            (d.cross(p - a) / d.norm()).abs()
        };
        dist.partial_cmp(&r).unwrap_or(Ordering::Equal)
    }

    #[inline]
    fn segment_intersection(s1: &Segment, s2: &Segment) -> Option<Point> {
        s1.intersection(s2)
    }
}

/// Exact-arithmetic kernel.
///
/// Predicates are decided by the *sign of an exactly evaluated polynomial*
/// in the input coordinates (cross products, squared distances), computed
/// with floating-point expansions — sums of non-overlapping f64 components
/// whose mathematical sum is exact. A cheap f64 evaluation with a
/// conservative forward error bound answers the common, far-from-degenerate
/// case; the expansion path runs only when the f64 margin cannot certify
/// the sign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactKernel;

/// Machine epsilon halved: the unit roundoff `u = 2⁻⁵³`, the per-operation
/// relative error bound of round-to-nearest f64 arithmetic.
const U: f64 = f64::EPSILON / 2.0;

/// Exact sign of `cross_of_triple(a, b, c)` — Shewchuk's `orient2d`.
fn exact_cross_sign(a: Point, b: Point, c: Point) -> Ordering {
    // f64 filter with the standard orient2d error bound.
    let detleft = (b.x - a.x) * (c.y - a.y);
    let detright = (b.y - a.y) * (c.x - a.x);
    let det = detleft - detright;
    let detsum = detleft.abs() + detright.abs();
    let errbound = (3.0 + 16.0 * U) * U * detsum;
    if det > errbound {
        return Ordering::Greater;
    }
    if det < -errbound {
        return Ordering::Less;
    }
    exact_cross_expansion(a, b, c).sign()
}

/// The cross product `(b−a) × (c−a)` as an exact expansion.
fn exact_cross_expansion(a: Point, b: Point, c: Point) -> Expansion {
    let bax = Expansion::from_diff(b.x, a.x);
    let bay = Expansion::from_diff(b.y, a.y);
    let cax = Expansion::from_diff(c.x, a.x);
    let cay = Expansion::from_diff(c.y, a.y);
    bax.mul(&cay).sub(&bay.mul(&cax))
}

/// Exact `|p − q|²` as an expansion.
fn exact_dist_sq(p: Point, q: Point) -> Expansion {
    let dx = Expansion::from_diff(p.x, q.x);
    let dy = Expansion::from_diff(p.y, q.y);
    dx.mul(&dx).add(&dy.mul(&dy))
}

/// Exact sign of `|p − q|² − r²`.
fn exact_cmp_dist(p: Point, q: Point, r: f64) -> Ordering {
    // Filter: the f64 evaluation of dsq − r² has relative error ≲ 5u on a
    // magnitude bounded by dsq + r²; certify when the margin clears it.
    let dsq = (p.x - q.x) * (p.x - q.x) + (p.y - q.y) * (p.y - q.y);
    let rsq = r * r;
    let diff = dsq - rsq;
    let errbound = 8.0 * U * (dsq.abs() + rsq.abs());
    if diff > errbound {
        return Ordering::Greater;
    }
    if diff < -errbound {
        return Ordering::Less;
    }
    exact_dist_sq(p, q)
        .sub(&Expansion::from_product(r, r))
        .sign()
}

impl ExactKernel {
    /// Exact sign of `t`-numerator/range tests for a segment parameter
    /// `t = num / den`: returns whether `t ∈ [0, 1]`, decided without the
    /// division (`den != 0`).
    fn param_in_unit_range(num: &Expansion, den: &Expansion) -> bool {
        let ds = den.sign();
        debug_assert_ne!(ds, Ordering::Equal);
        let ns = num.sign();
        // t >= 0 ⟺ num and den share a sign (or num == 0).
        let nonneg = ns == Ordering::Equal || ns == ds;
        if !nonneg {
            return false;
        }
        // t <= 1 ⟺ den − num has the sign of den (or is 0).
        let rs = den.sub(num).sign();
        rs == Ordering::Equal || rs == ds
    }
}

impl Kernel for ExactKernel {
    const NAME: &'static str = "exact";

    fn orientation(a: Point, b: Point, c: Point) -> Orientation {
        match exact_cross_sign(a, b, c) {
            Ordering::Greater => Orientation::CounterClockwise,
            Ordering::Less => Orientation::Clockwise,
            Ordering::Equal => Orientation::Collinear,
        }
    }

    fn orientation_tol(a: Point, b: Point, c: Point, tol: f64) -> Orientation {
        if tol == 0.0 {
            return Self::orientation(a, b, c);
        }
        // Filter on the f64 cross value: certify when |cr| clears tol by
        // more than the forward error of the f64 evaluation.
        let detleft = (b.x - a.x) * (c.y - a.y);
        let detright = (b.y - a.y) * (c.x - a.x);
        let det = detleft - detright;
        let err = (3.0 + 16.0 * U) * U * (detleft.abs() + detright.abs());
        if det - tol > err {
            return Orientation::CounterClockwise;
        }
        if det + tol < -err {
            return Orientation::Clockwise;
        }
        if det.abs() + err < tol {
            return Orientation::Collinear;
        }
        let cross = exact_cross_expansion(a, b, c);
        if cross.sub(&Expansion::from(tol)).sign() == Ordering::Greater {
            Orientation::CounterClockwise
        } else if cross.add(&Expansion::from(tol)).sign() == Ordering::Less {
            Orientation::Clockwise
        } else {
            Orientation::Collinear
        }
    }

    fn cmp_dist(p: Point, q: Point, r: f64) -> Ordering {
        exact_cmp_dist(p, q, r)
    }

    fn cmp_segment_dist(a: Point, b: Point, p: Point, r: f64) -> Ordering {
        // dist <=> r decided as dist² <=> r² with r² as the *exact* product
        // (not fl(r·r)), so the verdict is exact in the given r.
        exact_segment_cmp(a, b, p, &Expansion::from_product(r, r))
    }

    fn cmp_segment_dist_sq(a: Point, b: Point, p: Point, r_sq: f64) -> Ordering {
        exact_segment_cmp(a, b, p, &Expansion::from(r_sq))
    }

    fn cmp_line_dist(a: Point, b: Point, p: Point, r: f64) -> Ordering {
        let v_sq = exact_dist_sq(a, b);
        if v_sq.sign() == Ordering::Equal {
            return exact_cmp_dist(p, a, r);
        }
        // dist = |v × u| / |v| <=> r  ⟺  (v × u)² <=> r²·|v|².
        let cross = exact_cross_expansion(a, b, p);
        let lhs = cross.mul(&cross);
        let rhs = Expansion::from_product(r, r).mul(&v_sq);
        lhs.sub(&rhs).sign()
    }

    fn segment_intersection(s1: &Segment, s2: &Segment) -> Option<Point> {
        // denom = d1 × d2 with exact coordinate differences; an exactly
        // zero denom means parallel → no (proper) intersection.
        let d1x = Expansion::from_diff(s1.b.x, s1.a.x);
        let d1y = Expansion::from_diff(s1.b.y, s1.a.y);
        let d2x = Expansion::from_diff(s2.b.x, s2.a.x);
        let d2y = Expansion::from_diff(s2.b.y, s2.a.y);
        let denom = d1x.mul(&d2y).sub(&d1y.mul(&d2x));
        if denom.sign() == Ordering::Equal {
            return None;
        }
        let wx = Expansion::from_diff(s2.a.x, s1.a.x);
        let wy = Expansion::from_diff(s2.a.y, s1.a.y);
        let t_num = wx.mul(&d2y).sub(&wy.mul(&d2x));
        let u_num = wx.mul(&d1y).sub(&wy.mul(&d1x));
        if Self::param_in_unit_range(&t_num, &denom) && Self::param_in_unit_range(&u_num, &denom) {
            // The intersection *point* is a construction: reuse the f64 one
            // (same formula as `Segment::intersection`).
            let d1 = s1.direction();
            let d2 = s2.direction();
            let den = d1.cross(d2);
            let t = (s2.a - s1.a).cross(d2) / den;
            Some(s1.point_at(predicates::clamp(t, 0.0, 1.0)))
        } else {
            None
        }
    }
}

/// Exact `dist(p, segment ab)² <=> r_sq` via case analysis on the clamped
/// projection parameter — the same region decomposition
/// [`Segment::closest_point_to`] rounds through, decided exactly:
///
/// * `(p−a)·(b−a) ≤ 0` → the closest point is `a`: compare `|p−a|²`;
/// * `(p−b)·(b−a) ≥ 0` → the closest point is `b`: compare `|p−b|²`;
/// * otherwise the interior: compare `((b−a) × (p−a))²` with
///   `r_sq · |b−a|²`.
fn exact_segment_cmp(a: Point, b: Point, p: Point, r_sq: &Expansion) -> Ordering {
    let vx = Expansion::from_diff(b.x, a.x);
    let vy = Expansion::from_diff(b.y, a.y);
    let v_sq = vx.mul(&vx).add(&vy.mul(&vy));
    let ux = Expansion::from_diff(p.x, a.x);
    let uy = Expansion::from_diff(p.y, a.y);
    let u_sq = || ux.mul(&ux).add(&uy.mul(&uy));
    if v_sq.sign() == Ordering::Equal {
        return u_sq().sub(r_sq).sign();
    }
    let dot_a = ux.mul(&vx).add(&uy.mul(&vy));
    if dot_a.sign() != Ordering::Greater {
        return u_sq().sub(r_sq).sign();
    }
    let wx = Expansion::from_diff(p.x, b.x);
    let wy = Expansion::from_diff(p.y, b.y);
    let dot_b = wx.mul(&vx).add(&wy.mul(&vy));
    if dot_b.sign() != Ordering::Less {
        let w_sq = wx.mul(&wx).add(&wy.mul(&wy));
        return w_sq.sub(r_sq).sign();
    }
    let cross = vx.mul(&uy).sub(&vy.mul(&ux));
    cross.mul(&cross).sub(&r_sq.mul(&v_sq)).sign()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::EPS;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn eps_kernel_matches_free_predicates() {
        let (a, b, c) = (p(0.0, 0.0), p(4.0, 0.0), p(2.0, 3.0));
        assert_eq!(
            EpsKernel::orientation(a, b, c),
            predicates::orientation(a, b, c)
        );
        assert_eq!(
            EpsKernel::orientation_tol(a, b, c, 1e-7),
            predicates::orientation_tol(a, b, c, 1e-7)
        );
        assert_eq!(EpsKernel::cmp_dist(a, b, 4.0), Ordering::Equal);
        assert_eq!(EpsKernel::cmp_dist(a, b, 5.0), Ordering::Less);
        assert_eq!(EpsKernel::cmp_segment_dist(a, b, c, 3.0), Ordering::Equal);
        assert_eq!(EpsKernel::cmp_line_dist(a, b, c, 2.0), Ordering::Greater);
    }

    #[test]
    fn exact_orientation_on_clear_triples() {
        let (a, b, c) = (p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0));
        assert_eq!(
            ExactKernel::orientation(a, b, c),
            Orientation::CounterClockwise
        );
        assert_eq!(ExactKernel::orientation(a, c, b), Orientation::Clockwise);
        assert_eq!(
            ExactKernel::orientation(a, b, p(2.0, 0.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn exact_orientation_resolves_sub_eps_offsets() {
        // A perpendicular offset of 1e-12 is far below EPS = 1e-9: the ε
        // kernel calls this collinear, the exact kernel does not.
        let (a, b) = (p(0.0, 0.0), p(1.0, 0.0));
        let c = p(0.5, 1e-12);
        assert_eq!(EpsKernel::orientation(a, b, c), Orientation::Collinear);
        assert_eq!(
            ExactKernel::orientation(a, b, c),
            Orientation::CounterClockwise
        );
    }

    #[test]
    fn exact_orientation_is_antisymmetric_at_ulp_scale() {
        // Near-collinear triple whose f64 cross is pure rounding noise.
        let a = p(0.1, 0.1);
        let b = p(0.30000000000000004, 0.30000000000000004);
        let c = p(0.5000000000000001, 0.5000000000000002);
        let abc = ExactKernel::orientation(a, b, c);
        let bac = ExactKernel::orientation(b, a, c);
        let cyc = ExactKernel::orientation(b, c, a);
        assert_eq!(abc, cyc, "cyclic permutation must preserve orientation");
        match (abc, bac) {
            (Orientation::Collinear, Orientation::Collinear) => {}
            (Orientation::CounterClockwise, Orientation::Clockwise) => {}
            (Orientation::Clockwise, Orientation::CounterClockwise) => {}
            other => panic!("swap must flip orientation, got {other:?}"),
        }
    }

    #[test]
    fn exact_cmp_dist_decides_squared_ties() {
        assert_eq!(
            ExactKernel::cmp_dist(p(0.0, 0.0), p(3.0, 4.0), 5.0),
            Ordering::Equal
        );
        assert_eq!(
            ExactKernel::cmp_dist(p(0.0, 0.0), p(3.0, 4.0), 5.0 + 1e-12),
            Ordering::Less
        );
        // 1ulp above 5.0: the squared comparison still resolves it.
        let r = f64::from_bits(5.0f64.to_bits() + 1);
        assert_eq!(
            ExactKernel::cmp_dist(p(0.0, 0.0), p(3.0, 4.0), r),
            Ordering::Less
        );
    }

    #[test]
    fn exact_segment_cmp_covers_all_regions() {
        let (a, b) = (p(0.0, 0.0), p(4.0, 0.0));
        // Endpoint region (before a).
        assert_eq!(
            ExactKernel::cmp_segment_dist(a, b, p(-3.0, 4.0), 5.0),
            Ordering::Equal
        );
        // Endpoint region (past b).
        assert_eq!(
            ExactKernel::cmp_segment_dist(a, b, p(7.0, 4.0), 5.0),
            Ordering::Equal
        );
        // Interior region.
        assert_eq!(
            ExactKernel::cmp_segment_dist(a, b, p(2.0, 3.0), 3.0),
            Ordering::Equal
        );
        assert_eq!(
            ExactKernel::cmp_segment_dist(a, b, p(2.0, 3.0), 2.5),
            Ordering::Greater
        );
        // Degenerate segment.
        assert_eq!(
            ExactKernel::cmp_segment_dist(a, a, p(3.0, 4.0), 5.0),
            Ordering::Equal
        );
    }

    #[test]
    fn exact_line_dist_is_a_side_agnostic_chord_test() {
        let (a, b) = (p(0.0, 0.0), p(10.0, 0.0));
        assert_eq!(
            ExactKernel::cmp_line_dist(a, b, p(5.0, 0.25), 0.25),
            Ordering::Equal
        );
        assert_eq!(
            ExactKernel::cmp_line_dist(a, b, p(5.0, -0.25), 0.25),
            Ordering::Equal
        );
        assert_eq!(
            ExactKernel::cmp_line_dist(a, b, p(500.0, 0.2), 0.25),
            Ordering::Less
        );
    }

    #[test]
    fn exact_segment_intersection_agrees_on_clear_crossings() {
        let s1 = Segment::new(p(0.0, 0.0), p(2.0, 2.0));
        let s2 = Segment::new(p(0.0, 2.0), p(2.0, 0.0));
        let x = ExactKernel::segment_intersection(&s1, &s2).unwrap();
        assert!(x.approx_eq(p(1.0, 1.0)));
        assert_eq!(
            ExactKernel::segment_intersection(&s1, &s2),
            EpsKernel::segment_intersection(&s1, &s2)
        );
        let s3 = Segment::new(p(5.0, 5.0), p(6.0, 6.0));
        assert!(ExactKernel::segment_intersection(&s1, &s3).is_none());
    }

    #[test]
    fn kernels_agree_far_from_degeneracy() {
        // A coarse deterministic sweep; the statistical version lives in the
        // geometry proptests.
        let pts = [
            p(0.0, 0.0),
            p(3.0, 1.0),
            p(1.0, 4.0),
            p(-2.0, 2.5),
            p(5.0, -1.0),
        ];
        for &a in &pts {
            for &b in &pts {
                for &c in &pts {
                    let cr = predicates::cross_of_triple(a, b, c);
                    if cr.abs() > 10.0 * EPS {
                        assert_eq!(
                            EpsKernel::orientation(a, b, c),
                            ExactKernel::orientation(a, b, c),
                            "{a} {b} {c}"
                        );
                    }
                }
            }
        }
    }
}
