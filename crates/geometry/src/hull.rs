//! Convex hulls of planar point sets.
//!
//! The paper computes `onCH(c_1, …, c_m)` — the subset of the input points
//! that lie **on** the convex hull (Section 3.1) — with Graham's scan. We use
//! Andrew's monotone chain, which computes the same hull. One subtlety
//! matters for faithfulness: the paper treats points that lie on a hull
//! *edge* (collinear boundary points) as being "on the convex hull" — its
//! type-2 bad configurations explicitly have four hull robots on a common
//! line. [`ConvexHull`] therefore distinguishes
//!
//! * the **corner vertices** ([`ConvexHull::vertices`]) — the minimal vertex
//!   set, no three collinear, in counter-clockwise order; and
//! * the **boundary points** ([`ConvexHull::boundary`]) — every input point
//!   lying on the hull boundary (corners *and* points interior to an edge),
//!   in counter-clockwise order along the boundary.
//!
//! The gathering algorithm's `onCH(V_i)` is the boundary-point set.

use crate::point::Point;
use crate::predicates::{cross_of_triple, EPS};
use crate::segment::Segment;

/// Convex hull of a point set, retaining the relationship to the input
/// points.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConvexHull {
    input: Vec<Point>,
    vertices: Vec<Point>,
    boundary_indices: Vec<usize>,
}

/// Reusable working storage for hull construction: the sort buffer of the
/// monotone chain, the edge-parameter tags of the boundary ordering, and
/// the per-edge rejection precomputation. Threading one of these through
/// repeated [`ConvexHull::rebuild_with`] calls keeps the steady-state hull
/// rebuild allocation-free.
#[derive(Debug, Default)]
pub struct HullScratch {
    sorted: Vec<Point>,
    tagged: Vec<(usize, f64, usize)>,
    edge_pre: Vec<EdgePrefilter>,
}

/// Precomputed rejection bounds for one hull edge, used by the boundary
/// ordering to discard far (point, edge) pairs with a few flops instead of
/// a full segment-distance evaluation. The bounds are conservative lower
/// bounds on the segment distance (the line distance via the cross product,
/// and the overshoot beyond either endpoint via the projection), widened by
/// a 2× safety factor, so a rejected pair provably fails the exact `1e-7`
/// test the survivors still run.
#[derive(Debug, Clone, Copy)]
struct EdgePrefilter {
    a: Point,
    b: Point,
    d: crate::point::Vec2,
    /// `2·1e-7·len`: reject when `|d × w| = len·line_dist` exceeds it.
    cross_max: f64,
    /// `-2·1e-7·len`: reject when `d·w = len·proj` falls below it.
    proj_lo: f64,
    /// `len² + 2·1e-7·len`: reject when `d·w` exceeds it.
    proj_hi: f64,
}

impl EdgePrefilter {
    /// The boundary-ordering tolerance on segment distances.
    const TOL: f64 = 1e-7;

    fn new(a: Point, b: Point) -> Self {
        let d = b - a;
        let len2 = d.norm_sq();
        let len = len2.sqrt();
        if len2 <= f64::EPSILON {
            // Degenerate edge: no sound rejection bound — let every point
            // through to the exact path.
            EdgePrefilter {
                a,
                b,
                d,
                cross_max: f64::INFINITY,
                proj_lo: f64::NEG_INFINITY,
                proj_hi: f64::INFINITY,
            }
        } else {
            let slack = 2.0 * Self::TOL * len;
            EdgePrefilter {
                a,
                b,
                d,
                cross_max: slack,
                proj_lo: -slack,
                proj_hi: len2 + slack,
            }
        }
    }

    /// `true` when `p` can possibly lie within [`Self::TOL`] of the edge.
    #[inline]
    fn may_touch(&self, p: Point) -> bool {
        let w = p - self.a;
        let cross = self.d.x * w.y - self.d.y * w.x;
        if cross.abs() > self.cross_max {
            return false;
        }
        let proj = self.d.dot(w);
        proj >= self.proj_lo && proj <= self.proj_hi
    }
}

/// Corner vertices of the convex hull of `points`, in counter-clockwise
/// order, with collinear boundary points removed.
///
/// Degenerate inputs are handled: fewer than three distinct points, or all
/// points collinear, yield the (at most two) extreme points.
///
/// ```
/// use fatrobots_geometry::{Point, hull::convex_hull};
/// let pts = [
///     Point::new(0.0, 0.0),
///     Point::new(2.0, 0.0),
///     Point::new(1.0, 0.0),   // on an edge: not a corner
///     Point::new(1.0, 2.0),
///     Point::new(1.0, 0.5),   // interior
/// ];
/// assert_eq!(convex_hull(&pts).len(), 3);
/// ```
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut out = Vec::new();
    convex_hull_into(points, &mut Vec::new(), &mut out);
    out
}

/// [`convex_hull`] writing into caller-owned storage: `sorted` is the sort
/// buffer of the monotone chain, `out` receives the corner vertices. Both
/// buffers are cleared first and reused across calls without reallocating
/// once warm.
pub fn convex_hull_into(points: &[Point], sorted: &mut Vec<Point>, out: &mut Vec<Point>) {
    sorted.clear();
    sorted.extend_from_slice(points);
    // Unstable sort: no allocation, and the key (x, y) is total — ties are
    // bitwise-identical points, which the dedup collapses either way.
    sorted.sort_unstable_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap()
            .then(a.y.partial_cmp(&b.y).unwrap())
    });
    sorted.dedup_by(|a, b| a.approx_eq(*b));
    let n = sorted.len();
    out.clear();
    if n <= 2 {
        out.extend_from_slice(sorted);
        return;
    }

    let hull = out;
    // Lower hull.
    for &p in sorted.iter() {
        while hull.len() >= 2
            && cross_of_triple(hull[hull.len() - 2], hull[hull.len() - 1], p) <= EPS
        {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in sorted.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && cross_of_triple(hull[hull.len() - 2], hull[hull.len() - 1], p) <= EPS
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point equals the first
    if hull.len() < 2 {
        // All points collinear: return the two extremes.
        hull.clear();
        hull.push(sorted[0]);
        hull.push(sorted[n - 1]);
    }
}

impl ConvexHull {
    /// Builds the convex hull of `points`, remembering which input points are
    /// on the boundary.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn from_points(points: &[Point]) -> Self {
        let mut hull = ConvexHull::default();
        hull.rebuild_with(points, &mut HullScratch::default());
        hull
    }

    /// Rebuilds this hull in place from a new point set, reusing the hull's
    /// own buffers and the caller's [`HullScratch`]. Produces exactly the
    /// hull [`Self::from_points`] would; once the buffers are warm, a
    /// rebuild performs no heap allocation.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn rebuild_with(&mut self, points: &[Point], scratch: &mut HullScratch) {
        assert!(!points.is_empty(), "convex hull of an empty point set");
        self.input.clear();
        self.input.extend_from_slice(points);
        convex_hull_into(points, &mut scratch.sorted, &mut self.vertices);
        Self::order_boundary_into(points, &self.vertices, scratch, &mut self.boundary_indices);
    }

    /// Orders all input points lying on the hull boundary counter-clockwise
    /// along the boundary (corners and edge-interior points alike), writing
    /// the indices into `out`.
    fn order_boundary_into(
        points: &[Point],
        vertices: &[Point],
        scratch: &mut HullScratch,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        if vertices.len() == 1 {
            out.extend(
                points
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.approx_eq(vertices[0]))
                    .map(|(i, _)| i),
            );
            return;
        }
        // For each boundary input point find (edge index, parameter along edge).
        let nv = vertices.len();
        let tagged = &mut scratch.tagged;
        tagged.clear(); // (edge, t, input index)
        let edge_count = if nv == 2 { 1 } else { nv };
        // Precompute each edge's rejection bounds once: the inner loop then
        // discards almost every (point, edge) pair with a cross product and
        // a dot product, and only the handful of survivors pay for the
        // exact segment-distance evaluation. This is where the hull spent
        // ~90% of its time before.
        let edge_pre = &mut scratch.edge_pre;
        edge_pre.clear();
        edge_pre.extend(
            (0..edge_count).map(|e| EdgePrefilter::new(vertices[e], vertices[(e + 1) % nv])),
        );
        for (idx, &p) in points.iter().enumerate() {
            let mut best: Option<(usize, f64, f64)> = None; // (edge, t, dist)
            for (e, pre) in edge_pre.iter().enumerate() {
                if !pre.may_touch(p) {
                    continue;
                }
                let (a, b) = (pre.a, pre.b);
                let seg = Segment::new(a, b);
                let d = seg.distance_to(p);
                if d <= 1e-7 {
                    let t = if seg.length() <= f64::EPSILON {
                        0.0
                    } else {
                        (p - a).dot(seg.direction()) / seg.direction().norm_sq()
                    };
                    match best {
                        Some((_, _, bd)) if bd <= d => {}
                        _ => best = Some((e, t.clamp(0.0, 1.0), d)),
                    }
                }
            }
            if let Some((e, t, _)) = best {
                // Avoid double-counting a corner as the end of one edge and
                // the start of the next: snap t≈1 to the next edge at t=0.
                let (e, t) = if t >= 1.0 - 1e-9 && edge_count > 1 {
                    ((e + 1) % edge_count, 0.0)
                } else {
                    (e, t)
                };
                tagged.push((e, t, idx));
            }
        }
        // Unstable sort with the input index as the final tie-break: no
        // allocation, and exactly the order the previous stable sort
        // produced (stable sort ≡ sort by (key, original position)).
        tagged.sort_unstable_by(|a, b| {
            a.0.cmp(&b.0)
                .then(a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .then(a.2.cmp(&b.2))
        });
        out.extend(tagged.iter().map(|&(_, _, i)| i));
    }

    /// The corner vertices in counter-clockwise order (no three collinear).
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Indices (into the input slice) of all points on the hull boundary, in
    /// counter-clockwise order along the boundary.
    pub fn boundary_indices(&self) -> &[usize] {
        &self.boundary_indices
    }

    /// All input points on the hull boundary, in counter-clockwise order.
    pub fn boundary(&self) -> Vec<Point> {
        self.boundary_iter().collect()
    }

    /// Iterator form of [`Self::boundary`]: the boundary points in
    /// counter-clockwise order, without allocating.
    pub fn boundary_iter(&self) -> impl Iterator<Item = Point> + '_ {
        self.boundary_indices.iter().map(|&i| self.input[i])
    }

    /// Number of input points on the hull boundary (the paper's `|onCH(·)|`).
    pub fn boundary_len(&self) -> usize {
        self.boundary_indices.len()
    }

    /// The input points this hull was built from.
    pub fn input(&self) -> &[Point] {
        &self.input
    }

    /// `true` when input point `index` lies on the hull boundary.
    pub fn index_on_hull(&self, index: usize) -> bool {
        self.boundary_indices.contains(&index)
    }

    /// `true` when `p` lies on the hull boundary (within tolerance), whether
    /// or not it is one of the input points.
    pub fn point_on_boundary(&self, p: Point) -> bool {
        let nv = self.vertices.len();
        match nv {
            1 => self.vertices[0].approx_eq(p),
            2 => Segment::new(self.vertices[0], self.vertices[1]).distance_to(p) <= 1e-7,
            _ => (0..nv).any(|e| {
                Segment::new(self.vertices[e], self.vertices[(e + 1) % nv]).distance_to(p) <= 1e-7
            }),
        }
    }

    /// `true` when `p` is a corner vertex of the hull.
    pub fn is_vertex(&self, p: Point) -> bool {
        self.vertices.iter().any(|v| v.approx_eq(p))
    }

    /// `true` when `p` lies inside the hull or on its boundary.
    pub fn contains(&self, p: Point) -> bool {
        let nv = self.vertices.len();
        match nv {
            1 => self.vertices[0].approx_eq(p),
            2 => Segment::new(self.vertices[0], self.vertices[1]).distance_to(p) <= 1e-7,
            _ => (0..nv).all(|e| {
                cross_of_triple(self.vertices[e], self.vertices[(e + 1) % nv], p) >= -1e-7
            }),
        }
    }

    /// `true` when `p` lies strictly inside the hull (not on the boundary).
    pub fn contains_strict(&self, p: Point) -> bool {
        self.contains(p) && !self.point_on_boundary(p)
    }

    /// Neighbours of boundary point `p` along the boundary ordering:
    /// `(left, right)` where *left* is the next boundary point
    /// counter-clockwise and *right* is the next boundary point clockwise.
    ///
    /// Matches the paper's convention under chirality: looking from a hull
    /// robot towards the inside of the hull, its *right* neighbour is the next
    /// robot clockwise along the hull.
    ///
    /// Returns `None` when `p` is not a boundary point or the hull has fewer
    /// than two boundary points.
    pub fn neighbors_of(&self, p: Point) -> Option<(Point, Point)> {
        let m = self.boundary_indices.len();
        if m < 2 {
            return None;
        }
        let pos = self
            .boundary_indices
            .iter()
            .position(|&i| self.input[i].approx_eq(p))?;
        let left = self.input[self.boundary_indices[(pos + 1) % m]];
        let right = self.input[self.boundary_indices[(pos + m - 1) % m]];
        Some((left, right))
    }

    /// Edges of the corner-vertex polygon as segments, counter-clockwise.
    pub fn edges(&self) -> Vec<Segment> {
        self.edges_iter().collect()
    }

    /// Iterator form of [`Self::edges`]: the corner-polygon edges in
    /// counter-clockwise order, without allocating. A two-vertex hull
    /// yields its single segment once; degenerate hulls yield nothing.
    pub fn edges_iter(&self) -> impl Iterator<Item = Segment> + '_ {
        let nv = self.vertices.len();
        let count = match nv {
            0 | 1 => 0,
            2 => 1,
            _ => nv,
        };
        (0..count).map(move |e| Segment::new(self.vertices[e], self.vertices[(e + 1) % nv]))
    }

    /// Consecutive pairs of *boundary points* (the paper's "neighbouring
    /// points on the convex hull"), counter-clockwise.
    pub fn boundary_edges(&self) -> Vec<Segment> {
        let b = self.boundary();
        let m = b.len();
        match m {
            0 | 1 => vec![],
            2 => vec![Segment::new(b[0], b[1])],
            _ => (0..m).map(|i| Segment::new(b[i], b[(i + 1) % m])).collect(),
        }
    }

    /// Area of the hull polygon (0 for degenerate hulls).
    pub fn area(&self) -> f64 {
        let nv = self.vertices.len();
        if nv < 3 {
            return 0.0;
        }
        let mut sum = 0.0;
        for i in 0..nv {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % nv];
            sum += a.x * b.y - b.x * a.y;
        }
        sum.abs() / 2.0
    }

    /// Perimeter of the hull polygon.
    pub fn perimeter(&self) -> f64 {
        self.edges_iter().map(|e| e.length()).sum()
    }

    /// Outward unit normal of the boundary at the edge from `a` to `b`, where
    /// `a`, `b` are consecutive boundary points in counter-clockwise order.
    ///
    /// For a CCW polygon the outward normal of edge `a → b` is the clockwise
    /// perpendicular of the edge direction.
    pub fn outward_normal(a: Point, b: Point) -> crate::point::Vec2 {
        (b - a).normalized().perp_cw()
    }

    /// `true` when every input point lies on the hull boundary
    /// (the paper's condition `|onCH(G)| = n`).
    pub fn all_on_hull(&self) -> bool {
        self.boundary_indices.len() == self.input.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn square_with_extras() -> Vec<Point> {
        vec![
            p(0.0, 0.0),
            p(4.0, 0.0),
            p(4.0, 4.0),
            p(0.0, 4.0),
            p(2.0, 0.0), // on bottom edge
            p(2.0, 2.0), // interior
        ]
    }

    #[test]
    fn hull_of_square() {
        let h = convex_hull(&square_with_extras());
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn boundary_includes_edge_points_but_not_interior() {
        let pts = square_with_extras();
        let hull = ConvexHull::from_points(&pts);
        assert_eq!(hull.vertices().len(), 4);
        assert_eq!(hull.boundary_len(), 5);
        assert!(hull.index_on_hull(4));
        assert!(!hull.index_on_hull(5));
        assert!(!hull.all_on_hull());
    }

    #[test]
    fn boundary_order_is_cyclic_and_consistent() {
        let pts = square_with_extras();
        let hull = ConvexHull::from_points(&pts);
        let b = hull.boundary();
        assert_eq!(b.len(), 5);
        // Each consecutive pair must lie on a common hull edge.
        for w in 0..b.len() {
            let a = b[w];
            let c = b[(w + 1) % b.len()];
            assert!(a.distance(c) > 0.0);
        }
        // The edge point (2,0) must be between (0,0) and (4,0) in the cyclic order.
        let pos = |q: Point| b.iter().position(|x| x.approx_eq(q)).unwrap();
        let i00 = pos(p(0.0, 0.0));
        let i20 = pos(p(2.0, 0.0));
        let i40 = pos(p(4.0, 0.0));
        let m = b.len();
        assert!(
            (i00 + 1) % m == i20 && (i20 + 1) % m == i40
                || (i40 + 1) % m == i20 && (i20 + 1) % m == i00
        );
    }

    #[test]
    fn neighbors_on_square() {
        let pts = vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 4.0), p(0.0, 4.0)];
        let hull = ConvexHull::from_points(&pts);
        let (left, right) = hull.neighbors_of(p(0.0, 0.0)).unwrap();
        // CCW order of the square is (0,0),(4,0),(4,4),(0,4).
        assert!(left.approx_eq(p(4.0, 0.0)));
        assert!(right.approx_eq(p(0.0, 4.0)));
        assert!(hull.neighbors_of(p(9.0, 9.0)).is_none());
    }

    #[test]
    fn containment_queries() {
        let hull = ConvexHull::from_points(&square_with_extras());
        assert!(hull.contains(p(2.0, 2.0)));
        assert!(hull.contains_strict(p(2.0, 2.0)));
        assert!(hull.contains(p(2.0, 0.0)));
        assert!(!hull.contains_strict(p(2.0, 0.0)));
        assert!(!hull.contains(p(5.0, 5.0)));
        assert!(hull.point_on_boundary(p(4.0, 2.0)));
        assert!(!hull.point_on_boundary(p(2.0, 2.0)));
    }

    #[test]
    fn area_and_perimeter() {
        let hull = ConvexHull::from_points(&square_with_extras());
        assert!((hull.area() - 16.0).abs() < 1e-9);
        assert!((hull.perimeter() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_collinear_input() {
        let pts = vec![p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0), p(3.0, 0.0)];
        let hull = ConvexHull::from_points(&pts);
        assert_eq!(hull.vertices().len(), 2);
        assert_eq!(hull.boundary_len(), 4);
        assert!(hull.all_on_hull());
        assert_eq!(hull.area(), 0.0);
        assert!(hull.contains(p(1.5, 0.0)));
        assert!(!hull.contains(p(1.5, 1.0)));
    }

    #[test]
    fn degenerate_small_inputs() {
        let one = ConvexHull::from_points(&[p(1.0, 1.0)]);
        assert_eq!(one.vertices().len(), 1);
        assert_eq!(one.boundary_len(), 1);
        assert!(one.contains(p(1.0, 1.0)));
        assert!(!one.contains(p(2.0, 1.0)));

        let two = ConvexHull::from_points(&[p(0.0, 0.0), p(2.0, 0.0)]);
        assert_eq!(two.vertices().len(), 2);
        assert_eq!(two.boundary_len(), 2);
        assert_eq!(two.edges().len(), 1);
    }

    #[test]
    fn vertices_are_counter_clockwise() {
        let pts = vec![
            p(0.0, 0.0),
            p(3.0, 1.0),
            p(4.0, 4.0),
            p(1.0, 3.0),
            p(2.0, 2.0),
        ];
        let hull = ConvexHull::from_points(&pts);
        let v = hull.vertices();
        let mut area2 = 0.0;
        for i in 0..v.len() {
            let a = v[i];
            let b = v[(i + 1) % v.len()];
            area2 += a.x * b.y - b.x * a.y;
        }
        assert!(area2 > 0.0, "vertices must be in CCW order");
    }

    #[test]
    fn outward_normal_points_out() {
        let pts = vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 4.0), p(0.0, 4.0)];
        let hull = ConvexHull::from_points(&pts);
        // Bottom edge (0,0)->(4,0): outward normal should point to -y.
        let n = ConvexHull::outward_normal(p(0.0, 0.0), p(4.0, 0.0));
        assert!(n.y < 0.0);
        let inside = p(2.0, 2.0);
        assert!(hull.contains(inside));
        assert!(!hull.contains(inside + n * 10.0));
    }

    #[test]
    fn rebuild_with_matches_from_points_across_shapes() {
        let mut hull = ConvexHull::default();
        let mut scratch = HullScratch::default();
        let inputs: Vec<Vec<Point>> = vec![
            square_with_extras(),
            vec![p(1.0, 1.0)],
            vec![p(0.0, 0.0), p(2.0, 0.0)],
            vec![p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0), p(3.0, 0.0)],
            vec![
                p(0.0, 0.0),
                p(3.0, 1.0),
                p(4.0, 4.0),
                p(1.0, 3.0),
                p(2.0, 2.0),
            ],
        ];
        // One hull + one scratch reused across every rebuild must always
        // reproduce the from-scratch construction exactly.
        for pts in &inputs {
            hull.rebuild_with(pts, &mut scratch);
            assert_eq!(hull, ConvexHull::from_points(pts));
        }
    }

    #[test]
    fn iterator_accessors_match_their_vec_forms() {
        let hull = ConvexHull::from_points(&square_with_extras());
        assert_eq!(hull.boundary_iter().collect::<Vec<_>>(), hull.boundary());
        assert_eq!(hull.edges_iter().collect::<Vec<_>>(), hull.edges());
        let two = ConvexHull::from_points(&[p(0.0, 0.0), p(2.0, 0.0)]);
        assert_eq!(two.edges_iter().count(), 1);
        let one = ConvexHull::from_points(&[p(1.0, 1.0)]);
        assert_eq!(one.edges_iter().count(), 0);
    }

    #[test]
    fn all_on_hull_detects_convex_position() {
        let pts = vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 4.0), p(0.0, 4.0)];
        assert!(ConvexHull::from_points(&pts).all_on_hull());
        let mut with_interior = pts.clone();
        with_interior.push(p(2.0, 2.0));
        assert!(!ConvexHull::from_points(&with_interior).all_on_hull());
    }
}
