//! Convex hulls of planar point sets.
//!
//! The paper computes `onCH(c_1, …, c_m)` — the subset of the input points
//! that lie **on** the convex hull (Section 3.1) — with Graham's scan. We use
//! Andrew's monotone chain, which computes the same hull. One subtlety
//! matters for faithfulness: the paper treats points that lie on a hull
//! *edge* (collinear boundary points) as being "on the convex hull" — its
//! type-2 bad configurations explicitly have four hull robots on a common
//! line. [`ConvexHull`] therefore distinguishes
//!
//! * the **corner vertices** ([`ConvexHull::vertices`]) — the minimal vertex
//!   set, no three collinear, in counter-clockwise order; and
//! * the **boundary points** ([`ConvexHull::boundary`]) — every input point
//!   lying on the hull boundary (corners *and* points interior to an edge),
//!   in counter-clockwise order along the boundary.
//!
//! The gathering algorithm's `onCH(V_i)` is the boundary-point set.

use std::cmp::Ordering;

use crate::kernel::{EpsKernel, Kernel};
use crate::point::Point;
use crate::predicates::Orientation;
use crate::segment::Segment;

/// Tolerance on segment distances for hull *boundary membership* (which
/// input points count as lying on a hull edge). An algorithmic tolerance:
/// every kernel honors it — [`EpsKernel`] with the rounded f64 distance,
/// the exact kernel by comparing the underlying polynomial exactly.
pub const BOUNDARY_TOL: f64 = 1e-7;

/// Convex hull of a point set, retaining the relationship to the input
/// points.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConvexHull {
    input: Vec<Point>,
    vertices: Vec<Point>,
    boundary_indices: Vec<usize>,
}

/// Reusable working storage for hull construction: the sort buffer of the
/// monotone chain, the edge-parameter tags of the boundary ordering, and
/// the per-edge rejection precomputation. Threading one of these through
/// repeated [`ConvexHull::rebuild_with`] calls keeps the steady-state hull
/// rebuild allocation-free.
///
/// A scratch additionally retains the **pre-dedup sorted multiset** of the
/// last rebuild's input and the sorted tag list of the last boundary
/// ordering. Those two make [`ConvexHull::repair_point_move`] possible: when
/// exactly one input point moved, the sorted multiset is patched by a
/// delete + insert instead of re-sorting, and when the corner polygon comes
/// out unchanged the boundary tags are patched the same way. A scratch is
/// therefore implicitly *paired* with the hull it last rebuilt; repair
/// validates the pairing and refuses (returning `false`) on any mismatch.
#[derive(Debug, Default)]
pub struct HullScratch {
    tagged: Vec<(usize, f64, usize)>,
    edge_pre: Vec<EdgePrefilter>,
    /// Sorted (pre-dedup) multiset of the last rebuild's input, maintained
    /// across repairs by delete + insert.
    sorted_input: Vec<Point>,
    /// Dedup buffer feeding the monotone chain.
    deduped: Vec<Point>,
    /// Candidate corner vertices of a repair, compared against the hull's
    /// current vertices to decide whether the boundary tags survive.
    vertices_probe: Vec<Point>,
}

/// The total order of the monotone chain's sort: by `x`, then `y`. Ties are
/// value-identical points (collapsed later by the dedup either way), so the
/// sorted sequence of a point multiset is unique — which is what lets a
/// repair maintain it by delete + insert and still match a full
/// `sort_unstable` exactly.
fn point_order(a: &Point, b: &Point) -> Ordering {
    a.x.partial_cmp(&b.x)
        .unwrap()
        .then(a.y.partial_cmp(&b.y).unwrap())
}

/// The total order of the boundary tags `(edge, t, input index)`: along the
/// boundary, with the input index as the final tie-break (exactly the order
/// a stable sort by `(edge, t)` would produce).
fn tag_order(a: &(usize, f64, usize), b: &(usize, f64, usize)) -> Ordering {
    a.0.cmp(&b.0)
        .then(a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal))
        .then(a.2.cmp(&b.2))
}

/// Precomputed rejection bounds for one hull edge, used by the boundary
/// ordering to discard far (point, edge) pairs with a few flops instead of
/// a full segment-distance evaluation. The bounds are conservative lower
/// bounds on the segment distance (the line distance via the cross product,
/// and the overshoot beyond either endpoint via the projection), widened by
/// a 2× safety factor, so a rejected pair provably fails the exact `1e-7`
/// test the survivors still run.
#[derive(Debug, Clone, Copy)]
struct EdgePrefilter {
    a: Point,
    b: Point,
    d: crate::point::Vec2,
    /// `2·1e-7·len`: reject when `|d × w| = len·line_dist` exceeds it.
    cross_max: f64,
    /// `-2·1e-7·len`: reject when `d·w = len·proj` falls below it.
    proj_lo: f64,
    /// `len² + 2·1e-7·len`: reject when `d·w` exceeds it.
    proj_hi: f64,
}

impl EdgePrefilter {
    /// The boundary-ordering tolerance on segment distances.
    const TOL: f64 = BOUNDARY_TOL;

    fn new(a: Point, b: Point) -> Self {
        let d = b - a;
        let len2 = d.norm_sq();
        let len = len2.sqrt();
        if len2 <= f64::EPSILON {
            // Degenerate edge: no sound rejection bound — let every point
            // through to the exact path.
            EdgePrefilter {
                a,
                b,
                d,
                cross_max: f64::INFINITY,
                proj_lo: f64::NEG_INFINITY,
                proj_hi: f64::INFINITY,
            }
        } else {
            let slack = 2.0 * Self::TOL * len;
            EdgePrefilter {
                a,
                b,
                d,
                cross_max: slack,
                proj_lo: -slack,
                proj_hi: len2 + slack,
            }
        }
    }

    /// `true` when `p` can possibly lie within [`Self::TOL`] of the edge.
    #[inline]
    fn may_touch(&self, p: Point) -> bool {
        let w = p - self.a;
        let cross = self.d.x * w.y - self.d.y * w.x;
        if cross.abs() > self.cross_max {
            return false;
        }
        let proj = self.d.dot(w);
        proj >= self.proj_lo && proj <= self.proj_hi
    }
}

/// Corner vertices of the convex hull of `points`, in counter-clockwise
/// order, with collinear boundary points removed.
///
/// Degenerate inputs are handled: fewer than three distinct points, or all
/// points collinear, yield the (at most two) extreme points.
///
/// ```
/// use fatrobots_geometry::{Point, hull::convex_hull};
/// let pts = [
///     Point::new(0.0, 0.0),
///     Point::new(2.0, 0.0),
///     Point::new(1.0, 0.0),   // on an edge: not a corner
///     Point::new(1.0, 2.0),
///     Point::new(1.0, 0.5),   // interior
/// ];
/// assert_eq!(convex_hull(&pts).len(), 3);
/// ```
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut out = Vec::new();
    convex_hull_into(points, &mut Vec::new(), &mut out);
    out
}

/// [`convex_hull`] writing into caller-owned storage: `sorted` is the sort
/// buffer of the monotone chain, `out` receives the corner vertices. Both
/// buffers are cleared first and reused across calls without reallocating
/// once warm.
pub fn convex_hull_into(points: &[Point], sorted: &mut Vec<Point>, out: &mut Vec<Point>) {
    convex_hull_into_k::<EpsKernel>(points, sorted, out);
}

/// [`convex_hull_into`] with the chain's turn tests routed through kernel
/// `K`. The sort order and the point dedup (point *identity*, not a
/// geometric classification) are shared by all kernels.
pub fn convex_hull_into_k<K: Kernel>(
    points: &[Point],
    sorted: &mut Vec<Point>,
    out: &mut Vec<Point>,
) {
    sorted.clear();
    sorted.extend_from_slice(points);
    // Unstable sort: no allocation, and the key (x, y) is total — ties are
    // bitwise-identical points, which the dedup collapses either way.
    sorted.sort_unstable_by(point_order);
    sorted.dedup_by(|a, b| a.approx_eq(*b));
    chain_of_sorted_dedup_k::<K>(sorted, out);
}

/// The monotone chain proper: corner vertices of a point slice that is
/// already sorted by [`point_order`] and deduplicated. The turn test is the
/// kernel's policy orientation — a kept corner must be a strict
/// counter-clockwise turn. Under [`EpsKernel`] this is exactly the historic
/// `cross_of_triple(..) <= EPS` pop condition.
fn chain_of_sorted_dedup_k<K: Kernel>(sorted: &[Point], out: &mut Vec<Point>) {
    let n = sorted.len();
    out.clear();
    if n <= 2 {
        out.extend_from_slice(sorted);
        return;
    }

    let hull = out;
    // Lower hull.
    for &p in sorted.iter() {
        while hull.len() >= 2
            && K::orientation(hull[hull.len() - 2], hull[hull.len() - 1], p)
                != Orientation::CounterClockwise
        {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in sorted.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && K::orientation(hull[hull.len() - 2], hull[hull.len() - 1], p)
                != Orientation::CounterClockwise
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point equals the first
    if hull.len() < 2 {
        // All points collinear: return the two extremes.
        hull.clear();
        hull.push(sorted[0]);
        hull.push(sorted[n - 1]);
    }
}

fn chain_of_sorted_dedup(sorted: &[Point], out: &mut Vec<Point>) {
    chain_of_sorted_dedup_k::<EpsKernel>(sorted, out);
}

impl ConvexHull {
    /// Builds the convex hull of `points`, remembering which input points are
    /// on the boundary.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn from_points(points: &[Point]) -> Self {
        let mut hull = ConvexHull::default();
        hull.rebuild_with(points, &mut HullScratch::default());
        hull
    }

    /// [`Self::from_points`] with all hull classification routed through
    /// kernel `K`.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn from_points_k<K: Kernel>(points: &[Point]) -> Self {
        let mut hull = ConvexHull::default();
        hull.rebuild_with_k::<K>(points, &mut HullScratch::default());
        hull
    }

    /// Rebuilds this hull in place from a new point set, reusing the hull's
    /// own buffers and the caller's [`HullScratch`]. Produces exactly the
    /// hull [`Self::from_points`] would; once the buffers are warm, a
    /// rebuild performs no heap allocation. The scratch retains the sorted
    /// input multiset and the boundary tags, pairing it with this hull for
    /// subsequent [`Self::repair_point_move`] calls.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn rebuild_with(&mut self, points: &[Point], scratch: &mut HullScratch) {
        self.rebuild_with_k::<EpsKernel>(points, scratch);
    }

    /// [`Self::rebuild_with`] with the chain turn tests and the boundary
    /// membership tests routed through kernel `K`.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn rebuild_with_k<K: Kernel>(&mut self, points: &[Point], scratch: &mut HullScratch) {
        assert!(!points.is_empty(), "convex hull of an empty point set");
        self.input.clear();
        self.input.extend_from_slice(points);
        scratch.sorted_input.clear();
        scratch.sorted_input.extend_from_slice(points);
        scratch.sorted_input.sort_unstable_by(point_order);
        scratch.deduped.clear();
        scratch.deduped.extend_from_slice(&scratch.sorted_input);
        scratch.deduped.dedup_by(|a, b| a.approx_eq(*b));
        chain_of_sorted_dedup_k::<K>(&scratch.deduped, &mut self.vertices);
        Self::order_boundary_into_k::<K>(
            &self.input,
            &self.vertices,
            scratch,
            &mut self.boundary_indices,
        );
    }

    /// Repairs this hull after the single input point `index` moved to
    /// `new_pos`, using the sorted multiset and boundary tags `scratch`
    /// retained from the last rebuild (or repair) of **this** hull.
    ///
    /// The sorted chain input is patched by a delete + insert (the sorted
    /// sequence of a multiset is unique under [`point_order`], so the patch
    /// is exactly what re-sorting would produce), the monotone chain is
    /// re-run in O(n), and — in the common case where the corner polygon
    /// comes out unchanged — the boundary ordering is patched the same way:
    /// only the moved point is re-tagged against the (unchanged) edges, all
    /// other tags being bitwise-stable. The result is **identical** to
    /// [`Self::rebuild_with`] on the moved point set; there is no geometric
    /// approximation anywhere in the repair.
    ///
    /// Returns `false` — leaving the hull untouched — when the scratch does
    /// not verifiably pair with this hull (wrong length, missing sorted
    /// entry, inconsistent tags); the caller must fall back to a rebuild.
    pub fn repair_point_move(
        &mut self,
        index: usize,
        new_pos: Point,
        scratch: &mut HullScratch,
    ) -> bool {
        if index >= self.input.len() || scratch.sorted_input.len() != self.input.len() {
            return false;
        }
        let old = self.input[index];
        if old == new_pos {
            return true; // nothing moved; the structure is already current
        }
        // Patch the sorted multiset: remove the old position, insert the new.
        let pos = scratch
            .sorted_input
            .partition_point(|p| point_order(p, &old) == Ordering::Less);
        match scratch.sorted_input.get(pos) {
            Some(p) if point_order(p, &old) == Ordering::Equal => {}
            _ => return false, // scratch does not belong to this hull
        }
        scratch.sorted_input.remove(pos);
        let ins = scratch
            .sorted_input
            .partition_point(|p| point_order(p, &new_pos) == Ordering::Less);
        scratch.sorted_input.insert(ins, new_pos);
        self.input[index] = new_pos;

        // Re-run the chain (O(n), no sort) into the probe buffer.
        scratch.deduped.clear();
        scratch.deduped.extend_from_slice(&scratch.sorted_input);
        scratch.deduped.dedup_by(|a, b| a.approx_eq(*b));
        chain_of_sorted_dedup(&scratch.deduped, &mut scratch.vertices_probe);

        if scratch.vertices_probe == self.vertices && self.tags_pair_with(scratch) {
            // Corner polygon unchanged ⇒ every edge is unchanged ⇒ every
            // other point's (edge, t) tag is bitwise-stable. Patch only the
            // moved point's tag and re-emit the boundary order.
            let nv = self.vertices.len();
            let edge_count = if nv == 2 { 1 } else { nv };
            scratch.edge_pre.clear();
            scratch.edge_pre.extend(
                (0..edge_count)
                    .map(|e| EdgePrefilter::new(self.vertices[e], self.vertices[(e + 1) % nv])),
            );
            if let Some(at) = scratch.tagged.iter().position(|&(_, _, i)| i == index) {
                scratch.tagged.remove(at);
            }
            if let Some((e, t)) = Self::tag_point(new_pos, &scratch.edge_pre, edge_count) {
                let entry = (e, t, index);
                let at = scratch
                    .tagged
                    .partition_point(|probe| tag_order(probe, &entry) == Ordering::Less);
                scratch.tagged.insert(at, entry);
            }
            self.boundary_indices.clear();
            self.boundary_indices
                .extend(scratch.tagged.iter().map(|&(_, _, i)| i));
        } else {
            std::mem::swap(&mut self.vertices, &mut scratch.vertices_probe);
            Self::order_boundary_into(
                &self.input,
                &self.vertices,
                scratch,
                &mut self.boundary_indices,
            );
        }
        true
    }

    /// `true` when the scratch's boundary tags verifiably describe this
    /// hull's boundary ordering: same length, emitted in the same index
    /// order, sorted. (Single-vertex hulls never produce tags — see
    /// `order_boundary_into` — so they always take the full-reorder path.)
    fn tags_pair_with(&self, scratch: &HullScratch) -> bool {
        self.vertices.len() > 1
            && scratch.tagged.len() == self.boundary_indices.len()
            && scratch
                .tagged
                .iter()
                .zip(&self.boundary_indices)
                .all(|(&(_, _, i), &b)| i == b)
            && scratch
                .tagged
                .windows(2)
                .all(|w| tag_order(&w[0], &w[1]) != Ordering::Greater)
    }

    /// Orders all input points lying on the hull boundary counter-clockwise
    /// along the boundary (corners and edge-interior points alike), writing
    /// the indices into `out`.
    fn order_boundary_into(
        points: &[Point],
        vertices: &[Point],
        scratch: &mut HullScratch,
        out: &mut Vec<usize>,
    ) {
        Self::order_boundary_into_k::<EpsKernel>(points, vertices, scratch, out);
    }

    /// [`Self::order_boundary_into`] with the boundary membership test of
    /// each point routed through kernel `K`. The [`EdgePrefilter`]
    /// rejection stays shared: its bounds carry a 2× slack over
    /// [`BOUNDARY_TOL`], so any point the exact kernel could accept (within
    /// one f64 rounding of the tolerance) still reaches the kernel test.
    fn order_boundary_into_k<K: Kernel>(
        points: &[Point],
        vertices: &[Point],
        scratch: &mut HullScratch,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        if vertices.len() == 1 {
            out.extend(
                points
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.approx_eq(vertices[0]))
                    .map(|(i, _)| i),
            );
            return;
        }
        // For each boundary input point find (edge index, parameter along edge).
        let nv = vertices.len();
        let tagged = &mut scratch.tagged;
        tagged.clear(); // (edge, t, input index)
        let edge_count = if nv == 2 { 1 } else { nv };
        // Precompute each edge's rejection bounds once: the inner loop then
        // discards almost every (point, edge) pair with a cross product and
        // a dot product, and only the handful of survivors pay for the
        // exact segment-distance evaluation. This is where the hull spent
        // ~90% of its time before.
        let edge_pre = &mut scratch.edge_pre;
        edge_pre.clear();
        edge_pre.extend(
            (0..edge_count).map(|e| EdgePrefilter::new(vertices[e], vertices[(e + 1) % nv])),
        );
        for (idx, &p) in points.iter().enumerate() {
            if let Some((e, t)) = Self::tag_point_k::<K>(p, edge_pre, edge_count) {
                tagged.push((e, t, idx));
            }
        }
        // Unstable sort with the input index as the final tie-break: no
        // allocation, and exactly the order the previous stable sort
        // produced (stable sort ≡ sort by (key, original position)).
        tagged.sort_unstable_by(tag_order);
        out.extend(tagged.iter().map(|&(_, _, i)| i));
    }

    /// The boundary tag of one point: the hull edge it lies on (within the
    /// ordering tolerance) and its parameter along that edge, or `None` for
    /// points off the boundary. Shared by the full boundary ordering and
    /// the single-point patch of [`Self::repair_point_move`], so both
    /// compute bitwise-identical tags.
    fn tag_point(p: Point, edge_pre: &[EdgePrefilter], edge_count: usize) -> Option<(usize, f64)> {
        Self::tag_point_k::<EpsKernel>(p, edge_pre, edge_count)
    }

    /// [`Self::tag_point`] with the `d <= BOUNDARY_TOL` membership test
    /// decided by kernel `K`. The *ordering* between several accepted edges
    /// and the edge parameter `t` are f64 constructions shared by all
    /// kernels (the corner-snap rule is a parameter-space convention, not a
    /// geometric classification).
    fn tag_point_k<K: Kernel>(
        p: Point,
        edge_pre: &[EdgePrefilter],
        edge_count: usize,
    ) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64, f64)> = None; // (edge, t, dist)
        for (e, pre) in edge_pre.iter().enumerate() {
            if !pre.may_touch(p) {
                continue;
            }
            let (a, b) = (pre.a, pre.b);
            let seg = Segment::new(a, b);
            let d = seg.distance_to(p);
            if K::cmp_segment_dist(a, b, p, BOUNDARY_TOL) != Ordering::Greater {
                let t = if seg.length() <= f64::EPSILON {
                    0.0
                } else {
                    (p - a).dot(seg.direction()) / seg.direction().norm_sq()
                };
                match best {
                    Some((_, _, bd)) if bd <= d => {}
                    _ => best = Some((e, t.clamp(0.0, 1.0), d)),
                }
            }
        }
        best.map(|(e, t, _)| {
            // Avoid double-counting a corner as the end of one edge and
            // the start of the next: snap t≈1 to the next edge at t=0.
            if t >= 1.0 - 1e-9 && edge_count > 1 {
                ((e + 1) % edge_count, 0.0)
            } else {
                (e, t)
            }
        })
    }

    /// The corner vertices in counter-clockwise order (no three collinear).
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Indices (into the input slice) of all points on the hull boundary, in
    /// counter-clockwise order along the boundary.
    pub fn boundary_indices(&self) -> &[usize] {
        &self.boundary_indices
    }

    /// All input points on the hull boundary, in counter-clockwise order.
    pub fn boundary(&self) -> Vec<Point> {
        self.boundary_iter().collect()
    }

    /// Iterator form of [`Self::boundary`]: the boundary points in
    /// counter-clockwise order, without allocating.
    pub fn boundary_iter(&self) -> impl Iterator<Item = Point> + '_ {
        self.boundary_indices.iter().map(|&i| self.input[i])
    }

    /// Number of input points on the hull boundary (the paper's `|onCH(·)|`).
    pub fn boundary_len(&self) -> usize {
        self.boundary_indices.len()
    }

    /// The input points this hull was built from.
    pub fn input(&self) -> &[Point] {
        &self.input
    }

    /// `true` when input point `index` lies on the hull boundary.
    pub fn index_on_hull(&self, index: usize) -> bool {
        self.boundary_indices.contains(&index)
    }

    /// `true` when `p` lies on the hull boundary (within tolerance), whether
    /// or not it is one of the input points.
    pub fn point_on_boundary(&self, p: Point) -> bool {
        self.point_on_boundary_k::<EpsKernel>(p)
    }

    /// [`Self::point_on_boundary`] with the edge-distance tests decided by
    /// kernel `K` (single-vertex hulls use shared point identity).
    pub fn point_on_boundary_k<K: Kernel>(&self, p: Point) -> bool {
        let nv = self.vertices.len();
        match nv {
            1 => self.vertices[0].approx_eq(p),
            2 => {
                K::cmp_segment_dist(self.vertices[0], self.vertices[1], p, BOUNDARY_TOL)
                    != Ordering::Greater
            }
            _ => (0..nv).any(|e| {
                K::cmp_segment_dist(
                    self.vertices[e],
                    self.vertices[(e + 1) % nv],
                    p,
                    BOUNDARY_TOL,
                ) != Ordering::Greater
            }),
        }
    }

    /// `true` when `p` is a corner vertex of the hull.
    pub fn is_vertex(&self, p: Point) -> bool {
        self.vertices.iter().any(|v| v.approx_eq(p))
    }

    /// `true` when `p` lies inside the hull or on its boundary.
    pub fn contains(&self, p: Point) -> bool {
        self.contains_k::<EpsKernel>(p)
    }

    /// [`Self::contains`] with the per-edge side tests decided by kernel
    /// `K`: `p` is inside iff no edge sees it strictly clockwise beyond the
    /// [`BOUNDARY_TOL`] band (under [`EpsKernel`] exactly the historic
    /// `cross_of_triple(..) >= -1e-7` test).
    pub fn contains_k<K: Kernel>(&self, p: Point) -> bool {
        let nv = self.vertices.len();
        match nv {
            1 => self.vertices[0].approx_eq(p),
            2 => {
                K::cmp_segment_dist(self.vertices[0], self.vertices[1], p, BOUNDARY_TOL)
                    != Ordering::Greater
            }
            _ => (0..nv).all(|e| {
                K::orientation_tol(
                    self.vertices[e],
                    self.vertices[(e + 1) % nv],
                    p,
                    BOUNDARY_TOL,
                ) != Orientation::Clockwise
            }),
        }
    }

    /// `true` when `p` lies strictly inside the hull (not on the boundary).
    pub fn contains_strict(&self, p: Point) -> bool {
        self.contains_strict_k::<EpsKernel>(p)
    }

    /// [`Self::contains_strict`] under kernel `K`.
    pub fn contains_strict_k<K: Kernel>(&self, p: Point) -> bool {
        self.contains_k::<K>(p) && !self.point_on_boundary_k::<K>(p)
    }

    /// Neighbours of boundary point `p` along the boundary ordering:
    /// `(left, right)` where *left* is the next boundary point
    /// counter-clockwise and *right* is the next boundary point clockwise.
    ///
    /// Matches the paper's convention under chirality: looking from a hull
    /// robot towards the inside of the hull, its *right* neighbour is the next
    /// robot clockwise along the hull.
    ///
    /// Returns `None` when `p` is not a boundary point or the hull has fewer
    /// than two boundary points.
    pub fn neighbors_of(&self, p: Point) -> Option<(Point, Point)> {
        let m = self.boundary_indices.len();
        if m < 2 {
            return None;
        }
        let pos = self
            .boundary_indices
            .iter()
            .position(|&i| self.input[i].approx_eq(p))?;
        let left = self.input[self.boundary_indices[(pos + 1) % m]];
        let right = self.input[self.boundary_indices[(pos + m - 1) % m]];
        Some((left, right))
    }

    /// Edges of the corner-vertex polygon as segments, counter-clockwise.
    pub fn edges(&self) -> Vec<Segment> {
        self.edges_iter().collect()
    }

    /// Iterator form of [`Self::edges`]: the corner-polygon edges in
    /// counter-clockwise order, without allocating. A two-vertex hull
    /// yields its single segment once; degenerate hulls yield nothing.
    pub fn edges_iter(&self) -> impl Iterator<Item = Segment> + '_ {
        let nv = self.vertices.len();
        let count = match nv {
            0 | 1 => 0,
            2 => 1,
            _ => nv,
        };
        (0..count).map(move |e| Segment::new(self.vertices[e], self.vertices[(e + 1) % nv]))
    }

    /// Consecutive pairs of *boundary points* (the paper's "neighbouring
    /// points on the convex hull"), counter-clockwise.
    pub fn boundary_edges(&self) -> Vec<Segment> {
        let b = self.boundary();
        let m = b.len();
        match m {
            0 | 1 => vec![],
            2 => vec![Segment::new(b[0], b[1])],
            _ => (0..m).map(|i| Segment::new(b[i], b[(i + 1) % m])).collect(),
        }
    }

    /// Area of the hull polygon (0 for degenerate hulls).
    pub fn area(&self) -> f64 {
        let nv = self.vertices.len();
        if nv < 3 {
            return 0.0;
        }
        let mut sum = 0.0;
        for i in 0..nv {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % nv];
            sum += a.x * b.y - b.x * a.y;
        }
        sum.abs() / 2.0
    }

    /// Perimeter of the hull polygon.
    pub fn perimeter(&self) -> f64 {
        self.edges_iter().map(|e| e.length()).sum()
    }

    /// Outward unit normal of the boundary at the edge from `a` to `b`, where
    /// `a`, `b` are consecutive boundary points in counter-clockwise order.
    ///
    /// For a CCW polygon the outward normal of edge `a → b` is the clockwise
    /// perpendicular of the edge direction.
    pub fn outward_normal(a: Point, b: Point) -> crate::point::Vec2 {
        (b - a).normalized().perp_cw()
    }

    /// `true` when every input point lies on the hull boundary
    /// (the paper's condition `|onCH(G)| = n`).
    pub fn all_on_hull(&self) -> bool {
        self.boundary_indices.len() == self.input.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn square_with_extras() -> Vec<Point> {
        vec![
            p(0.0, 0.0),
            p(4.0, 0.0),
            p(4.0, 4.0),
            p(0.0, 4.0),
            p(2.0, 0.0), // on bottom edge
            p(2.0, 2.0), // interior
        ]
    }

    #[test]
    fn hull_of_square() {
        let h = convex_hull(&square_with_extras());
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn boundary_includes_edge_points_but_not_interior() {
        let pts = square_with_extras();
        let hull = ConvexHull::from_points(&pts);
        assert_eq!(hull.vertices().len(), 4);
        assert_eq!(hull.boundary_len(), 5);
        assert!(hull.index_on_hull(4));
        assert!(!hull.index_on_hull(5));
        assert!(!hull.all_on_hull());
    }

    #[test]
    fn boundary_order_is_cyclic_and_consistent() {
        let pts = square_with_extras();
        let hull = ConvexHull::from_points(&pts);
        let b = hull.boundary();
        assert_eq!(b.len(), 5);
        // Each consecutive pair must lie on a common hull edge.
        for w in 0..b.len() {
            let a = b[w];
            let c = b[(w + 1) % b.len()];
            assert!(a.distance(c) > 0.0);
        }
        // The edge point (2,0) must be between (0,0) and (4,0) in the cyclic order.
        let pos = |q: Point| b.iter().position(|x| x.approx_eq(q)).unwrap();
        let i00 = pos(p(0.0, 0.0));
        let i20 = pos(p(2.0, 0.0));
        let i40 = pos(p(4.0, 0.0));
        let m = b.len();
        assert!(
            (i00 + 1) % m == i20 && (i20 + 1) % m == i40
                || (i40 + 1) % m == i20 && (i20 + 1) % m == i00
        );
    }

    #[test]
    fn neighbors_on_square() {
        let pts = vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 4.0), p(0.0, 4.0)];
        let hull = ConvexHull::from_points(&pts);
        let (left, right) = hull.neighbors_of(p(0.0, 0.0)).unwrap();
        // CCW order of the square is (0,0),(4,0),(4,4),(0,4).
        assert!(left.approx_eq(p(4.0, 0.0)));
        assert!(right.approx_eq(p(0.0, 4.0)));
        assert!(hull.neighbors_of(p(9.0, 9.0)).is_none());
    }

    #[test]
    fn containment_queries() {
        let hull = ConvexHull::from_points(&square_with_extras());
        assert!(hull.contains(p(2.0, 2.0)));
        assert!(hull.contains_strict(p(2.0, 2.0)));
        assert!(hull.contains(p(2.0, 0.0)));
        assert!(!hull.contains_strict(p(2.0, 0.0)));
        assert!(!hull.contains(p(5.0, 5.0)));
        assert!(hull.point_on_boundary(p(4.0, 2.0)));
        assert!(!hull.point_on_boundary(p(2.0, 2.0)));
    }

    #[test]
    fn area_and_perimeter() {
        let hull = ConvexHull::from_points(&square_with_extras());
        assert!((hull.area() - 16.0).abs() < 1e-9);
        assert!((hull.perimeter() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_collinear_input() {
        let pts = vec![p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0), p(3.0, 0.0)];
        let hull = ConvexHull::from_points(&pts);
        assert_eq!(hull.vertices().len(), 2);
        assert_eq!(hull.boundary_len(), 4);
        assert!(hull.all_on_hull());
        assert_eq!(hull.area(), 0.0);
        assert!(hull.contains(p(1.5, 0.0)));
        assert!(!hull.contains(p(1.5, 1.0)));
    }

    #[test]
    fn degenerate_small_inputs() {
        let one = ConvexHull::from_points(&[p(1.0, 1.0)]);
        assert_eq!(one.vertices().len(), 1);
        assert_eq!(one.boundary_len(), 1);
        assert!(one.contains(p(1.0, 1.0)));
        assert!(!one.contains(p(2.0, 1.0)));

        let two = ConvexHull::from_points(&[p(0.0, 0.0), p(2.0, 0.0)]);
        assert_eq!(two.vertices().len(), 2);
        assert_eq!(two.boundary_len(), 2);
        assert_eq!(two.edges().len(), 1);
    }

    #[test]
    fn vertices_are_counter_clockwise() {
        let pts = vec![
            p(0.0, 0.0),
            p(3.0, 1.0),
            p(4.0, 4.0),
            p(1.0, 3.0),
            p(2.0, 2.0),
        ];
        let hull = ConvexHull::from_points(&pts);
        let v = hull.vertices();
        let mut area2 = 0.0;
        for i in 0..v.len() {
            let a = v[i];
            let b = v[(i + 1) % v.len()];
            area2 += a.x * b.y - b.x * a.y;
        }
        assert!(area2 > 0.0, "vertices must be in CCW order");
    }

    #[test]
    fn outward_normal_points_out() {
        let pts = vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 4.0), p(0.0, 4.0)];
        let hull = ConvexHull::from_points(&pts);
        // Bottom edge (0,0)->(4,0): outward normal should point to -y.
        let n = ConvexHull::outward_normal(p(0.0, 0.0), p(4.0, 0.0));
        assert!(n.y < 0.0);
        let inside = p(2.0, 2.0);
        assert!(hull.contains(inside));
        assert!(!hull.contains(inside + n * 10.0));
    }

    #[test]
    fn rebuild_with_matches_from_points_across_shapes() {
        let mut hull = ConvexHull::default();
        let mut scratch = HullScratch::default();
        let inputs: Vec<Vec<Point>> = vec![
            square_with_extras(),
            vec![p(1.0, 1.0)],
            vec![p(0.0, 0.0), p(2.0, 0.0)],
            vec![p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0), p(3.0, 0.0)],
            vec![
                p(0.0, 0.0),
                p(3.0, 1.0),
                p(4.0, 4.0),
                p(1.0, 3.0),
                p(2.0, 2.0),
            ],
        ];
        // One hull + one scratch reused across every rebuild must always
        // reproduce the from-scratch construction exactly.
        for pts in &inputs {
            hull.rebuild_with(pts, &mut scratch);
            assert_eq!(hull, ConvexHull::from_points(pts));
        }
    }

    #[test]
    fn iterator_accessors_match_their_vec_forms() {
        let hull = ConvexHull::from_points(&square_with_extras());
        assert_eq!(hull.boundary_iter().collect::<Vec<_>>(), hull.boundary());
        assert_eq!(hull.edges_iter().collect::<Vec<_>>(), hull.edges());
        let two = ConvexHull::from_points(&[p(0.0, 0.0), p(2.0, 0.0)]);
        assert_eq!(two.edges_iter().count(), 1);
        let one = ConvexHull::from_points(&[p(1.0, 1.0)]);
        assert_eq!(one.edges_iter().count(), 0);
    }

    /// Replays a move script through `repair_point_move`, asserting after
    /// every move that the repaired hull is structure-for-structure
    /// identical to a from-scratch build of the moved point set.
    fn assert_repairs_match_rebuilds(mut pts: Vec<Point>, script: &[(usize, Point)]) {
        let mut hull = ConvexHull::default();
        let mut scratch = HullScratch::default();
        hull.rebuild_with(&pts, &mut scratch);
        for &(i, to) in script {
            pts[i] = to;
            assert!(
                hull.repair_point_move(i, to, &mut scratch),
                "a paired scratch must accept the repair"
            );
            assert_eq!(
                hull,
                ConvexHull::from_points(&pts),
                "repair diverged from rebuild after moving point {i} to {to:?}"
            );
        }
    }

    #[test]
    fn repair_matches_rebuild_for_interior_and_boundary_moves() {
        assert_repairs_match_rebuilds(
            square_with_extras(),
            &[
                (5, p(1.0, 1.0)),  // interior → interior
                (5, p(3.0, 0.0)),  // interior → onto an edge
                (5, p(2.5, 2.5)),  // back off the edge
                (4, p(2.0, 2.0)),  // edge point → interior
                (1, p(6.0, -1.0)), // corner vertex moves outward
                (1, p(1.0, 1.0)),  // corner collapses inward: hull loses a vertex
                (2, p(4.0, 4.0)),  // no-op move (same position)
            ],
        );
    }

    #[test]
    fn repair_handles_degenerate_and_coincident_configurations() {
        // Collinear input gaining a 2D point and collapsing back.
        assert_repairs_match_rebuilds(
            vec![p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0), p(3.0, 0.0)],
            &[
                (1, p(1.0, 2.0)), // off the line: a triangle appears
                (1, p(1.5, 0.0)), // back onto the line
                (3, p(0.0, 0.0)), // coincides exactly with point 0
                (3, p(3.0, 0.0)), // and separates again
            ],
        );
        // Two points swapping roles.
        assert_repairs_match_rebuilds(
            vec![p(0.0, 0.0), p(2.0, 0.0)],
            &[(0, p(5.0, 5.0)), (1, p(5.0, 5.0))],
        );
    }

    #[test]
    fn repair_refuses_an_unpaired_scratch() {
        let pts = square_with_extras();
        let mut hull = ConvexHull::from_points(&pts);
        // A cold scratch was never paired with this hull.
        let mut cold = HullScratch::default();
        assert!(!hull.repair_point_move(5, p(1.0, 1.0), &mut cold));
        assert_eq!(hull, ConvexHull::from_points(&pts), "a refusal is a no-op");
        // A scratch paired with a *different* point set of the same size is
        // rejected through the sorted-entry check.
        let mut other_hull = ConvexHull::default();
        let mut other = HullScratch::default();
        let shifted: Vec<Point> = pts.iter().map(|q| Point::new(q.x + 100.0, q.y)).collect();
        other_hull.rebuild_with(&shifted, &mut other);
        assert!(!hull.repair_point_move(5, p(1.0, 1.0), &mut other));
        // Out-of-range index.
        let mut paired = HullScratch::default();
        hull.rebuild_with(&pts, &mut paired);
        assert!(!hull.repair_point_move(99, p(1.0, 1.0), &mut paired));
    }

    #[test]
    fn repair_keeps_the_scratch_paired_across_a_long_sequence() {
        // Oscillate one point across the boundary many times: every repair
        // must leave the scratch valid for the next one.
        let mut pts = square_with_extras();
        let mut hull = ConvexHull::default();
        let mut scratch = HullScratch::default();
        hull.rebuild_with(&pts, &mut scratch);
        for k in 0..50 {
            let to = if k % 2 == 0 { p(2.0, 0.0) } else { p(2.0, 2.0) };
            pts[5] = to;
            assert!(hull.repair_point_move(5, to, &mut scratch));
            assert_eq!(hull, ConvexHull::from_points(&pts));
        }
    }

    #[test]
    fn all_on_hull_detects_convex_position() {
        let pts = vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 4.0), p(0.0, 4.0)];
        assert!(ConvexHull::from_points(&pts).all_on_hull());
        let mut with_interior = pts.clone();
        with_interior.push(p(2.0, 2.0));
        assert!(!ConvexHull::from_points(&with_interior).all_on_hull());
    }
}
