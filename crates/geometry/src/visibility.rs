//! Visibility between unit discs among unit-disc obstacles.
//!
//! Section 2 of the paper defines visibility as follows: a point `p` is
//! visible to robot `r_i` when there is a point `p_i` on the bounding circle
//! of `r_i` such that the open segment `(p_i, p)` contains no point of any
//! *other* robot; `r_i` sees robot `r_j` when at least one point of `r_j`'s
//! bounding circle is visible to `r_i`.
//!
//! Deciding this exactly requires an arrangement of tangent lines. We use a
//! two-tier approach:
//!
//! 1. **Exact test in convex position** — when all centers in question lie on
//!    their common convex hull and no three are collinear, every robot sees
//!    every other robot (this is the equivalence the paper's Lemma 4 relies
//!    on). [`fully_visible_in_convex_position`] decides this case exactly.
//! 2. **Conservative sampling test for arbitrary configurations** —
//!    [`disc_sees_disc`] tries the center segment, the two outer tangent
//!    segments and a configurable grid of boundary-point pairs; a segment
//!    counts as a sight line when it does not pass through the **interior** of
//!    any other disc. This test never reports visibility that does not exist
//!    (each witness segment is a genuine sight line); it can miss sight lines
//!    that only exist through very thin gaps, which makes the simulated robots
//!    strictly *more* conservative than the paper's idealised robots — they
//!    act on less information, never on wrong information.

use std::cmp::Ordering;

use crate::circle::{Circle, UNIT_RADIUS};
use crate::hull::ConvexHull;
use crate::kernel::{EpsKernel, Kernel};
use crate::line::Line;
use crate::point::Point;
use crate::predicates::Orientation;
use crate::segment::Segment;

/// Pruning radius for the pair-level visibility test: a disc whose center is
/// farther than this from the segment joining two centers can neither enter
/// the corridor-obstacle set of [`disc_sees_disc_among`] (which requires a
/// perpendicular offset below `3·UNIT_RADIUS`) nor block any candidate
/// witness segment (candidates lie in the radius-`UNIT_RADIUS` capsule
/// around the chord, so a blocker sits within `2·UNIT_RADIUS` plus the
/// clearance of the chord). Passing any superset of the centers within this
/// distance of the chord to [`disc_sees_disc_among`] therefore yields
/// exactly the same answer as passing every center.
pub const VISIBILITY_PRUNE_RADIUS: f64 = 3.0 * UNIT_RADIUS;

/// The corridor-obstacle predicate of the pair-level test: `true` when the
/// center `ck` projects strictly between the chord endpoints and lies
/// within [`VISIBILITY_PRUNE_RADIUS`] of the chord's supporting line.
/// `ci` is the first endpoint, `dir`/`perp` the chord's unit direction and
/// CCW normal, `span` its length. This single definition is what
/// [`disc_sees_disc`]'s early-out, [`disc_sees_disc_among`]'s filter, and
/// (through the constant) the simulator's cache invalidation all agree on.
#[inline]
fn in_corridor(
    ci: Point,
    dir: crate::point::Vec2,
    perp: crate::point::Vec2,
    span: f64,
    ck: Point,
) -> bool {
    let w = ck - ci;
    let along = w.dot(dir);
    along > 0.0 && along < span && w.dot(perp).abs() < VISIBILITY_PRUNE_RADIUS
}

/// Tuning parameters for the sampling-based visibility test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VisibilityConfig {
    /// Number of boundary sample points per disc (per side of the sight
    /// corridor). Higher values find thinner sight lines at higher cost.
    pub samples: usize,
    /// Obstacle tolerance: a segment is blocked when it comes within
    /// `radius + shrink` of an obstacle center. Robots are closed discs, so
    /// grazing an obstacle boundary blocks the sight line (this is why three
    /// collinear hull robots break full visibility).
    pub shrink: f64,
}

impl Default for VisibilityConfig {
    fn default() -> Self {
        VisibilityConfig {
            samples: 12,
            shrink: 1e-9,
        }
    }
}

/// `true` when the segment avoids the interior of every obstacle disc.
pub fn segment_clear(seg: &Segment, obstacles: &[Circle], cfg: &VisibilityConfig) -> bool {
    segment_clear_k::<EpsKernel>(seg, obstacles, cfg)
}

/// [`segment_clear`] with the per-disc blocking tests decided by kernel `K`.
pub fn segment_clear_k<K: Kernel>(
    seg: &Segment,
    obstacles: &[Circle],
    cfg: &VisibilityConfig,
) -> bool {
    obstacles
        .iter()
        .all(|c| !c.blocks_segment_k::<K>(seg, cfg.shrink))
}

/// `true` when the unit disc centred at `centers[i]` can see the unit disc
/// centred at `centers[j]`, treating every other disc in `centers` as an
/// opaque obstacle.
///
/// The test searches for a *witness sight segment* from the boundary of disc
/// `i` to the boundary of disc `j` that stays strictly clear of every other
/// (closed) disc, in two stages:
///
/// 1. **Parallel family** — segments at a common perpendicular offset
///    `o ∈ [−1, 1]` from the center-to-center chord. The candidate offsets
///    are the corridor edges plus the edges of every obstacle's blocked
///    interval.
/// 2. **Slanted family** — when no parallel witness exists, segments whose
///    perpendicular offsets at the two endpoints differ (`o₁ ≠ o₂`), with
///    both endpoints drawn from the same critical-offset set. This covers
///    the thin diagonal sight lines that appear when touching robots sit
///    near the line of sight at different depths.
///
/// Every candidate is verified with an exact segment-versus-disc distance
/// test, so a `true` answer always corresponds to a genuine sight line.
/// A `false` answer can in principle miss exotic witnesses that are tangent
/// to two obstacles while aligned with neither endpoint's critical offsets,
/// but such configurations do not arise from the gathering dynamics (and the
/// test errs on the conservative side: the robot acts as if it saw less, not
/// more).
///
/// # Panics
/// Panics if `i == j` or either index is out of bounds.
pub fn disc_sees_disc(i: usize, j: usize, centers: &[Point], cfg: &VisibilityConfig) -> bool {
    disc_sees_disc_k::<EpsKernel>(i, j, centers, cfg)
}

/// [`disc_sees_disc`] with the witness verification decided by kernel `K`.
///
/// Kernel routing covers the *blocking classifications* (candidate segment
/// vs obstacle distance). The candidate **constructions** — corridor frame,
/// critical offsets, boundary endpoints, tangent lines — are shared f64 by
/// all kernels: the search is existential over a sampled candidate set, so
/// constructions determine only *which* witnesses are tried, while the
/// kernel decides whether a tried witness is genuinely clear.
///
/// # Panics
/// Panics if `i == j` or either index is out of bounds.
pub fn disc_sees_disc_k<K: Kernel>(
    i: usize,
    j: usize,
    centers: &[Point],
    cfg: &VisibilityConfig,
) -> bool {
    assert!(i != j, "a robot trivially sees itself");
    // Evaluate in normalized (lower index first) orientation: the kernel's
    // strict float comparisons are not exactly symmetric under endpoint
    // swap, and every caller — including the simulator's cached pair
    // matrix, which stores one entry per unordered pair — must see the
    // same answer for (i, j) and (j, i).
    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
    let ci = centers[lo];
    let cj = centers[hi];
    // Cheap no-allocation early-out through the shared `in_corridor`
    // predicate: with no center in the corridor the kernel returns `true`
    // without looking at the obstacle slice.
    let axis = cj - ci;
    let span = axis.norm();
    if span <= f64::EPSILON {
        return true;
    }
    let dir = axis / span;
    let perp = dir.perp_ccw();
    let corridor_empty = !centers
        .iter()
        .enumerate()
        .any(|(k, &ck)| k != lo && k != hi && in_corridor(ci, dir, perp, span, ck));
    if corridor_empty {
        return true;
    }
    let others: Vec<Point> = centers
        .iter()
        .enumerate()
        .filter(|&(k, _)| k != lo && k != hi)
        .map(|(_, &c)| c)
        .collect();
    disc_sees_disc_among_k::<K>(ci, cj, &others, cfg)
}

/// Pair-level form of [`disc_sees_disc`]: decides whether the unit disc at
/// `ci` sees the unit disc at `cj` when exactly the discs in `obstacles`
/// (which must not include `ci` or `cj`) are present.
///
/// `obstacles` may safely contain discs that are irrelevant to the pair —
/// the corridor filter below discards them — so callers with a spatial
/// index can pass any superset of the centers within
/// [`VISIBILITY_PRUNE_RADIUS`] of the segment `ci`–`cj` and obtain exactly
/// the same answer as the exhaustive test over all centers.
pub fn disc_sees_disc_among(
    ci: Point,
    cj: Point,
    obstacles: &[Point],
    cfg: &VisibilityConfig,
) -> bool {
    disc_sees_disc_among_k::<EpsKernel>(ci, cj, obstacles, cfg)
}

/// [`disc_sees_disc_among`] with the blocking classifications decided by
/// kernel `K` (see [`disc_sees_disc_k`] for what routing does and does not
/// cover).
pub fn disc_sees_disc_among_k<K: Kernel>(
    ci: Point,
    cj: Point,
    obstacles: &[Point],
    cfg: &VisibilityConfig,
) -> bool {
    // The kernel runs hundreds of thousands of times per simulated second;
    // its working buffers live in a per-thread scratch so the steady state
    // performs no heap allocation (sweep workers each get their own).
    AMONG_SCRATCH.with(|scratch| {
        disc_sees_disc_among_with::<K>(ci, cj, obstacles, cfg, &mut scratch.borrow_mut())
    })
}

/// Reusable working buffers of [`disc_sees_disc_among`].
#[derive(Default)]
struct AmongScratch {
    /// Corridor obstacles; doubles as the stage-3 `relevant` list.
    corridor: Vec<Point>,
    /// Critical perpendicular offsets.
    offsets: Vec<f64>,
    /// Threat-ordered obstacle copy (large slices only).
    threat: Vec<Point>,
    /// Per-offset boundary endpoints + blocked flags, disc `i` / disc `j`.
    ends_i: Vec<(Point, bool)>,
    ends_j: Vec<(Point, bool)>,
}

thread_local! {
    static AMONG_SCRATCH: std::cell::RefCell<AmongScratch> =
        std::cell::RefCell::new(AmongScratch::default());
}

fn disc_sees_disc_among_with<K: Kernel>(
    ci: Point,
    cj: Point,
    obstacles: &[Point],
    cfg: &VisibilityConfig,
    scratch: &mut AmongScratch,
) -> bool {
    let axis = cj - ci;
    let span = axis.norm();
    if span <= f64::EPSILON {
        return true;
    }
    let dir = axis / span;
    let perp = dir.perp_ccw();

    // Obstacles that can possibly obstruct: those whose centers project
    // strictly between the two endpoints and whose perpendicular offset is
    // within one diameter of the corridor (the shared `in_corridor`
    // predicate).
    let AmongScratch {
        corridor,
        offsets,
        threat,
        ends_i,
        ends_j,
    } = scratch;
    corridor.clear();
    corridor.extend(
        obstacles
            .iter()
            .filter(|&&ck| in_corridor(ci, dir, perp, span, ck)),
    );
    if corridor.is_empty() {
        return true;
    }

    // Critical perpendicular offsets: the corridor edges and both edges of
    // every obstacle's shadow.
    let clearance = cfg.shrink.max(1e-9);
    offsets.clear();
    offsets.push(-UNIT_RADIUS);
    offsets.push(UNIT_RADIUS);
    for &c in corridor.iter() {
        let o = (c - ci).dot(perp);
        offsets.push(o - UNIT_RADIUS - clearance);
        offsets.push(o + UNIT_RADIUS + clearance);
    }
    offsets.retain(|o| (-UNIT_RADIUS..=UNIT_RADIUS).contains(o));

    // Endpoint on the boundary of the disc at `center`, at perpendicular
    // offset `o`, on the side facing the other disc (`sign` = +1 towards j,
    // −1 towards i).
    let endpoint = |center: Point, o: f64, sign: f64| {
        let along = (UNIT_RADIUS * UNIT_RADIUS - o * o).max(0.0).sqrt();
        center + perp * o + dir * (along * sign)
    };

    // The search below is purely **existential** — the answer is `true` iff
    // *some* candidate segment verifies as clear — so three transformations
    // speed up the (expensive, every-candidate-fails) blocked case without
    // changing any answer:
    //
    // * obstacles are verified in **threat order** (ascending perpendicular
    //   distance from the chord axis), so a blocked candidate meets its
    //   blocker after one or two tests instead of scanning the whole slice
    //   (`all` over a set is order-independent);
    // * the per-offset boundary endpoints are computed **once** instead of
    //   once per candidate pair (same formula, same values);
    // * candidates whose endpoint already sits within blocking range of
    //   some obstacle are **pruned**: the closest segment point to that
    //   obstacle is at most the endpoint distance away, so verification
    //   provably fails. Pruning only ever skips failing candidates.
    //
    // Small slices skip the sorting/precompute bookkeeping (it costs more
    // than it saves there) and run the same candidate loops directly.
    let block_dist = UNIT_RADIUS + clearance / 2.0;
    let block_sq = block_dist * block_dist;
    let threat: &[Point] = if obstacles.len() >= SORTED_THREAT_MIN {
        threat.clear();
        threat.extend_from_slice(obstacles);
        threat.sort_unstable_by(|a, b| {
            let oa = (*a - ci).dot(perp).abs();
            let ob = (*b - ci).dot(perp).abs();
            oa.partial_cmp(&ob).unwrap_or(std::cmp::Ordering::Equal)
        });
        threat
    } else {
        obstacles
    };
    // A candidate is a genuine witness when every obstacle keeps squared
    // distance > block_sq from it — the kernel's squared segment-distance
    // classification (bit-identical to the historic inline closest-point
    // computation under the ε kernel).
    let clear = |p1: Point, p2: Point| {
        threat
            .iter()
            .all(|&ck| K::cmp_segment_dist_sq(p1, p2, ck, block_sq) == Ordering::Greater)
    };

    if obstacles.len() < SORTED_THREAT_MIN {
        // Stages 1 and 2, direct form.
        for &o in offsets.iter() {
            if clear(endpoint(ci, o, 1.0), endpoint(cj, o, -1.0)) {
                return true;
            }
        }
        for &o1 in offsets.iter() {
            for &o2 in offsets.iter() {
                if crate::predicates::approx_eq_tol(o1, o2, f64::EPSILON) {
                    continue;
                }
                if clear(endpoint(ci, o1, 1.0), endpoint(cj, o2, -1.0)) {
                    return true;
                }
            }
        }
    } else {
        // Degenerate-segment form of the same kernel classification: the
        // prune must agree with `clear`, or exact evaluation could skip a
        // candidate the exact `clear` would have accepted.
        let point_blocked = |p: Point| {
            threat
                .iter()
                .any(|&ck| K::cmp_segment_dist_sq(p, p, ck, block_sq) != Ordering::Greater)
        };
        ends_i.clear();
        ends_i.extend(offsets.iter().map(|&o| {
            let p = endpoint(ci, o, 1.0);
            (p, point_blocked(p))
        }));
        ends_j.clear();
        ends_j.extend(offsets.iter().map(|&o| {
            let p = endpoint(cj, o, -1.0);
            (p, point_blocked(p))
        }));

        // Stage 1: parallel witnesses.
        for (&(p1, b1), &(p2, b2)) in ends_i.iter().zip(ends_j.iter()) {
            if !b1 && !b2 && clear(p1, p2) {
                return true;
            }
        }
        // Stage 2: slanted witnesses with both endpoint offsets critical.
        for (i1, &o1) in offsets.iter().enumerate() {
            let (p1, b1) = ends_i[i1];
            if b1 {
                continue;
            }
            for (i2, &o2) in offsets.iter().enumerate() {
                if crate::predicates::approx_eq_tol(o1, o2, f64::EPSILON) {
                    continue;
                }
                let (p2, b2) = ends_j[i2];
                if !b2 && clear(p1, p2) {
                    return true;
                }
            }
        }
    }
    // Stage 3: witnesses tangent to two of the circles involved. If any free
    // sight segment exists it can be translated/rotated until it touches two
    // of the discs (possibly the endpoints' own discs), so enumerating the
    // common tangent lines of every pair — pushed out by the clearance so
    // the witness is strictly free — is a complete search up to that
    // clearance.
    let relevant = corridor;
    relevant.push(ci);
    relevant.push(cj);
    let mut lines = [Line::through(Point::ORIGIN, Point::new(1.0, 0.0)); 8];
    for a in 0..relevant.len() {
        for b in (a + 1)..relevant.len() {
            let count = tangent_candidate_lines(
                relevant[a],
                relevant[b],
                UNIT_RADIUS + clearance,
                (ci, cj),
                &mut lines,
            );
            for line in &lines[..count] {
                if let Some(seg) = chord_between_discs::<K>(line, ci, cj) {
                    if clear(seg.a, seg.b) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Obstacle-slice size from which the pair kernel's blocked-case
/// bookkeeping (threat-sorted verification order, endpoint precompute,
/// blocked-endpoint pruning) pays for itself. Below it, the direct loops
/// are faster — small slices mean few candidates and cheap scans, and the
/// bookkeeping's allocations would dominate. Either path enumerates and
/// verifies the identical candidate set.
const SORTED_THREAT_MIN: usize = 6;

/// How far (beyond [`UNIT_RADIUS`]) a tangent candidate line may run from an
/// endpoint disc and still be emitted by [`tangent_candidate_lines`]. The
/// pre-reject estimate and `chord_between_discs`'s exact test evaluate the
/// same point–line distance through differently rounded expressions; both
/// are a handful of IEEE operations on simulation-scale coordinates, so
/// they agree to ~1e-12. This margin is six orders above that: a line
/// discarded here provably fails the `> UNIT_RADIUS` rejection of
/// `chord_between_discs` too, so the prefilter never removes a candidate
/// the search would have kept.
const TANGENT_REACH_MARGIN: f64 = 1e-6;

/// The candidate sight lines tangent (at distance `r`) to the two unit discs
/// centred at `a` and `b`: up to four lines, each described by a unit normal
/// `ν` and offset `c` with `ν·x + c = 0`. Writes into the caller's fixed
/// buffer (at most eight candidates exist) and returns how many were
/// produced, so the stage-3 search performs no heap allocation.
///
/// `endpoints = (ci, cj)` are the sight pair's discs: lines that provably
/// miss either disc (farther than `UNIT_RADIUS` + [`TANGENT_REACH_MARGIN`])
/// are rejected **before** the line is constructed — in dense blocked
/// configurations ~97% of tangent lines die on `chord_between_discs`'s
/// first check, and this prefilter answers the same question with six
/// flops instead of a full construction. Borderline lines are still
/// emitted and decided by the exact test, so the surviving candidate set
/// is unchanged.
fn tangent_candidate_lines(
    a: Point,
    b: Point,
    r: f64,
    endpoints: (Point, Point),
    out: &mut [Line; 8],
) -> usize {
    let mut count = 0;
    let w = a - b;
    let d = w.norm();
    if d <= f64::EPSILON {
        return count;
    }
    let u = w / d;
    let v = u.perp_ccw();
    // The endpoint discs in the (u, v) frame anchored at `a`: the distance
    // from a tangent line (ν·x + c = 0, ν = along·u ± perp_mag·v,
    // c = s1·r − ν·a) to a point p is |ν·(p − a) + s1·r|.
    let (ci, cj) = endpoints;
    let w1 = ci - a;
    let w2 = cj - a;
    let (w1u, w1v) = (w1.dot(u), w1.dot(v));
    let (w2u, w2v) = (w2.dot(u), w2.dot(v));
    let reach = UNIT_RADIUS + TANGENT_REACH_MARGIN;
    for (s1, s2) in [(1.0, 1.0), (-1.0, -1.0), (1.0, -1.0), (-1.0, 1.0)] {
        // Find unit normals ν with ν·a + c = s1·r and ν·b + c = s2·r, i.e.
        // ν·w = (s1 − s2)·r.
        let q = (s1 - s2) * r;
        if q.abs() > d {
            continue; // the discs are too close for this tangent family
        }
        let along = q / d; // component of ν along w
        let perp_mag = (1.0 - along * along).max(0.0).sqrt();
        for sign in [1.0, -1.0] {
            let di_est = (along * w1u + sign * perp_mag * w1v + s1 * r).abs();
            let dj_est = (along * w2u + sign * perp_mag * w2v + s1 * r).abs();
            if di_est <= reach && dj_est <= reach {
                let nu = u * along + v * (perp_mag * sign);
                let c = s1 * r - nu.dot(a.to_vec());
                // Represent the line through its foot point with direction ⟂ ν.
                let foot = Point::ORIGIN + nu * (-c);
                out[count] = Line::from_point_dir(foot, nu.perp_ccw());
                count += 1;
            }
            if perp_mag <= f64::EPSILON {
                break; // the two mirror solutions coincide
            }
        }
    }
    count
}

/// The portion of `line` that runs from the boundary of the unit disc at
/// `ci` to the boundary of the unit disc at `cj`, or `None` when the line
/// misses either disc.
fn chord_between_discs<K: Kernel>(line: &Line, ci: Point, cj: Point) -> Option<Segment> {
    // Whether the candidate line reaches both discs is a kernel
    // classification; the chord endpoints below are shared constructions.
    if line.cmp_distance_to_k::<K>(ci, UNIT_RADIUS) == Ordering::Greater
        || line.cmp_distance_to_k::<K>(cj, UNIT_RADIUS) == Ordering::Greater
    {
        return None;
    }
    let di = line.distance_to(ci);
    let dj = line.distance_to(cj);
    let pi = line.project(ci);
    let pj = line.project(cj);
    if pi.distance(pj) <= f64::EPSILON {
        return None;
    }
    // Pull each endpoint back onto its own disc boundary (towards the other
    // disc) so the segment spans exactly the gap between the discs.
    let dir = (pj - pi).normalized();
    let off_i = (UNIT_RADIUS * UNIT_RADIUS - di.powi(2)).max(0.0).sqrt();
    let off_j = (UNIT_RADIUS * UNIT_RADIUS - dj.powi(2)).max(0.0).sqrt();
    Some(Segment::new(pi + dir * off_i, pj - dir * off_j))
}

/// Indices of all robots visible to robot `i` in the configuration `centers`
/// (excluding `i` itself), using the sampling test.
pub fn visible_set(i: usize, centers: &[Point], cfg: &VisibilityConfig) -> Vec<usize> {
    (0..centers.len())
        .filter(|&j| j != i && disc_sees_disc(i, j, centers, cfg))
        .collect()
}

/// Relative slack applied to the squared corridor radius by
/// [`corridor_filter_soa`]. The batched lanes evaluate the distance with a
/// fused expression whose rounding can differ from
/// `Segment::distance_sq_to` by a few ulps; inflating the acceptance radius
/// keeps the filtered set a **superset** of the scalar filter's set, which
/// is all the witness kernel's contract requires (extra obstacles beyond
/// the pruning radius never change its answer).
const SOA_FILTER_SLACK: f64 = 1.0 + 1e-9;

/// Batched corridor pre-filter over candidate obstacles held in
/// structure-of-arrays form: appends to `out` the index of every candidate
/// `(xs[k], ys[k])` whose distance to segment `a`–`b` is (conservatively)
/// at most `radius`.
///
/// The loop body is branch-free per lane and runs over `chunks_exact(4)` so
/// the compiler can vectorize it; a scalar tail handles the remainder. The
/// accepted set is a superset of
/// `{k : Segment::distance_sq_to((xs[k], ys[k])) <= radius²}` (see
/// [`SOA_FILTER_SLACK`]), so feeding it to [`disc_sees_disc_among`] with
/// `radius = VISIBILITY_PRUNE_RADIUS` yields exactly the exhaustive
/// answer.
///
/// # Panics
/// Panics if `xs` and `ys` differ in length.
pub fn corridor_filter_soa(
    a: Point,
    b: Point,
    radius: f64,
    xs: &[f64],
    ys: &[f64],
    out: &mut Vec<u32>,
) {
    assert_eq!(xs.len(), ys.len(), "SoA coordinate slices must match");
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let len_sq = dx * dx + dy * dy;
    let inv_len_sq = if len_sq <= f64::EPSILON {
        0.0 // degenerate chord: every t collapses to the endpoint `a`
    } else {
        1.0 / len_sq
    };
    let r_sq = radius * radius * SOA_FILTER_SLACK;
    let lane = |x: f64, y: f64| -> bool {
        let px = x - a.x;
        let py = y - a.y;
        let t = ((px * dx + py * dy) * inv_len_sq).clamp(0.0, 1.0);
        let ex = px - t * dx;
        let ey = py - t * dy;
        ex * ex + ey * ey <= r_sq
    };
    let chunks_x = xs.chunks_exact(4);
    let chunks_y = ys.chunks_exact(4);
    let tail = chunks_x.remainder().len();
    let mut base = 0u32;
    for (cx, cy) in chunks_x.zip(chunks_y) {
        // Evaluate all four lanes unconditionally (no early exit), then
        // push the survivors: the mask computation is what vectorizes.
        let mask = [
            lane(cx[0], cy[0]),
            lane(cx[1], cy[1]),
            lane(cx[2], cy[2]),
            lane(cx[3], cy[3]),
        ];
        for (l, &keep) in mask.iter().enumerate() {
            if keep {
                out.push(base + l as u32);
            }
        }
        base += 4;
    }
    let start = xs.len() - tail;
    for k in start..xs.len() {
        if lane(xs[k], ys[k]) {
            out.push(k as u32);
        }
    }
}

/// Safety margin the strip-cover certificate subtracts from the blocking
/// half-width. The kernel blocks a candidate when an obstacle sits within
/// `UNIT_RADIUS + clearance/2` of it, so certifying at `UNIT_RADIUS − 1e-7`
/// leaves a gap seven-plus orders of magnitude above the ~1e-13 absolute
/// rounding of the polygon clipping below: a line the cover misses by
/// honest arithmetic can never be rounded into the covered set.
const STRIP_COVER_SAFETY: f64 = 1e-7;

/// Per-robot stability radius (ρ) of [`strip_cover_blocked_with_slack`]:
/// when the slack cover fires, the pair stays blocked for **any**
/// configuration in which every robot — the two endpoints *and* every
/// obstacle — sits within ρ of its position at certification time.
/// Endpoint drift is absorbed by enlarging the candidate square; obstacle
/// drift by narrowing every blocking strip by ρ (an obstacle that moved ρ
/// still blocks the narrowed strip); *new* obstacles only block more
/// (the witness search is monotone in obstacles) and obstacles can only
/// leave a corridor by first drifting beyond ρ.
///
/// The value trades skip duration against cover density: narrowing strips
/// by ρ shrinks their width to `2(1−ρ)`, and in a hex packing at center
/// spacing `s` the tightest cover constraint is parallel-to-chord
/// candidates, covered at perpendicular strip pitch `s·√3/2` (the row
/// height). At the paper-regime spacing ≈ 2.1 that pitch is ≈ 1.82, so
/// ρ must stay below ≈ 0.09 for the certificate to fire at all; 0.05
/// leaves a ≈ 0.08 overlap margin for packing jitter while still
/// tolerating a generous oscillation radius (ρ/2 per robot) in the
/// simulator.
pub const COVER_STABILITY_RADIUS: f64 = 0.05;

/// Minimum chord span for the exact strip-cover certificate: keeps the
/// square inflation `2/(span − 2)` at most 1/3.
pub const STRIP_COVER_MIN_SPAN: f64 = 8.0;

/// Minimum chord span for the slack certificate; keeps the slack square
/// (see [`strip_cover_blocked_with_slack`]) comfortably bounded.
pub const STRIP_COVER_SLACK_MIN_SPAN: f64 = 8.0;

/// Obstacles closer than this to either endpoint (measured along the chord
/// axis) are ignored by the cover: beyond this margin the foot of the
/// perpendicular from the obstacle onto a candidate line provably falls
/// inside the candidate *segment*, so line distance equals segment distance.
const STRIP_COVER_AXIAL_MARGIN: f64 = 2.5;

const STRIP_COVER_MAX_POLYS: usize = 16;
const STRIP_COVER_MAX_VERTS: usize = 24;

/// Sound O(|obstacles| · polygons) *blocked* certificate for the pair
/// kernel: when this returns `true`, [`disc_sees_disc_among`] returns
/// `false` for the same endpoints and **any** obstacle slice admitted by
/// the kernel contract — without running the O(k²) witness search.
///
/// # Line-space cover
///
/// Work in the chord frame (origin `ci`, axis towards `cj`, span `T`).
/// Every candidate segment the kernel verifies has one endpoint within
/// `UNIT_RADIUS` of `ci` and the other within `UNIT_RADIUS` of `cj`
/// (stages 1–2 use `endpoint(c, o, ±1)` exactly on the unit circle; stage 3
/// pulls both endpoints onto the unit circles). Parameterize the candidate
/// by the offsets `(a, b)` of its supporting line at axial positions `0`
/// and `T`. An endpoint `(t_e, o_e)` with `t_e² + o_e² ≤ 1` and slope
/// `|s| ≤ 2/(T−2)` extrapolates to `|a| = |o_e − s·t_e| ≤ 1 + 2/(T−2)`,
/// so every candidate lives in the square `[−S, S]²` with
/// `S = 1 + 2/(T−2) + ε`.
///
/// An obstacle at `(t_k, o_k)` with `u = t_k/T` *blocks* every line whose
/// axial offset difference satisfies `|a(1−u) + b·u − o_k| ≤ hw`
/// (`hw = UNIT_RADIUS − `[`STRIP_COVER_SAFETY`]): the perpendicular
/// distance is the axial difference divided by `√(1+s²)`, hence ≤ hw,
/// strictly inside the kernel's blocking distance
/// `UNIT_RADIUS + clearance/2`. Restricting to obstacles with
/// `t_k ∈ [2.5, T−2.5]` makes the foot of that perpendicular land inside
/// the candidate segment (the foot sits within
/// `|o_k − line(t_k)|·|s| < 1.5` of `t_k`, and the segment spans at least
/// `[1, T−1]`), so segment distance equals line distance. Each obstacle
/// therefore covers a diagonal **strip** of the `(a, b)` square.
///
/// If the strips jointly cover the square, every candidate is blocked and
/// the kernel must answer "not seen". The cover test clips the square
/// against the complement of each strip, maintaining the uncovered region
/// as a small set of convex polygons; the certificate fires when the set
/// becomes empty. Obstacles are processed nearest-the-chord first so
/// central strips (which cover the most) come early.
///
/// # One-sidedness and numerics
///
/// `false` never means "visible" — the caller falls back to the kernel, so
/// the fast path cannot flip an answer. For `true` to be sound despite
/// floating point: a genuinely clear witness line keeps axial distance
/// `> UNIT_RADIUS` from every usable obstacle, so its `(a, b)` point sits
/// at distance ≥ [`STRIP_COVER_SAFETY`] from every (narrowed) strip — an
/// uncovered ball that survives the ~1e-13 absolute clipping error. The
/// clipping itself uses closed half-planes, so measure-zero slivers are
/// retained, and the routine gives up (returns `false`) rather than drop
/// state when polygon or vertex budgets overflow.
///
/// Covering obstacles sit within `UNIT_RADIUS + hw < 2·UNIT_RADIUS` of the
/// chord segment, inside [`VISIBILITY_PRUNE_RADIUS`], so they are present
/// in any obstacle slice the kernel contract admits — the certificate is
/// stable under the same superset rule as the kernel.
pub fn strip_cover_blocked(ci: Point, cj: Point, obstacles: &[Point]) -> bool {
    let span = (cj - ci).norm();
    if span < STRIP_COVER_MIN_SPAN {
        return false;
    }
    let square = 1.0 + 2.0 / (span - 2.0) + STRIP_COVER_SAFETY;
    strip_cover(ci, cj, obstacles, square, 0.0)
}

/// Drift-stable variant of [`strip_cover_blocked`]: a `true` verdict
/// certifies that the kernel answers "not seen" for **any** configuration
/// in which every robot — endpoints and obstacles alike — sits within
/// [`COVER_STABILITY_RADIUS`] (ρ) of its position at this call (still
/// under the kernel's obstacle-superset contract).
///
/// All reasoning stays in the *certification* frame. Endpoint drift ≤ ρ:
/// a witness for the drifted pair has endpoints within `1 + ρ` of the
/// certification centers, hence slope `|s| ≤ (2+2ρ)/(T−2−2ρ)` and
/// extrapolated offsets
/// `|a| ≤ (1+ρ)·(1 + (2+2ρ)/(T−2−2ρ))` in the certification frame — the
/// enlarged square below. Obstacle drift ≤ ρ: every strip is narrowed by
/// ρ, so a candidate inside the narrowed strip keeps perpendicular
/// distance ≤ `hw − ρ + ρ = hw` to the *drifted* obstacle and stays
/// blocked; the axial margin grows by `2ρ` so the perpendicular foot
/// still lands inside the (drifted) candidate segment. Obstacles that
/// *enter* the corridor after certification only remove witnesses (the
/// search is monotone in obstacles), and a certification obstacle can
/// only leave the corridor by first exceeding drift ρ. The simulator
/// turns this into a cheap dirty-skip: while every robot stays within
/// `ρ/2` of its registration anchor, a certified-blocked pair needs no
/// recompute — and no per-move attention at all.
pub fn strip_cover_blocked_with_slack(ci: Point, cj: Point, obstacles: &[Point]) -> bool {
    let span = (cj - ci).norm();
    if span < STRIP_COVER_SLACK_MIN_SPAN {
        return false;
    }
    let p = COVER_STABILITY_RADIUS;
    let square = (1.0 + p) * (1.0 + (2.0 + 2.0 * p) / (span - 2.0 - 2.0 * p)) + STRIP_COVER_SAFETY;
    strip_cover(ci, cj, obstacles, square, p)
}

/// Shared cover sweep over the `(a, b)` line square of half-side `square`.
/// `shrink` narrows every strip and widens the axial exclusion margin to
/// make the verdict robust to per-obstacle drift ≤ `shrink` (0 for the
/// exact certificate).
fn strip_cover(ci: Point, cj: Point, obstacles: &[Point], square: f64, shrink: f64) -> bool {
    let axis = cj - ci;
    let span = axis.norm();
    let dir = axis / span;
    let perp = dir.perp_ccw();
    let hw = UNIT_RADIUS - shrink - STRIP_COVER_SAFETY;
    let margin = STRIP_COVER_AXIAL_MARGIN + 2.0 * shrink;
    STRIP_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        let StripScratch {
            strips,
            polys,
            flip,
            pool,
        } = &mut *scratch;
        strips.clear();
        for &c in obstacles {
            let w = c - ci;
            let t = w.dot(dir);
            if !(margin..=span - margin).contains(&t) {
                continue;
            }
            let o = w.dot(perp);
            if o.abs() > square + hw {
                continue;
            }
            strips.push((t / span, o));
        }
        if strips.is_empty() {
            return false;
        }
        strips
            .sort_unstable_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap_or(Ordering::Equal));

        pool.append(polys);
        pool.append(flip);
        let mut start = pool.pop().unwrap_or_default();
        start.clear();
        start.extend_from_slice(&[
            (-square, -square),
            (square, -square),
            (square, square),
            (-square, square),
        ]);
        polys.push(start);
        for &(u, o) in strips.iter() {
            // Uncovered ∩ strip-complement: each polygon splits into the
            // part below the strip (f ≤ o − hw) and the part above it
            // (f ≥ o + hw), where f(a, b) = a·(1−u) + b·u.
            let (na, nb) = (1.0 - u, u);
            for poly in polys.drain(..) {
                let mut below = pool.pop().unwrap_or_default();
                let mut above = pool.pop().unwrap_or_default();
                below.clear();
                above.clear();
                clip_halfplane(&poly, na, nb, o - hw, 1.0, &mut below);
                clip_halfplane(&poly, na, nb, o + hw, -1.0, &mut above);
                pool.push(poly);
                for piece in [below, above] {
                    if piece.is_empty() {
                        pool.push(piece);
                    } else {
                        flip.push(piece);
                    }
                }
            }
            std::mem::swap(polys, flip);
            if polys.is_empty() {
                return true;
            }
            if polys.len() > STRIP_COVER_MAX_POLYS
                || polys.iter().any(|p| p.len() > STRIP_COVER_MAX_VERTS)
            {
                // Budget overflow: give up soundly rather than drop state.
                return false;
            }
        }
        false
    })
}

/// Clips convex polygon `input` to the closed half-plane
/// `sign·(na·a + nb·b − c) ≤ 0` (Sutherland–Hodgman, one plane).
fn clip_halfplane(
    input: &[(f64, f64)],
    na: f64,
    nb: f64,
    c: f64,
    sign: f64,
    out: &mut Vec<(f64, f64)>,
) {
    let n = input.len();
    for i in 0..n {
        let p = input[i];
        let q = input[(i + 1) % n];
        let dp = sign * (na * p.0 + nb * p.1 - c);
        let dq = sign * (na * q.0 + nb * q.1 - c);
        if dp <= 0.0 {
            out.push(p);
        }
        if (dp < 0.0) != (dq < 0.0) && dp != dq {
            let t = dp / (dp - dq);
            if t > 0.0 && t < 1.0 {
                out.push((p.0 + t * (q.0 - p.0), p.1 + t * (q.1 - p.1)));
            }
        }
    }
}

thread_local! {
    /// Strip/polygon scratch of [`strip_cover`] — the certificate runs per
    /// pair recompute on the simulator's hot path, so the outer vectors
    /// must not reallocate once warm.
    static STRIP_SCRATCH: std::cell::RefCell<StripScratch> =
        const {
            std::cell::RefCell::new(StripScratch {
                strips: Vec::new(),
                polys: Vec::new(),
                flip: Vec::new(),
                pool: Vec::new(),
            })
        };
}

struct StripScratch {
    /// Filtered obstacles as `(t/span, perpendicular offset)` pairs.
    strips: Vec<(f64, f64)>,
    /// Current uncovered region as disjoint convex polygons in `(a, b)`.
    polys: Vec<Vec<(f64, f64)>>,
    /// Next generation of `polys` while clipping.
    flip: Vec<Vec<(f64, f64)>>,
    /// Retired vertex buffers, reused so the sweep stops allocating once
    /// warm.
    pool: Vec<Vec<(f64, f64)>>,
}

/// Exact full-visibility test for configurations in convex position.
///
/// Returns `true` when every center lies on the common convex hull **and** no
/// three centers are collinear — which, for unit discs whose centers are in
/// convex position, is equivalent to every robot seeing every other robot
/// (the equivalence used throughout Section 4 of the paper).
///
/// `collinearity_tol` is the tolerance on the doubled triangle area used for
/// the collinearity test; the gathering algorithm passes its own `1/n`-scaled
/// band here.
pub fn fully_visible_in_convex_position(centers: &[Point], collinearity_tol: f64) -> bool {
    fully_visible_in_convex_position_k::<EpsKernel>(centers, collinearity_tol)
}

/// [`fully_visible_in_convex_position`] with the hull membership and the
/// collinearity band decided by kernel `K`.
pub fn fully_visible_in_convex_position_k<K: Kernel>(
    centers: &[Point],
    collinearity_tol: f64,
) -> bool {
    if centers.len() <= 2 {
        return true;
    }
    let hull = ConvexHull::from_points_k::<K>(centers);
    if !hull.all_on_hull() {
        return false;
    }
    no_three_collinear_k::<K>(centers, collinearity_tol)
}

/// `true` when no three of the given points are collinear within `tol`
/// (tolerance on the doubled triangle area).
pub fn no_three_collinear(points: &[Point], tol: f64) -> bool {
    no_three_collinear_k::<EpsKernel>(points, tol)
}

/// [`no_three_collinear`] with the per-triple test decided by kernel `K`.
pub fn no_three_collinear_k<K: Kernel>(points: &[Point], tol: f64) -> bool {
    let n = points.len();
    for a in 0..n {
        for b in (a + 1)..n {
            for c in (b + 1)..n {
                if K::orientation_tol(points[a], points[b], points[c], tol)
                    == Orientation::Collinear
                {
                    return false;
                }
            }
        }
    }
    true
}

/// `true` when the three points are exactly collinear within the default
/// predicate tolerance. Convenience re-export used by the algorithm crate.
pub fn three_collinear(a: Point, b: Point, c: Point) -> bool {
    three_collinear_k::<EpsKernel>(a, b, c)
}

/// [`three_collinear`] under kernel `K`'s policy collinearity width.
pub fn three_collinear_k<K: Kernel>(a: Point, b: Point, c: Point) -> bool {
    K::orientation(a, b, c) == Orientation::Collinear
}

/// Minimum gap (boundary-to-boundary distance) over all pairs of unit discs,
/// or `None` for fewer than two discs. Negative values indicate overlap.
pub fn min_pairwise_gap(centers: &[Point]) -> Option<f64> {
    let n = centers.len();
    if n < 2 {
        return None;
    }
    let mut best = f64::INFINITY;
    for i in 0..n {
        for j in (i + 1)..n {
            let gap = centers[i].distance(centers[j]) - 2.0 * UNIT_RADIUS;
            if gap < best {
                best = gap;
            }
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn cfg() -> VisibilityConfig {
        VisibilityConfig::default()
    }

    #[test]
    fn two_discs_always_see_each_other() {
        let centers = vec![p(0.0, 0.0), p(10.0, 0.0)];
        assert!(disc_sees_disc(0, 1, &centers, &cfg()));
        assert!(disc_sees_disc(1, 0, &centers, &cfg()));
    }

    #[test]
    fn blocking_disc_in_the_middle_hides_far_disc() {
        // Three collinear discs spaced far apart: the middle one blocks the
        // center line but NOT the tangent lines... unless the corridor is
        // fully covered. With equal radii and perfect collinearity the middle
        // disc exactly fills the corridor, so the outer robots cannot see
        // each other.
        let centers = vec![p(0.0, 0.0), p(10.0, 0.0), p(20.0, 0.0)];
        assert!(!disc_sees_disc(0, 2, &centers, &cfg()));
        assert!(disc_sees_disc(0, 1, &centers, &cfg()));
        assert!(disc_sees_disc(1, 2, &centers, &cfg()));
    }

    #[test]
    fn offset_disc_does_not_block() {
        // The "blocking" disc is displaced well off the corridor.
        let centers = vec![p(0.0, 0.0), p(10.0, 5.0), p(20.0, 0.0)];
        assert!(disc_sees_disc(0, 2, &centers, &cfg()));
    }

    #[test]
    fn slightly_offset_disc_leaves_a_thin_sight_line() {
        // Middle disc displaced by more than a radius from the corridor
        // center line frees one tangent side.
        let centers = vec![p(0.0, 0.0), p(10.0, 2.5), p(20.0, 0.0)];
        assert!(disc_sees_disc(0, 2, &centers, &cfg()));
    }

    #[test]
    fn visibility_is_symmetric_on_random_like_configs() {
        let centers = vec![
            p(0.0, 0.0),
            p(3.0, 0.5),
            p(6.0, -0.5),
            p(2.0, 4.0),
            p(5.0, 3.0),
        ];
        for i in 0..centers.len() {
            for j in 0..centers.len() {
                if i != j {
                    assert_eq!(
                        disc_sees_disc(i, j, &centers, &cfg()),
                        disc_sees_disc(j, i, &centers, &cfg()),
                        "asymmetric visibility between {i} and {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn visible_set_excludes_self() {
        let centers = vec![p(0.0, 0.0), p(4.0, 0.0), p(8.0, 0.0)];
        let v = visible_set(1, &centers, &cfg());
        assert_eq!(v, vec![0, 2]);
        let v0 = visible_set(0, &centers, &cfg());
        assert_eq!(v0, vec![1]);
    }

    #[test]
    fn convex_position_full_visibility() {
        // Square: all on hull, no three collinear.
        let square = vec![p(0.0, 0.0), p(10.0, 0.0), p(10.0, 10.0), p(0.0, 10.0)];
        assert!(fully_visible_in_convex_position(&square, 1e-9));
        // Add an interior point: no longer all on hull.
        let mut with_interior = square.clone();
        with_interior.push(p(5.0, 5.0));
        assert!(!fully_visible_in_convex_position(&with_interior, 1e-9));
        // Three collinear on the hull boundary.
        let collinear_cfg = vec![p(0.0, 0.0), p(5.0, 0.0), p(10.0, 0.0), p(5.0, 10.0)];
        assert!(!fully_visible_in_convex_position(&collinear_cfg, 1e-9));
    }

    #[test]
    fn no_three_collinear_tolerance_band() {
        let pts = vec![p(0.0, 0.0), p(5.0, 0.05), p(10.0, 0.0), p(5.0, 10.0)];
        // Tiny tolerance: the small bump is NOT collinear.
        assert!(no_three_collinear(&pts, 1e-9));
        // Large tolerance (the paper's 1/n band scaled): it IS collinear.
        assert!(!no_three_collinear(&pts, 1.0));
    }

    #[test]
    fn min_gap_reports_touching_and_overlap() {
        assert_eq!(min_pairwise_gap(&[p(0.0, 0.0)]), None);
        let touching = vec![p(0.0, 0.0), p(2.0, 0.0)];
        assert!(min_pairwise_gap(&touching).unwrap().abs() < 1e-12);
        let apart = vec![p(0.0, 0.0), p(5.0, 0.0)];
        assert!((min_pairwise_gap(&apart).unwrap() - 3.0).abs() < 1e-12);
        let overlap = vec![p(0.0, 0.0), p(1.0, 0.0)];
        assert!(min_pairwise_gap(&overlap).unwrap() < 0.0);
    }

    #[test]
    fn three_collinear_helper() {
        assert!(three_collinear(p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0)));
        assert!(!three_collinear(p(0.0, 0.0), p(1.0, 0.0), p(2.0, 1.0)));
    }

    #[test]
    fn soa_corridor_filter_is_a_tight_superset_of_the_scalar_filter() {
        use crate::segment::Segment;
        // A pseudo-random cloud (fixed LCG so the test is deterministic)
        // around two chords, one generic and one degenerate. Every scalar
        // accept must survive the batched filter, and every batched accept
        // must be within the slack-inflated radius.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 * 40.0 - 10.0
        };
        let n = 103; // not a multiple of 4: exercises the scalar tail
        let xs: Vec<f64> = (0..n).map(|_| next()).collect();
        let ys: Vec<f64> = (0..n).map(|_| next()).collect();
        for (a, b) in [(p(0.0, 0.0), p(17.0, 6.0)), (p(3.0, 3.0), p(3.0, 3.0))] {
            let radius = VISIBILITY_PRUNE_RADIUS;
            let seg = Segment::new(a, b);
            let mut got = Vec::new();
            corridor_filter_soa(a, b, radius, &xs, &ys, &mut got);
            assert!(got.windows(2).all(|w| w[0] < w[1]), "ascending, unique");
            for k in 0..n {
                let d_sq = seg.distance_sq_to(p(xs[k], ys[k]));
                if d_sq <= radius * radius {
                    assert!(
                        got.contains(&(k as u32)),
                        "scalar accept {k} dropped by the batched filter"
                    );
                }
            }
            for &k in &got {
                let d_sq = seg.distance_sq_to(p(xs[k as usize], ys[k as usize]));
                assert!(
                    d_sq <= radius * radius * (1.0 + 1e-6),
                    "batched accept {k} is far outside the corridor"
                );
            }
        }
    }

    #[test]
    fn strip_cover_requires_actual_cover() {
        let (ci, cj) = (p(0.0, 0.0), p(30.0, 0.0));
        // Empty corridor and a single mid-chord obstacle: the parallel
        // grazing candidates at offset ±1 survive one strip, so no cover.
        assert!(!strip_cover_blocked(ci, cj, &[]));
        assert!(!strip_cover_blocked(ci, cj, &[p(15.0, 0.0)]));
        // Three obstacles at staggered depths and offsets close the square:
        // the mid strip kills everything but the grazing corners, and the
        // offset strips at other depths kill those.
        let wall = [p(15.0, 0.0), p(10.0, 1.1), p(20.0, -1.1)];
        assert!(strip_cover_blocked(ci, cj, &wall));
        assert!(!disc_sees_disc_among(ci, cj, &wall, &cfg()));
        // Without the lower flanker the grazing candidates just below the
        // mid obstacle stay clear (axial distance ≳ UNIT_RADIUS): the
        // lower corner of the line square is uncovered, so no certificate.
        let open = [p(15.0, 0.0), p(15.0, 1.1)];
        assert!(!strip_cover_blocked(ci, cj, &open));
        // Obstacles within the axial end margin are ignored: a wall hugging
        // an endpoint cannot certify on its own.
        let hugging = [p(1.0, 0.0), p(1.2, 1.1), p(1.4, -1.1)];
        assert!(!strip_cover_blocked(ci, cj, &hugging));
        // Short chords never certify.
        assert!(!strip_cover_blocked(
            p(0.0, 0.0),
            p(6.0, 0.0),
            &[p(3.0, 0.0)]
        ));
    }

    #[test]
    fn strip_cover_certificate_always_agrees_with_the_kernel() {
        // Randomized soundness check: whenever the cover certificate fires,
        // the full witness search must say "blocked" — including under
        // endpoint perturbations within the advertised slack. Clusters are
        // hex-packed, so far pairs are genuinely blocked and the
        // certificate fires for a healthy fraction of samples (asserted, so
        // the test cannot silently go vacuous).
        let mut state = 0x00C0FFEEu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let (mut fired, mut slack_fired) = (0u32, 0u32);
        for _ in 0..25 {
            let spacing = 2.05 + 0.3 * next();
            let side = 12;
            let row_h = spacing * 3f64.sqrt() / 2.0;
            let centers: Vec<Point> = (0..side * side)
                .map(|i| {
                    let (r, c) = (i / side, i % side);
                    let stagger = if r % 2 == 1 { spacing / 2.0 } else { 0.0 };
                    p(
                        c as f64 * spacing + stagger + (next() - 0.5) * 0.02,
                        r as f64 * row_h + (next() - 0.5) * 0.02,
                    )
                })
                .collect();
            for _ in 0..10 {
                let i = (next() * centers.len() as f64) as usize % centers.len();
                let j = (next() * centers.len() as f64) as usize % centers.len();
                if i == j {
                    continue;
                }
                let (ci, cj) = (centers[i], centers[j]);
                let obstacles: Vec<Point> = centers
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| k != i && k != j)
                    .map(|(_, &c)| c)
                    .collect();
                if strip_cover_blocked(ci, cj, &obstacles) {
                    fired += 1;
                    assert!(
                        !disc_sees_disc_among(ci, cj, &obstacles, &cfg()),
                        "strip cover fired for a pair the kernel sees (span {})",
                        ci.distance(cj)
                    );
                }
                if strip_cover_blocked_with_slack(ci, cj, &obstacles) {
                    slack_fired += 1;
                    // The drift contract: blocked for ANY configuration
                    // with every robot within ρ of its certification
                    // position. Spot-check worst-ish drifts: endpoints
                    // pulled together/sideways AND every obstacle jostled
                    // by a deterministic per-obstacle offset of norm ρ.
                    let d = COVER_STABILITY_RADIUS;
                    for (round, (da, db)) in [
                        ((d, 0.0), (-d, 0.0)),
                        ((0.0, d), (0.0, -d)),
                        ((d / 2.0, d / 2.0), (-d / 2.0, d / 2.0)),
                    ]
                    .into_iter()
                    .enumerate()
                    {
                        let (qi, qj) = (p(ci.x + da.0, ci.y + da.1), p(cj.x + db.0, cj.y + db.1));
                        let drifted: Vec<Point> = obstacles
                            .iter()
                            .enumerate()
                            .map(|(k, &c)| {
                                let ang = (k * 37 + round * 101) as f64;
                                p(c.x + d * ang.cos(), c.y + d * ang.sin())
                            })
                            .collect();
                        assert!(
                            !disc_sees_disc_among(qi, qj, &drifted, &cfg()),
                            "slack cover fired but a ρ-drifted configuration \
                             sees (span {})",
                            ci.distance(cj)
                        );
                    }
                }
            }
        }
        assert!(
            fired >= 30,
            "exact cover fired only {fired} times — vacuous test"
        );
        assert!(
            slack_fired >= 15,
            "slack cover fired only {slack_fired} times — vacuous test"
        );
    }

    #[test]
    #[should_panic]
    fn soa_corridor_filter_rejects_mismatched_slices() {
        let mut out = Vec::new();
        corridor_filter_soa(p(0.0, 0.0), p(1.0, 0.0), 1.0, &[0.0, 1.0], &[0.0], &mut out);
    }
}
