//! Points and vectors in the plane.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::predicates::approx_eq;

/// A point in the Euclidean plane.
///
/// `Point` is a plain value type (`Copy`); the coordinates are public because
/// the type is a passive data carrier with no invariant to protect.
///
/// ```
/// use fatrobots_geometry::Point;
/// let a = Point::new(1.0, 2.0);
/// let b = Point::new(4.0, 6.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// A displacement (vector) in the Euclidean plane.
///
/// The distinction between [`Point`] and `Vec2` keeps "positions" and
/// "directions" statically separate (`Point - Point = Vec2`,
/// `Point + Vec2 = Point`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other` (avoids the square root).
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        (self - other).norm_sq()
    }

    /// Midpoint of the segment joining `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation: returns `self` for `t = 0`, `other` for `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }

    /// The point at distance `d` from `self` in direction `dir`
    /// (which need not be normalised).
    ///
    /// # Panics
    /// Panics in debug builds if `dir` is (numerically) the zero vector.
    pub fn offset(self, dir: Vec2, d: f64) -> Point {
        debug_assert!(dir.norm() > 0.0, "offset direction must be non-zero");
        self + dir.normalized() * d
    }

    /// Coordinate-wise approximate equality with the crate tolerance.
    pub fn approx_eq(self, other: Point) -> bool {
        approx_eq(self.x, other.x) && approx_eq(self.y, other.y)
    }

    /// The vector from the origin to this point.
    #[inline]
    pub fn to_vec(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Centroid (arithmetic mean) of a non-empty set of points.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn centroid(points: &[Point]) -> Point {
        assert!(!points.is_empty(), "centroid of an empty point set");
        let n = points.len() as f64;
        let (sx, sy) = points
            .iter()
            .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
        Point::new(sx / n, sy / n)
    }
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// The unit vector at angle `theta` (radians, counter-clockwise from +x).
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Vec2::new(theta.cos(), theta.sin())
    }

    /// Euclidean norm (length).
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// The vector scaled to unit length.
    ///
    /// Returns [`Vec2::ZERO`] when the vector is (numerically) zero so that
    /// callers never divide by zero; callers that require a direction should
    /// check [`Vec2::is_zero`] first.
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n <= f64::EPSILON {
            Vec2::ZERO
        } else {
            self / n
        }
    }

    /// `true` when the vector has (numerically) zero length.
    pub fn is_zero(self) -> bool {
        self.norm() <= f64::EPSILON
    }

    /// Perpendicular vector, rotated 90° counter-clockwise.
    #[inline]
    pub fn perp_ccw(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Perpendicular vector, rotated 90° clockwise.
    #[inline]
    pub fn perp_cw(self) -> Vec2 {
        Vec2::new(self.y, -self.x)
    }

    /// The vector rotated by `theta` radians counter-clockwise.
    pub fn rotated(self, theta: f64) -> Vec2 {
        let (s, c) = theta.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Angle of the vector in radians, in `(-π, π]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vec2) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign<Vec2> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Vec2) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Sub for Point {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Point) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<(f64, f64)> for Vec2 {
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.6}, {:.6}>", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_vector_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        let v = b - a;
        assert_eq!(v, Vec2::new(3.0, 4.0));
        assert_eq!(a + v, b);
        assert_eq!(b - v, a);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn midpoint_and_lerp() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.midpoint(b), Point::new(1.0, 2.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.25), Point::new(0.5, 1.0));
    }

    #[test]
    fn offset_moves_along_direction() {
        let p = Point::new(1.0, 1.0);
        let q = p.offset(Vec2::new(0.0, 2.0), 3.0);
        assert!(q.approx_eq(Point::new(1.0, 4.0)));
    }

    #[test]
    fn normalized_handles_zero() {
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
        assert!(Vec2::ZERO.is_zero());
        let v = Vec2::new(3.0, 4.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn perpendicular_rotations() {
        let v = Vec2::new(1.0, 0.0);
        assert_eq!(v.perp_ccw(), Vec2::new(0.0, 1.0));
        assert_eq!(v.perp_cw(), Vec2::new(0.0, -1.0));
        let r = v.rotated(std::f64::consts::FRAC_PI_2);
        assert!((r.x).abs() < 1e-12 && (r.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_angle_round_trip() {
        let theta = 0.7;
        let v = Vec2::from_angle(theta);
        assert!((v.angle() - theta).abs() < 1e-12);
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_square() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        assert_eq!(Point::centroid(&pts), Point::new(1.0, 1.0));
    }

    #[test]
    #[should_panic]
    fn centroid_of_empty_panics() {
        let _ = Point::centroid(&[]);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Point::new(1.0, 2.0)).is_empty());
        assert!(!format!("{}", Vec2::new(1.0, 2.0)).is_empty());
    }
}
