//! ε-tolerant geometric predicates.
//!
//! All fuzzy comparisons in the workspace funnel through this module so that
//! the tolerance policy lives in one place.

use crate::point::Point;

/// Default comparison tolerance used by the geometric predicates.
///
/// The gathering algorithm's own tolerances (`1/n`, `1/2n`, see the paper's
/// Section 3–4) are at least six orders of magnitude larger than this for any
/// realistic number of robots, so predicate noise never flips an algorithmic
/// decision.
pub const EPS: f64 = 1e-9;

/// Result of an orientation query for the ordered triple `(a, b, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// The triple makes a left turn (counter-clockwise).
    CounterClockwise,
    /// The triple makes a right turn (clockwise).
    Clockwise,
    /// The three points are collinear (within tolerance).
    Collinear,
}

/// `true` when `a` and `b` differ by at most [`EPS`].
///
/// ```
/// use fatrobots_geometry::predicates::approx_eq;
/// assert!(approx_eq(1.0, 1.0 + 1e-12));
/// assert!(!approx_eq(1.0, 1.001));
/// ```
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// `true` when `a` and `b` differ by at most `tol`.
#[inline]
pub fn approx_eq_tol(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// `a < b` with tolerance: `true` when `a` is smaller than `b` by more than [`EPS`].
#[inline]
pub fn definitely_less(a: f64, b: f64) -> bool {
    a < b - EPS
}

/// `a > b` with tolerance: `true` when `a` exceeds `b` by more than [`EPS`].
#[inline]
pub fn definitely_greater(a: f64, b: f64) -> bool {
    a > b + EPS
}

/// `a <= b` with tolerance.
#[inline]
pub fn leq(a: f64, b: f64) -> bool {
    a <= b + EPS
}

/// `a >= b` with tolerance.
#[inline]
pub fn geq(a: f64, b: f64) -> bool {
    a >= b - EPS
}

/// Twice the signed area of triangle `(a, b, c)`.
///
/// Positive for a counter-clockwise (left) turn, negative for clockwise.
#[inline]
pub fn cross_of_triple(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Orientation of the ordered triple `(a, b, c)` with tolerance `tol` on the
/// doubled signed area.
pub fn orientation_tol(a: Point, b: Point, c: Point, tol: f64) -> Orientation {
    let cr = cross_of_triple(a, b, c);
    if cr > tol {
        Orientation::CounterClockwise
    } else if cr < -tol {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// Orientation of the ordered triple `(a, b, c)` with the default tolerance.
///
/// ```
/// use fatrobots_geometry::{Point, predicates::{orientation, Orientation}};
/// let o = orientation(Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(1.0, 1.0));
/// assert_eq!(o, Orientation::CounterClockwise);
/// ```
pub fn orientation(a: Point, b: Point, c: Point) -> Orientation {
    orientation_tol(a, b, c, EPS)
}

/// `true` when the three points are collinear within the default tolerance.
pub fn collinear(a: Point, b: Point, c: Point) -> bool {
    orientation(a, b, c) == Orientation::Collinear
}

/// Clamp `v` into `[lo, hi]`.
///
/// Contract: requires `lo <= hi` (checked in debug builds). For finite `v`
/// the result is `lo` when `v < lo`, `hi` when `v > hi`, and `v` otherwise
/// — numerically equal to the previous `v.max(lo).min(hi)` for every
/// non-NaN input (`-0.0` at a `0.0` bound keeps its sign bit here, which
/// compares equal everywhere downstream). A NaN `v` clamps to `lo`: the old
/// chain silently resolved NaN to `hi` (both `max` and `min` prefer the
/// non-NaN operand, so NaN fell through to the upper bound), which turned
/// a poisoned segment parameter into "the far endpoint". Callers clamp
/// ratios whose degenerate form is `0/0 → t = 0` (start of segment), so
/// `lo` is the conservative resolution — and a debug assertion flags the
/// poisoned input rather than letting it propagate silently.
#[inline]
pub fn clamp(v: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi, "clamp with inverted bounds: [{lo}, {hi}]");
    debug_assert!(!v.is_nan(), "clamp called with NaN");
    if v < lo {
        lo
    } else if v > hi {
        hi
    } else if v.is_nan() {
        lo
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(0.0, 0.0));
        assert!(approx_eq(1.0, 1.0 + EPS / 2.0));
        assert!(!approx_eq(1.0, 1.0 + 10.0 * EPS));
    }

    #[test]
    fn ordering_helpers() {
        assert!(definitely_less(1.0, 2.0));
        assert!(!definitely_less(1.0, 1.0 + EPS / 10.0));
        assert!(definitely_greater(2.0, 1.0));
        assert!(leq(1.0, 1.0));
        assert!(geq(1.0, 1.0));
        assert!(leq(1.0, 1.0 + 1e-12));
        assert!(geq(1.0 + 1e-12, 1.0));
    }

    #[test]
    fn orientation_turns() {
        assert_eq!(
            orientation(p(0.0, 0.0), p(1.0, 0.0), p(2.0, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orientation(p(0.0, 0.0), p(1.0, 0.0), p(2.0, -1.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orientation(p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn orientation_is_antisymmetric() {
        let a = p(0.3, 1.7);
        let b = p(-2.0, 0.4);
        let c = p(5.5, -3.3);
        let o1 = orientation(a, b, c);
        let o2 = orientation(a, c, b);
        assert_ne!(o1, Orientation::Collinear);
        assert_ne!(o1, o2);
    }

    #[test]
    fn cross_of_triple_signed_area() {
        // Unit right triangle has area 1/2, doubled signed area 1.
        assert!((cross_of_triple(p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clamp_works() {
        assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
        // Boundary values pass through exactly; signed zero is preserved.
        assert_eq!(clamp(0.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(1.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-0.0, 0.0, 1.0).to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn clamp_resolves_nan_to_the_lower_bound() {
        // Release-mode contract: NaN → lo (debug builds assert instead).
        assert_eq!(clamp(f64::NAN, 0.0, 1.0), 0.0);
    }

    #[test]
    fn collinear_with_tolerance_band() {
        // Slightly off the line but inside EPS on the cross product.
        let c = p(2.0, 1e-12);
        assert!(collinear(p(0.0, 0.0), p(1.0, 0.0), c));
    }
}
