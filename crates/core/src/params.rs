//! Algorithm parameters derived from the number of robots `n`.

/// The quantities the paper derives from `n` and the common unit of distance
/// (the disc radius): every step size and tolerance of the algorithm.
///
/// * the *collinearity band* `1/n` used by Procedure `NotAllOnConvexHull`
///   (the rectangle `ABCD` of Figure 5) and by the sag precondition of
///   Procedure `NotConnected`;
/// * the *gap threshold* `1/2n` that groups hull robots into connected
///   components (Function `Connected-Components`);
/// * the *step length* `1/2n − ε` used by every expansion/convergence move,
///   where `ε` is any constant in `(0, 1/2n)` — the paper leaves it free, we
///   fix `ε = 1/(10 n)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgorithmParams {
    n: usize,
    eps: f64,
}

impl AlgorithmParams {
    /// Parameters for a system of `n` robots, with the default
    /// `ε = 1/(10 n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn for_n(n: usize) -> Self {
        assert!(n > 0, "a system needs at least one robot");
        AlgorithmParams {
            n,
            eps: 1.0 / (10.0 * n as f64),
        }
    }

    /// Parameters with an explicit `ε`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `ε` is not in `(0, 1/2n)`.
    pub fn with_eps(n: usize, eps: f64) -> Self {
        assert!(n > 0, "a system needs at least one robot");
        assert!(
            eps > 0.0 && eps < 1.0 / (2.0 * n as f64),
            "epsilon must lie in (0, 1/2n)"
        );
        AlgorithmParams { n, eps }
    }

    /// Number of robots in the system (known to every robot).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The paper's `ε`.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The collinearity band `1/n` (Procedure `NotAllOnConvexHull`,
    /// Figure 5).
    pub fn band(&self) -> f64 {
        1.0 / self.n as f64
    }

    /// The gap threshold `1/2n` below which two hull-adjacent robots belong
    /// to the same connected component (Function `Connected-Components`).
    pub fn gap_threshold(&self) -> f64 {
        1.0 / (2.0 * self.n as f64)
    }

    /// The step length `1/2n − ε` used by the outward-expansion and inward
    /// convergence moves.
    pub fn step(&self) -> f64 {
        self.gap_threshold() - self.eps
    }

    /// Tolerance (on the doubled triangle area) used for exact collinearity
    /// tests such as Function `In-Straight-Line-2`. This is a numerical
    /// tolerance, far below the algorithmic band [`Self::band`].
    pub fn collinearity_tol(&self) -> f64 {
        1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let p = AlgorithmParams::for_n(10);
        assert_eq!(p.n(), 10);
        assert!((p.band() - 0.1).abs() < 1e-12);
        assert!((p.gap_threshold() - 0.05).abs() < 1e-12);
        assert!(p.step() > 0.0 && p.step() < p.gap_threshold());
        assert!(p.eps() > 0.0 && p.eps() < p.gap_threshold());
    }

    #[test]
    fn custom_eps() {
        let p = AlgorithmParams::with_eps(4, 0.01);
        assert_eq!(p.eps(), 0.01);
        assert!((p.step() - (0.125 - 0.01)).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_robots_rejected() {
        let _ = AlgorithmParams::for_n(0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_eps_rejected() {
        let _ = AlgorithmParams::with_eps(4, 0.2);
    }
}
