//! Function `In-Straight-Line-2` (Section 3.8).

use fatrobots_geometry::kernel::{EpsKernel, Kernel};
use fatrobots_geometry::predicates::Orientation;
use fatrobots_geometry::Point;

/// Function `In-Straight-Line-2`: `YES` iff the three points lie on a common
/// straight line (within the numerical tolerance `tol` on the doubled
/// triangle area).
///
/// The local algorithm calls this with the robot's own collinearity
/// tolerance; the *algorithmic* `1/n` band of Procedure
/// `NotAllOnConvexHull` is a different, coarser test implemented in the
/// compute layer.
///
/// ```
/// use fatrobots_core::functions::in_straight_line_2;
/// use fatrobots_geometry::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(1.0, 0.0);
/// assert!(in_straight_line_2(a, b, Point::new(5.0, 0.0), 1e-9));
/// assert!(!in_straight_line_2(a, b, Point::new(5.0, 1.0), 1e-9));
/// ```
pub fn in_straight_line_2(cl: Point, cm: Point, cr: Point, tol: f64) -> bool {
    in_straight_line_2_k::<EpsKernel>(cl, cm, cr, tol)
}

/// [`in_straight_line_2`] with the toleranced orientation decided by kernel
/// `K`. `tol` is the *algorithmic* collinearity tolerance (a deliberate
/// threshold on the doubled triangle area, not a float fudge), so both
/// kernels honor it; the exact kernel evaluates the area polynomial against
/// it without rounding.
pub fn in_straight_line_2_k<K: Kernel>(cl: Point, cm: Point, cr: Point, tol: f64) -> bool {
    K::orientation_tol(cl, cm, cr, tol) == Orientation::Collinear
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn collinear_triples() {
        assert!(in_straight_line_2(
            p(0.0, 0.0),
            p(3.0, 3.0),
            p(7.0, 7.0),
            1e-9
        ));
        assert!(in_straight_line_2(
            p(0.0, 5.0),
            p(0.0, 1.0),
            p(0.0, -4.0),
            1e-9
        ));
    }

    #[test]
    fn non_collinear_triples() {
        assert!(!in_straight_line_2(
            p(0.0, 0.0),
            p(3.0, 3.1),
            p(7.0, 7.0),
            1e-9
        ));
    }

    #[test]
    fn tolerance_is_respected() {
        // Doubled triangle area of this triple is 0.5: collinear only for a
        // generous tolerance.
        let (a, b, c) = (p(0.0, 0.0), p(1.0, 0.25), p(2.0, 0.0));
        assert!(!in_straight_line_2(a, b, c, 1e-9));
        assert!(in_straight_line_2(a, b, c, 1.0));
    }

    #[test]
    fn order_of_arguments_is_irrelevant() {
        let (a, b, c) = (p(0.0, 0.0), p(2.0, 2.0), p(5.0, 5.0));
        assert!(in_straight_line_2(a, b, c, 1e-9));
        assert!(in_straight_line_2(c, a, b, 1e-9));
        assert!(in_straight_line_2(b, c, a, 1e-9));
    }
}
