//! Function `Find-Points` (Section 3.3, Figure 3) and the safe distance of
//! Lemma 2.

use fatrobots_geometry::hull::ConvexHull;
use fatrobots_geometry::{Line, Point, UNIT_RADIUS};

/// Function `Find-Points`: given the points `onCH` that are on the convex
/// hull (in counter-clockwise order along the boundary) and the total number
/// of robots `n`, return every point `p` at which a unit disc could be placed
/// *on* the hull without making any current hull point fall off the hull
/// (Lemma 1) and without blocking the view between the edge's endpoints.
///
/// For every pair of neighbouring hull points `(c_l, c_r)` whose distance is
/// at least 2 (room for one more unit disc):
///
/// * let `µ` be the midpoint of `c_l c_r` and `p = µ + (1/n)·n̂` where `n̂` is
///   the outward normal of the edge — the `1/n` outward offset keeps `c_l`
///   and `c_r` able to see each other past the newcomer;
/// * `p` is accepted when it stays at distance at least `1/n` on the inner
///   side of the supporting lines of both *adjacent* hull edges, so that
///   placing a disc at `p` does not push `c_l` or `c_r` off the hull
///   (this is the rectangle test of Figure 3 / the wedge condition of
///   Lemma 2).
///
/// Degenerate hulls with fewer than three boundary points skip the wedge
/// condition (there are no adjacent edges to violate).
///
/// ```
/// use fatrobots_core::functions::find_points;
/// use fatrobots_geometry::Point;
///
/// // A large square hull: every edge has room.
/// let hull = vec![
///     Point::new(0.0, 0.0),
///     Point::new(10.0, 0.0),
///     Point::new(10.0, 10.0),
///     Point::new(0.0, 10.0),
/// ];
/// let pts = find_points(&hull, 5);
/// assert_eq!(pts.len(), 4);
/// ```
pub fn find_points(onch_ccw: &[Point], n: usize) -> Vec<Point> {
    find_points_iter(onch_ccw, n).collect()
}

/// Iterator form of [`find_points`]: yields the same candidates in the same
/// (edge) order without allocating. This is what the Compute hot path uses;
/// a procedure that only needs the closest candidate or the empty check
/// never materialises the list.
pub fn find_points_iter(onch_ccw: &[Point], n: usize) -> impl Iterator<Item = Point> + Clone + '_ {
    assert!(n > 0, "the robot count n must be positive");
    let m = onch_ccw.len();
    let margin = 1.0 / n as f64;
    let count = match m {
        0 | 1 => 0,
        2 => 1,
        _ => m,
    };
    (0..count).filter_map(move |i| {
        if m == 2 {
            let (a, b) = (onch_ccw[0], onch_ccw[1]);
            if a.distance(b) >= 2.0 * UNIT_RADIUS {
                let normal = (b - a).normalized().perp_cw();
                return Some(a.midpoint(b) + normal * margin);
            }
            return None;
        }
        let prev = onch_ccw[(i + m - 1) % m];
        let a = onch_ccw[i];
        let b = onch_ccw[(i + 1) % m];
        let next = onch_ccw[(i + 2) % m];
        if a.distance(b) < 2.0 * UNIT_RADIUS {
            return None;
        }
        let outward = ConvexHull::outward_normal(a, b);
        let p = a.midpoint(b) + outward * margin;

        // Wedge condition: p must stay at least `margin` on the interior
        // (left) side of the supporting lines of the adjacent boundary edges
        // prev→a and b→next. Skip a degenerate adjacent edge (coincident
        // neighbours can occur only in malformed inputs).
        let ok_prev = if prev.distance(a) <= f64::EPSILON {
            true
        } else {
            Line::through(prev, a).signed_distance_to(p) >= margin
        };
        let ok_next = if b.distance(next) <= f64::EPSILON {
            true
        } else {
            Line::through(b, next).signed_distance_to(p) >= margin
        };
        if ok_prev && ok_next {
            Some(p)
        } else {
            None
        }
    })
}

/// The per-side quantity of Lemma 2: the minimum half-edge length
/// `1/(n·tan θ) + 1/(n·sin θ)` required so that a robot placed `1/n` outside
/// the edge midpoint keeps a `1/n` clearance from the adjacent supporting
/// line meeting the edge at (interior) angle `θ`.
///
/// # Panics
/// Panics if `θ` is not in `(0, π)` or `n == 0`.
pub fn safe_distance_for_angle(theta: f64, n: usize) -> f64 {
    assert!(n > 0, "the robot count n must be positive");
    assert!(
        theta > 0.0 && theta < std::f64::consts::PI,
        "the turn angle must be strictly between 0 and π"
    );
    let nf = n as f64;
    1.0 / (nf * theta.tan()) + 1.0 / (nf * theta.sin())
}

/// The safe distance of Lemma 2 for a hull edge whose endpoints meet the
/// adjacent edges at angles `theta_l` and `theta_r`: twice the larger of the
/// two per-side requirements. Any two adjacent hull robots at least this far
/// apart admit a `Find-Points` candidate between them.
pub fn safe_distance(theta_l: f64, theta_r: f64, n: usize) -> f64 {
    2.0 * safe_distance_for_angle(theta_l, n).max(safe_distance_for_angle(theta_r, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn square(side: f64) -> Vec<Point> {
        vec![p(0.0, 0.0), p(side, 0.0), p(side, side), p(0.0, side)]
    }

    #[test]
    fn wide_edges_admit_candidates() {
        let pts = find_points(&square(10.0), 5);
        assert_eq!(pts.len(), 4);
        // Each candidate is 1/n outside its edge midpoint.
        assert!(pts.iter().any(|q| q.approx_eq(p(5.0, -0.2))));
        assert!(pts.iter().any(|q| q.approx_eq(p(10.2, 5.0))));
    }

    #[test]
    fn short_edges_admit_no_candidates() {
        // Unit square: every edge is shorter than a robot diameter.
        let pts = find_points(&square(1.5), 5);
        assert!(pts.is_empty());
    }

    #[test]
    fn candidates_lie_outside_the_hull() {
        let hull_pts = square(10.0);
        let hull = fatrobots_geometry::hull::ConvexHull::from_points(&hull_pts);
        for q in find_points(&hull_pts, 8) {
            assert!(!hull.contains_strict(q));
        }
    }

    #[test]
    fn lemma_1_adding_a_disc_at_a_candidate_keeps_hull_points_on_hull() {
        let hull_pts = square(10.0);
        for q in find_points(&hull_pts, 5) {
            let mut extended = hull_pts.clone();
            extended.push(q);
            let hull2 = fatrobots_geometry::hull::ConvexHull::from_points(&extended);
            // Every original hull point is still on the hull boundary.
            for orig in &hull_pts {
                assert!(
                    hull2.point_on_boundary(*orig),
                    "candidate {q} pushed {orig} off the hull"
                );
            }
        }
    }

    #[test]
    fn figure_3_flat_corner_rejects_candidate() {
        // The situation of Figure 3: the bottom-middle edge (0,0)-(2.05,0) is
        // just long enough (≥ 2), but its corners are almost flat (the
        // adjacent edges continue at a very shallow angle), so the candidate
        // 1/n below the midpoint pokes past the adjacent supporting lines and
        // placing a disc there would push (0,0) and (2.05,0) off the hull.
        let hull_ccw = vec![
            p(-5.0, 0.3),
            p(0.0, 0.0),
            p(2.05, 0.0),
            p(7.0, 0.3),
            p(1.0, 5.0),
        ];
        let n = 10;
        let pts = find_points(&hull_ccw, n);
        let rejected_candidate = p(1.025, -0.1);
        assert!(
            !pts.iter().any(|q| q.approx_eq(rejected_candidate)),
            "the flat-corner candidate must be rejected"
        );
        // Check the rejection is justified: adding it would push (0,0) off
        // the hull.
        let mut extended = hull_ccw.clone();
        extended.push(rejected_candidate);
        let hull2 = fatrobots_geometry::hull::ConvexHull::from_points(&extended);
        assert!(!hull2.point_on_boundary(p(0.0, 0.0)));
        // The long upper edges, far from the flat corners, still admit their
        // candidates (Find-Points is not empty for this hull).
        assert!(!pts.is_empty());
    }

    #[test]
    fn two_point_hull_gets_a_candidate_when_wide_enough() {
        let pts = find_points(&[p(0.0, 0.0), p(6.0, 0.0)], 4);
        assert_eq!(pts.len(), 1);
        let none = find_points(&[p(0.0, 0.0), p(1.0, 0.0)], 4);
        assert!(none.is_empty());
        assert!(find_points(&[p(0.0, 0.0)], 4).is_empty());
    }

    #[test]
    fn safe_distance_shrinks_with_n_and_flat_angles() {
        let d_small_n = safe_distance_for_angle(std::f64::consts::FRAC_PI_2, 5);
        let d_large_n = safe_distance_for_angle(std::f64::consts::FRAC_PI_2, 50);
        assert!(d_large_n < d_small_n);
        // Flatter interior angle (closer to π) needs less distance than a
        // sharp one.
        let sharp = safe_distance_for_angle(0.3, 10);
        let flat = safe_distance_for_angle(2.5, 10);
        assert!(flat < sharp);
        assert!(safe_distance(1.0, 2.0, 10) >= 2.0 * safe_distance_for_angle(2.0, 10));
    }

    #[test]
    fn edges_at_least_safe_distance_admit_candidates_on_regular_polygons() {
        // Regular octagon scaled so edges exceed the Lemma-2 safe distance.
        let n = 8usize;
        let interior_angle = std::f64::consts::PI * (n as f64 - 2.0) / n as f64;
        let needed = safe_distance(interior_angle, interior_angle, n).max(2.0);
        let radius = needed / (2.0 * (std::f64::consts::PI / n as f64).sin()) * 1.2;
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let a = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                p(radius * a.cos(), radius * a.sin())
            })
            .collect();
        let found = find_points(&pts, n);
        assert_eq!(found.len(), n, "every edge of the scaled octagon has room");
    }

    #[test]
    #[should_panic]
    fn zero_n_is_rejected() {
        let _ = find_points(&[p(0.0, 0.0), p(6.0, 0.0)], 0);
    }
}
