//! Functions `Connected-Components`, `How-Much-Distance`,
//! `In-Largest-Component` and `In-Smallest-Component` (Sections 3.4–3.7).
//!
//! These functions are called by a robot that sees all `n` robots and finds
//! every center on the convex hull (the convergence phase). The robots on the
//! hull are grouped into *components*: maximal runs of hull-adjacent robots
//! whose boundary gap is at most `1/2m` (the paper's threshold). The paper's
//! §3.4 spells this grouping out as a four-level nested case analysis that
//! walks left and right from the caller; the formulation here — order the
//! robots along the hull, cut the cyclic sequence at every gap larger than
//! the threshold — produces the same partition and the same
//! `⟨(c_l, c_r), k⟩` summaries, which is all the downstream functions use.
//!
//! ## Orientation
//!
//! Chirality lets all robots agree on clockwise. Hulls are stored
//! counter-clockwise; the *right* neighbour of a hull robot is the next robot
//! clockwise (the paper's "straight direction is the inside of the hull"
//! convention), so a component's **rightmost** member is the one whose
//! clockwise neighbour lies in a different component.

use fatrobots_geometry::hull::ConvexHull;
use fatrobots_geometry::{Point, UNIT_RADIUS};

/// A connected component of hull robots: a maximal run of hull-adjacent
/// robots with boundary gaps at most the threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct HullComponent {
    /// Members in counter-clockwise order along the hull; the first entry is
    /// the rightmost (clockwise-most) member, the last is the leftmost.
    members_ccw: Vec<Point>,
}

impl HullComponent {
    /// Number of robots in the component (the paper's `k`).
    pub fn len(&self) -> usize {
        self.members_ccw.len()
    }

    /// `true` when the component has no members (never produced by
    /// [`connected_components`]; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.members_ccw.is_empty()
    }

    /// Members in counter-clockwise order along the hull.
    pub fn members(&self) -> &[Point] {
        &self.members_ccw
    }

    /// The rightmost member: the one whose clockwise hull neighbour belongs
    /// to a different component (the paper's `c_r`).
    pub fn rightmost(&self) -> Point {
        self.members_ccw[0]
    }

    /// The leftmost member (the paper's `c_l`).
    pub fn leftmost(&self) -> Point {
        *self.members_ccw.last().expect("components are non-empty")
    }

    /// `true` when `p` is one of the members.
    pub fn contains(&self, p: Point) -> bool {
        self.members_ccw.iter().any(|q| q.approx_eq(p))
    }
}

/// The partition of the hull robots into components, in counter-clockwise
/// order around the hull.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentPartition {
    components: Vec<HullComponent>,
    single_cycle: bool,
}

impl ComponentPartition {
    /// The components, in counter-clockwise order around the hull.
    pub fn components(&self) -> &[HullComponent] {
        &self.components
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` when the partition is empty (no robots).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// `true` when every hull gap is at most the threshold, so all robots
    /// form one cyclic component. In that case
    /// [`HullComponent::rightmost`]/[`HullComponent::leftmost`] are an
    /// arbitrary (but deterministic) cut of the cycle.
    pub fn is_single(&self) -> bool {
        self.single_cycle || self.components.len() <= 1
    }

    /// Index of the component containing `p`, if any.
    pub fn component_of(&self, p: Point) -> Option<usize> {
        self.components.iter().position(|c| c.contains(p))
    }

    /// Index of the component clockwise-adjacent to component `i` (its
    /// *right neighbour*). With a single component this is `i` itself.
    pub fn right_neighbor(&self, i: usize) -> usize {
        let k = self.components.len();
        (i + k - 1) % k
    }

    /// Boundary gap (center distance minus 2) between component `i`'s
    /// rightmost robot and its right-neighbour component's leftmost robot.
    pub fn right_gap(&self, i: usize) -> f64 {
        let j = self.right_neighbor(i);
        self.components[i]
            .rightmost()
            .distance(self.components[j].leftmost())
            - 2.0 * UNIT_RADIUS
    }

    /// Sizes of all components, in the same order as [`Self::components`].
    pub fn sizes(&self) -> Vec<usize> {
        self.components.iter().map(HullComponent::len).collect()
    }
}

/// The component partition of a hull boundary, stored as `(start, len)`
/// runs of indices into the caller's counter-clockwise boundary slice.
///
/// This is the flat, reusable form of [`ComponentPartition`] used by the
/// Compute hot path: [`BoundaryPartition::rebuild`] performs no heap
/// allocation once its buffers are warm, and every query is answered from
/// the run table plus the boundary slice the caller already owns (the
/// `Ctx`'s `onCH(V_i)`). For the same boundary it produces exactly the
/// partition [`connected_components`] builds from the underlying centers:
/// the same component order, members, rightmost/leftmost choices and gaps.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BoundaryPartition {
    /// `(start index into the boundary, member count)` per component, in
    /// the same counter-clockwise order as [`ComponentPartition`].
    runs: Vec<(usize, usize)>,
    /// Reused buffer for the gap-break indices.
    breaks: Vec<usize>,
    /// Length of the boundary slice the runs index into.
    boundary_len: usize,
    single_cycle: bool,
}

impl BoundaryPartition {
    /// Rebuilds the partition of the given counter-clockwise hull boundary
    /// in place, cutting the cyclic sequence at every gap larger than the
    /// threshold (the grouping of Function `Connected-Components`).
    pub fn rebuild(&mut self, onch_ccw: &[Point], gap_threshold: f64) {
        self.runs.clear();
        self.breaks.clear();
        let m = onch_ccw.len();
        self.boundary_len = m;
        self.single_cycle = false;
        if m == 0 {
            return;
        }
        if m == 1 {
            self.runs.push((0, 1));
            self.single_cycle = true;
            return;
        }
        let gap = |i: usize| onch_ccw[i].distance(onch_ccw[(i + 1) % m]) - 2.0 * UNIT_RADIUS;
        self.breaks
            .extend((0..m).filter(|&i| gap(i) > gap_threshold));
        if self.breaks.is_empty() {
            self.runs.push((0, m));
            self.single_cycle = true;
            return;
        }
        let k = self.breaks.len();
        for w in 0..k {
            // A component starts right after one break and ends at the next.
            let start = (self.breaks[(w + k - 1) % k] + 1) % m;
            let end = self.breaks[w]; // inclusive
            let len = (end + m - start) % m + 1;
            self.runs.push((start, len));
        }
        // Match connected_components' deterministic layout: components
        // ordered by the position of their rightmost member in the
        // boundary (which, absent approx-duplicate points, is the start
        // index itself).
        // Unstable sort (no allocation) with the start index as the final
        // tie-break, reproducing the stable order exactly.
        self.runs.sort_unstable_by_key(|&(start, _)| {
            (
                onch_ccw
                    .iter()
                    .position(|q| q.approx_eq(onch_ccw[start]))
                    .unwrap_or(usize::MAX),
                start,
            )
        });
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// `true` when the partition is empty (no boundary points).
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// `true` when every hull gap is at most the threshold, so all robots
    /// form one cyclic component.
    pub fn is_single(&self) -> bool {
        self.single_cycle || self.runs.len() <= 1
    }

    /// Number of members of component `i`.
    pub fn size(&self, i: usize) -> usize {
        self.runs[i].1
    }

    /// Sizes of all components, in component order.
    pub fn sizes(&self) -> impl Iterator<Item = usize> + '_ {
        self.runs.iter().map(|&(_, len)| len)
    }

    /// Index of the component containing `p`, scanning components and their
    /// members in the same order as [`ComponentPartition::component_of`].
    pub fn component_of(&self, onch_ccw: &[Point], p: Point) -> Option<usize> {
        let m = self.boundary_len;
        self.runs
            .iter()
            .position(|&(start, len)| (0..len).any(|o| onch_ccw[(start + o) % m].approx_eq(p)))
    }

    /// The rightmost (clockwise-most) member of component `i`.
    pub fn rightmost(&self, onch_ccw: &[Point], i: usize) -> Point {
        onch_ccw[self.runs[i].0]
    }

    /// The leftmost member of component `i`.
    pub fn leftmost(&self, onch_ccw: &[Point], i: usize) -> Point {
        let (start, len) = self.runs[i];
        onch_ccw[(start + len - 1) % self.boundary_len]
    }

    /// Index of the component clockwise-adjacent to component `i`.
    pub fn right_neighbor(&self, i: usize) -> usize {
        let k = self.runs.len();
        (i + k - 1) % k
    }

    /// Boundary gap (center distance minus 2) between component `i`'s
    /// rightmost robot and its right-neighbour component's leftmost robot.
    pub fn right_gap(&self, onch_ccw: &[Point], i: usize) -> f64 {
        let j = self.right_neighbor(i);
        self.rightmost(onch_ccw, i)
            .distance(self.leftmost(onch_ccw, j))
            - 2.0 * UNIT_RADIUS
    }
}

/// Answer of the component-membership functions of Sections 3.5–3.7, kept in
/// the paper's 1/2/3 form. The meaning of each variant depends on the
/// function; see [`how_much_distance`], [`in_largest_component`] and
/// [`in_smallest_component`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentAnswer {
    /// The paper's answer "1".
    One,
    /// The paper's answer "2".
    Two,
    /// The paper's answer "3".
    Three,
}

/// Function `Connected-Components`: group the given robot centers (all of
/// which must lie on their common convex hull) into components using the gap
/// threshold (the paper uses `1/2m`).
///
/// Centers that do not lie on the hull boundary are ignored; the local
/// algorithm only calls this in configurations where every robot is on the
/// hull.
pub fn connected_components(centers: &[Point], gap_threshold: f64) -> ComponentPartition {
    if centers.is_empty() {
        return ComponentPartition {
            components: vec![],
            single_cycle: false,
        };
    }
    let hull = ConvexHull::from_points(centers);
    let ordered = hull.boundary();
    let m = ordered.len();
    if m == 1 {
        return ComponentPartition {
            components: vec![HullComponent {
                members_ccw: ordered,
            }],
            single_cycle: true,
        };
    }

    // Break the cyclic CCW sequence at every gap larger than the threshold.
    let gap = |i: usize| ordered[i].distance(ordered[(i + 1) % m]) - 2.0 * UNIT_RADIUS;
    let breaks: Vec<usize> = (0..m).filter(|&i| gap(i) > gap_threshold).collect();
    if breaks.is_empty() {
        return ComponentPartition {
            components: vec![HullComponent {
                members_ccw: ordered,
            }],
            single_cycle: true,
        };
    }

    let mut components = Vec::with_capacity(breaks.len());
    for w in 0..breaks.len() {
        // A component starts right after one break and ends at the next.
        let start = (breaks[(w + breaks.len() - 1) % breaks.len()] + 1) % m;
        let end = breaks[w]; // inclusive
        let mut members = Vec::new();
        let mut idx = start;
        loop {
            members.push(ordered[idx]);
            if idx == end {
                break;
            }
            idx = (idx + 1) % m;
        }
        components.push(HullComponent {
            members_ccw: members,
        });
    }
    // Order components counter-clockwise by their starting index for a
    // deterministic layout.
    components.sort_by_key(|c| {
        ordered
            .iter()
            .position(|q| q.approx_eq(c.rightmost()))
            .unwrap_or(usize::MAX)
    });
    ComponentPartition {
        components,
        single_cycle: false,
    }
}

/// Function `How-Much-Distance` (Section 3.5).
///
/// * [`ComponentAnswer::Two`] — all inter-component gaps are (approximately)
///   equal, or there are fewer than two components;
/// * [`ComponentAnswer::One`] — gaps differ and `c` is the **rightmost**
///   robot of a component whose right-gap is the minimum;
/// * [`ComponentAnswer::Three`] — otherwise.
pub fn how_much_distance(partition: &ComponentPartition, c: Point, tol: f64) -> ComponentAnswer {
    if partition.is_single() || partition.len() < 2 {
        return ComponentAnswer::Two;
    }
    let gaps: Vec<f64> = (0..partition.len())
        .map(|i| partition.right_gap(i))
        .collect();
    let min = gaps.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = gaps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if max - min <= tol {
        return ComponentAnswer::Two;
    }
    match partition.component_of(c) {
        Some(i) if gaps[i] <= min + tol && partition.components()[i].rightmost().approx_eq(c) => {
            ComponentAnswer::One
        }
        _ => ComponentAnswer::Three,
    }
}

/// Function `In-Largest-Component` (Section 3.6).
///
/// * [`ComponentAnswer::One`] — `c`'s component is among the largest and a
///   strictly smaller component exists (so `c` should stay put and wait);
/// * [`ComponentAnswer::Two`] — every other component is strictly larger
///   than `c`'s (so `c`'s component should merge into a neighbour);
/// * [`ComponentAnswer::Three`] — otherwise (including the all-equal case,
///   which the algorithm resolves with `How-Much-Distance`).
pub fn in_largest_component(partition: &ComponentPartition, c: Point) -> ComponentAnswer {
    membership_answer(partition, c, true)
}

/// Function `In-Smallest-Component` (Section 3.7).
///
/// * [`ComponentAnswer::One`] — `c`'s component is among the smallest and a
///   strictly larger component exists;
/// * [`ComponentAnswer::Two`] — all components have the same size;
/// * [`ComponentAnswer::Three`] — otherwise.
pub fn in_smallest_component(partition: &ComponentPartition, c: Point) -> ComponentAnswer {
    if partition.is_single() || partition.len() < 2 {
        return ComponentAnswer::Two;
    }
    let sizes = partition.sizes();
    let min = *sizes.iter().min().expect("non-empty partition");
    let max = *sizes.iter().max().expect("non-empty partition");
    if min == max {
        return ComponentAnswer::Two;
    }
    match partition.component_of(c) {
        Some(i) if sizes[i] == min => ComponentAnswer::One,
        _ => ComponentAnswer::Three,
    }
}

fn membership_answer(partition: &ComponentPartition, c: Point, largest: bool) -> ComponentAnswer {
    if partition.is_single() || partition.len() < 2 {
        return ComponentAnswer::One;
    }
    let sizes = partition.sizes();
    let min = *sizes.iter().min().expect("non-empty partition");
    let max = *sizes.iter().max().expect("non-empty partition");
    if min == max {
        return ComponentAnswer::Three;
    }
    let mine = match partition.component_of(c) {
        Some(i) => sizes[i],
        None => return ComponentAnswer::Three,
    };
    if largest {
        if mine == max {
            ComponentAnswer::One
        } else if mine == min && sizes.iter().filter(|&&s| s <= mine).count() == 1 {
            // Every other component is strictly larger.
            ComponentAnswer::Two
        } else {
            ComponentAnswer::Three
        }
    } else {
        unreachable!("smallest-component queries use in_smallest_component")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Robots on a circle of radius `r`, grouped: each group is a list of
    /// touching robots (adjacent chord distance exactly 2), groups are
    /// separated by the given angular gaps.
    fn circle_groups(r: f64, group_sizes: &[usize], start_angles: &[f64]) -> Vec<Point> {
        assert_eq!(group_sizes.len(), start_angles.len());
        let step = 2.0 * (1.0 / r).asin(); // chord of exactly 2
        let mut pts = Vec::new();
        for (&size, &start) in group_sizes.iter().zip(start_angles) {
            for k in 0..size {
                let a = start + k as f64 * step;
                pts.push(Point::new(r * a.cos(), r * a.sin()));
            }
        }
        pts
    }

    #[test]
    fn grouping_by_gap_threshold() {
        let n = 6;
        let centers = circle_groups(60.0, &[3, 2, 1], &[0.0, 2.0, 4.0]);
        let part = connected_components(&centers, 1.0 / (2.0 * n as f64));
        assert_eq!(part.len(), 3);
        assert!(!part.is_single());
        let mut sizes = part.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
    }

    #[test]
    fn all_touching_is_a_single_component() {
        let centers = circle_groups(60.0, &[6], &[0.0]);
        let part = connected_components(&centers, 0.05);
        assert!(part.is_single());
        assert_eq!(part.len(), 1);
        assert_eq!(part.components()[0].len(), 6);
    }

    #[test]
    fn rightmost_and_leftmost_follow_clockwise_convention() {
        // One group of three robots on the circle at increasing angle
        // (counter-clockwise), plus a far-away singleton so the partition is
        // not a single cycle.
        let centers = circle_groups(60.0, &[3, 1], &[0.0, 3.0]);
        let part = connected_components(&centers, 0.05);
        assert_eq!(part.len(), 2);
        let big = part
            .components()
            .iter()
            .find(|c| c.len() == 3)
            .expect("group of three exists");
        // CCW order = increasing angle, so the rightmost (clockwise-most)
        // member is the one at the smallest angle (y closest to 0 from
        // above), and the leftmost is at the largest angle.
        assert!(big.rightmost().y < big.leftmost().y);
        assert!(big.rightmost().approx_eq(centers[0]));
        assert!(big.leftmost().approx_eq(centers[2]));
    }

    #[test]
    fn right_gap_measures_distance_to_clockwise_neighbour() {
        // Two singletons at angles 0 and π/2 on a circle of radius 10.
        let centers = circle_groups(10.0, &[1, 1], &[0.0, std::f64::consts::FRAC_PI_2]);
        let part = connected_components(&centers, 0.05);
        assert_eq!(part.len(), 2);
        let i0 = part.component_of(centers[0]).unwrap();
        // The clockwise neighbour of the robot at angle 0 is the robot at
        // angle π/2 (going clockwise wraps around the short way below the
        // x-axis? No: with only two robots the hull is a segment; both gaps
        // are the same distance).
        let expected_gap = centers[0].distance(centers[1]) - 2.0;
        assert!((part.right_gap(i0) - expected_gap).abs() < 1e-9);
    }

    #[test]
    fn how_much_distance_identifies_the_min_gap_component() {
        // Three singletons with unequal gaps: at angles 0, 0.5 and 3.0.
        let centers = circle_groups(40.0, &[1, 1, 1], &[0.0, 0.5, 3.0]);
        let part = connected_components(&centers, 1.0 / 6.0);
        assert_eq!(part.len(), 3);
        let tol = 1e-6;
        // The robot at angle 0.5 has its clockwise neighbour at angle 0.0 at
        // the smallest gap, so it answers One; the others answer Three.
        assert_eq!(
            how_much_distance(&part, centers[1], tol),
            ComponentAnswer::One
        );
        assert_eq!(
            how_much_distance(&part, centers[0], tol),
            ComponentAnswer::Three
        );
        assert_eq!(
            how_much_distance(&part, centers[2], tol),
            ComponentAnswer::Three
        );
    }

    #[test]
    fn how_much_distance_all_equal_gaps() {
        // Three singletons equally spaced: all gaps equal.
        let third = 2.0 * std::f64::consts::PI / 3.0;
        let centers = circle_groups(40.0, &[1, 1, 1], &[0.0, third, 2.0 * third]);
        let part = connected_components(&centers, 1.0 / 6.0);
        for &c in &centers {
            assert_eq!(how_much_distance(&part, c, 1e-6), ComponentAnswer::Two);
        }
    }

    #[test]
    fn largest_and_smallest_membership() {
        let n = 6;
        let centers = circle_groups(60.0, &[3, 2, 1], &[0.0, 2.0, 4.0]);
        let part = connected_components(&centers, 1.0 / (2.0 * n as f64));
        // centers[0..3] form the size-3 group, centers[3..5] the size-2
        // group, centers[5] the singleton.
        assert_eq!(
            in_largest_component(&part, centers[0]),
            ComponentAnswer::One
        );
        assert_eq!(
            in_largest_component(&part, centers[3]),
            ComponentAnswer::Three
        );
        assert_eq!(
            in_largest_component(&part, centers[5]),
            ComponentAnswer::Two
        );

        assert_eq!(
            in_smallest_component(&part, centers[5]),
            ComponentAnswer::One
        );
        assert_eq!(
            in_smallest_component(&part, centers[3]),
            ComponentAnswer::Three
        );
        assert_eq!(
            in_smallest_component(&part, centers[0]),
            ComponentAnswer::Three
        );
    }

    #[test]
    fn equal_sizes_fall_through_to_distance_based_resolution() {
        // Two singletons: sizes all equal.
        let centers = circle_groups(40.0, &[1, 1], &[0.0, 2.0]);
        let part = connected_components(&centers, 1.0 / 4.0);
        assert_eq!(
            in_largest_component(&part, centers[0]),
            ComponentAnswer::Three
        );
        assert_eq!(
            in_smallest_component(&part, centers[0]),
            ComponentAnswer::Two
        );
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty = connected_components(&[], 0.1);
        assert!(empty.is_empty());
        let single = connected_components(&[Point::new(0.0, 0.0)], 0.1);
        assert!(single.is_single());
        assert_eq!(single.components()[0].len(), 1);
        assert_eq!(
            how_much_distance(&single, Point::new(0.0, 0.0), 1e-6),
            ComponentAnswer::Two
        );
    }

    #[test]
    fn boundary_partition_matches_connected_components_exactly() {
        // The flat scratch partition used by the Compute hot path must
        // reproduce the heavy partition structure-for-structure: same
        // component count, order, members, endpoints and gaps.
        let configs: Vec<(Vec<Point>, f64)> = vec![
            (
                circle_groups(60.0, &[3, 2, 1], &[0.0, 2.0, 4.0]),
                1.0 / 12.0,
            ),
            (circle_groups(60.0, &[6], &[0.0]), 0.05),
            (circle_groups(60.0, &[3, 1], &[0.0, 3.0]), 0.05),
            (circle_groups(40.0, &[1, 1, 1], &[0.0, 0.5, 3.0]), 1.0 / 6.0),
            (
                circle_groups(60.0, &[4, 3, 2, 1], &[0.0, 1.5, 3.0, 4.5]),
                1.0 / 20.0,
            ),
            (vec![Point::new(0.0, 0.0)], 0.1),
            (vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)], 0.1),
        ];
        let mut flat = BoundaryPartition::default();
        for (centers, threshold) in configs {
            let heavy = connected_components(&centers, threshold);
            let onch = ConvexHull::from_points(&centers).boundary();
            flat.rebuild(&onch, threshold);
            assert_eq!(flat.len(), heavy.len());
            assert_eq!(flat.is_single(), heavy.is_single());
            assert_eq!(flat.sizes().collect::<Vec<_>>(), heavy.sizes());
            for (i, comp) in heavy.components().iter().enumerate() {
                assert!(flat.rightmost(&onch, i).approx_eq(comp.rightmost()));
                assert!(flat.leftmost(&onch, i).approx_eq(comp.leftmost()));
                assert!((flat.right_gap(&onch, i) - heavy.right_gap(i)).abs() < 1e-12);
            }
            for &c in &centers {
                assert_eq!(flat.component_of(&onch, c), heavy.component_of(c));
            }
            assert_eq!(flat.component_of(&onch, Point::new(1e6, 1e6)), None);
        }
    }

    #[test]
    fn partition_covers_every_robot_exactly_once() {
        let centers = circle_groups(60.0, &[4, 3, 2, 1], &[0.0, 1.5, 3.0, 4.5]);
        let part = connected_components(&centers, 1.0 / 20.0);
        let total: usize = part.sizes().iter().sum();
        assert_eq!(total, centers.len());
        for &c in &centers {
            assert!(part.component_of(c).is_some());
        }
    }
}
