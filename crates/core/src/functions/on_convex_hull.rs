//! Function `On-Convex-Hull` (Section 3.1).

use fatrobots_geometry::hull::ConvexHull;
use fatrobots_geometry::Point;

/// Result of [`on_convex_hull`]: the YES/NO answer plus the full `onCH` set,
/// which the paper's function also returns and which the local algorithm
/// carries through the rest of its Compute states.
#[derive(Debug, Clone, PartialEq)]
pub struct OnConvexHullResult {
    /// `true` when the queried point lies on the convex hull boundary.
    pub on_hull: bool,
    /// The points of the input that lie on the convex hull boundary
    /// (`onCH(c_1, …, c_m)`), in counter-clockwise order along the boundary.
    pub on_ch: Vec<Point>,
    /// The hull itself, for further geometric queries.
    pub hull: ConvexHull,
}

/// Function `On-Convex-Hull`: given the `m` points of a robot's local view
/// and the robot's own center `c`, decide whether `c ∈ onCH(c_1, …, c_m)` and
/// return the `onCH` set.
///
/// "On the convex hull" includes points lying in the interior of a hull edge
/// (collinear boundary points): the paper's type-2 bad configurations have
/// four hull robots on a common line, so edge-interior points must count.
///
/// The query point `c` is expected to be one of `points` (a robot always sees
/// itself); if it is not, it is treated as an extra input point.
///
/// ```
/// use fatrobots_core::functions::on_convex_hull;
/// use fatrobots_geometry::Point;
///
/// let pts = vec![
///     Point::new(0.0, 0.0),
///     Point::new(10.0, 0.0),
///     Point::new(10.0, 10.0),
///     Point::new(0.0, 10.0),
///     Point::new(5.0, 5.0), // interior
/// ];
/// assert!(on_convex_hull(&pts, pts[0]).on_hull);
/// assert!(!on_convex_hull(&pts, pts[4]).on_hull);
/// ```
pub fn on_convex_hull(points: &[Point], c: Point) -> OnConvexHullResult {
    let mut input: Vec<Point> = points.to_vec();
    if !input.iter().any(|p| p.approx_eq(c)) {
        input.push(c);
    }
    let hull = ConvexHull::from_points(&input);
    let on_ch = hull.boundary();
    let on_hull = on_ch.iter().any(|p| p.approx_eq(c));
    OnConvexHullResult {
        on_hull,
        on_ch,
        hull,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn interior_point_is_not_on_hull() {
        let pts = vec![
            p(0.0, 0.0),
            p(10.0, 0.0),
            p(10.0, 10.0),
            p(0.0, 10.0),
            p(4.0, 5.0),
        ];
        let r = on_convex_hull(&pts, p(4.0, 5.0));
        assert!(!r.on_hull);
        assert_eq!(r.on_ch.len(), 4);
    }

    #[test]
    fn corner_and_edge_points_are_on_hull() {
        let pts = vec![
            p(0.0, 0.0),
            p(10.0, 0.0),
            p(10.0, 10.0),
            p(0.0, 10.0),
            p(5.0, 0.0),
        ];
        assert!(on_convex_hull(&pts, p(0.0, 0.0)).on_hull);
        // Edge-interior point counts as on the hull, per the paper's usage.
        assert!(on_convex_hull(&pts, p(5.0, 0.0)).on_hull);
        assert_eq!(on_convex_hull(&pts, p(5.0, 0.0)).on_ch.len(), 5);
    }

    #[test]
    fn query_point_missing_from_input_is_added() {
        let pts = vec![p(0.0, 0.0), p(10.0, 0.0), p(5.0, 10.0)];
        let r = on_convex_hull(&pts, p(5.0, 3.0));
        assert!(!r.on_hull);
        let r2 = on_convex_hull(&pts, p(5.0, 20.0));
        assert!(r2.on_hull);
    }

    #[test]
    fn collinear_configuration_everyone_on_hull() {
        let pts = vec![p(0.0, 0.0), p(2.0, 0.0), p(4.0, 0.0), p(6.0, 0.0)];
        for &q in &pts {
            assert!(on_convex_hull(&pts, q).on_hull);
        }
        assert_eq!(on_convex_hull(&pts, pts[1]).on_ch.len(), 4);
    }

    #[test]
    fn two_robots_both_on_hull() {
        let pts = vec![p(0.0, 0.0), p(5.0, 0.0)];
        assert!(on_convex_hull(&pts, pts[0]).on_hull);
        assert!(on_convex_hull(&pts, pts[1]).on_hull);
    }
}
