//! Function `Move-to-Point` (Section 3.2, Figure 2).

use fatrobots_geometry::{Circle, Point, Segment, Vec2, UNIT_RADIUS};

/// Result of [`move_to_point`]: the construction of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoveToPoint {
    /// The paper's point `c`: on the perpendicular through `c2`, at the given
    /// offset from `c2`, towards the inside of the hull.
    pub offset_point: Point,
    /// The paper's point `µ`: where the segment `c1 → c` crosses the boundary
    /// of the unit disc centred at `c2`. The two discs will be tangent at
    /// this point after the move.
    pub mu: Point,
    /// The center the moving robot must travel to so that its disc becomes
    /// tangent to the disc at `c2` exactly at `µ` (i.e. the point at distance
    /// 2 from `c2` in the direction of `µ`).
    pub target: Point,
}

/// Function `Move-to-Point`: robot at `c1` wants to touch the robot at `c2`.
///
/// The construction (Figure 2): take the perpendicular to `c1c2` at `c2`
/// pointing towards the inside of the convex hull, mark the point `c` at
/// distance `offset` from `c2` on it (the paper uses `offset = 1/2m − ε`),
/// and let `µ` be the intersection of the segment `c1 → c` with the unit
/// circle around `c2`. The moving robot aims for the center position that
/// makes its disc tangent to `c2`'s disc at `µ`. The inward offset keeps the
/// mover from ending up exactly "behind" `c2` as seen from the rest of the
/// hull, which is what preserves its visibility (see the paper's Insight).
///
/// `interior_hint` is any point on the inside of the hull (the hull centroid
/// works); it only selects which of the two perpendicular directions is
/// "towards the inside". If the hint is collinear with `c1c2` the
/// counter-clockwise perpendicular is used.
///
/// # Panics
/// Panics if `c1` and `c2` coincide, or if `offset` is not in `[0, 1)`
/// (the point `c` must stay strictly inside the unit disc at `c2`).
pub fn move_to_point(c1: Point, c2: Point, offset: f64, interior_hint: Point) -> MoveToPoint {
    assert!(
        c1.distance(c2) > f64::EPSILON,
        "Move-to-Point needs two distinct centers"
    );
    assert!(
        (0.0..UNIT_RADIUS).contains(&offset),
        "offset must lie in [0, 1) so that point c stays inside the target disc"
    );
    let dir = (c2 - c1).normalized();
    let mut perp = dir.perp_ccw();
    let to_inside = interior_hint - c2;
    if perp.dot(to_inside) < 0.0 {
        perp = -perp;
    }
    let offset_point = c2 + perp * offset;

    // µ = intersection of segment c1 → c with the unit circle around c2.
    // c lies strictly inside the disc and c1 lies outside (robots never
    // overlap), so there is exactly one crossing; numerically we take the
    // intersection closest to c1.
    let circle = Circle::unit(c2);
    let seg = Segment::new(c1, offset_point);
    let crossings = circle.intersect_segment(&seg);
    let mu = crossings
        .into_iter()
        .min_by(|a, b| {
            a.distance(c1)
                .partial_cmp(&b.distance(c1))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or_else(|| circle.boundary_point_towards(c1));

    let radial: Vec2 = (mu - c2).normalized();
    let target = c2 + radial * (2.0 * UNIT_RADIUS);
    MoveToPoint {
        offset_point,
        mu,
        target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn target_is_tangent_to_destination_disc() {
        let r = move_to_point(p(-6.0, 0.0), p(0.0, 0.0), 0.05, p(0.0, 5.0));
        assert!((r.target.distance(p(0.0, 0.0)) - 2.0).abs() < 1e-9);
        // µ is on the unit circle around c2 and on the segment c1 → c.
        assert!((r.mu.distance(p(0.0, 0.0)) - 1.0).abs() < 1e-9);
        // The tangency point is the midpoint of the two centers after the move.
        assert!(r.mu.approx_eq(r.target.midpoint(p(0.0, 0.0))));
    }

    #[test]
    fn inward_offset_biases_towards_the_interior() {
        // Interior above the x-axis: µ and the target are nudged upward.
        let up = move_to_point(p(-6.0, 0.0), p(0.0, 0.0), 0.1, p(0.0, 5.0));
        assert!(up.mu.y > 0.0);
        assert!(up.target.y > 0.0);
        // Interior below: nudged downward.
        let down = move_to_point(p(-6.0, 0.0), p(0.0, 0.0), 0.1, p(0.0, -5.0));
        assert!(down.mu.y < 0.0);
        assert!(down.target.y < 0.0);
    }

    #[test]
    fn zero_offset_is_the_straight_approach() {
        let r = move_to_point(p(-6.0, 0.0), p(0.0, 0.0), 0.0, p(0.0, 5.0));
        assert!(r.mu.approx_eq(p(-1.0, 0.0)));
        assert!(r.target.approx_eq(p(-2.0, 0.0)));
    }

    #[test]
    fn target_is_closer_to_mover_side() {
        // The target must be on the same side of c2 as the mover (we approach,
        // we do not orbit to the far side).
        let c1 = p(10.0, 3.0);
        let c2 = p(2.0, 1.0);
        let r = move_to_point(c1, c2, 0.08, p(0.0, 0.0));
        assert!(r.target.distance(c1) < c2.distance(c1));
    }

    #[test]
    fn larger_offset_gives_larger_sideways_displacement() {
        let small = move_to_point(p(-6.0, 0.0), p(0.0, 0.0), 0.02, p(0.0, 5.0));
        let large = move_to_point(p(-6.0, 0.0), p(0.0, 0.0), 0.4, p(0.0, 5.0));
        assert!(large.target.y > small.target.y);
    }

    #[test]
    #[should_panic]
    fn coincident_centers_are_rejected() {
        let _ = move_to_point(p(1.0, 1.0), p(1.0, 1.0), 0.1, p(0.0, 0.0));
    }

    #[test]
    #[should_panic]
    fn offset_of_a_full_radius_is_rejected() {
        let _ = move_to_point(p(-6.0, 0.0), p(0.0, 0.0), 1.0, p(0.0, 5.0));
    }
}
