//! The geometric functions of Section 3 of the paper.
//!
//! Each submodule implements one numbered function:
//!
//! | Paper §  | Function                | Module |
//! |----------|-------------------------|--------|
//! | 3.1      | `On-Convex-Hull`        | [`on_convex_hull`] |
//! | 3.2      | `Move-to-Point`         | [`move_to_point`] |
//! | 3.3      | `Find-Points`           | [`find_points`] |
//! | 3.4      | `Connected-Components`  | [`components`] |
//! | 3.5      | `How-Much-Distance`     | [`components`] |
//! | 3.6      | `In-Largest-Component`  | [`components`] |
//! | 3.7      | `In-Smallest-Component` | [`components`] |
//! | 3.8      | `In-Straight-Line-2`    | [`straight_line`] |

pub mod components;
pub mod find_points;
pub mod move_to_point;
pub mod on_convex_hull;
pub mod straight_line;

pub use components::{
    connected_components, how_much_distance, in_largest_component, in_smallest_component,
    BoundaryPartition, ComponentAnswer, ComponentPartition, HullComponent,
};
pub use find_points::{find_points, find_points_iter, safe_distance, safe_distance_for_angle};
pub use move_to_point::{move_to_point, MoveToPoint};
pub use on_convex_hull::{on_convex_hull, OnConvexHullResult};
pub use straight_line::{in_straight_line_2, in_straight_line_2_k};
