//! # fatrobots-core
//!
//! The gathering algorithm of *A Distributed Algorithm for Gathering Many
//! Fat Mobile Robots in the Plane* (Agathangelou, Georgiou & Mavronicolas,
//! PODC 2013) — the paper's primary contribution.
//!
//! The crate has two layers, mirroring the paper:
//!
//! * [`functions`] — the geometric helper functions of Section 3
//!   (`On-Convex-Hull`, `Move-to-Point`, `Find-Points`,
//!   `Connected-Components`, `How-Much-Distance`, `In-Largest-Component`,
//!   `In-Smallest-Component`, `In-Straight-Line-2`);
//! * [`compute`] — the local algorithm of Section 4: the seventeen
//!   `Compute.*` states (Figure 4) and one procedure per state, assembled by
//!   [`compute::LocalAlgorithm`], which maps a robot's local view to either a
//!   target point or the termination signal ⊥.
//!
//! All tolerances used by the algorithm (`1/n` collinearity band, `1/2n`
//! component gaps, `1/2n − ε` steps) are derived from a single
//! [`AlgorithmParams`] value, so the whole algorithm is parameterised only by
//! the number of robots `n`, exactly as in the paper.
//!
//! ```
//! use fatrobots_core::compute::{Decision, LocalAlgorithm};
//! use fatrobots_core::AlgorithmParams;
//! use fatrobots_model::LocalView;
//! use fatrobots_geometry::Point;
//!
//! // Three touching robots in a triangle: already gathered, so the
//! // algorithm tells each robot to terminate.
//! let centers = [
//!     Point::new(0.0, 0.0),
//!     Point::new(2.0, 0.0),
//!     Point::new(1.0, 3.0_f64.sqrt()),
//! ];
//! let algo = LocalAlgorithm::new(AlgorithmParams::for_n(3));
//! let view = LocalView::new(centers[0], centers[1..].to_vec(), 3);
//! assert_eq!(algo.run(&view), Decision::Terminate);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compute;
pub mod functions;
pub mod params;
pub mod strategy;

pub use compute::{
    ComputeOutcome, ComputeScratch, ComputeState, Decision, KernelAlgorithm, LocalAlgorithm,
};
pub use params::AlgorithmParams;
pub use strategy::Strategy;
