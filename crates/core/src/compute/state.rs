//! The seventeen algorithmic states of the Compute phase (Figure 4).

use std::fmt;

use fatrobots_geometry::Point;

/// Algorithmic state within the Compute phase (the paper writes
/// `Compute.⟨name⟩`). The numbering in the documentation of each variant is
/// the paper's (Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComputeState {
    /// 1 — initial state of the local algorithm.
    Start,
    /// 2 — the robot is on the convex hull of its local view.
    OnConvexHull,
    /// 3 — on the hull, sees all robots, all robots on the hull with full
    /// visibility.
    AllOnConvexHull,
    /// 4 — as state 3, and the configuration is connected.
    Connected,
    /// 5 — as state 3, and the configuration is not connected.
    NotConnected,
    /// 6 — on the hull, but not everyone is (or someone lacks visibility).
    NotAllOnConvexHull,
    /// 7 — as state 6, not collinear with two other hull robots.
    NotOnStraightLine,
    /// 8 — as state 7, there is room on the hull for another robot.
    SpaceForMore,
    /// 9 — as state 7, no room on the hull for another robot.
    NoSpaceForMore,
    /// 10 — as state 6, collinear with two other hull robots.
    OnStraightLine,
    /// 11 — as state 10, sees only one robot on the line (it is an end).
    SeeOneRobot,
    /// 12 — as state 10, sees two robots on the line (it is in the middle).
    SeeTwoRobot,
    /// 13 — enclosed strictly inside the hull of its view.
    NotOnConvexHull,
    /// 14 — as state 13, touching another robot.
    IsTouching,
    /// 15 — as state 13, not touching any robot.
    NotTouching,
    /// 16 — as state 15, any move onto the hull would change the hull.
    ToChange,
    /// 17 — as state 15, it can move onto the hull without changing it.
    NotChange,
}

impl ComputeState {
    /// All seventeen states, in the paper's order.
    pub const ALL: [ComputeState; 17] = [
        ComputeState::Start,
        ComputeState::OnConvexHull,
        ComputeState::AllOnConvexHull,
        ComputeState::Connected,
        ComputeState::NotConnected,
        ComputeState::NotAllOnConvexHull,
        ComputeState::NotOnStraightLine,
        ComputeState::SpaceForMore,
        ComputeState::NoSpaceForMore,
        ComputeState::OnStraightLine,
        ComputeState::SeeOneRobot,
        ComputeState::SeeTwoRobot,
        ComputeState::NotOnConvexHull,
        ComputeState::IsTouching,
        ComputeState::NotTouching,
        ComputeState::ToChange,
        ComputeState::NotChange,
    ];

    /// `true` for states whose procedure produces an output (a target point
    /// or ⊥) rather than a transition to another state — the states of
    /// Figure 4 with no outgoing edge.
    pub fn is_output_state(self) -> bool {
        matches!(
            self,
            ComputeState::Connected
                | ComputeState::NotConnected
                | ComputeState::SpaceForMore
                | ComputeState::NoSpaceForMore
                | ComputeState::SeeOneRobot
                | ComputeState::SeeTwoRobot
                | ComputeState::IsTouching
                | ComputeState::ToChange
                | ComputeState::NotChange
        )
    }

    /// The states a procedure may legally transition to (Figure 4); empty
    /// for output states.
    pub fn successors(self) -> &'static [ComputeState] {
        use ComputeState::*;
        match self {
            Start => &[OnConvexHull, NotOnConvexHull],
            OnConvexHull => &[AllOnConvexHull, NotAllOnConvexHull],
            AllOnConvexHull => &[Connected, NotConnected],
            NotAllOnConvexHull => &[OnStraightLine, NotOnStraightLine],
            NotOnStraightLine => &[SpaceForMore, NoSpaceForMore],
            OnStraightLine => &[SeeOneRobot, SeeTwoRobot],
            NotOnConvexHull => &[IsTouching, NotTouching],
            NotTouching => &[ToChange, NotChange],
            Connected | NotConnected | SpaceForMore | NoSpaceForMore | SeeOneRobot
            | SeeTwoRobot | IsTouching | ToChange | NotChange => &[],
        }
    }
}

impl fmt::Display for ComputeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Compute.{self:?}")
    }
}

/// The output of the local algorithm: where to move next, or ⊥.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Move the robot's center to the given point (possibly its current
    /// position, meaning "do not move").
    MoveTo(Point),
    /// The special point ⊥: the robot terminates.
    Terminate,
}

impl Decision {
    /// The target point, if the decision is a move.
    pub fn target(&self) -> Option<Point> {
        match self {
            Decision::MoveTo(p) => Some(*p),
            Decision::Terminate => None,
        }
    }

    /// `true` when the decision is ⊥.
    pub fn is_terminate(&self) -> bool {
        matches!(self, Decision::Terminate)
    }
}

/// Result of running one procedure: either a transition to the next
/// algorithmic state or the algorithm's final output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Step {
    /// Transition to another Compute state.
    Next(ComputeState),
    /// Emit the final decision and leave the Compute phase.
    Done(Decision),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_states() {
        assert_eq!(ComputeState::ALL.len(), 17);
    }

    #[test]
    fn output_states_have_no_successors() {
        for s in ComputeState::ALL {
            assert_eq!(s.is_output_state(), s.successors().is_empty(), "{s}");
        }
    }

    #[test]
    fn figure_4_transition_structure() {
        use ComputeState::*;
        assert_eq!(Start.successors(), &[OnConvexHull, NotOnConvexHull]);
        assert!(OnConvexHull.successors().contains(&AllOnConvexHull));
        assert!(AllOnConvexHull.successors().contains(&Connected));
        assert!(NotAllOnConvexHull.successors().contains(&OnStraightLine));
        assert!(NotTouching.successors().contains(&ToChange));
        assert!(Connected.successors().is_empty());
    }

    #[test]
    fn every_non_output_state_reaches_an_output_state() {
        // Breadth-first over the successor graph: from every state some
        // output state must be reachable (Figure 4 has no dead cycles).
        for start in ComputeState::ALL {
            let mut frontier = vec![start];
            let mut seen = std::collections::HashSet::new();
            let mut found = false;
            while let Some(s) = frontier.pop() {
                if s.is_output_state() {
                    found = true;
                    break;
                }
                if seen.insert(s) {
                    frontier.extend_from_slice(s.successors());
                }
            }
            assert!(found, "no output state reachable from {start}");
        }
    }

    #[test]
    fn decision_accessors() {
        let p = Point::new(1.0, 2.0);
        assert_eq!(Decision::MoveTo(p).target(), Some(p));
        assert!(Decision::Terminate.target().is_none());
        assert!(Decision::Terminate.is_terminate());
        assert!(!Decision::MoveTo(p).is_terminate());
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(
            format!("{}", ComputeState::SeeTwoRobot),
            "Compute.SeeTwoRobot"
        );
    }
}
