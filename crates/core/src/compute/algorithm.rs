//! The assembled local algorithm: dispatch over the seventeen Compute
//! states (the paper's `LOCAL ALGORITHM`, Section 4.2).

use std::marker::PhantomData;

use fatrobots_geometry::kernel::{EpsKernel, Kernel};
use fatrobots_model::LocalView;

use crate::compute::context::{ComputeScratch, Ctx};
use crate::compute::state::{ComputeState, Decision, Step};
use crate::compute::{converge, hull_procedures, interior_procedures};
use crate::params::AlgorithmParams;

/// The result of one traced Compute run: the decision plus the sequence of
/// algorithmic states visited (useful for tests that reproduce Figure 4 and
/// for execution traces).
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeOutcome {
    /// The final output: a target point or ⊥.
    pub decision: Decision,
    /// The states visited, starting at [`ComputeState::Start`] and ending at
    /// the output state that produced the decision.
    pub trace: Vec<ComputeState>,
}

/// The local algorithm `A_i` run by every robot while in its Compute phase.
///
/// The algorithm is deterministic and memoryless across cycles: each call to
/// [`LocalAlgorithm::run`] depends only on the provided view (the robots are
/// history-oblivious).
///
/// [`LocalAlgorithm::run`] is the hot path: it returns just the
/// [`Decision`], and [`LocalAlgorithm::run_with`] additionally reuses a
/// caller-owned [`ComputeScratch`] so the steady-state decision performs no
/// heap allocation. [`LocalAlgorithm::run_traced`] is the diagnostic path:
/// it records the visited Compute states for tests and trace tooling.
///
/// ```
/// use fatrobots_core::compute::{Decision, LocalAlgorithm};
/// use fatrobots_core::AlgorithmParams;
/// use fatrobots_model::LocalView;
/// use fatrobots_geometry::Point;
///
/// let algo = LocalAlgorithm::new(AlgorithmParams::for_n(4));
/// // An interior robot of a roomy hull decides to move (not terminate).
/// let view = LocalView::new(
///     Point::new(5.0, 5.0),
///     vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0), Point::new(5.0, 12.0)],
///     4,
/// );
/// assert!(!algo.run(&view).is_terminate());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelAlgorithm<K: Kernel = EpsKernel> {
    params: AlgorithmParams,
    _kernel: PhantomData<K>,
}

/// The paper's algorithm under the default ε-tolerant kernel — the
/// bit-identical historical hot path. The shadow oracle instantiates
/// [`KernelAlgorithm`] with the exact and shadow kernels instead.
pub type LocalAlgorithm = KernelAlgorithm<EpsKernel>;

impl<K: Kernel> KernelAlgorithm<K> {
    /// Creates the algorithm for the given parameters.
    pub fn new(params: AlgorithmParams) -> Self {
        KernelAlgorithm {
            params,
            _kernel: PhantomData,
        }
    }

    /// The parameters the algorithm runs with.
    pub fn params(&self) -> AlgorithmParams {
        self.params
    }

    /// Runs the local algorithm on a view: the paper's `p = A_i(V_i)`, with
    /// ⊥ represented by [`Decision::Terminate`]. Allocates fresh working
    /// buffers; callers with a decision loop should prefer
    /// [`Self::run_with`].
    pub fn run(&self, view: &LocalView) -> Decision {
        let mut scratch = ComputeScratch::default();
        self.run_with(view, &mut scratch)
    }

    /// Runs the local algorithm reusing the caller's scratch arena: the
    /// allocation-free steady-state path the simulator drives.
    pub fn run_with(&self, view: &LocalView, scratch: &mut ComputeScratch) -> Decision {
        let ctx: Ctx<K> = Ctx::with_scratch(view, self.params, std::mem::take(scratch));
        let decision = drive(&ctx, |_| {});
        *scratch = ctx.into_scratch();
        decision
    }

    /// Runs the local algorithm and records the sequence of Compute states
    /// visited — the diagnostic path for Figure-4 tests, the debug examples
    /// and the render/trace tooling. The engine's event loop never pays for
    /// this trace.
    pub fn run_traced(&self, view: &LocalView) -> ComputeOutcome {
        let ctx: Ctx<K> = Ctx::new(view, self.params);
        let mut trace = vec![ComputeState::Start];
        let decision = drive(&ctx, |state| trace.push(state));
        ComputeOutcome { decision, trace }
    }
}

/// Walks the Compute state graph from `Start` to a decision, reporting each
/// transition to `on_transition`.
fn drive<K: Kernel>(ctx: &Ctx<K>, mut on_transition: impl FnMut(ComputeState)) -> Decision {
    let mut state = ComputeState::Start;
    // Figure 4 is a DAG of depth at most five; the bound below is purely
    // defensive against a procedure bug introducing a cycle.
    for _ in 0..ComputeState::ALL.len() {
        let step = dispatch(state, ctx);
        match step {
            Step::Next(next) => {
                debug_assert!(
                    state.successors().contains(&next),
                    "illegal Compute transition {state} -> {next}"
                );
                state = next;
                on_transition(state);
            }
            Step::Done(decision) => {
                return decision;
            }
        }
    }
    unreachable!("the Compute state graph is acyclic; dispatch cannot loop")
}

/// Runs the procedure associated with one Compute state.
fn dispatch<K: Kernel>(state: ComputeState, ctx: &Ctx<K>) -> Step {
    use ComputeState::*;
    match state {
        Start => hull_procedures::start(ctx),
        OnConvexHull => hull_procedures::on_convex_hull(ctx),
        AllOnConvexHull => converge::all_on_convex_hull(ctx),
        Connected => converge::connected(ctx),
        NotConnected => converge::not_connected(ctx),
        NotAllOnConvexHull => hull_procedures::not_all_on_convex_hull(ctx),
        NotOnStraightLine => hull_procedures::not_on_straight_line(ctx),
        SpaceForMore => hull_procedures::space_for_more(ctx),
        NoSpaceForMore => hull_procedures::no_space_for_more(ctx),
        OnStraightLine => hull_procedures::on_straight_line(ctx),
        SeeOneRobot => hull_procedures::see_one_robot(ctx),
        SeeTwoRobot => hull_procedures::see_two_robot(ctx),
        NotOnConvexHull => interior_procedures::not_on_convex_hull(ctx),
        IsTouching => interior_procedures::is_touching(ctx),
        NotTouching => interior_procedures::not_touching(ctx),
        ToChange => interior_procedures::to_change(ctx),
        NotChange => interior_procedures::not_change(ctx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatrobots_geometry::Point;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn algo(n: usize) -> LocalAlgorithm {
        LocalAlgorithm::new(AlgorithmParams::for_n(n))
    }

    #[test]
    fn gathered_configuration_terminates() {
        let centers = [p(0.0, 0.0), p(2.0, 0.0), p(1.0, 3.0_f64.sqrt())];
        for i in 0..3 {
            let others: Vec<Point> = (0..3).filter(|&j| j != i).map(|j| centers[j]).collect();
            let out = algo(3).run_traced(&LocalView::new(centers[i], others, 3));
            assert_eq!(out.decision, Decision::Terminate);
            assert_eq!(
                out.trace,
                vec![
                    ComputeState::Start,
                    ComputeState::OnConvexHull,
                    ComputeState::AllOnConvexHull,
                    ComputeState::Connected
                ]
            );
        }
    }

    #[test]
    fn separated_convex_configuration_converges() {
        // Three robots far apart in convex position: fully visible but not
        // connected — each robot must get a (non-terminate) convergence
        // decision through the NotConnected procedure.
        let centers = [p(0.0, 0.0), p(20.0, 0.0), p(10.0, 17.0)];
        for i in 0..3 {
            let others: Vec<Point> = (0..3).filter(|&j| j != i).map(|j| centers[j]).collect();
            let out = algo(3).run_traced(&LocalView::new(centers[i], others, 3));
            assert!(!out.decision.is_terminate());
            assert!(out.trace.contains(&ComputeState::NotConnected));
        }
    }

    #[test]
    fn interior_robot_heads_for_the_hull() {
        let me = p(10.0, 10.0);
        let others = vec![p(0.0, 0.0), p(20.0, 0.0), p(20.0, 20.0), p(0.0, 20.0)];
        let out = algo(5).run_traced(&LocalView::new(me, others, 5));
        let target = out.decision.target().expect("interior robots move");
        assert!(!target.approx_eq(me));
        assert_eq!(*out.trace.last().unwrap(), ComputeState::NotChange);
    }

    #[test]
    fn middle_robot_of_a_collinear_hull_moves_outward() {
        // Six robots: one interior (so the system is not yet fully visible)
        // and three hull robots nearly collinear along the bottom edge; the
        // middle one must go through SeeTwoRobot and step outward.
        let me = p(5.0, -0.05);
        let others = vec![
            p(0.0, 0.0),
            p(10.0, 0.0),
            p(10.0, 10.0),
            p(0.0, 10.0),
            p(6.0, 5.0),
        ];
        let out = algo(6).run_traced(&LocalView::new(me, others, 6));
        assert_eq!(*out.trace.last().unwrap(), ComputeState::SeeTwoRobot);
        let target = out.decision.target().unwrap();
        assert!(
            target.y < me.y,
            "the middle robot must step outward (downwards)"
        );
    }

    #[test]
    fn every_trace_is_a_path_in_figure_4() {
        // Run the algorithm on a batch of varied views and check every
        // consecutive pair of trace states is an edge of Figure 4.
        let views = vec![
            LocalView::new(p(0.0, 0.0), vec![p(2.0, 0.0), p(1.0, 1.7)], 3),
            LocalView::new(p(0.0, 0.0), vec![p(20.0, 0.0), p(10.0, 17.0)], 3),
            LocalView::new(
                p(10.0, 10.0),
                vec![p(0.0, 0.0), p(20.0, 0.0), p(20.0, 20.0), p(0.0, 20.0)],
                5,
            ),
            LocalView::new(p(0.0, 0.0), vec![p(10.0, 0.0), p(5.0, 8.0)], 6),
            LocalView::new(
                p(5.0, -0.05),
                vec![
                    p(0.0, 0.0),
                    p(10.0, 0.0),
                    p(10.0, 10.0),
                    p(0.0, 10.0),
                    p(6.0, 5.0),
                ],
                6,
            ),
        ];
        for view in views {
            let out = algo(view.n()).run_traced(&view);
            for w in out.trace.windows(2) {
                assert!(
                    w[0].successors().contains(&w[1]),
                    "trace step {} -> {} is not an edge of Figure 4",
                    w[0],
                    w[1]
                );
            }
            assert_eq!(out.trace[0], ComputeState::Start);
            assert!(out.trace.last().unwrap().is_output_state());
        }
    }

    #[test]
    fn single_robot_terminates_immediately() {
        let out = algo(1).run(&LocalView::new(p(3.0, 4.0), vec![], 1));
        assert_eq!(out, Decision::Terminate);
    }

    #[test]
    fn two_touching_robots_terminate() {
        let out = algo(2).run(&LocalView::new(p(0.0, 0.0), vec![p(2.0, 0.0)], 2));
        assert_eq!(out, Decision::Terminate);
        let apart = algo(2).run(&LocalView::new(p(0.0, 0.0), vec![p(9.0, 0.0)], 2));
        assert!(!apart.is_terminate());

        // The traced and traceless paths agree decision-for-decision.
        let view = LocalView::new(p(0.0, 0.0), vec![p(9.0, 0.0)], 2);
        assert_eq!(algo(2).run(&view), algo(2).run_traced(&view).decision);
        let mut scratch = ComputeScratch::default();
        assert_eq!(algo(2).run_with(&view, &mut scratch), apart);
    }
}
