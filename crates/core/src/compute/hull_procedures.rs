//! Procedures for robots on the convex hull of their view during the first
//! (expansion / full-visibility) phase: Sections 4.2.1, 4.2.2, 4.2.6–4.2.12.

use fatrobots_geometry::kernel::Kernel;
use fatrobots_geometry::Point;

use crate::compute::context::Ctx;
use crate::compute::state::{ComputeState, Decision, Step};

/// Procedure `Start` (Section 4.2.1): dispatch on whether the robot's own
/// center is on the convex hull of its view.
pub fn start<K: Kernel>(ctx: &Ctx<K>) -> Step {
    if ctx.me_on_hull() {
        Step::Next(ComputeState::OnConvexHull)
    } else {
        Step::Next(ComputeState::NotOnConvexHull)
    }
}

/// Procedure `OnConvexHull` (Section 4.2.2): move to `AllOnConvexHull` only
/// when the robot sees all `n` robots, all of them are on the hull, and no
/// robot lies on a straight line with its two hull neighbours (which, for a
/// convex position, is the paper's characterisation of full visibility —
/// Lemma 4).
pub fn on_convex_hull<K: Kernel>(ctx: &Ctx<K>) -> Step {
    if ctx.view_size() == ctx.n() && ctx.onch_len() == ctx.n() {
        let tol = ctx.params().collinearity_tol();
        // With fewer than three robots no triple can be collinear; the loop
        // below would otherwise degenerate (a robot's two hull neighbours
        // coincide).
        if ctx.onch_len() >= 3 {
            for (i, &q) in ctx.onch().iter().enumerate() {
                if let Some((left, right)) = ctx.onch_neighbors_at(i) {
                    if crate::functions::in_straight_line_2_k::<K>(left, q, right, tol) {
                        return Step::Next(ComputeState::NotAllOnConvexHull);
                    }
                }
            }
        }
        Step::Next(ComputeState::AllOnConvexHull)
    } else {
        Step::Next(ComputeState::NotAllOnConvexHull)
    }
}

/// Procedure `NotAllOnConvexHull` (Section 4.2.6): the rectangle-`ABCD` test
/// of Figure 5 — the robot is "on a straight line" when, for some window of
/// three consecutive hull robots containing it, the middle robot lies within
/// the `1/n` band around the chord of the outer two.
pub fn not_all_on_convex_hull<K: Kernel>(ctx: &Ctx<K>) -> Step {
    if in_collinearity_band(ctx, /*only_as_middle=*/ false) {
        Step::Next(ComputeState::OnStraightLine)
    } else {
        Step::Next(ComputeState::NotOnStraightLine)
    }
}

/// Procedure `OnStraightLine` (Section 4.2.10): the robot sees two robots on
/// the line exactly when it is itself the middle robot of a band-collinear
/// window.
pub fn on_straight_line<K: Kernel>(ctx: &Ctx<K>) -> Step {
    if in_collinearity_band(ctx, /*only_as_middle=*/ true) {
        Step::Next(ComputeState::SeeTwoRobot)
    } else {
        Step::Next(ComputeState::SeeOneRobot)
    }
}

/// `true` when some window of three consecutive hull robots containing the
/// observer has its middle robot within the `1/n` band of the outer chord.
/// With `only_as_middle` the observer itself must be that middle robot.
fn in_collinearity_band<K: Kernel>(ctx: &Ctx<K>, only_as_middle: bool) -> bool {
    let band = ctx.params().band();
    ctx.hull_triples_containing(ctx.me()).any(|(a, b, c)| {
        if only_as_middle && !b.approx_eq(ctx.me()) {
            return false;
        }
        ctx.within_chord_band(b, a, c, band)
    })
}

/// Procedure `NotOnStraightLine` (Section 4.2.7): decide whether there is
/// room on the hull for (at least) one more robot.
///
/// * If every robot the observer sees is on the hull (`|onCH(V_i)| = n`) no
///   extra room is needed.
/// * If the observer sees all robots, room exists iff some pair of
///   hull-adjacent robots is at least a robot diameter apart.
/// * Otherwise the observer also reserves room for the robots it sees in the
///   hull interior by projecting each of them onto the hull boundary along
///   the ray from itself (the paper's `onCH2` construction) before measuring
///   the gaps.
pub fn not_on_straight_line<K: Kernel>(ctx: &Ctx<K>) -> Step {
    if ctx.onch_len() == ctx.n() {
        return Step::Next(ComputeState::SpaceForMore);
    }
    let diameter = 2.0;
    if ctx.view_size() == ctx.n() {
        let has_room = ctx
            .hull_adjacent_pairs()
            .any(|(a, b)| a.distance(b) >= diameter);
        return Step::Next(if has_room {
            ComputeState::SpaceForMore
        } else {
            ComputeState::NoSpaceForMore
        });
    }
    // |V_i| < n: project interior robots onto the hull and measure gaps of
    // the augmented boundary set, assembled in the context's scratch
    // buffer. Each point carries its precomputed boundary angle so the
    // sort never calls `atan2` inside the comparator.
    let has_room = ctx.with_aux_points(|ctx: &Ctx<K>, onch2| {
        let center = ctx.interior_point();
        let key = |p: Point| (p - center).angle();
        onch2.extend(ctx.onch().iter().map(|&p| (key(p), p)));
        for &q in ctx.all() {
            if q.approx_eq(ctx.me()) || ctx.onch().iter().any(|h| h.approx_eq(q)) {
                continue;
            }
            if let Some(x) = ctx.ray_exit_point(ctx.me(), q) {
                onch2.push((key(x), x));
            }
        }
        // Order the augmented set along the boundary by angle around the
        // hull interior and measure consecutive distances. Unstable sort
        // (no allocation) with coordinates as the tie-break, so exact-angle
        // ties — coincident projection points — still order
        // deterministically.
        onch2.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    a.1.x
                        .partial_cmp(&b.1.x)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(
                    a.1.y
                        .partial_cmp(&b.1.y)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
        });
        let m = onch2.len();
        (0..m).any(|i| onch2[i].1.distance(onch2[(i + 1) % m].1) >= diameter)
    });
    Step::Next(if has_room {
        ComputeState::SpaceForMore
    } else {
        ComputeState::NoSpaceForMore
    })
}

/// Procedure `SpaceForMore` (Section 4.2.8): stay put, unless the robot is
/// tangent to a hull robot that is *not* its hull neighbour (two touching
/// non-adjacent hull robots can obstruct views), in which case step outward
/// by `1/2n − ε`.
///
/// Extension over the paper: a hull robot that cannot see all `n` robots
/// *and* is touching another robot also steps outward. The paper assumes
/// (Lemma 4) that missing robots are hidden in the hull interior and will
/// come out on their own; with fat robots a *touching hull neighbour* can
/// equally well be the occluder, in which case nobody inside will ever
/// appear and the literal algorithm deadlocks. Stepping outward is always
/// safe in this regime (the hull may only expand while full visibility has
/// not been reached — Lemma 20) and re-opens the blocked line of sight.
pub fn space_for_more<K: Kernel>(ctx: &Ctx<K>) -> Step {
    let me = ctx.me();
    let neighbors = ctx.hull_neighbors_of(me);
    let tangent_to_non_adjacent = ctx.onch().iter().any(|&q| {
        if q.approx_eq(me) || !ctx.touching(me, q) {
            return false;
        }
        match neighbors {
            Some((l, r)) => !q.approx_eq(l) && !q.approx_eq(r),
            None => true,
        }
    });
    // Every robot this one can see is already on the hull, yet some robots
    // are missing from the view: the occluders can only be other hull robots
    // (there is nobody visible inside who could still come out), so waiting
    // cannot help and the robot expands instead.
    let occluded_on_hull = ctx.view_size() < ctx.n() && ctx.onch_len() == ctx.view_size();
    if tangent_to_non_adjacent || occluded_on_hull {
        let target = me + ctx.outward_at(me) * ctx.params().step();
        Step::Done(Decision::MoveTo(target))
    } else {
        Step::Done(Decision::MoveTo(me))
    }
}

/// Procedure `NoSpaceForMore` (Section 4.2.9): expand — step outward by
/// `1/2n − ε` perpendicular to the chord of the robot's hull neighbours.
///
/// The paper phrases the target via the midpoint of the neighbour chord; the
/// effective displacement is the same outward step, and Lemma 10 only uses
/// the fact that the result lies `1/2n − ε` outside the current hull.
pub fn no_space_for_more<K: Kernel>(ctx: &Ctx<K>) -> Step {
    let me = ctx.me();
    let target = me + ctx.outward_at(me) * ctx.params().step();
    Step::Done(Decision::MoveTo(target))
}

/// Procedure `SeeOneRobot` (Section 4.2.11): an end robot of a collinear
/// triple does not move.
///
/// Extension over the paper (mirroring [`space_for_more`]): when the robot
/// cannot see all `n` robots even though everything it *can* see is already
/// on the hull, waiting for the middle robot of the collinear triple cannot
/// be relied upon — the occluder may have full visibility itself and
/// therefore never consider itself "on a straight line". The end robot then
/// expands outward, which is always safe before full visibility is reached.
pub fn see_one_robot<K: Kernel>(ctx: &Ctx<K>) -> Step {
    let me = ctx.me();
    if ctx.view_size() < ctx.n() && ctx.onch_len() == ctx.view_size() {
        return Step::Done(Decision::MoveTo(
            me + ctx.outward_at(me) * ctx.params().step(),
        ));
    }
    Step::Done(Decision::MoveTo(me))
}

/// Procedure `SeeTwoRobot` (Section 4.2.12): the middle robot of a collinear
/// triple steps outward, far enough to leave the `1/n` band but never more
/// than `1/2n − ε` in one move.
pub fn see_two_robot<K: Kernel>(ctx: &Ctx<K>) -> Step {
    let me = ctx.me();
    let band = ctx.params().band();
    // Use the tightest band-violating window in which the observer is the
    // middle robot to determine how far out it needs to go. The exit target
    // is `band + ε` from the chord (not exactly `band`): stopping exactly on
    // the band boundary would leave the robot classified as "on a straight
    // line" forever.
    let exit_distance = band + ctx.params().eps();
    let current = ctx
        .hull_triples_containing(me)
        .filter(|(_, b, _)| b.approx_eq(me))
        .map(|(a, _, c)| ctx.distance_to_chord(me, a, c))
        .fold(f64::INFINITY, f64::min);
    let step = if current.is_finite() {
        ctx.params().step().min((exit_distance - current).max(0.0))
    } else {
        ctx.params().step()
    };
    // A middle robot that is already out of the band (can happen when the
    // view changed between Look and Compute) simply keeps its position.
    if step <= f64::EPSILON {
        return Step::Done(Decision::MoveTo(me));
    }
    let target = me + ctx.outward_at(me) * step;
    Step::Done(Decision::MoveTo(target))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::AlgorithmParams;
    use fatrobots_geometry::Point;
    use fatrobots_model::LocalView;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn ctx_for(me: Point, others: Vec<Point>, n: usize) -> Ctx {
        Ctx::new(&LocalView::new(me, others, n), AlgorithmParams::for_n(n))
    }

    #[test]
    fn start_dispatches_on_hull_membership() {
        let on = ctx_for(p(0.0, 0.0), vec![p(10.0, 0.0), p(5.0, 10.0)], 3);
        assert_eq!(start(&on), Step::Next(ComputeState::OnConvexHull));
        let interior = ctx_for(
            p(5.0, 3.0),
            vec![p(0.0, 0.0), p(10.0, 0.0), p(5.0, 10.0)],
            4,
        );
        assert_eq!(start(&interior), Step::Next(ComputeState::NotOnConvexHull));
    }

    #[test]
    fn on_convex_hull_requires_full_view_and_no_collinearity() {
        // Full view, convex position, no collinear triple.
        let good = ctx_for(
            p(0.0, 0.0),
            vec![p(10.0, 0.0), p(10.0, 10.0), p(0.0, 10.0)],
            4,
        );
        assert_eq!(
            on_convex_hull(&good),
            Step::Next(ComputeState::AllOnConvexHull)
        );

        // Sees fewer robots than n.
        let partial = ctx_for(p(0.0, 0.0), vec![p(10.0, 0.0), p(10.0, 10.0)], 4);
        assert_eq!(
            on_convex_hull(&partial),
            Step::Next(ComputeState::NotAllOnConvexHull)
        );

        // Sees everyone but one robot is interior.
        let interior = ctx_for(
            p(0.0, 0.0),
            vec![p(10.0, 0.0), p(10.0, 10.0), p(0.0, 10.0), p(6.0, 5.0)],
            5,
        );
        assert_eq!(
            on_convex_hull(&interior),
            Step::Next(ComputeState::NotAllOnConvexHull)
        );

        // Everyone on the hull but three exactly collinear.
        let collinear = ctx_for(
            p(0.0, 0.0),
            vec![p(5.0, 0.0), p(10.0, 0.0), p(5.0, 10.0)],
            4,
        );
        assert_eq!(
            on_convex_hull(&collinear),
            Step::Next(ComputeState::NotAllOnConvexHull)
        );
    }

    #[test]
    fn band_test_distinguishes_straight_line_states() {
        // A triangle plus an extra hull robot bulging only slightly below
        // the bottom edge: within the 1/n band for n = 4 (band 0.25).
        let nearly_flat = ctx_for(
            p(5.0, -0.1),
            vec![p(0.0, 0.0), p(10.0, 0.0), p(5.0, 10.0)],
            4,
        );
        assert_eq!(
            not_all_on_convex_hull(&nearly_flat),
            Step::Next(ComputeState::OnStraightLine)
        );
        assert_eq!(
            on_straight_line(&nearly_flat),
            Step::Next(ComputeState::SeeTwoRobot)
        );

        // The end robot of the same nearly-flat window is on the line but
        // not in the middle.
        let end = ctx_for(
            p(0.0, 0.0),
            vec![p(5.0, -0.1), p(10.0, 0.0), p(5.0, 10.0)],
            4,
        );
        assert_eq!(
            not_all_on_convex_hull(&end),
            Step::Next(ComputeState::OnStraightLine)
        );
        assert_eq!(
            on_straight_line(&end),
            Step::Next(ComputeState::SeeOneRobot)
        );

        // A proper corner robot is not in any band.
        let corner = ctx_for(
            p(0.0, 0.0),
            vec![p(10.0, 0.0), p(10.0, 10.0), p(0.0, 10.0), p(6.0, 5.0)],
            5,
        );
        assert_eq!(
            not_all_on_convex_hull(&corner),
            Step::Next(ComputeState::NotOnStraightLine)
        );
    }

    #[test]
    fn see_two_robot_steps_outward_and_leaves_the_band() {
        let n = 4;
        let me = p(5.0, -0.1);
        let ctx = ctx_for(me, vec![p(0.0, 0.0), p(10.0, 0.0), p(5.0, 10.0)], n);
        let Step::Done(Decision::MoveTo(target)) = see_two_robot(&ctx) else {
            panic!("SeeTwoRobot must emit a move");
        };
        // Outward at the bottom edge points towards negative y.
        assert!(target.y < me.y);
        // The step never exceeds 1/2n − ε.
        assert!(me.distance(target) <= AlgorithmParams::for_n(n).step() + 1e-12);
    }

    #[test]
    fn see_one_robot_stays() {
        let ctx = ctx_for(
            p(0.0, 0.0),
            vec![p(5.0, -0.1), p(10.0, 0.0), p(5.0, 10.0)],
            4,
        );
        assert_eq!(
            see_one_robot(&ctx),
            Step::Done(Decision::MoveTo(p(0.0, 0.0)))
        );
    }

    #[test]
    fn room_detection_with_full_view() {
        // |V| = n but one robot interior, wide hull edges: room exists.
        let roomy = ctx_for(
            p(0.0, 0.0),
            vec![p(10.0, 0.0), p(10.0, 10.0), p(0.0, 10.0), p(6.0, 5.0)],
            5,
        );
        assert_eq!(
            not_on_straight_line(&roomy),
            Step::Next(ComputeState::SpaceForMore)
        );

        // Tight triangle with an interior robot: no hull edge admits a disc.
        let tight = ctx_for(p(0.0, 0.0), vec![p(1.8, 0.0), p(0.9, 1.6), p(0.9, 0.55)], 4);
        assert_eq!(
            not_on_straight_line(&tight),
            Step::Next(ComputeState::NoSpaceForMore)
        );
    }

    #[test]
    fn room_detection_reserves_space_for_hidden_robots() {
        // The observer sees 3 of 6 robots; all seen robots are on the hull of
        // the view, so SpaceForMore is reached through the |onCH| = n check
        // only if onch == n — here onch < n, so the projection path runs.
        let ctx = ctx_for(p(0.0, 0.0), vec![p(10.0, 0.0), p(5.0, 8.0), p(5.0, 3.0)], 6);
        // Regardless of branch, the procedure must resolve to one of the two
        // successor states.
        match not_on_straight_line(&ctx) {
            Step::Next(ComputeState::SpaceForMore) | Step::Next(ComputeState::NoSpaceForMore) => {}
            other => panic!("unexpected step {other:?}"),
        }
    }

    #[test]
    fn all_robots_on_hull_means_no_extra_room_needed() {
        // onCH == n == 4: straight to SpaceForMore even though edges are
        // short.
        let ctx = ctx_for(p(0.0, 0.0), vec![p(2.2, 0.0), p(2.2, 2.2), p(0.0, 2.2)], 4);
        assert_eq!(
            not_on_straight_line(&ctx),
            Step::Next(ComputeState::SpaceForMore)
        );
    }

    #[test]
    fn space_for_more_moves_only_when_tangent_to_non_adjacent_hull_robot() {
        // Observer tangent to its hull neighbour: stays.
        let stay = ctx_for(
            p(0.0, 0.0),
            vec![p(2.0, 0.0), p(10.0, 0.0), p(5.0, 10.0), p(4.0, 4.0)],
            5,
        );
        assert_eq!(
            space_for_more(&stay),
            Step::Done(Decision::MoveTo(p(0.0, 0.0)))
        );

        // Observer tangent to a hull robot that is NOT adjacent to it on the
        // hull of its view: steps outward.
        let me = p(0.0, 0.0);
        let blocked = ctx_for(
            me,
            vec![
                p(1.0, 1.9),   // hull neighbour above (not touching)
                p(1.4, -1.43), // tangent, and not a hull neighbour of me
                p(10.0, 0.0),
                p(5.0, 8.0),
            ],
            5,
        );
        // Only meaningful if the tangent robot is indeed non-adjacent in this
        // view; if the geometry makes it adjacent the procedure must stay.
        match space_for_more(&blocked) {
            Step::Done(Decision::MoveTo(t)) => {
                assert!(
                    t.approx_eq(me) || me.distance(t) <= AlgorithmParams::for_n(5).step() + 1e-12
                );
            }
            other => panic!("unexpected step {other:?}"),
        }
    }

    #[test]
    fn no_space_for_more_expands_outward() {
        let n = 4;
        let me = p(0.0, 0.0);
        let ctx = ctx_for(me, vec![p(1.8, 0.0), p(0.9, 1.6), p(0.9, 0.55)], n);
        let Step::Done(Decision::MoveTo(target)) = no_space_for_more(&ctx) else {
            panic!("NoSpaceForMore must emit a move");
        };
        assert!((me.distance(target) - AlgorithmParams::for_n(n).step()).abs() < 1e-9);
        // The move is away from the hull interior.
        let interior = ctx.interior_point();
        assert!(target.distance(interior) > me.distance(interior));
    }
}
