//! Procedures for robots strictly inside the convex hull of their view:
//! Sections 4.2.13–4.2.17.

use fatrobots_geometry::kernel::Kernel;
use fatrobots_geometry::predicates::{approx_eq_tol, EPS};
use fatrobots_geometry::{Point, Segment};

use crate::compute::context::Ctx;
use crate::compute::state::{ComputeState, Decision, Step};
use crate::functions::find_points_iter;

/// Distance tolerance used when comparing robot proximities to a target spot
/// (the paper's ties "have the same distance").
const PROXIMITY_TOL: f64 = 1e-6;

/// Outcome of the proximity contest among the robots touching the observer
/// (Section 4.2.14's notion of "highest proximity").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Proximity {
    /// The observer is strictly closest (or nothing touches it): it moves.
    Closest,
    /// The observer ties for closest and wins the chirality tie-break: it
    /// moves.
    TieWinner,
    /// Some touching robot has higher proximity: the observer stays.
    Blocked,
}

/// Procedure `NotOnConvexHull` (Section 4.2.13): dispatch on tangency.
pub fn not_on_convex_hull<K: Kernel>(ctx: &Ctx<K>) -> Step {
    if ctx.touching_me().next().is_none() {
        Step::Next(ComputeState::NotTouching)
    } else {
        Step::Next(ComputeState::IsTouching)
    }
}

/// Procedure `IsTouching` (Section 4.2.14): an interior robot that touches
/// other robots moves towards the hull only if it has the *highest
/// proximity* among the robots it touches, so that a clump of touching
/// robots peels off towards the hull one robot at a time (Lemma 16).
pub fn is_touching<K: Kernel>(ctx: &Ctx<K>) -> Step {
    let me = ctx.me();
    // The proximity contest of the paper decides which robot of a touching
    // clump gets to claim a hull spot. Only robots that are themselves still
    // *inside* the hull compete: a touching robot that is already on the
    // hull never moves towards a Find-Points spot, so treating it as a
    // competitor would block the interior robot forever.
    let interior_touchers = || {
        ctx.touching_me()
            .filter(|t| !ctx.onch().iter().any(|h| h.approx_eq(*t)))
    };
    // A touching robot can only leave the clump along a direction that does
    // not immediately press into one of the robots it touches (its very
    // first infinitesimal step would otherwise be a collision and the move
    // would never make progress). Restrict the candidate spots accordingly;
    // the robots on the "free" side of the clump peel off first, exactly the
    // one-at-a-time behaviour Lemma 16 describes.
    let escapable = |target: Point| {
        let dir = target - me;
        if dir.is_zero() {
            return false;
        }
        let dir = dir.normalized();
        ctx.touching_me().all(|t| dir.dot(t - me) <= EPS)
    };

    let candidates = find_points_iter(ctx.onch(), ctx.n()).filter(|&p| escapable(p));
    if let Some(best) = closest_point(candidates, me) {
        return match proximity(ctx, me, interior_touchers(), best) {
            Proximity::Blocked => Step::Done(Decision::MoveTo(me)),
            // Aim directly for the Find-Points candidate: by Lemma 1 a disc
            // placed there joins the hull without pushing anyone off it.
            Proximity::Closest | Proximity::TieWinner => Step::Done(Decision::MoveTo(best)),
        };
    }

    // No reachable Find-Points candidate: aim for the midpoint of the
    // closest hull side that is wide enough for one robot, if any.
    match closest_wide_edge(ctx, me) {
        None => Step::Done(Decision::MoveTo(me)),
        Some((a, b)) => {
            let target = a.midpoint(b);
            if !escapable(target) {
                return Step::Done(Decision::MoveTo(me));
            }
            match proximity(ctx, me, interior_touchers(), target) {
                Proximity::Blocked => Step::Done(Decision::MoveTo(me)),
                Proximity::Closest | Proximity::TieWinner => Step::Done(Decision::MoveTo(target)),
            }
        }
    }
}

/// Procedure `NotTouching` (Section 4.2.15): can the robot reach the hull
/// without changing it?
pub fn not_touching<K: Kernel>(ctx: &Ctx<K>) -> Step {
    if find_points_iter(ctx.onch(), ctx.n()).next().is_none() {
        Step::Next(ComputeState::ToChange)
    } else {
        Step::Next(ComputeState::NotChange)
    }
}

/// Procedure `ToChange` (Section 4.2.16): no placement avoids changing the
/// hull, so head for the midpoint of the closest hull side that is wide
/// enough; stay put when there is none.
pub fn to_change<K: Kernel>(ctx: &Ctx<K>) -> Step {
    let me = ctx.me();
    match closest_wide_edge(ctx, me) {
        None => Step::Done(Decision::MoveTo(me)),
        Some((a, b)) => Step::Done(Decision::MoveTo(a.midpoint(b))),
    }
}

/// Procedure `NotChange` (Section 4.2.17): move to the closest `Find-Points`
/// candidate.
///
/// The paper phrases the target as the hull-boundary point on the way to the
/// candidate; we aim for the candidate itself (the position Lemma 1
/// guarantees can be occupied without changing the hull). Stopping exactly
/// on the boundary would leave the robot exactly collinear with the edge's
/// endpoints, needlessly triggering the `SeeTwoRobot` recovery on the next
/// cycle.
pub fn not_change<K: Kernel>(ctx: &Ctx<K>) -> Step {
    let me = ctx.me();
    match closest_point(find_points_iter(ctx.onch(), ctx.n()), me) {
        None => Step::Done(Decision::MoveTo(me)),
        Some(best) => Step::Done(Decision::MoveTo(best)),
    }
}

fn closest_point(points: impl Iterator<Item = Point>, to: Point) -> Option<Point> {
    points.min_by(|a, b| {
        a.distance(to)
            .partial_cmp(&b.distance(to))
            .unwrap_or(std::cmp::Ordering::Equal)
    })
}

/// The hull side (pair of hull-adjacent robots) at least a diameter wide that
/// is closest to `from`, if any.
fn closest_wide_edge<K: Kernel>(ctx: &Ctx<K>, from: Point) -> Option<(Point, Point)> {
    ctx.hull_adjacent_pairs()
        .filter(|(a, b)| a.distance(*b) >= 2.0)
        .min_by(|&(a1, b1), &(a2, b2)| {
            let d1 = Segment::new(a1, b1).distance_to(from);
            let d2 = Segment::new(a2, b2).distance_to(from);
            d1.partial_cmp(&d2).unwrap_or(std::cmp::Ordering::Equal)
        })
}

/// Decide whether the observer has the highest proximity to `target` among
/// itself and the robots touching it.
///
/// Ties are broken with chirality, as in the paper: facing the outside of the
/// hull at the target point, the *rightmost* tied robot wins. We realise
/// "rightmost" as the largest component along the clockwise perpendicular of
/// the outward direction; exact ties fall back to lexicographic order of the
/// coordinates, which is still a common, deterministic rule for all robots.
fn proximity<K: Kernel, I>(ctx: &Ctx<K>, me: Point, touchers: I, target: Point) -> Proximity
where
    I: Iterator<Item = Point> + Clone,
{
    let my_d = me.distance(target);
    if touchers
        .clone()
        .any(|t| t.distance(target) < my_d - PROXIMITY_TOL)
    {
        return Proximity::Blocked;
    }
    let outward = {
        let d = target - ctx.interior_point();
        if d.is_zero() {
            fatrobots_geometry::Vec2::new(0.0, 1.0)
        } else {
            d.normalized()
        }
    };
    let rightward = outward.perp_cw();
    let score = |q: Point| {
        let v = q - target;
        (v.dot(rightward), q.x, q.y)
    };
    let mine = score(me);
    let mut any_tied = false;
    for t in touchers.filter(|t| approx_eq_tol(t.distance(target), my_d, PROXIMITY_TOL)) {
        any_tied = true;
        if mine <= score(t) {
            return Proximity::Blocked;
        }
    }
    if any_tied {
        Proximity::TieWinner
    } else {
        Proximity::Closest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::AlgorithmParams;
    use fatrobots_model::LocalView;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn ctx_for(me: Point, others: Vec<Point>, n: usize) -> Ctx {
        Ctx::new(&LocalView::new(me, others, n), AlgorithmParams::for_n(n))
    }

    /// A big square hull with the observer strictly inside.
    fn interior_ctx(me: Point, extra: Vec<Point>, n: usize) -> Ctx {
        let mut others = vec![p(0.0, 0.0), p(20.0, 0.0), p(20.0, 20.0), p(0.0, 20.0)];
        others.extend(extra);
        ctx_for(me, others, n)
    }

    #[test]
    fn dispatch_on_touching() {
        let lonely = interior_ctx(p(10.0, 10.0), vec![], 5);
        assert_eq!(
            not_on_convex_hull(&lonely),
            Step::Next(ComputeState::NotTouching)
        );
        let touching = interior_ctx(p(10.0, 10.0), vec![p(12.0, 10.0)], 6);
        assert_eq!(
            not_on_convex_hull(&touching),
            Step::Next(ComputeState::IsTouching)
        );
    }

    #[test]
    fn not_touching_dispatches_on_find_points() {
        // Roomy hull: candidates exist.
        let roomy = interior_ctx(p(10.0, 10.0), vec![], 5);
        assert_eq!(not_touching(&roomy), Step::Next(ComputeState::NotChange));
        // Tight triangle: no candidate.
        let tight = ctx_for(p(0.9, 0.55), vec![p(0.0, 0.0), p(1.8, 0.0), p(0.9, 1.6)], 4);
        assert_eq!(not_touching(&tight), Step::Next(ComputeState::ToChange));
    }

    #[test]
    fn not_change_moves_to_a_find_points_candidate() {
        let me = p(10.0, 10.0);
        let ctx = interior_ctx(me, vec![], 5);
        let Step::Done(Decision::MoveTo(target)) = not_change(&ctx) else {
            panic!("NotChange must emit a move");
        };
        assert!(!target.approx_eq(me));
        // The candidate sits 1/n outside the hull boundary, never inside it.
        assert!(
            !ctx.hull().contains_strict(target),
            "target {target} must not be strictly inside the hull"
        );
        // Placing a disc there keeps every current hull robot on the hull
        // (Lemma 1).
        let mut extended = ctx.all().to_vec();
        extended.push(target);
        let hull2 = fatrobots_geometry::hull::ConvexHull::from_points(&extended);
        for q in ctx.onch() {
            assert!(hull2.point_on_boundary(*q));
        }
    }

    #[test]
    fn to_change_targets_the_closest_wide_edge_midpoint() {
        let me = p(10.0, 2.0); // closest to the bottom edge
        let ctx = interior_ctx(me, vec![], 5);
        let Step::Done(Decision::MoveTo(target)) = to_change(&ctx) else {
            panic!("ToChange must emit a move");
        };
        assert!(target.approx_eq(p(10.0, 0.0)));
    }

    #[test]
    fn to_change_stays_when_no_edge_is_wide_enough() {
        let me = p(0.9, 0.55);
        let ctx = ctx_for(me, vec![p(0.0, 0.0), p(1.8, 0.0), p(0.9, 1.6)], 4);
        assert_eq!(to_change(&ctx), Step::Done(Decision::MoveTo(me)));
    }

    #[test]
    fn touching_robots_peel_away_from_each_other() {
        // Two touching interior robots: each may only pick an escape spot
        // whose direction does not press into the other, so any moves they
        // make separate them instead of grinding into a zero-length step.
        let near = p(10.0, 5.0);
        let far = p(10.0, 7.0);
        let ctx_near = interior_ctx(near, vec![far], 6);
        let ctx_far = interior_ctx(far, vec![near], 6);

        let Step::Done(Decision::MoveTo(t_near)) = is_touching(&ctx_near) else {
            panic!("expected a decision");
        };
        let Step::Done(Decision::MoveTo(t_far)) = is_touching(&ctx_far) else {
            panic!("expected a decision");
        };
        assert!(
            !t_near.approx_eq(near),
            "the lower robot has a free escape and must move"
        );
        // Neither target presses into the other robot's current disc.
        assert!(t_near.distance(far) >= 2.0 - 1e-6);
        assert!(t_far.distance(near) >= 2.0 - 1e-6);
        // The escape directions point away from the partner (non-positive
        // component towards it).
        if !t_near.approx_eq(near) {
            assert!((t_near - near).normalized().dot(far - near) <= 1e-9);
        }
        if !t_far.approx_eq(far) {
            assert!((t_far - far).normalized().dot(near - far) <= 1e-9);
        }
    }

    #[test]
    fn proximity_tie_break_is_asymmetric() {
        // Two robots exactly equidistant from a contested spot cannot both
        // win the proximity contest: chirality breaks the tie.
        let a = p(9.0, 5.0);
        let b = p(11.0, 5.0);
        let target = p(10.0, -1.0 / 6.0);
        let ctx_a = interior_ctx(a, vec![b], 6);
        let ctx_b = interior_ctx(b, vec![a], 6);
        let a_wins = proximity(&ctx_a, a, [b].iter().copied(), target) != Proximity::Blocked;
        let b_wins = proximity(&ctx_b, b, [a].iter().copied(), target) != Proximity::Blocked;
        assert!(
            a_wins != b_wins,
            "exactly one of two tied robots may claim the spot (a: {a_wins}, b: {b_wins})"
        );
    }

    #[test]
    fn is_touching_stays_when_hull_has_no_room() {
        // A regular 12-gon whose sides are all shorter than a robot diameter:
        // Find-Points returns nothing and no hull side is wide enough, so a
        // touching interior robot stays where it is.
        let radius = 3.7;
        let hull: Vec<Point> = (0..12)
            .map(|i| {
                let a = 2.0 * std::f64::consts::PI * i as f64 / 12.0;
                p(radius * a.cos(), radius * a.sin())
            })
            .collect();
        let me = p(-1.0, 0.0);
        let mut others = hull;
        others.push(p(1.0, 0.0)); // touching the observer
        let ctx = ctx_for(me, others, 14);
        assert_eq!(is_touching(&ctx), Step::Done(Decision::MoveTo(me)));
    }
}
