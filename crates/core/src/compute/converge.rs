//! The convergence phase: Procedures `AllOnConvexHull`, `Connected` and
//! `NotConnected` (Sections 4.2.3–4.2.5).
//!
//! These procedures run only when the robot sees all `n` robots, every robot
//! is on the convex hull and no three are collinear — the safe, fully
//! visible regime the first phase establishes. `NotConnected` then closes
//! the gaps between the connected components while keeping every robot on
//! the hull and visible.
//!
//! ## Relation to the paper's pseudo-code
//!
//! The paper's Procedure `NotConnected` is a long prioritised case list whose
//! *intent* is spelled out in the proof of Lemma 23: (A) robots of a
//! smallest component migrate to their right-neighbour component; (B) if all
//! components have the same size, the component with the smallest clockwise
//! gap migrates; (C) if sizes and gaps are all equal, everybody converges
//! towards the inside of the hull. The implementation below realises exactly
//! those three cases (plus the paper's guards: a robot wedged between two
//! touching hull neighbours never moves, and a robot never moves inward so
//! far that it would come within `1/n` of the chord of its hull neighbours —
//! the sag condition that protects full visibility). Where the published
//! case list and the lemma disagree in letter, we follow the lemma; every
//! such choice is noted inline.

use fatrobots_geometry::kernel::Kernel;
use fatrobots_geometry::Point;

use crate::compute::context::Ctx;
use crate::compute::state::{ComputeState, Decision, Step};
use crate::functions::{connected_components, move_to_point, ComponentPartition};

/// Tolerance when comparing inter-component gaps for equality.
const GAP_TOL: f64 = 1e-6;

/// Procedure `AllOnConvexHull` (Section 4.2.3): flood-fill the tangency
/// graph of the view; all robots in one component means the configuration is
/// connected. The flood fill runs over the context's scratch-backed
/// union-find storage and agrees exactly with
/// `GeometricConfig::is_connected`.
pub fn all_on_convex_hull<K: Kernel>(ctx: &Ctx<K>) -> Step {
    if ctx.view_connected() {
        Step::Next(ComputeState::Connected)
    } else {
        Step::Next(ComputeState::NotConnected)
    }
}

/// Procedure `Connected` (Section 4.2.4): return ⊥ — the robot terminates.
pub fn connected<K: Kernel>(_ctx: &Ctx<K>) -> Step {
    Step::Done(Decision::Terminate)
}

/// Procedure `NotConnected` (Section 4.2.5): the convergence move.
pub fn not_connected<K: Kernel>(ctx: &Ctx<K>) -> Step {
    let me = ctx.me();
    let params = ctx.params();

    // Degenerate system sizes: with one robot we are trivially connected
    // (never reached); with two, simply approach the other robot.
    if ctx.all().len() <= 2 {
        let other = ctx.all().iter().copied().find(|q| !q.approx_eq(me));
        return match other {
            Some(o) if !ctx.touching(me, o) => Step::Done(Decision::MoveTo(
                move_to_point(me, o, params.step(), ctx.interior_point()).target,
            )),
            _ => Step::Done(Decision::MoveTo(me)),
        };
    }

    let (left, right) = match ctx.hull_neighbors_of(me) {
        Some(nb) => nb,
        None => return Step::Done(Decision::MoveTo(me)),
    };

    // Guard: wedged between two touching hull neighbours — nothing to do.
    if ctx.touching(me, left) && ctx.touching(me, right) {
        return Step::Done(Decision::MoveTo(me));
    }

    /// What the partition analysis decided; the move itself is emitted
    /// after the scratch partition borrow ends.
    enum Verdict {
        Stay,
        Hop,
        Symmetric,
    }

    // In this state every robot of the view is on the hull, so the
    // partition of the view equals the partition of its boundary — built in
    // the context's scratch storage (Function `Connected-Components` over
    // `onCH(V_i)`).
    let verdict = ctx.with_partition(|partition, onch| {
        let my_idx = match partition.component_of(onch, me) {
            Some(i) => i,
            None => return Verdict::Stay,
        };

        if partition.is_single() {
            // Every hull gap is already below 1/2n. Responsibility for
            // closing the remaining slack is directional: each robot closes
            // the gap to its *clockwise* hull neighbour and otherwise holds
            // still. Exactly one robot is responsible for each gap, so the
            // chain zips up without the rotation that symmetric chasing
            // would cause.
            return if ctx.touching(me, right) {
                Verdict::Stay
            } else {
                Verdict::Hop
            };
        }

        let min_size = partition.sizes().min().expect("non-empty partition");
        let max_size = partition.sizes().max().expect("non-empty partition");
        let i_am_rightmost = partition.rightmost(onch, my_idx).approx_eq(me);

        if min_size != max_size {
            // Case A (Lemma 23): the rightmost robot of a smallest component
            // migrates to the component on its right; everybody else waits.
            return if partition.size(my_idx) == min_size && i_am_rightmost {
                Verdict::Hop
            } else {
                Verdict::Stay
            };
        }

        // All components have the same size: decide by the clockwise gaps.
        let mut min_gap = f64::INFINITY;
        let mut max_gap = f64::NEG_INFINITY;
        for i in 0..partition.len() {
            let gap = partition.right_gap(onch, i);
            min_gap = min_gap.min(gap);
            max_gap = max_gap.max(gap);
        }

        if max_gap - min_gap > GAP_TOL {
            // Case B: the rightmost robot of a component with the smallest
            // clockwise gap migrates.
            return if partition.right_gap(onch, my_idx) <= min_gap + GAP_TOL && i_am_rightmost {
                Verdict::Hop
            } else {
                Verdict::Stay
            };
        }
        Verdict::Symmetric
    });

    match verdict {
        Verdict::Stay => Step::Done(Decision::MoveTo(me)),
        Verdict::Hop => Step::Done(hop_to_right_neighbor(ctx, right)),
        // Case C: full symmetry — everyone converges towards the inside of
        // the hull (the paper's `CD` construction), robots already in
        // contact hold still.
        Verdict::Symmetric => {
            if ctx.touching_me().next().is_some() {
                return Step::Done(Decision::MoveTo(me));
            }
            Step::Done(symmetric_converge_move(ctx, left, right))
        }
    }
}

/// The migration move of cases A and B: `Move-to-Point` towards the robot's
/// clockwise hull neighbour (which is the leftmost robot of the
/// right-neighbour component).
///
/// Deviation from the paper: the paper offsets the approach by `1/2n − ε`
/// towards the hull interior so the mover cannot end up exactly hidden
/// behind its target. With fat robots moving along a hull edge that inward
/// offset lands the mover strictly *inside* the hull of the others, whose
/// interior-robot procedures then promptly pull it back out — a livelock we
/// observed in simulation. The straight tangent approach (offset 0) keeps
/// the mover on the hull boundary; exact occlusion would require the mover,
/// its target and an observer to be exactly collinear, which the
/// `SeeTwoRobot` recovery handles in the measure-zero case it occurs.
fn hop_to_right_neighbor<K: Kernel>(ctx: &Ctx<K>, right: Point) -> Decision {
    let me = ctx.me();
    if ctx.touching(me, right) {
        return Decision::MoveTo(me);
    }
    let ideal = move_to_point(me, right, 0.0, ctx.interior_point()).target;
    let dir = (ideal - me).normalized();
    if dir.is_zero() {
        return Decision::MoveTo(me);
    }
    // A migrating robot that still touches members of its own component may
    // find the straight line towards its destination pressing into one of
    // them, which would halt the move after zero distance. In that case it
    // first slides tangentially around the blocking robot (the direction
    // closest to the ideal one that does not press into any touching robot)
    // for one step; once clear of the contact, subsequent cycles hop
    // directly. This keeps the migration of Lemma 23 live when components
    // have already formed touching chains.
    let blocked = ctx.touching_me().any(|t| dir.dot(t - me) > 1e-9);
    if !blocked {
        return Decision::MoveTo(ideal);
    }
    let nearest_blocker = ctx
        .touching_me()
        .filter(|&t| dir.dot(t - me) > 1e-9)
        .max_by(|a, b| {
            dir.dot(*a - me)
                .partial_cmp(&dir.dot(*b - me))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("blocked implies at least one blocking toucher");
    let normal = (nearest_blocker - me).normalized();
    let tangent = if normal.perp_ccw().dot(dir) >= normal.perp_cw().dot(dir) {
        normal.perp_ccw()
    } else {
        normal.perp_cw()
    };
    // Give up (wait) when even the tangential slide presses into another
    // touching robot: the robot is wedged and somebody else must move first.
    if ctx.touching_me().any(|t| tangent.dot(t - me) > 1e-9) {
        return Decision::MoveTo(me);
    }
    Decision::MoveTo(me + tangent * ctx.params().step())
}

/// The symmetric convergence move of case C (and of the single-component
/// regime): step towards the inside of the hull, perpendicular to the chord
/// of the hull neighbours, by `1/2n − ε` — but never so far that the robot
/// comes within `1/n` of that chord (the sag condition the paper imposes
/// before any convergence move; it keeps three hull robots from ever
/// becoming collinear and breaking full visibility). A robot that is already
/// within the sag margin slides towards its clockwise neighbour instead,
/// which also makes progress without risking visibility.
fn symmetric_converge_move<K: Kernel>(ctx: &Ctx<K>, left: Point, right: Point) -> Decision {
    let me = ctx.me();
    let params = ctx.params();
    if left.distance(right) <= f64::EPSILON {
        // Degenerate chord (two-robot hulls are handled earlier; this guards
        // malformed views): fall back to the migration move.
        return hop_to_right_neighbor(ctx, right);
    }
    let bulge = ctx.distance_to_chord(me, left, right);
    // Keep a strict ε margin above the band so the robot is never classified
    // as "on a straight line" by the next snapshot.
    let max_inward = bulge - (params.band() + params.eps());
    if max_inward > 1e-9 {
        let step = params.step().min(max_inward);
        Decision::MoveTo(me + ctx.inward_at(me) * step)
    } else if !ctx.touching(me, right) {
        hop_to_right_neighbor(ctx, right)
    } else {
        Decision::MoveTo(me)
    }
}

/// Internal helper used by the partition-based branches; exposed to the
/// bench crate for white-box experiments on the convergence policy.
#[doc(hidden)]
pub fn partition_for<K: Kernel>(ctx: &Ctx<K>) -> ComponentPartition {
    connected_components(ctx.all(), ctx.params().gap_threshold())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::AlgorithmParams;
    use fatrobots_model::LocalView;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn ctx_for(me: Point, others: Vec<Point>, n: usize) -> Ctx {
        Ctx::new(&LocalView::new(me, others, n), AlgorithmParams::for_n(n))
    }

    /// Robots on a circle of radius `r` at the given angles.
    fn on_circle(r: f64, angles: &[f64]) -> Vec<Point> {
        angles.iter().map(|a| p(r * a.cos(), r * a.sin())).collect()
    }

    #[test]
    fn connected_configuration_terminates() {
        let centers = [p(0.0, 0.0), p(2.0, 0.0), p(1.0, 3.0_f64.sqrt())];
        let ctx = ctx_for(centers[0], centers[1..].to_vec(), 3);
        assert_eq!(
            all_on_convex_hull(&ctx),
            Step::Next(ComputeState::Connected)
        );
        assert_eq!(connected(&ctx), Step::Done(Decision::Terminate));
    }

    #[test]
    fn disconnected_configuration_goes_to_not_connected() {
        let centers = [p(0.0, 0.0), p(10.0, 0.0), p(5.0, 8.0)];
        let ctx = ctx_for(centers[0], centers[1..].to_vec(), 3);
        assert_eq!(
            all_on_convex_hull(&ctx),
            Step::Next(ComputeState::NotConnected)
        );
    }

    #[test]
    fn two_robot_system_approaches_directly() {
        let me = p(0.0, 0.0);
        let other = p(10.0, 0.0);
        let ctx = ctx_for(me, vec![other], 2);
        let Step::Done(Decision::MoveTo(target)) = not_connected(&ctx) else {
            panic!("expected a move");
        };
        // The target is tangent to the other robot.
        assert!((target.distance(other) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn wedged_robot_stays() {
        // Five robots, the observer touches both hull neighbours.
        let me = p(0.0, 10.0);
        let others = vec![p(-2.0, 10.0), p(2.0, 10.0), p(-3.0, 0.0), p(3.0, 0.0)];
        let ctx = ctx_for(me, others, 5);
        assert_eq!(not_connected(&ctx), Step::Done(Decision::MoveTo(me)));
    }

    #[test]
    fn smallest_component_rightmost_member_migrates() {
        // A touching pair and a far singleton on a big circle: the singleton
        // is the smallest component, so it (and only it) migrates.
        let r: f64 = 40.0;
        let step = 2.0 * (1.0 / r).asin();
        let pair = on_circle(r, &[0.0, step]);
        let single = on_circle(r, &[2.0]);
        let n = 3;

        // The singleton moves towards its clockwise neighbour.
        let ctx_single = ctx_for(single[0], pair.clone(), n);
        let Step::Done(Decision::MoveTo(t)) = not_connected(&ctx_single) else {
            panic!("expected a move");
        };
        assert!(!t.approx_eq(single[0]), "the singleton must migrate");

        // Members of the pair stay.
        let ctx_pair = ctx_for(pair[0], vec![pair[1], single[0]], n);
        assert_eq!(
            not_connected(&ctx_pair),
            Step::Done(Decision::MoveTo(pair[0]))
        );
    }

    #[test]
    fn equal_sizes_smallest_gap_component_migrates() {
        // Three singletons at unequal angular spacing: only the robot whose
        // clockwise gap is smallest migrates.
        let r: f64 = 40.0;
        let centers = on_circle(r, &[0.0, 0.5, 3.0]);
        let n = 3;
        // Robot at angle 0.5 has the smallest clockwise gap (to the robot at
        // angle 0.0).
        let ctx_mover = ctx_for(centers[1], vec![centers[0], centers[2]], n);
        let Step::Done(Decision::MoveTo(t)) = not_connected(&ctx_mover) else {
            panic!("expected a move");
        };
        assert!(!t.approx_eq(centers[1]));

        let ctx_waiter = ctx_for(centers[2], vec![centers[0], centers[1]], n);
        assert_eq!(
            not_connected(&ctx_waiter),
            Step::Done(Decision::MoveTo(centers[2]))
        );
    }

    #[test]
    fn full_symmetry_converges_inward() {
        // Four robots on a big circle at equal spacing: sizes and gaps all
        // equal, so every robot steps towards the inside of the hull.
        let r: f64 = 40.0;
        let quarter = std::f64::consts::FRAC_PI_2;
        let centers = on_circle(r, &[0.0, quarter, 2.0 * quarter, 3.0 * quarter]);
        let n = 4;
        for i in 0..4 {
            let others: Vec<Point> = (0..4).filter(|&j| j != i).map(|j| centers[j]).collect();
            let ctx = ctx_for(centers[i], others, n);
            let Step::Done(Decision::MoveTo(t)) = not_connected(&ctx) else {
                panic!("expected a move");
            };
            assert!(!t.approx_eq(centers[i]), "robot {i} must move inward");
            // Strictly closer to the hull centroid.
            assert!(t.distance(Point::ORIGIN) < centers[i].distance(Point::ORIGIN));
            // And never by more than one algorithm step.
            assert!(centers[i].distance(t) <= AlgorithmParams::for_n(n).step() + 1e-12);
        }
    }

    #[test]
    fn single_component_closes_clockwise_gaps_only() {
        // Four robots forming one near-chain on a huge circle: robots whose
        // clockwise neighbour already touches them hold still; the robot at
        // the open clockwise end moves to close the remaining gap.
        let r: f64 = 400.0;
        let touch_step = 2.0 * (1.0 / r).asin();
        let near = 2.0005 / 400.0; // gap ≈ 0.0005 < 1/(2·4)
        let centers = on_circle(
            r,
            &[0.0, touch_step, touch_step + near, touch_step + 2.0 * near],
        );

        // Robot 1's clockwise neighbour is robot 0 and they touch: stay.
        let ctx1 = ctx_for(centers[1], vec![centers[0], centers[2], centers[3]], 4);
        assert_eq!(
            not_connected(&ctx1),
            Step::Done(Decision::MoveTo(centers[1]))
        );

        // Robot 0's clockwise neighbour (wrapping around the hull) is the far
        // end of the chain: it is responsible for that gap and must move.
        let ctx0 = ctx_for(centers[0], centers[1..].to_vec(), 4);
        let Step::Done(Decision::MoveTo(t)) = not_connected(&ctx0) else {
            panic!("expected a decision");
        };
        assert!(!t.approx_eq(centers[0]), "the open-end robot must move");
    }

    #[test]
    fn sag_guard_caps_the_inward_step() {
        // A nearly flat vertex: the bulge over the neighbour chord is barely
        // above 1/n, so the inward step must be capped — the robot never
        // dives below the sag margin.
        let n = 4;
        let params = AlgorithmParams::for_n(n);
        let band = params.band();
        let left = p(-8.0, 0.0);
        let right = p(8.0, 0.0);
        let me = p(0.0, -(band + params.eps() + 0.02));
        let ctx = ctx_for(me, vec![left, right, p(0.0, 30.0)], n);
        let Decision::MoveTo(t) = symmetric_converge_move(&ctx, left, right) else {
            panic!("expected a move");
        };
        let chord_dist = ctx.distance_to_chord(t, left, right);
        assert!(
            chord_dist >= band - 1e-9,
            "the sag guard must keep the robot at least 1/n from the chord (got {chord_dist})"
        );
        assert!(me.distance(t) <= AlgorithmParams::for_n(n).step() + 1e-12);
    }

    #[test]
    fn flat_vertex_slides_towards_its_clockwise_neighbour_instead() {
        // Bulge already below the sag margin: the symmetric move degrades to
        // a slide towards the clockwise hull neighbour.
        let n = 4;
        let band = AlgorithmParams::for_n(n).band();
        let left = p(-8.0, 0.0);
        let right = p(8.0, 0.0);
        let me = p(0.0, -(band - 0.01));
        let ctx = ctx_for(me, vec![left, right, p(0.0, 30.0)], n);
        let Decision::MoveTo(t) = symmetric_converge_move(&ctx, left, right) else {
            panic!("expected a move");
        };
        // The slide is a Move-to-Point hop: tangent to the clockwise
        // neighbour.
        assert!((t.distance(right) - 2.0).abs() < 1e-9);
    }
}
