//! The local Compute algorithm of Section 4: seventeen algorithmic states
//! (Figure 4) and one procedure per state.
//!
//! [`LocalAlgorithm::run`] takes a robot's [`LocalView`](fatrobots_model::LocalView)
//! (the output of its Look phase) and walks the state graph starting from
//! `Compute.Start` until a terminal procedure produces a [`Decision`]:
//! either a target point for the Move phase or ⊥ (terminate).
//!
//! The module layout mirrors the paper's two conceptual phases plus the
//! interior-robot logic:
//!
//! * [`hull_procedures`] — procedures for robots that are on the convex hull
//!   of their view but the system is not yet fully visible (Start,
//!   OnConvexHull, NotAllOnConvexHull, NotOnStraightLine, SpaceForMore,
//!   NoSpaceForMore, OnStraightLine, SeeOneRobot, SeeTwoRobot);
//! * [`interior_procedures`] — procedures for robots strictly inside the
//!   hull of their view (NotOnConvexHull, IsTouching, NotTouching, ToChange,
//!   NotChange);
//! * [`converge`] — the second phase (AllOnConvexHull, Connected,
//!   NotConnected), entered once the robot sees all `n` robots on the hull
//!   with full visibility.

pub mod algorithm;
pub mod context;
pub mod converge;
pub mod hull_procedures;
pub mod interior_procedures;
pub mod state;

pub use algorithm::{ComputeOutcome, KernelAlgorithm, LocalAlgorithm};
pub use context::{ComputeScratch, Ctx};
pub use state::{ComputeState, Decision, Step};
