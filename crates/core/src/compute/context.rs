//! Shared geometric context for the Compute procedures.
//!
//! Each run of the local algorithm computes the robot's view hull once and
//! carries it (plus the derived `onCH` set) through the state transitions,
//! exactly as the paper has Procedure `Start` pass `onCH(V_i)` along to the
//! subsequent procedures.

use fatrobots_geometry::hull::ConvexHull;
use fatrobots_geometry::{Line, Point, Segment, Vec2, UNIT_RADIUS};
use fatrobots_model::LocalView;

use crate::params::AlgorithmParams;

/// Gap below which two robots are considered touching by the local
/// algorithm. Matches the model-layer tolerance.
pub const TOUCH_TOL: f64 = 1e-6;

/// Precomputed per-run context handed to every procedure.
#[derive(Debug, Clone)]
pub struct Ctx {
    params: AlgorithmParams,
    me: Point,
    all: Vec<Point>,
    view_size: usize,
    hull: ConvexHull,
    onch: Vec<Point>,
}

impl Ctx {
    /// Builds the context for one Compute run.
    pub fn new(view: &LocalView, params: AlgorithmParams) -> Self {
        let all = view.all_centers();
        let hull = ConvexHull::from_points(&all);
        let onch = hull.boundary();
        Ctx {
            params,
            me: view.me(),
            view_size: view.size(),
            all,
            hull,
            onch,
        }
    }

    /// The algorithm parameters.
    pub fn params(&self) -> AlgorithmParams {
        self.params
    }

    /// The observing robot's own center.
    pub fn me(&self) -> Point {
        self.me
    }

    /// All centers in the view (observer included).
    pub fn all(&self) -> &[Point] {
        &self.all
    }

    /// `|V_i|`: number of robots in the view, observer included.
    pub fn view_size(&self) -> usize {
        self.view_size
    }

    /// The total number of robots `n`.
    pub fn n(&self) -> usize {
        self.params.n()
    }

    /// Convex hull of the view.
    pub fn hull(&self) -> &ConvexHull {
        &self.hull
    }

    /// `onCH(V_i)`: the centers of the view on the hull boundary, in
    /// counter-clockwise order.
    pub fn onch(&self) -> &[Point] {
        &self.onch
    }

    /// `|onCH(V_i)|`.
    pub fn onch_len(&self) -> usize {
        self.onch.len()
    }

    /// `true` when the observer is on the hull of its view.
    pub fn me_on_hull(&self) -> bool {
        self.onch.iter().any(|p| p.approx_eq(self.me))
    }

    /// A point in the interior of the view hull (the centroid of the hull
    /// boundary points), used to orient "inside"/"outside" directions.
    pub fn interior_point(&self) -> Point {
        Point::centroid(&self.onch)
    }

    /// Hull neighbours of a boundary point `p`: `(left, right)` where *left*
    /// is the next boundary point counter-clockwise and *right* the next
    /// clockwise (the paper's chirality convention).
    pub fn hull_neighbors_of(&self, p: Point) -> Option<(Point, Point)> {
        self.hull.neighbors_of(p)
    }

    /// Unit vector pointing from hull point `p` towards the outside of the
    /// hull: perpendicular to the chord joining `p`'s hull neighbours, on the
    /// side away from the hull interior. Falls back to the direction away
    /// from the interior point (or an arbitrary perpendicular for fully
    /// degenerate views), mirroring the paper's "if this is not possible to
    /// determine choose a random direction".
    pub fn outward_at(&self, p: Point) -> Vec2 {
        let interior = self.interior_point();
        let fallback = || {
            let d = p - interior;
            if d.is_zero() {
                Vec2::new(0.0, 1.0)
            } else {
                d.normalized()
            }
        };
        match self.hull_neighbors_of(p) {
            Some((left, right)) if left.distance(right) > f64::EPSILON => {
                let mut perp = (right - left).normalized().perp_ccw();
                let away = p - interior;
                if away.is_zero() {
                    // Degenerate hull (all points collinear): either
                    // perpendicular is "outside".
                    perp
                } else {
                    if perp.dot(away) < 0.0 {
                        perp = -perp;
                    }
                    perp
                }
            }
            _ => fallback(),
        }
    }

    /// Unit vector pointing from hull point `p` towards the inside of the
    /// hull (the negation of [`Self::outward_at`]).
    pub fn inward_at(&self, p: Point) -> Vec2 {
        -self.outward_at(p)
    }

    /// `true` when the unit discs at `a` and `b` touch (or interpenetrate,
    /// which a valid configuration never shows).
    pub fn touching(&self, a: Point, b: Point) -> bool {
        a.distance(b) <= 2.0 * UNIT_RADIUS + TOUCH_TOL
    }

    /// Centers of the robots in the view touching the observer.
    pub fn touching_me(&self) -> Vec<Point> {
        self.all
            .iter()
            .copied()
            .filter(|&q| !q.approx_eq(self.me) && self.touching(self.me, q))
            .collect()
    }

    /// Consecutive triples `(a, b, c)` of hull boundary points (cyclic) that
    /// contain the given point. Returns an empty list for hulls with fewer
    /// than three boundary points.
    pub fn hull_triples_containing(&self, p: Point) -> Vec<(Point, Point, Point)> {
        let m = self.onch.len();
        if m < 3 {
            return vec![];
        }
        (0..m)
            .map(|i| (self.onch[i], self.onch[(i + 1) % m], self.onch[(i + 2) % m]))
            .filter(|&(a, b, c)| p.approx_eq(a) || p.approx_eq(b) || p.approx_eq(c))
            .collect()
    }

    /// Consecutive pairs of hull boundary points (the hull "sides" between
    /// adjacent robots), cyclic.
    pub fn hull_adjacent_pairs(&self) -> Vec<(Point, Point)> {
        let m = self.onch.len();
        match m {
            0 | 1 => vec![],
            2 => vec![(self.onch[0], self.onch[1])],
            _ => (0..m)
                .map(|i| (self.onch[i], self.onch[(i + 1) % m]))
                .collect(),
        }
    }

    /// Distance from `p` to the straight line through `a` and `b`
    /// (`f64::INFINITY` when `a == b`).
    pub fn distance_to_chord(&self, p: Point, a: Point, b: Point) -> f64 {
        if a.distance(b) <= f64::EPSILON {
            f64::INFINITY
        } else {
            Line::through(a, b).distance_to(p)
        }
    }

    /// Intersection of the segment `from → to` with the hull boundary, when
    /// `from` is inside the hull and `to` outside (or on the far side); used
    /// by the interior-robot procedures to stop at the hull. Returns the
    /// crossing point closest to `to`.
    pub fn boundary_crossing(&self, from: Point, to: Point) -> Option<Point> {
        let seg = Segment::new(from, to);
        let mut best: Option<(f64, Point)> = None;
        for edge in self.hull.edges() {
            if let Some(x) = seg.intersection(&edge) {
                let d = x.distance(to);
                if best.map_or(true, |(bd, _)| d < bd) {
                    best = Some((d, x));
                }
            }
        }
        best.map(|(_, p)| p)
    }

    /// First exit point of the ray `from → through → ∞` through the hull
    /// boundary (the paper's construction in Procedure `NotOnStraightLine`
    /// that projects interior robots onto the hull).
    pub fn ray_exit_point(&self, from: Point, through: Point) -> Option<Point> {
        let dir = (through - from).normalized();
        if dir.is_zero() {
            return None;
        }
        // A segment long enough to cross any hull we will ever see.
        let span = self.hull.perimeter().max(1.0) * 4.0 + from.distance(through);
        let far = from + dir * span;
        let seg = Segment::new(from, far);
        let mut best: Option<(f64, Point)> = None;
        for edge in self.hull.edges() {
            if let Some(x) = seg.intersection(&edge) {
                let d = x.distance(from);
                // The exit point is the farthest crossing from the observer.
                if best.map_or(true, |(bd, _)| d > bd) {
                    best = Some((d, x));
                }
            }
        }
        best.map(|(_, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatrobots_model::LocalView;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn square_ctx() -> Ctx {
        let me = p(0.0, 0.0);
        let others = vec![p(10.0, 0.0), p(10.0, 10.0), p(0.0, 10.0), p(5.0, 5.0)];
        let view = LocalView::new(me, others, 5);
        Ctx::new(&view, AlgorithmParams::for_n(5))
    }

    #[test]
    fn context_basic_queries() {
        let ctx = square_ctx();
        assert_eq!(ctx.view_size(), 5);
        assert_eq!(ctx.n(), 5);
        assert_eq!(ctx.onch_len(), 4);
        assert!(ctx.me_on_hull());
        assert_eq!(ctx.hull_adjacent_pairs().len(), 4);
        assert_eq!(ctx.hull_triples_containing(ctx.me()).len(), 3);
    }

    #[test]
    fn outward_direction_points_away_from_interior() {
        let ctx = square_ctx();
        let out = ctx.outward_at(p(0.0, 0.0));
        // At the (0,0) corner of the square the outward direction has
        // negative x and y components.
        assert!(out.x < 0.0 && out.y < 0.0);
        let inward = ctx.inward_at(p(0.0, 0.0));
        assert!(inward.x > 0.0 && inward.y > 0.0);
        assert!((out.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn touching_queries() {
        let me = p(0.0, 0.0);
        let view = LocalView::new(me, vec![p(2.0, 0.0), p(7.0, 0.0), p(3.0, 6.0)], 4);
        let ctx = Ctx::new(&view, AlgorithmParams::for_n(4));
        assert!(ctx.touching(me, p(2.0, 0.0)));
        assert!(!ctx.touching(me, p(7.0, 0.0)));
        assert_eq!(ctx.touching_me(), vec![p(2.0, 0.0)]);
    }

    #[test]
    fn boundary_crossing_and_ray_exit() {
        let ctx = square_ctx();
        // From the interior point (5,5) towards a point beyond the right
        // edge: crossing at x = 10.
        let x = ctx.boundary_crossing(p(5.0, 5.0), p(15.0, 5.0)).unwrap();
        assert!((x.x - 10.0).abs() < 1e-9);
        let exit = ctx.ray_exit_point(p(0.0, 0.0), p(5.0, 5.0)).unwrap();
        assert!(exit.approx_eq(p(10.0, 10.0)));
        assert!(ctx.ray_exit_point(p(0.0, 0.0), p(0.0, 0.0)).is_none());
    }

    #[test]
    fn distance_to_degenerate_chord_is_infinite() {
        let ctx = square_ctx();
        assert!(ctx
            .distance_to_chord(p(1.0, 1.0), p(2.0, 2.0), p(2.0, 2.0))
            .is_infinite());
        assert!((ctx.distance_to_chord(p(0.0, 5.0), p(0.0, 0.0), p(10.0, 0.0)) - 5.0).abs() < 1e-9);
    }
}
