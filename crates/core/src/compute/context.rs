//! Shared geometric context for the Compute procedures.
//!
//! Each run of the local algorithm computes the robot's view hull once and
//! carries it (plus the derived `onCH` set) through the state transitions,
//! exactly as the paper has Procedure `Start` pass `onCH(V_i)` along to the
//! subsequent procedures.
//!
//! ## The scratch arena
//!
//! A [`Ctx`] owns a [`ComputeScratch`]: every buffer a decision needs — the
//! view's center list, the hull (with its construction scratch), the `onCH`
//! boundary, the auxiliary point buffer of Procedure `NotOnStraightLine`,
//! the component partition of Procedure `NotConnected` and the union-find
//! storage of the connectivity test. The engine keeps one arena per
//! simulator and moves it in and out of each `Ctx`
//! ([`Ctx::with_scratch`] / [`Ctx::into_scratch`]), so the steady-state
//! decision pipeline performs no heap allocation once the buffers are warm.
//! Multi-element queries (`touching_me`, `hull_adjacent_pairs`,
//! `hull_triples_containing`) return iterators over the scratch-backed
//! slices instead of freshly allocated `Vec`s.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::marker::PhantomData;

use fatrobots_geometry::hull::{ConvexHull, HullScratch};
use fatrobots_geometry::kernel::{EpsKernel, Kernel};
use fatrobots_geometry::{Line, Point, Segment, Vec2, UNIT_RADIUS};
use fatrobots_model::config::{gap_touches, TOUCH_TOL as MODEL_TOUCH_TOL};
use fatrobots_model::LocalView;

use crate::functions::BoundaryPartition;
use crate::params::AlgorithmParams;

/// Gap below which two robots are considered touching by the local
/// algorithm. Matches the model-layer tolerance.
pub const TOUCH_TOL: f64 = 1e-6;

/// The reusable buffers of one Compute run. Owned by the caller (the
/// simulator keeps one per engine, the sweep one per worker run) and moved
/// through [`Ctx::with_scratch`] so consecutive decisions reuse the same
/// heap storage.
#[derive(Debug, Default)]
pub struct ComputeScratch {
    /// All centers in the view, observer first.
    all: Vec<Point>,
    /// The view hull, rebuilt in place per decision.
    hull: ConvexHull,
    /// Construction buffers for the hull rebuild.
    hull_scratch: HullScratch,
    /// `onCH(V_i)` in counter-clockwise order.
    onch: Vec<Point>,
    /// Auxiliary keyed point buffer (the `onCH2` projection set of
    /// Procedure `NotOnStraightLine`, tagged with a sort key so the
    /// ordering never recomputes `atan2` inside the comparator).
    aux_points: RefCell<Vec<(f64, Point)>>,
    /// Component partition of the convergence procedures.
    partition: RefCell<BoundaryPartition>,
    /// Union-find storage of the view-connectivity test.
    parent: RefCell<Vec<usize>>,
}

/// Precomputed per-run context handed to every procedure.
///
/// The kernel parameter `K` selects the predicate policy for every
/// geometric *classification* the procedures make (hull membership,
/// touch tests, chord bands, boundary crossings). Constructed values —
/// targets, projections, step lengths — are plain `f64` arithmetic shared
/// by every kernel, so two kernels can only diverge by classifying, never
/// by constructing. The default [`EpsKernel`] is bit-identical to the
/// historical ε-tolerant code and remains the hot path.
#[derive(Debug)]
pub struct Ctx<K: Kernel = EpsKernel> {
    params: AlgorithmParams,
    me: Point,
    view_size: usize,
    /// Memoized at build time: Procedure `Start` and the band tests query
    /// this repeatedly per decision.
    me_on_hull: bool,
    /// Memoized at build time: every `outward_at` call needs it.
    interior_point: Point,
    scratch: ComputeScratch,
    _kernel: PhantomData<K>,
}

impl<K: Kernel> Ctx<K> {
    /// Builds the context for one Compute run with fresh buffers.
    pub fn new(view: &LocalView, params: AlgorithmParams) -> Self {
        Self::with_scratch(view, params, ComputeScratch::default())
    }

    /// Builds the context for one Compute run, reusing the caller's scratch
    /// arena. Recover the arena afterwards with [`Self::into_scratch`].
    pub fn with_scratch(
        view: &LocalView,
        params: AlgorithmParams,
        mut scratch: ComputeScratch,
    ) -> Self {
        let me = view.me();
        scratch.all.clear();
        scratch.all.push(me);
        scratch.all.extend_from_slice(view.others());
        scratch
            .hull
            .rebuild_with_k::<K>(&scratch.all, &mut scratch.hull_scratch);
        scratch.onch.clear();
        let (hull, onch) = (&scratch.hull, &mut scratch.onch);
        onch.extend(hull.boundary_iter());
        let me_on_hull = scratch.onch.iter().any(|p| p.approx_eq(me));
        let interior_point = Point::centroid(&scratch.onch);
        Ctx {
            params,
            me,
            view_size: view.size(),
            me_on_hull,
            interior_point,
            scratch,
            _kernel: PhantomData,
        }
    }

    /// Releases the scratch arena for reuse by the next decision.
    pub fn into_scratch(self) -> ComputeScratch {
        self.scratch
    }

    /// The algorithm parameters.
    pub fn params(&self) -> AlgorithmParams {
        self.params
    }

    /// The observing robot's own center.
    pub fn me(&self) -> Point {
        self.me
    }

    /// All centers in the view (observer included).
    pub fn all(&self) -> &[Point] {
        &self.scratch.all
    }

    /// `|V_i|`: number of robots in the view, observer included.
    pub fn view_size(&self) -> usize {
        self.view_size
    }

    /// The total number of robots `n`.
    pub fn n(&self) -> usize {
        self.params.n()
    }

    /// Convex hull of the view.
    pub fn hull(&self) -> &ConvexHull {
        &self.scratch.hull
    }

    /// `onCH(V_i)`: the centers of the view on the hull boundary, in
    /// counter-clockwise order.
    pub fn onch(&self) -> &[Point] {
        &self.scratch.onch
    }

    /// `|onCH(V_i)|`.
    pub fn onch_len(&self) -> usize {
        self.scratch.onch.len()
    }

    /// `true` when the observer is on the hull of its view (memoized at
    /// context build).
    pub fn me_on_hull(&self) -> bool {
        self.me_on_hull
    }

    /// A point in the interior of the view hull (the centroid of the hull
    /// boundary points), used to orient "inside"/"outside" directions.
    /// Memoized at context build.
    pub fn interior_point(&self) -> Point {
        self.interior_point
    }

    /// `true` when the union of the view's discs is connected — the flood
    /// fill of Procedure `AllOnConvexHull`, answered from scratch-backed
    /// union-find storage. Agrees exactly with
    /// `GeometricConfig::is_connected_on` (same tangency predicate, same
    /// graph) — and therefore deliberately stays on the shared model-layer
    /// `gap_touches` predicate rather than the kernel: the model's world
    /// invariants and the local algorithm must answer connectivity
    /// identically under every kernel.
    pub fn view_connected(&self) -> bool {
        let centers = &self.scratch.all;
        let n = centers.len();
        if n <= 1 {
            return true;
        }
        let mut parent = self.scratch.parent.borrow_mut();
        parent.clear();
        parent.extend(0..n);
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        // Conservative squared-distance prefilter: a pair provably farther
        // apart than the touch threshold (with generous float slack) skips
        // the square root; survivors run the exact reference expression.
        let reach = 2.0 * UNIT_RADIUS + 2.0 * MODEL_TOUCH_TOL;
        let reach_sq = reach * reach;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = centers[j] - centers[i];
                if d.norm_sq() > reach_sq {
                    continue;
                }
                if gap_touches(centers[i].distance(centers[j]) - 2.0 * UNIT_RADIUS) {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        let root = find(&mut parent, 0);
        (1..n).all(|i| find(&mut parent, i) == root)
    }

    /// Runs `f` with the auxiliary keyed-point buffer (cleared first). Used
    /// by procedures that need temporary sortable point storage without
    /// allocating.
    pub(crate) fn with_aux_points<R>(
        &self,
        f: impl FnOnce(&Ctx<K>, &mut Vec<(f64, Point)>) -> R,
    ) -> R {
        let mut aux = self.scratch.aux_points.borrow_mut();
        aux.clear();
        f(self, &mut aux)
    }

    /// Hull neighbours of the boundary point at position `i` of
    /// [`Self::onch`]: `(left, right)` exactly as
    /// [`Self::hull_neighbors_of`] reports for that point, without the
    /// boundary position scan (view points are pairwise distinct — robots
    /// are at least a diameter apart).
    pub fn onch_neighbors_at(&self, i: usize) -> Option<(Point, Point)> {
        let onch = &self.scratch.onch;
        let m = onch.len();
        if m < 2 {
            return None;
        }
        Some((onch[(i + 1) % m], onch[(i + m - 1) % m]))
    }

    /// Rebuilds the component partition of the hull boundary (Function
    /// `Connected-Components` over `onCH(V_i)`) in scratch storage and runs
    /// `f` on it together with the boundary slice.
    pub(crate) fn with_partition<R>(&self, f: impl FnOnce(&BoundaryPartition, &[Point]) -> R) -> R {
        let mut partition = self.scratch.partition.borrow_mut();
        partition.rebuild(&self.scratch.onch, self.params.gap_threshold());
        f(&partition, &self.scratch.onch)
    }

    /// Hull neighbours of a boundary point `p`: `(left, right)` where *left*
    /// is the next boundary point counter-clockwise and *right* the next
    /// clockwise (the paper's chirality convention).
    pub fn hull_neighbors_of(&self, p: Point) -> Option<(Point, Point)> {
        self.scratch.hull.neighbors_of(p)
    }

    /// Unit vector pointing from hull point `p` towards the outside of the
    /// hull: perpendicular to the chord joining `p`'s hull neighbours, on the
    /// side away from the hull interior. Falls back to the direction away
    /// from the interior point (or an arbitrary perpendicular for fully
    /// degenerate views), mirroring the paper's "if this is not possible to
    /// determine choose a random direction".
    pub fn outward_at(&self, p: Point) -> Vec2 {
        let interior = self.interior_point;
        let fallback = || {
            let d = p - interior;
            if d.is_zero() {
                Vec2::new(0.0, 1.0)
            } else {
                d.normalized()
            }
        };
        match self.hull_neighbors_of(p) {
            Some((left, right)) if left.distance(right) > f64::EPSILON => {
                let mut perp = (right - left).normalized().perp_ccw();
                let away = p - interior;
                if away.is_zero() {
                    // Degenerate hull (all points collinear): either
                    // perpendicular is "outside".
                    perp
                } else {
                    if perp.dot(away) < 0.0 {
                        perp = -perp;
                    }
                    perp
                }
            }
            _ => fallback(),
        }
    }

    /// Unit vector pointing from hull point `p` towards the inside of the
    /// hull (the negation of [`Self::outward_at`]).
    pub fn inward_at(&self, p: Point) -> Vec2 {
        -self.outward_at(p)
    }

    /// `true` when the unit discs at `a` and `b` touch (or interpenetrate,
    /// which a valid configuration never shows). The touch threshold
    /// `2·R + TOUCH_TOL` is an algorithmic clearance both kernels honor;
    /// the kernel decides the distance classification against it.
    pub fn touching(&self, a: Point, b: Point) -> bool {
        K::cmp_dist(a, b, 2.0 * UNIT_RADIUS + TOUCH_TOL) != Ordering::Greater
    }

    /// Centers of the robots in the view touching the observer, in view
    /// order.
    pub fn touching_me(&self) -> impl Iterator<Item = Point> + Clone + '_ {
        let me = self.me;
        self.scratch
            .all
            .iter()
            .copied()
            .filter(move |&q| !q.approx_eq(me) && self.touching(me, q))
    }

    /// Consecutive triples `(a, b, c)` of hull boundary points (cyclic) that
    /// contain the given point. Empty for hulls with fewer than three
    /// boundary points.
    pub fn hull_triples_containing(
        &self,
        p: Point,
    ) -> impl Iterator<Item = (Point, Point, Point)> + Clone + '_ {
        let onch = &self.scratch.onch;
        let m = onch.len();
        let count = if m < 3 { 0 } else { m };
        (0..count)
            .map(move |i| (onch[i], onch[(i + 1) % m], onch[(i + 2) % m]))
            .filter(move |&(a, b, c)| p.approx_eq(a) || p.approx_eq(b) || p.approx_eq(c))
    }

    /// Consecutive pairs of hull boundary points (the hull "sides" between
    /// adjacent robots), cyclic.
    pub fn hull_adjacent_pairs(&self) -> impl Iterator<Item = (Point, Point)> + Clone + '_ {
        let onch = &self.scratch.onch;
        let m = onch.len();
        let count = match m {
            0 | 1 => 0,
            2 => 1,
            _ => m,
        };
        (0..count).map(move |i| (onch[i], onch[(i + 1) % m]))
    }

    /// Distance from `p` to the straight line through `a` and `b`
    /// (`f64::INFINITY` when `a == b`). A constructed *value* (it feeds
    /// step-length arithmetic), so it is shared f64 math under every
    /// kernel; classifications against a band go through
    /// [`Self::within_chord_band`] instead.
    pub fn distance_to_chord(&self, p: Point, a: Point, b: Point) -> f64 {
        if a.distance(b) <= f64::EPSILON {
            f64::INFINITY
        } else {
            Line::through(a, b).distance_to(p)
        }
    }

    /// `true` when `p` lies within perpendicular distance `band` of the
    /// chord through `a` and `b` — the kernel-decided form of
    /// `distance_to_chord(p, a, b) <= band` (a degenerate chord has
    /// infinite distance and is never within any band).
    pub fn within_chord_band(&self, p: Point, a: Point, b: Point, band: f64) -> bool {
        if a.distance(b) <= f64::EPSILON {
            false
        } else {
            Line::through(a, b).cmp_distance_to_k::<K>(p, band) != Ordering::Greater
        }
    }

    /// Intersection of the segment `from → to` with the hull boundary, when
    /// `from` is inside the hull and `to` outside (or on the far side); used
    /// by the interior-robot procedures to stop at the hull. Returns the
    /// crossing point closest to `to`.
    pub fn boundary_crossing(&self, from: Point, to: Point) -> Option<Point> {
        let seg = Segment::new(from, to);
        let mut best: Option<(f64, Point)> = None;
        for edge in self.scratch.hull.edges_iter() {
            if let Some(x) = K::segment_intersection(&seg, &edge) {
                let d = x.distance(to);
                if best.map_or(true, |(bd, _)| d < bd) {
                    best = Some((d, x));
                }
            }
        }
        best.map(|(_, p)| p)
    }

    /// First exit point of the ray `from → through → ∞` through the hull
    /// boundary (the paper's construction in Procedure `NotOnStraightLine`
    /// that projects interior robots onto the hull).
    pub fn ray_exit_point(&self, from: Point, through: Point) -> Option<Point> {
        let dir = (through - from).normalized();
        if dir.is_zero() {
            return None;
        }
        // A segment long enough to cross any hull we will ever see.
        let span = self.scratch.hull.perimeter().max(1.0) * 4.0 + from.distance(through);
        let far = from + dir * span;
        let seg = Segment::new(from, far);
        let mut best: Option<(f64, Point)> = None;
        for edge in self.scratch.hull.edges_iter() {
            if let Some(x) = K::segment_intersection(&seg, &edge) {
                let d = x.distance(from);
                // The exit point is the farthest crossing from the observer.
                if best.map_or(true, |(bd, _)| d > bd) {
                    best = Some((d, x));
                }
            }
        }
        best.map(|(_, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatrobots_model::LocalView;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn square_ctx() -> Ctx {
        let me = p(0.0, 0.0);
        let others = vec![p(10.0, 0.0), p(10.0, 10.0), p(0.0, 10.0), p(5.0, 5.0)];
        let view = LocalView::new(me, others, 5);
        Ctx::new(&view, AlgorithmParams::for_n(5))
    }

    #[test]
    fn context_basic_queries() {
        let ctx = square_ctx();
        assert_eq!(ctx.view_size(), 5);
        assert_eq!(ctx.n(), 5);
        assert_eq!(ctx.onch_len(), 4);
        assert!(ctx.me_on_hull());
        assert_eq!(ctx.hull_adjacent_pairs().count(), 4);
        assert_eq!(ctx.hull_triples_containing(ctx.me()).count(), 3);
    }

    #[test]
    fn scratch_reuse_rebuilds_an_identical_context() {
        // Two different views decided through the same arena must see
        // exactly the state a fresh context would.
        let view_a = LocalView::new(p(0.0, 0.0), vec![p(10.0, 0.0), p(5.0, 9.0)], 3);
        let view_b = LocalView::new(
            p(5.0, 5.0),
            vec![p(0.0, 0.0), p(10.0, 0.0), p(10.0, 10.0), p(0.0, 10.0)],
            5,
        );
        let ctx_a: Ctx = Ctx::with_scratch(
            &view_a,
            AlgorithmParams::for_n(3),
            ComputeScratch::default(),
        );
        let scratch = ctx_a.into_scratch();
        let reused: Ctx = Ctx::with_scratch(&view_b, AlgorithmParams::for_n(5), scratch);
        let fresh: Ctx = Ctx::new(&view_b, AlgorithmParams::for_n(5));
        assert_eq!(reused.all(), fresh.all());
        assert_eq!(reused.onch(), fresh.onch());
        assert_eq!(reused.me_on_hull(), fresh.me_on_hull());
        assert_eq!(reused.interior_point(), fresh.interior_point());
        assert_eq!(reused.hull(), fresh.hull());
    }

    #[test]
    fn outward_direction_points_away_from_interior() {
        let ctx = square_ctx();
        let out = ctx.outward_at(p(0.0, 0.0));
        // At the (0,0) corner of the square the outward direction has
        // negative x and y components.
        assert!(out.x < 0.0 && out.y < 0.0);
        let inward = ctx.inward_at(p(0.0, 0.0));
        assert!(inward.x > 0.0 && inward.y > 0.0);
        assert!((out.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn touching_queries() {
        let me = p(0.0, 0.0);
        let view = LocalView::new(me, vec![p(2.0, 0.0), p(7.0, 0.0), p(3.0, 6.0)], 4);
        let ctx: Ctx = Ctx::new(&view, AlgorithmParams::for_n(4));
        assert!(ctx.touching(me, p(2.0, 0.0)));
        assert!(!ctx.touching(me, p(7.0, 0.0)));
        assert_eq!(ctx.touching_me().collect::<Vec<_>>(), vec![p(2.0, 0.0)]);
    }

    #[test]
    fn view_connectivity_matches_the_model_predicate() {
        use fatrobots_model::GeometricConfig;
        let views = [
            LocalView::new(p(0.0, 0.0), vec![p(2.0, 0.0), p(1.0, 3.0_f64.sqrt())], 3),
            LocalView::new(p(0.0, 0.0), vec![p(10.0, 0.0), p(5.0, 8.0)], 3),
            LocalView::new(
                p(0.0, 0.0),
                vec![p(2.0, 0.0), p(10.0, 0.0), p(12.0, 0.0)],
                4,
            ),
            LocalView::new(p(3.0, 4.0), vec![], 1),
        ];
        for view in views {
            let ctx: Ctx = Ctx::new(&view, AlgorithmParams::for_n(view.n()));
            assert_eq!(
                ctx.view_connected(),
                GeometricConfig::is_connected_on(ctx.all()),
                "connectivity diverged for view at {:?}",
                view.me()
            );
        }
    }

    #[test]
    fn boundary_crossing_and_ray_exit() {
        let ctx = square_ctx();
        // From the interior point (5,5) towards a point beyond the right
        // edge: crossing at x = 10.
        let x = ctx.boundary_crossing(p(5.0, 5.0), p(15.0, 5.0)).unwrap();
        assert!((x.x - 10.0).abs() < 1e-9);
        let exit = ctx.ray_exit_point(p(0.0, 0.0), p(5.0, 5.0)).unwrap();
        assert!(exit.approx_eq(p(10.0, 10.0)));
        assert!(ctx.ray_exit_point(p(0.0, 0.0), p(0.0, 0.0)).is_none());
    }

    #[test]
    fn distance_to_degenerate_chord_is_infinite() {
        let ctx = square_ctx();
        assert!(ctx
            .distance_to_chord(p(1.0, 1.0), p(2.0, 2.0), p(2.0, 2.0))
            .is_infinite());
        assert!((ctx.distance_to_chord(p(0.0, 5.0), p(0.0, 0.0), p(10.0, 0.0)) - 5.0).abs() < 1e-9);
    }
}
