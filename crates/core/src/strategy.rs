//! A common interface for local decision rules, so the simulation engine can
//! run the paper's algorithm and the baseline strategies interchangeably.

use fatrobots_geometry::kernel::Kernel;
use fatrobots_model::LocalView;

use crate::compute::context::ComputeScratch;
use crate::compute::{Decision, KernelAlgorithm};

/// A local gathering strategy: a deterministic, memoryless map from a
/// robot's snapshot to a decision, exactly the shape of the paper's local
/// algorithm `A_i`. Baseline strategies implement the same trait so that the
/// simulator and the experiment harness can swap them in.
///
/// `Send + Sync` is a supertrait so the engine's speculative-Compute workers
/// can share one strategy object across threads; every strategy here is a
/// stateless value (`decide` takes `&self`), so the bound costs nothing.
pub trait Strategy: Send + Sync {
    /// Decide what the robot should do given its current view.
    fn decide(&self, view: &LocalView) -> Decision;

    /// Like [`Strategy::decide`], with a caller-owned scratch arena the
    /// strategy may use for its working buffers. The engine calls this on
    /// every Compute event with the simulator's arena; strategies without
    /// reusable state (the baselines) fall back to [`Strategy::decide`] and
    /// simply ignore it. Implementations must return exactly the decision
    /// [`Strategy::decide`] would.
    fn decide_with(&self, view: &LocalView, _scratch: &mut ComputeScratch) -> Decision {
        self.decide(view)
    }

    /// `true` when this strategy is a pure deterministic function of the
    /// view — [`Strategy::decide`] called twice on identical views must
    /// return identical decisions — so the simulator may **memoize**
    /// decisions: when it can prove a robot's view is unchanged since its
    /// previous Look, it replays the cached decision instead of running the
    /// Compute pipeline at all.
    ///
    /// The paper's `A_i` is exactly such a map (deterministic, memoryless,
    /// Section 4.1), and so is every baseline in this workspace — they all
    /// opt in. The default is `false` so that a future stateful or
    /// randomized strategy is never silently memoized: replaying a decision
    /// it would not repeat changes its behaviour, and forgetting to
    /// override an opt-out default would do so invisibly.
    fn memoizable(&self) -> bool {
        false
    }

    /// A short name used in experiment reports.
    fn name(&self) -> &'static str;
}

impl<K: Kernel> Strategy for KernelAlgorithm<K> {
    fn decide(&self, view: &LocalView) -> Decision {
        self.run(view)
    }

    fn decide_with(&self, view: &LocalView, scratch: &mut ComputeScratch) -> Decision {
        self.run_with(view, scratch)
    }

    fn memoizable(&self) -> bool {
        true // the paper's algorithm is a pure function of the view (§4.1)
    }

    fn name(&self) -> &'static str {
        "agm-gathering"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::LocalAlgorithm;
    use crate::params::AlgorithmParams;
    use fatrobots_geometry::Point;

    #[test]
    fn local_algorithm_implements_strategy() {
        let algo = LocalAlgorithm::new(AlgorithmParams::for_n(3));
        let strategy: &dyn Strategy = &algo;
        let view = LocalView::new(
            Point::new(0.0, 0.0),
            vec![Point::new(2.0, 0.0), Point::new(1.0, 3.0_f64.sqrt())],
            3,
        );
        assert_eq!(strategy.decide(&view), Decision::Terminate);
        assert_eq!(strategy.name(), "agm-gathering");
        assert!(
            strategy.memoizable(),
            "the paper's algorithm is a pure view function and opts in"
        );
    }

    #[test]
    fn memoization_is_opt_in() {
        // A strategy that does not declare itself a pure view function must
        // never be memoized by default — replaying would change it.
        struct Opaque;
        impl Strategy for Opaque {
            fn decide(&self, view: &LocalView) -> Decision {
                Decision::MoveTo(view.me())
            }
            fn name(&self) -> &'static str {
                "opaque"
            }
        }
        assert!(!Opaque.memoizable());
    }
}
