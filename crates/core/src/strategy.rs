//! A common interface for local decision rules, so the simulation engine can
//! run the paper's algorithm and the baseline strategies interchangeably.

use fatrobots_model::LocalView;

use crate::compute::context::ComputeScratch;
use crate::compute::{Decision, LocalAlgorithm};

/// A local gathering strategy: a deterministic, memoryless map from a
/// robot's snapshot to a decision, exactly the shape of the paper's local
/// algorithm `A_i`. Baseline strategies implement the same trait so that the
/// simulator and the experiment harness can swap them in.
pub trait Strategy {
    /// Decide what the robot should do given its current view.
    fn decide(&self, view: &LocalView) -> Decision;

    /// Like [`Strategy::decide`], with a caller-owned scratch arena the
    /// strategy may use for its working buffers. The engine calls this on
    /// every Compute event with the simulator's arena; strategies without
    /// reusable state (the baselines) fall back to [`Strategy::decide`] and
    /// simply ignore it. Implementations must return exactly the decision
    /// [`Strategy::decide`] would.
    fn decide_with(&self, view: &LocalView, _scratch: &mut ComputeScratch) -> Decision {
        self.decide(view)
    }

    /// A short name used in experiment reports.
    fn name(&self) -> &'static str;
}

impl Strategy for LocalAlgorithm {
    fn decide(&self, view: &LocalView) -> Decision {
        self.run(view)
    }

    fn decide_with(&self, view: &LocalView, scratch: &mut ComputeScratch) -> Decision {
        self.run_with(view, scratch)
    }

    fn name(&self) -> &'static str {
        "agm-gathering"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::AlgorithmParams;
    use fatrobots_geometry::Point;

    #[test]
    fn local_algorithm_implements_strategy() {
        let algo = LocalAlgorithm::new(AlgorithmParams::for_n(3));
        let strategy: &dyn Strategy = &algo;
        let view = LocalView::new(
            Point::new(0.0, 0.0),
            vec![Point::new(2.0, 0.0), Point::new(1.0, 3.0_f64.sqrt())],
            3,
        );
        assert_eq!(strategy.decide(&view), Decision::Terminate);
        assert_eq!(strategy.name(), "agm-gathering");
    }
}
