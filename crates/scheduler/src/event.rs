//! The event alphabet of the execution model (Section 2).

use std::fmt;

use fatrobots_model::RobotId;

/// An event of an execution fragment, as named in the paper. Executions are
/// alternating sequences of robot configurations and events; the simulator
/// records one `Event` per applied step so that traces can be replayed and
/// inspected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `Look(r_i)`: the robot leaves `Wait` and takes a snapshot.
    Look(RobotId),
    /// `Compute(r_i)`: the robot runs its local algorithm on the snapshot.
    Compute(RobotId),
    /// `Done(r_i)`: the local algorithm returned ⊥; the robot terminates.
    Done(RobotId),
    /// `Move(r_i)`: the local algorithm returned a target point; the robot
    /// enters its `Move` phase.
    Move(RobotId),
    /// `Stop(r_i)`: the adversary stopped the robot before it reached its
    /// target; it re-enters `Wait`.
    Stop(RobotId),
    /// `Collide(R)`: the listed moving robots came into contact (their discs
    /// became tangent) and all re-enter `Wait`.
    Collide(Vec<RobotId>),
    /// `Arrive(r_i)`: the robot reached its target point and re-enters
    /// `Wait`.
    Arrive(RobotId),
}

impl Event {
    /// The robots directly affected by the event.
    pub fn robots(&self) -> Vec<RobotId> {
        match self {
            Event::Look(r)
            | Event::Compute(r)
            | Event::Done(r)
            | Event::Move(r)
            | Event::Stop(r)
            | Event::Arrive(r) => vec![*r],
            Event::Collide(rs) => rs.clone(),
        }
    }

    /// `true` for events that end a Move phase (the robot re-enters `Wait`).
    pub fn ends_motion(&self) -> bool {
        matches!(self, Event::Stop(_) | Event::Collide(_) | Event::Arrive(_))
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Look(r) => write!(f, "Look({r})"),
            Event::Compute(r) => write!(f, "Compute({r})"),
            Event::Done(r) => write!(f, "Done({r})"),
            Event::Move(r) => write!(f, "Move({r})"),
            Event::Stop(r) => write!(f, "Stop({r})"),
            Event::Arrive(r) => write!(f, "Arrive({r})"),
            Event::Collide(rs) => {
                write!(f, "Collide(")?;
                for (i, r) in rs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{r}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affected_robots() {
        assert_eq!(Event::Look(RobotId(3)).robots(), vec![RobotId(3)]);
        assert_eq!(
            Event::Collide(vec![RobotId(1), RobotId(2)]).robots(),
            vec![RobotId(1), RobotId(2)]
        );
    }

    #[test]
    fn motion_ending_events() {
        assert!(Event::Stop(RobotId(0)).ends_motion());
        assert!(Event::Arrive(RobotId(0)).ends_motion());
        assert!(Event::Collide(vec![RobotId(0), RobotId(1)]).ends_motion());
        assert!(!Event::Look(RobotId(0)).ends_motion());
        assert!(!Event::Move(RobotId(0)).ends_motion());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(format!("{}", Event::Look(RobotId(2))), "Look(r2)");
        assert_eq!(
            format!("{}", Event::Collide(vec![RobotId(0), RobotId(4)])),
            "Collide(r0, r4)"
        );
    }
}
